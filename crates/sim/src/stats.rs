//! Execution statistics.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use vsp_isa::FuClass;

/// Statistics gathered over one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Total cycles elapsed (including stalls).
    pub cycles: u64,
    /// Instruction words issued.
    pub words: u64,
    /// Operations committed (guard true), per functional-unit class.
    pub ops_by_class: BTreeMap<FuClass, u64>,
    /// Operations whose guard was false (issued but annulled).
    pub annulled_ops: u64,
    /// Loads committed.
    pub loads: u64,
    /// Stores committed.
    pub stores: u64,
    /// Crossbar transfers committed.
    pub transfers: u64,
    /// Taken branches.
    pub taken_branches: u64,
    /// Instruction-cache miss stalls, in cycles.
    pub icache_stall_cycles: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Peak operations the machine could have issued (words × issue
    /// width), for utilization accounting.
    pub issue_capacity: u64,
    /// Branch-redirect bubbles: words issued inside a branch-delay
    /// shadow that performed no work (no committed and no annulled
    /// operations). Together with [`RunStats::icache_stall_cycles`]
    /// these break down where non-productive cycles went — note the
    /// bubbles are *issued words*, so `cycles == words +
    /// icache_stall_cycles` still holds.
    #[serde(default)]
    pub branch_bubble_cycles: u64,
    /// Committed operations per cluster, indexed by cluster id.
    #[serde(default)]
    pub ops_by_cluster: Vec<u64>,
    /// Per-cluster issue-occupancy histogram: `util_histogram[c][k]` is
    /// the number of issued words in which cluster `c` committed
    /// exactly `k` operations. Bucket 0 is derived from `words` when
    /// the run finishes.
    #[serde(default)]
    pub util_histogram: Vec<Vec<u64>>,
    /// Datapath perturbations a fault model actually made on the
    /// surviving timeline (a checkpoint restore rolls this back with the
    /// rest of the stats; the fault plan's own counters keep totals
    /// including replayed regions).
    #[serde(default)]
    pub faults_injected: u64,
    /// Faults the recovery loop detected (simulator error or watchdog
    /// expiry attributed to an injection).
    #[serde(default)]
    pub faults_detected: u64,
    /// Detected faults erased by re-execution from a checkpoint.
    #[serde(default)]
    pub faults_corrected: u64,
    /// Detected faults that survived every retry (the run failed or the
    /// region was abandoned).
    #[serde(default)]
    pub faults_uncorrectable: u64,
    /// Cycles of work discarded by checkpoint rollbacks (re-executed
    /// cycles; the recovery overhead on top of `cycles`).
    #[serde(default)]
    pub recovery_cycles: u64,
}

impl RunStats {
    /// Total committed operations.
    pub fn total_ops(&self) -> u64 {
        self.ops_by_class.values().sum()
    }

    /// Fraction of issue slots doing committed work.
    pub fn utilization(&self) -> f64 {
        if self.issue_capacity == 0 {
            0.0
        } else {
            self.total_ops() as f64 / self.issue_capacity as f64
        }
    }

    /// Committed operations per cycle.
    pub fn ops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_ops() as f64 / self.cycles as f64
        }
    }

    /// Sustained GOPS at a given clock frequency.
    pub fn gops_at(&self, freq_mhz: f64) -> f64 {
        self.ops_per_cycle() * freq_mhz / 1000.0
    }

    /// Cycles spent issuing productive words — total cycles minus
    /// icache refill stalls and branch-redirect bubbles.
    pub fn productive_cycles(&self) -> u64 {
        self.cycles
            .saturating_sub(self.icache_stall_cycles)
            .saturating_sub(self.branch_bubble_cycles)
    }

    /// Mean committed occupancy of one cluster, in operations per
    /// issued word, from its utilization histogram.
    pub fn mean_cluster_occupancy(&self, cluster: usize) -> f64 {
        let Some(hist) = self.util_histogram.get(cluster) else {
            return 0.0;
        };
        let words: u64 = hist.iter().sum();
        if words == 0 {
            return 0.0;
        }
        let ops: u64 = hist.iter().enumerate().map(|(k, &n)| k as u64 * n).sum();
        ops as f64 / words as f64
    }

    /// Records a committed operation.
    pub(crate) fn record_op(&mut self, class: FuClass, cluster: usize) {
        *self.ops_by_class.entry(class).or_insert(0) += 1;
        self.record_cluster_op(cluster);
    }

    /// The per-cluster half of [`RunStats::record_op`]; the fast path
    /// counts classes in a flat array and folds them in at finalize, so
    /// its hot loop only pays this part.
    pub(crate) fn record_cluster_op(&mut self, cluster: usize) {
        if self.ops_by_cluster.len() <= cluster {
            self.ops_by_cluster.resize(cluster + 1, 0);
        }
        self.ops_by_cluster[cluster] += 1;
    }

    /// Records that a cluster committed `ops > 0` operations in one
    /// issued word (the zero bucket is derived in [`RunStats::finalize`]).
    pub(crate) fn record_cluster_word(&mut self, cluster: usize, ops: usize) {
        if self.util_histogram.len() <= cluster {
            self.util_histogram.resize(cluster + 1, Vec::new());
        }
        let hist = &mut self.util_histogram[cluster];
        if hist.len() <= ops {
            hist.resize(ops + 1, 0);
        }
        hist[ops] += 1;
    }

    /// Derives histogram zero-buckets from the word count. Idempotent;
    /// called whenever stats are read out of a simulator, so the hot
    /// loop never pays for idle clusters.
    pub(crate) fn finalize(&mut self) {
        for hist in &mut self.util_histogram {
            if hist.is_empty() {
                hist.push(0);
            }
            let busy: u64 = hist[1..].iter().sum();
            hist[0] = self.words.saturating_sub(busy);
        }
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} cycles, {} words, {} ops ({:.2} ops/cycle, {:.0}% issue utilization)",
            self.cycles,
            self.words,
            self.total_ops(),
            self.ops_per_cycle(),
            self.utilization() * 100.0
        )?;
        writeln!(
            f,
            "loads {}, stores {}, transfers {}, taken branches {}, icache stalls {}",
            self.loads, self.stores, self.transfers, self.taken_branches, self.icache_stall_cycles
        )?;
        write!(
            f,
            "icache misses {}, branch bubbles {}, annulled {}",
            self.icache_misses, self.branch_bubble_cycles, self.annulled_ops
        )?;
        if !self.ops_by_cluster.is_empty() {
            write!(f, "\nops by cluster:")?;
            for (c, ops) in self.ops_by_cluster.iter().enumerate() {
                write!(f, " c{c}={ops}")?;
            }
        }
        if self.faults_injected > 0 || self.faults_detected > 0 {
            write!(
                f,
                "\nfaults: injected {}, detected {}, corrected {}, uncorrectable {}, recovery cycles {}",
                self.faults_injected,
                self.faults_detected,
                self.faults_corrected,
                self.faults_uncorrectable,
                self.recovery_cycles
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut s = RunStats {
            cycles: 100,
            words: 100,
            issue_capacity: 3300,
            ..RunStats::default()
        };
        for _ in 0..330 {
            s.record_op(FuClass::Alu, 0);
        }
        assert_eq!(s.total_ops(), 330);
        assert_eq!(s.ops_by_cluster, vec![330]);
        assert!((s.utilization() - 0.1).abs() < 1e-12);
        assert!((s.ops_per_cycle() - 3.3).abs() < 1e-12);
        assert!((s.gops_at(650.0) - 2.145).abs() < 1e-9);
    }

    #[test]
    fn zero_division_guards() {
        let s = RunStats::default();
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.ops_per_cycle(), 0.0);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = RunStats {
            cycles: 42,
            ..RunStats::default()
        };
        assert!(s.to_string().contains("42 cycles"));
    }

    #[test]
    fn display_surfaces_icache_misses_and_bubbles() {
        let s = RunStats {
            icache_misses: 7,
            branch_bubble_cycles: 5,
            ops_by_cluster: vec![10, 20],
            ..RunStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("icache misses 7"), "{text}");
        assert!(text.contains("branch bubbles 5"), "{text}");
        assert!(text.contains("c0=10"), "{text}");
        assert!(text.contains("c1=20"), "{text}");
    }

    #[test]
    fn stall_breakdown_and_productive_cycles() {
        let s = RunStats {
            cycles: 100,
            words: 90,
            icache_stall_cycles: 10,
            branch_bubble_cycles: 6,
            ..RunStats::default()
        };
        assert_eq!(s.productive_cycles(), 84);
    }

    #[test]
    fn histogram_zero_bucket_derived_at_finalize() {
        let mut s = RunStats {
            words: 10,
            ..RunStats::default()
        };
        // Cluster 0 issued 2 ops in three words and 1 op in four words.
        for _ in 0..3 {
            s.record_cluster_word(0, 2);
        }
        for _ in 0..4 {
            s.record_cluster_word(0, 1);
        }
        s.finalize();
        assert_eq!(s.util_histogram[0], vec![3, 4, 3]);
        // Idempotent.
        s.finalize();
        assert_eq!(s.util_histogram[0], vec![3, 4, 3]);
        let occ = s.mean_cluster_occupancy(0);
        assert!((occ - 1.0).abs() < 1e-12, "{occ}"); // 10 ops / 10 words
        assert_eq!(s.mean_cluster_occupancy(5), 0.0);
    }
}
