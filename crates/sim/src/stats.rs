//! Execution statistics.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use vsp_isa::FuClass;

/// Statistics gathered over one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Total cycles elapsed (including stalls).
    pub cycles: u64,
    /// Instruction words issued.
    pub words: u64,
    /// Operations committed (guard true), per functional-unit class.
    pub ops_by_class: BTreeMap<FuClass, u64>,
    /// Operations whose guard was false (issued but annulled).
    pub annulled_ops: u64,
    /// Loads committed.
    pub loads: u64,
    /// Stores committed.
    pub stores: u64,
    /// Crossbar transfers committed.
    pub transfers: u64,
    /// Taken branches.
    pub taken_branches: u64,
    /// Instruction-cache miss stalls, in cycles.
    pub icache_stall_cycles: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Peak operations the machine could have issued (words × issue
    /// width), for utilization accounting.
    pub issue_capacity: u64,
}

impl RunStats {
    /// Total committed operations.
    pub fn total_ops(&self) -> u64 {
        self.ops_by_class.values().sum()
    }

    /// Fraction of issue slots doing committed work.
    pub fn utilization(&self) -> f64 {
        if self.issue_capacity == 0 {
            0.0
        } else {
            self.total_ops() as f64 / self.issue_capacity as f64
        }
    }

    /// Committed operations per cycle.
    pub fn ops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_ops() as f64 / self.cycles as f64
        }
    }

    /// Sustained GOPS at a given clock frequency.
    pub fn gops_at(&self, freq_mhz: f64) -> f64 {
        self.ops_per_cycle() * freq_mhz / 1000.0
    }

    /// Records a committed operation.
    pub(crate) fn record_op(&mut self, class: FuClass) {
        *self.ops_by_class.entry(class).or_insert(0) += 1;
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} cycles, {} words, {} ops ({:.2} ops/cycle, {:.0}% issue utilization)",
            self.cycles,
            self.words,
            self.total_ops(),
            self.ops_per_cycle(),
            self.utilization() * 100.0
        )?;
        write!(
            f,
            "loads {}, stores {}, transfers {}, taken branches {}, icache stalls {}",
            self.loads, self.stores, self.transfers, self.taken_branches, self.icache_stall_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut s = RunStats {
            cycles: 100,
            words: 100,
            issue_capacity: 3300,
            ..RunStats::default()
        };
        for _ in 0..330 {
            s.record_op(FuClass::Alu);
        }
        assert_eq!(s.total_ops(), 330);
        assert!((s.utilization() - 0.1).abs() < 1e-12);
        assert!((s.ops_per_cycle() - 3.3).abs() < 1e-12);
        assert!((s.gops_at(650.0) - 2.145).abs() < 1e-9);
    }

    #[test]
    fn zero_division_guards() {
        let s = RunStats::default();
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.ops_per_cycle(), 0.0);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = RunStats {
            cycles: 42,
            ..RunStats::default()
        };
        assert!(s.to_string().contains("42 cycles"));
    }
}
