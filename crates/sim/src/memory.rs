//! Double-buffered local data memories.
//!
//! Each cluster memory bank holds two equally sized buffers of 16-bit
//! words. The datapath reads and writes the *processing* buffer; the
//! other (*I/O*) buffer is exchanged with off-chip video streams between
//! swaps — "the memory is word addressed and double buffered to enable
//! concurrent processing and off-chip I/O" (§3.2).

use serde::{Deserialize, Serialize};

/// One double-buffered memory bank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalMemory {
    words: u32,
    buffers: [Vec<i16>; 2],
    active: usize,
}

impl LocalMemory {
    /// Creates a zeroed bank of `words` 16-bit words per buffer.
    pub fn new(words: u32) -> Self {
        LocalMemory {
            words,
            buffers: [vec![0; words as usize], vec![0; words as usize]],
            active: 0,
        }
    }

    /// Capacity of each buffer in words.
    pub fn words(&self) -> u32 {
        self.words
    }

    /// Reads from the processing buffer; `None` if out of range.
    pub fn read(&self, addr: u32) -> Option<i16> {
        self.buffers[self.active].get(addr as usize).copied()
    }

    /// Writes to the processing buffer. Returns `false` if out of range.
    pub fn write(&mut self, addr: u32, value: i16) -> bool {
        match self.buffers[self.active].get_mut(addr as usize) {
            Some(slot) => {
                *slot = value;
                true
            }
            None => false,
        }
    }

    /// Swaps the processing and I/O buffers.
    pub fn swap(&mut self) {
        self.active ^= 1;
    }

    /// The processing buffer, for test setup and inspection.
    pub fn active_buffer(&self) -> &[i16] {
        &self.buffers[self.active]
    }

    /// Mutable access to the processing buffer (e.g. to stage input data).
    pub fn active_buffer_mut(&mut self) -> &mut [i16] {
        &mut self.buffers[self.active]
    }

    /// The I/O buffer — what a DMA engine would fill while the datapath
    /// works on the processing buffer.
    pub fn io_buffer_mut(&mut self) -> &mut [i16] {
        &mut self.buffers[self.active ^ 1]
    }

    /// Read-only view of the I/O buffer (state inspection).
    pub fn io_buffer(&self) -> &[i16] {
        &self.buffers[self.active ^ 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = LocalMemory::new(16);
        assert!(m.write(3, -7));
        assert_eq!(m.read(3), Some(-7));
        assert_eq!(m.read(0), Some(0));
    }

    #[test]
    fn out_of_range_is_reported() {
        let mut m = LocalMemory::new(4);
        assert_eq!(m.read(4), None);
        assert!(!m.write(4, 1));
    }

    #[test]
    fn swap_exposes_io_buffer() {
        let mut m = LocalMemory::new(4);
        m.io_buffer_mut()[2] = 99;
        assert_eq!(m.read(2), Some(0), "I/O buffer invisible before swap");
        m.swap();
        assert_eq!(m.read(2), Some(99), "visible after swap");
        m.swap();
        assert_eq!(m.read(2), Some(0), "double swap restores");
    }

    #[test]
    fn buffers_are_independent() {
        let mut m = LocalMemory::new(4);
        m.write(0, 5);
        m.swap();
        m.write(0, 6);
        assert_eq!(m.read(0), Some(6));
        m.swap();
        assert_eq!(m.read(0), Some(5));
    }
}
