//! Direct-mapped instruction-cache model.
//!
//! The paper's machines fetch one VLIW word per cycle from a distributed
//! on-chip instruction cache of 1024 words (8-cluster models) or 512
//! words (16-cluster models). A demand refill costs well over 100 cycles,
//! so "essentially, all critical loops must fit into the cache" — this
//! model makes that penalty visible in simulation.

use serde::{Deserialize, Serialize};

/// Direct-mapped, one-word-per-line instruction cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstructionCache {
    capacity: u32,
    refill_cycles: u32,
    tags: Vec<Option<usize>>,
    misses: u64,
    hits: u64,
}

impl InstructionCache {
    /// Creates an empty (cold) cache.
    pub fn new(capacity_words: u32, refill_cycles: u32) -> Self {
        InstructionCache {
            capacity: capacity_words.max(1),
            refill_cycles,
            tags: vec![None; capacity_words.max(1) as usize],
            misses: 0,
            hits: 0,
        }
    }

    /// Fetches the word at `pc`, returning the stall cycles incurred
    /// (0 on a hit, the refill penalty on a miss).
    pub fn fetch(&mut self, pc: usize) -> u32 {
        let idx = pc % self.capacity as usize;
        if self.tags[idx] == Some(pc) {
            self.hits += 1;
            0
        } else {
            self.tags[idx] = Some(pc);
            self.misses += 1;
            self.refill_cycles
        }
    }

    /// Pre-loads a program of `len` words, as a loader/DMA would before
    /// kernel start, eliminating cold misses for resident words.
    pub fn warm(&mut self, len: usize) {
        for pc in 0..len.min(self.capacity as usize) {
            let idx = pc % self.capacity as usize;
            self.tags[idx] = Some(pc);
        }
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache capacity in words.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_cache_never_misses_on_fitting_loop() {
        let mut c = InstructionCache::new(512, 120);
        c.warm(100);
        for _ in 0..10 {
            for pc in 0..100 {
                assert_eq!(c.fetch(pc), 0);
            }
        }
        assert_eq!(c.misses(), 0);
        assert_eq!(c.hits(), 1000);
    }

    #[test]
    fn cold_cache_pays_refills() {
        let mut c = InstructionCache::new(512, 120);
        assert_eq!(c.fetch(0), 120);
        assert_eq!(c.fetch(0), 0);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn oversized_loop_thrashes() {
        // A loop of 600 words in a 512-word cache: the overlapping 88 + 88
        // indices evict each other every iteration.
        let mut c = InstructionCache::new(512, 120);
        c.warm(600);
        let mut stall = 0;
        for pc in 0..600 {
            stall += c.fetch(pc);
        }
        assert!(stall > 0, "conflicting lines must miss");
        // Second pass keeps missing in the conflict region.
        let mut stall2 = 0;
        for pc in 0..600 {
            stall2 += c.fetch(pc);
        }
        assert!(stall2 >= stall / 2);
    }

    #[test]
    fn warm_respects_capacity() {
        let mut c = InstructionCache::new(4, 50);
        c.warm(100);
        assert_eq!(c.fetch(0), 0);
        assert_eq!(c.fetch(5), 50, "beyond capacity stays cold");
    }
}
