//! Pre-decoded execution representation: the simulator's fast path.
//!
//! [`crate::Simulator::step`] used to walk the [`vsp_isa::Program`]'s
//! symbolic [`vsp_isa::Instruction`] words every cycle: clone the word,
//! match on boxed-enum operands, look up the latency model per
//! operation. All of that is loop-invariant — a program's operations,
//! register indices, guards, functional-unit classes, latencies and
//! branch targets never change while it runs. [`DecodedProgram`]
//! computes them once at load time into flat, `Copy`-able arrays so the
//! per-cycle interpreter touches nothing but plain integers.
//!
//! The decoded form is deliberately lossless with respect to *timing
//! and architectural state*: executing a decoded program must produce a
//! [`crate::RunStats`] identical to the legacy interpretive walk
//! (`Simulator::step_interp`), operation for operation, fault for
//! fault. The differential test `fast_path_diff.rs` holds the two paths
//! to that contract on every kernel × machine-model pair of the paper.

use vsp_core::{LatencyModel, MachineConfig};
use vsp_isa::{
    AddrMode, AluBinOp, AluUnOp, CmpOp, FuClass, MemCtlOp, MulKind, OpKind, Operand, Program,
    ShiftOp,
};

/// Sentinel for "no guard" in [`DecodedOp::guard_pred`].
pub const NO_GUARD: u8 = u8::MAX;

/// A resolved operand: a register file index or an immediate.
#[derive(Debug, Clone, Copy)]
pub enum DOperand {
    /// Register file index (already `Reg::index()`).
    Reg(u16),
    /// Immediate value.
    Imm(i16),
}

impl DOperand {
    fn from(o: &Operand) -> Self {
        match o {
            Operand::Reg(r) => DOperand::Reg(r.0),
            Operand::Imm(v) => DOperand::Imm(*v),
        }
    }
}

/// A resolved effective-address computation.
#[derive(Debug, Clone, Copy)]
pub enum DAddr {
    /// Absolute word address.
    Abs(u16),
    /// Address held in a register.
    Reg(u16),
    /// Base register plus displacement.
    BaseDisp(u16, i16),
    /// Base register plus index register.
    Indexed(u16, u16),
}

impl DAddr {
    fn from(a: &AddrMode) -> Self {
        match a {
            AddrMode::Absolute(a) => DAddr::Abs(*a),
            AddrMode::Register(r) => DAddr::Reg(r.0),
            AddrMode::BaseDisp(r, d) => DAddr::BaseDisp(r.0, *d),
            AddrMode::Indexed(r, s) => DAddr::Indexed(r.0, s.0),
        }
    }
}

/// The resolved semantic payload: [`OpKind`] with register objects
/// flattened to raw indices and branch targets narrowed to `u32`.
#[derive(Debug, Clone, Copy)]
pub enum DKind {
    /// Two-operand ALU operation.
    AluBin {
        /// ALU operator.
        op: AluBinOp,
        /// Destination register index.
        dst: u16,
        /// First operand.
        a: DOperand,
        /// Second operand.
        b: DOperand,
    },
    /// One-operand ALU operation.
    AluUn {
        /// ALU operator.
        op: AluUnOp,
        /// Destination register index.
        dst: u16,
        /// Operand.
        a: DOperand,
    },
    /// Shift.
    Shift {
        /// Shift operator.
        op: ShiftOp,
        /// Destination register index.
        dst: u16,
        /// Value operand.
        a: DOperand,
        /// Amount operand.
        b: DOperand,
    },
    /// Multiply.
    Mul {
        /// Multiply flavour.
        kind: MulKind,
        /// Destination register index.
        dst: u16,
        /// First operand.
        a: DOperand,
        /// Second operand.
        b: DOperand,
    },
    /// Compare writing a predicate.
    Cmp {
        /// Comparison operator.
        op: CmpOp,
        /// Destination predicate index.
        dst: u8,
        /// First operand.
        a: DOperand,
        /// Second operand.
        b: DOperand,
    },
    /// Load from a local memory bank.
    Load {
        /// Destination register index.
        dst: u16,
        /// Effective address.
        addr: DAddr,
        /// Local memory bank.
        bank: u8,
    },
    /// Store to a local memory bank.
    Store {
        /// Value operand.
        src: DOperand,
        /// Effective address.
        addr: DAddr,
        /// Local memory bank.
        bank: u8,
    },
    /// Crossbar transfer from a remote cluster.
    Xfer {
        /// Destination register index (in the executing cluster).
        dst: u16,
        /// Source cluster.
        from: u8,
        /// Source register index (in `from`).
        src: u16,
    },
    /// Conditional branch.
    Branch {
        /// Predicate index tested.
        pred: u8,
        /// Sense the predicate must match for the branch to be taken.
        sense: bool,
        /// Target instruction-word index.
        target: u32,
    },
    /// Unconditional jump.
    Jump {
        /// Target instruction-word index.
        target: u32,
    },
    /// Halt.
    Halt,
    /// Swap a bank's double buffers.
    Swap {
        /// Local memory bank.
        bank: u8,
    },
    /// Explicit no-op (kept so annulled-guard accounting matches).
    Nop,
}

/// One pre-decoded operation: everything `step` needs, in one flat
/// `Copy` record — no pointer chasing, no per-cycle latency lookups.
#[derive(Debug, Clone, Copy)]
pub struct DecodedOp {
    /// Executing cluster.
    pub cluster: u8,
    /// Issue slot (kept for trace events).
    pub slot: u8,
    /// Guard predicate index, or [`NO_GUARD`].
    pub guard_pred: u8,
    /// Required guard value.
    pub guard_sense: bool,
    /// Functional-unit class, `None` for a no-op.
    pub class: Option<FuClass>,
    /// Result latency on this machine, resolved at decode time.
    pub latency: u32,
    /// Resolved payload.
    pub kind: DKind,
}

/// A program lowered to flat op arrays for one machine: `ops` holds
/// every operation word-by-word in issue order; word `i` spans
/// `word_start[i] .. word_start[i + 1]`.
///
/// Decoding is machine-specific (latencies are resolved against one
/// [`MachineConfig`]), so a decoded program must only ever run on the
/// machine it was prepared for. Prepare once with
/// [`DecodedProgram::prepare`] and share across runs — the scalar
/// [`crate::Simulator::with_decoded`] and the batched
/// [`crate::batch::BatchSimulator`] both execute this form directly,
/// which is what lets campaign harnesses amortize validation and decode
/// over thousands of runs.
#[derive(Debug, Clone, Default)]
pub struct DecodedProgram {
    word_start: Vec<u32>,
    ops: Vec<DecodedOp>,
}

impl DecodedProgram {
    /// Validates `program` against `machine` and decodes it.
    ///
    /// This is the public entry point: the resulting value is safe to
    /// hand to [`crate::Simulator::with_decoded`] or
    /// [`crate::batch::BatchSimulator::run_batch`] for the same
    /// `machine`/`program` pair.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SimError::Invalid`] if the program fails
    /// structural validation for the machine.
    pub fn prepare(
        machine: &MachineConfig,
        program: &Program,
    ) -> Result<Self, crate::error::SimError> {
        vsp_core::validate_program(machine, program)?;
        Ok(Self::decode(machine, program))
    }

    /// Number of instruction words in the decoded program.
    #[must_use]
    pub fn len(&self) -> usize {
        self.word_start.len().saturating_sub(1)
    }

    /// Whether the program has no instruction words.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total decoded operations across all words.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// The widest word, in operations (batch scratch sizing).
    pub(crate) fn max_word_ops(&self) -> usize {
        self.word_start
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Decodes `program` for `machine`, resolving latencies once.
    ///
    /// The program must already have passed
    /// [`vsp_core::validate_program`]; decoding is total after that.
    pub(crate) fn decode(machine: &MachineConfig, program: &Program) -> Self {
        let latencies = LatencyModel::new(machine);
        let mut word_start = Vec::with_capacity(program.len() + 1);
        let mut ops = Vec::with_capacity(program.op_count());
        word_start.push(0);
        for word in program.iter() {
            for op in word.iter() {
                let (guard_pred, guard_sense) = match &op.guard {
                    Some(g) => (g.pred.0, g.sense),
                    None => (NO_GUARD, false),
                };
                let kind = match &op.kind {
                    OpKind::AluBin { op, dst, a, b } => DKind::AluBin {
                        op: *op,
                        dst: dst.0,
                        a: DOperand::from(a),
                        b: DOperand::from(b),
                    },
                    OpKind::AluUn { op, dst, a } => DKind::AluUn {
                        op: *op,
                        dst: dst.0,
                        a: DOperand::from(a),
                    },
                    OpKind::Shift { op, dst, a, b } => DKind::Shift {
                        op: *op,
                        dst: dst.0,
                        a: DOperand::from(a),
                        b: DOperand::from(b),
                    },
                    OpKind::Mul { kind, dst, a, b } => DKind::Mul {
                        kind: *kind,
                        dst: dst.0,
                        a: DOperand::from(a),
                        b: DOperand::from(b),
                    },
                    OpKind::Cmp { op, dst, a, b } => DKind::Cmp {
                        op: *op,
                        dst: dst.0,
                        a: DOperand::from(a),
                        b: DOperand::from(b),
                    },
                    OpKind::Load { dst, addr, bank } => DKind::Load {
                        dst: dst.0,
                        addr: DAddr::from(addr),
                        bank: bank.0,
                    },
                    OpKind::Store { src, addr, bank } => DKind::Store {
                        src: DOperand::from(src),
                        addr: DAddr::from(addr),
                        bank: bank.0,
                    },
                    OpKind::Xfer { dst, from, src } => DKind::Xfer {
                        dst: dst.0,
                        from: *from,
                        src: src.0,
                    },
                    OpKind::Branch {
                        pred,
                        sense,
                        target,
                    } => DKind::Branch {
                        pred: pred.0,
                        sense: *sense,
                        target: *target as u32,
                    },
                    OpKind::Jump { target } => DKind::Jump {
                        target: *target as u32,
                    },
                    OpKind::Halt => DKind::Halt,
                    OpKind::MemCtl {
                        op: MemCtlOp::SwapBuffers,
                        bank,
                    } => DKind::Swap { bank: bank.0 },
                    OpKind::Nop => DKind::Nop,
                };
                ops.push(DecodedOp {
                    cluster: op.cluster,
                    slot: op.slot,
                    guard_pred,
                    guard_sense,
                    class: op.kind.fu_class(),
                    latency: latencies.latency(&op.kind),
                    kind,
                });
            }
            word_start.push(ops.len() as u32);
        }
        DecodedProgram { word_start, ops }
    }

    /// The flat op-index range of word `i`.
    #[inline]
    #[must_use]
    pub fn word_range(&self, i: usize) -> std::ops::Range<usize> {
        self.word_start[i] as usize..self.word_start[i + 1] as usize
    }

    /// The op at flat index `i` (copied out, so no borrow is held).
    #[inline]
    #[must_use]
    pub fn op(&self, i: usize) -> DecodedOp {
        self.ops[i]
    }
}
