//! Microarchitectural checkpoint/restore — the basis of the `vsp-fault`
//! re-execute-from-checkpoint recovery loop.

use crate::fault::FaultModel;
use crate::icache::InstructionCache;
use crate::memory::LocalMemory;
use crate::stats::RunStats;
use std::collections::BTreeMap;
use vsp_trace::TraceSink;

use super::{Commit, Simulator};

/// A full microarchitectural snapshot of a [`Simulator`]: architectural
/// state plus everything in flight — pending commits, scoreboard ready
/// times, icache tags, fetch/redirect state, and statistics.
///
/// Built by [`Simulator::checkpoint`] and consumed by
/// [`Simulator::restore`]; re-executing from a restored checkpoint
/// replays the simulation exactly (the basis of the `vsp-fault`
/// re-execute-from-checkpoint recovery loop). Fields are private: a
/// checkpoint is only meaningful to a simulator over the same machine
/// and program shape that produced it.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    regs: Vec<Vec<i16>>,
    reg_ready: Vec<Vec<u64>>,
    preds: Vec<Vec<bool>>,
    pred_ready: Vec<Vec<u64>>,
    mems: Vec<Vec<LocalMemory>>,
    pending_ring: Vec<Vec<Commit>>,
    pending_count: usize,
    pending_far: BTreeMap<u64, Vec<Commit>>,
    drained_through: u64,
    icache: InstructionCache,
    pc: usize,
    cycle: u64,
    redirect: Option<(usize, u32)>,
    halted: bool,
    stats: RunStats,
    fast_class_ops: [u64; 6],
}

impl Checkpoint {
    /// Cycle count at the moment the checkpoint was taken.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }
}

impl<'a, S: TraceSink, F: FaultModel, M: vsp_metrics::Recorder> Simulator<'a, S, F, M> {
    /// Snapshots the complete microarchitectural state for later
    /// [`Simulator::restore`]. Unlike [`Simulator::arch_state`] this
    /// includes in-flight commits, scoreboard ready times, the icache,
    /// fetch/redirect state and statistics, so resuming from it replays
    /// the run exactly.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            regs: self.regs.clone(),
            reg_ready: self.reg_ready.clone(),
            preds: self.preds.clone(),
            pred_ready: self.pred_ready.clone(),
            mems: self.mems.clone(),
            pending_ring: self.pending_ring.clone(),
            pending_count: self.pending_count,
            pending_far: self.pending_far.clone(),
            drained_through: self.drained_through,
            icache: self.icache.clone(),
            pc: self.pc,
            cycle: self.cycle,
            redirect: self.redirect,
            halted: self.halted,
            stats: self.stats.clone(),
            fast_class_ops: self.fast_class_ops,
        }
    }

    /// Rolls the simulator back to a [`Checkpoint`] taken earlier on
    /// this same machine/program pair.
    ///
    /// Statistics roll back too (the discarded cycles never happened on
    /// the surviving timeline); the `vsp-fault` recovery loop accounts
    /// the thrown-away work separately as `recovery_cycles`. Per-step
    /// scratch state is cleared — a step aborted mid-word by a fault may
    /// have left it dirty.
    pub fn restore(&mut self, cp: &Checkpoint) {
        self.regs.clone_from(&cp.regs);
        self.reg_ready.clone_from(&cp.reg_ready);
        self.preds.clone_from(&cp.preds);
        self.pred_ready.clone_from(&cp.pred_ready);
        self.mems.clone_from(&cp.mems);
        self.pending_ring.clone_from(&cp.pending_ring);
        self.pending_count = cp.pending_count;
        self.pending_far.clone_from(&cp.pending_far);
        self.drained_through = cp.drained_through;
        self.icache.clone_from(&cp.icache);
        self.pc = cp.pc;
        self.cycle = cp.cycle;
        self.redirect = cp.redirect;
        self.halted = cp.halted;
        self.stats.clone_from(&cp.stats);
        self.fast_class_ops = cp.fast_class_ops;
        for n in &mut self.word_cluster_ops {
            *n = 0;
        }
        self.word_touched.clear();
        self.scratch_stores.clear();
        self.scratch_swaps.clear();
        self.scratch_reg_writes.clear();
        self.scratch_pred_writes.clear();
    }
}
