//! Commit bookkeeping shared by both execution paths: the
//! pending-commit ring, the ordered overflow map, write-port conflict
//! checks, and bypass-network result scheduling.

use crate::error::SimError;
use crate::fault::FaultModel;
use vsp_isa::{ClusterId, Pred, Reg};
use vsp_trace::TraceSink;

use super::{Commit, HazardPolicy, Simulator, PENDING_SLOTS};

impl<'a, S: TraceSink, F: FaultModel, M: vsp_metrics::Recorder> Simulator<'a, S, F, M> {
    /// Applies all register/predicate commits due at or before this cycle.
    ///
    /// Drains the ring slots for every cycle in
    /// `(drained_through, cycle]`. The span is capped at
    /// [`PENDING_SLOTS`]: when a fetch stall jumps the cycle counter
    /// further than the window, draining all slots once covers every
    /// outstanding commit, because each was scheduled at most
    /// `PENDING_SLOTS` cycles past `drained_through` (longer latencies
    /// live in `pending_far`).
    pub(super) fn apply_commits(&mut self) {
        if self.pending_count > 0 {
            let span = (self.cycle - self.drained_through).min(PENDING_SLOTS as u64);
            for c in (self.cycle + 1 - span)..=self.cycle {
                let slot = (c % PENDING_SLOTS as u64) as usize;
                if self.pending_ring[slot].is_empty() {
                    continue;
                }
                let mut commits = std::mem::take(&mut self.pending_ring[slot]);
                self.pending_count -= commits.len();
                for commit in &commits {
                    match *commit {
                        Commit::Reg(c, r, v) => self.regs[c as usize][r.index()] = v,
                        Commit::Pred(c, p, v) => self.preds[c as usize][p.index()] = v,
                    }
                }
                commits.clear();
                self.pending_ring[slot] = commits;
            }
        }
        self.drained_through = self.cycle;
        while let Some(entry) = self.pending_far.first_entry() {
            if *entry.key() > self.cycle {
                break;
            }
            for commit in entry.remove() {
                match commit {
                    Commit::Reg(c, r, v) => self.regs[c as usize][r.index()] = v,
                    Commit::Pred(c, p, v) => self.preds[c as usize][p.index()] = v,
                }
            }
        }
    }

    /// Queues a commit for `at` cycles: in the ring when the latency fits
    /// the window (always, for real latency models), else in the ordered
    /// overflow map. Latency 0 also takes the map so the commit still
    /// lands on the next [`Simulator::apply_commits`] — its ring slot was
    /// already drained this cycle.
    #[inline]
    fn push_commit(&mut self, at: u64, latency: u32, commit: Commit) {
        if (1..=PENDING_SLOTS as u32).contains(&latency) {
            self.pending_ring[(at % PENDING_SLOTS as u64) as usize].push(commit);
            self.pending_count += 1;
        } else {
            self.pending_far.entry(at).or_default().push(commit);
        }
    }

    /// Checks a result entering the bypass network against the single
    /// write port: a second result landing on the same register in the
    /// same cycle is a [`SimError::WriteConflict`] under
    /// [`HazardPolicy::Fault`]. `at = cycle + latency` with `latency ≥ 1`
    /// is strictly in the future, so `ready == at` can only mean another
    /// commit is already pending for that exact cycle.
    #[inline]
    pub(super) fn check_write_port(
        &self,
        ready: u64,
        at: u64,
        latency: u32,
        cluster: ClusterId,
        reg: Reg,
    ) -> Result<(), SimError> {
        if latency > 0 && ready == at && self.policy == HazardPolicy::Fault {
            return Err(SimError::WriteConflict {
                cycle: at,
                cluster,
                reg,
            });
        }
        Ok(())
    }

    pub(super) fn schedule_reg(
        &mut self,
        cluster: ClusterId,
        reg: u16,
        value: i16,
        latency: u32,
    ) -> Result<(), SimError> {
        let at = self.cycle + u64::from(latency);
        let ready = self.reg_ready[cluster as usize][reg as usize];
        self.check_write_port(ready, at, latency, cluster, Reg(reg))?;
        self.push_commit(at, latency, Commit::Reg(cluster, Reg(reg), value));
        let slot = &mut self.reg_ready[cluster as usize][reg as usize];
        *slot = (*slot).max(at);
        Ok(())
    }

    pub(super) fn schedule_pred(
        &mut self,
        cluster: ClusterId,
        pred: u8,
        value: bool,
        latency: u32,
    ) -> Result<(), SimError> {
        let at = self.cycle + u64::from(latency);
        let ready = self.pred_ready[cluster as usize][pred as usize];
        self.check_write_port(ready, at, latency, cluster, Reg(u16::from(pred) | 0x8000))?;
        self.push_commit(at, latency, Commit::Pred(cluster, Pred(pred), value));
        let slot = &mut self.pred_ready[cluster as usize][pred as usize];
        *slot = (*slot).max(at);
        Ok(())
    }
}
