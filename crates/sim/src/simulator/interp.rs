//! The legacy interpretive path: walks the symbolic [`vsp_isa::Program`]
//! directly, serving as the measurement baseline and reference
//! semantics for the pre-decoded fast path in `fetch`.

use crate::error::SimError;
use crate::fault::FaultModel;
use vsp_core::LatencyModel;
use vsp_isa::semantics;
use vsp_isa::{AddrMode, ClusterId, MemCtlOp, OpKind, Operand, Operation, Pred, Reg};
use vsp_trace::{TraceEvent, TraceSink};

use super::{Commit, HazardPolicy, Simulator};

impl<'a, S: TraceSink, F: FaultModel, M: vsp_metrics::Recorder> Simulator<'a, S, F, M> {
    /// Executes one instruction word on the legacy interpretive path:
    /// walks the symbolic [`Program`](vsp_isa::Program) word (cloned per
    /// step), resolving
    /// operands, functional-unit classes, and latencies on the fly.
    ///
    /// Kept verbatim as the measurement baseline and reference semantics
    /// for [`Simulator::step`]; only the commit bookkeeping underneath
    /// (`Simulator::apply_commits`) is shared.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`], except the cycle budget.
    pub fn step_interp(&mut self) -> Result<(), SimError> {
        if self.halted {
            return Ok(());
        }
        if self.pc >= self.program.len() {
            return Err(SimError::RanOffEnd { cycle: self.cycle });
        }

        // Fetch (may stall on an icache miss).
        let stall = self.icache.fetch(self.pc);
        if stall > 0 {
            self.stats.icache_misses += 1;
            self.stats.icache_stall_cycles += u64::from(stall);
            if self.sink.enabled() {
                self.sink.emit(TraceEvent::IcacheMiss {
                    cycle: self.cycle,
                    word: self.pc as u32,
                    stall,
                });
            }
            self.cycle += u64::from(stall);
        }

        self.apply_commits();

        let word = self
            .program
            .word(self.pc)
            .expect("pc checked above")
            .clone();
        let word_index = self.pc;

        let mut stores: Vec<(ClusterId, u8, u32, i16)> = Vec::new();
        let mut swaps: Vec<(ClusterId, u8)> = Vec::new();
        let mut reg_writes: Vec<(ClusterId, u16, i16, u32)> = Vec::new();
        let mut pred_writes: Vec<(ClusterId, u8, bool, u32)> = Vec::new();
        let mut branch: Option<usize> = None;
        let mut halt = false;

        // A word issued inside a branch-delay shadow that does no work at
        // all is a branch-redirect bubble; detect it for the stall-cycle
        // breakdown.
        let in_branch_shadow = self.redirect.is_some();
        let mut word_issued_ops: u32 = 0;

        // Phase 1: all operand fetches happen against the pre-cycle state;
        // results are collected, not yet visible to the scoreboard (so
        // same-word reads of a destination see the old value, as the
        // hardware's operand-fetch stage does).
        for op in word.iter() {
            if let Some(active) = self.guard_value(op, word_index)? {
                if !active {
                    self.stats.annulled_ops += 1;
                    word_issued_ops += 1;
                    if self.sink.enabled() {
                        self.sink.emit(TraceEvent::Annul {
                            cycle: self.cycle,
                            word: word_index as u32,
                            cluster: op.cluster,
                            slot: op.slot,
                        });
                    }
                    continue;
                }
            }
            if let Some(class) = op.fu_class() {
                self.stats.record_op(class, op.cluster as usize);
                word_issued_ops += 1;
                if self.word_cluster_ops[op.cluster as usize] == 0 {
                    self.word_touched.push(op.cluster);
                }
                self.word_cluster_ops[op.cluster as usize] += 1;
                if self.sink.enabled() {
                    self.sink.emit(TraceEvent::Issue {
                        cycle: self.cycle,
                        word: word_index as u32,
                        cluster: op.cluster,
                        slot: op.slot,
                        class,
                    });
                }
            }
            self.execute_op(
                op,
                word_index,
                &mut stores,
                &mut swaps,
                &mut reg_writes,
                &mut pred_writes,
                &mut branch,
                &mut halt,
            )?;
        }

        // Phase 2: register/predicate results enter the bypass network.
        // The interpretive path schedules through the ordered map, as the
        // original interpreter did, so it stays an honest baseline for
        // the ring-buffered fast path.
        for (c, r, v, lat) in reg_writes {
            self.schedule_reg_interp(c, r, v, lat)?;
        }
        for (c, p, v, lat) in pred_writes {
            self.schedule_pred_interp(c, p, v, lat)?;
        }

        // End of cycle: stores and buffer swaps become visible.
        for (c, b, addr, v) in stores {
            let mem = &mut self.mems[c as usize][b as usize];
            if !mem.write(addr, v) {
                return Err(SimError::MemOutOfRange {
                    cycle: self.cycle,
                    cluster: c,
                    bank: b,
                    addr,
                    words: mem.words(),
                });
            }
        }
        for (c, b) in swaps {
            self.mems[c as usize][b as usize].swap();
        }

        self.stats.words += 1;
        self.stats.issue_capacity += u64::from(self.machine.peak_ops_per_cycle());

        // Fold this word's per-cluster occupancy into the histogram
        // (only clusters that issued; zero-buckets are derived at
        // finalize so idle clusters cost nothing here).
        while let Some(cluster) = self.word_touched.pop() {
            let ops = self.word_cluster_ops[cluster as usize];
            self.word_cluster_ops[cluster as usize] = 0;
            self.stats
                .record_cluster_word(cluster as usize, ops as usize);
        }
        if in_branch_shadow && word_issued_ops == 0 {
            self.stats.branch_bubble_cycles += 1;
            if self.sink.enabled() {
                self.sink.emit(TraceEvent::BranchBubble {
                    cycle: self.cycle,
                    word: word_index as u32,
                });
            }
        }

        if halt {
            self.halted = true;
            if self.sink.enabled() {
                self.sink.emit(TraceEvent::Halt { cycle: self.cycle });
            }
        }
        if let Some(target) = branch {
            self.stats.taken_branches += 1;
            if self.sink.enabled() {
                self.sink.emit(TraceEvent::Branch {
                    cycle: self.cycle,
                    word: word_index as u32,
                    target: target as u32,
                });
            }
            self.redirect = Some((target, self.machine.pipeline.branch_delay_slots));
        }

        match self.redirect {
            Some((target, 0)) => {
                self.pc = target;
                self.redirect = None;
            }
            Some((target, n)) => {
                self.redirect = Some((target, n - 1));
                self.pc += 1;
            }
            None => self.pc += 1,
        }
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        Ok(())
    }

    /// Reads the guard predicate, or `None` when unguarded.
    fn guard_value(&self, op: &Operation, word: usize) -> Result<Option<bool>, SimError> {
        match &op.guard {
            None => Ok(None),
            Some(g) => {
                let v = self.read_pred(op.cluster, g.pred, word)?;
                Ok(Some(v == g.sense))
            }
        }
    }

    fn read_reg(&self, cluster: ClusterId, reg: Reg, word: usize) -> Result<i16, SimError> {
        let ready = self.reg_ready[cluster as usize][reg.index()];
        if ready > self.cycle && self.policy == HazardPolicy::Fault {
            return Err(SimError::PrematureRead {
                cycle: self.cycle,
                word,
                cluster,
                reg,
                ready_at: ready,
            });
        }
        Ok(self.regs[cluster as usize][reg.index()])
    }

    fn read_pred(&self, cluster: ClusterId, pred: Pred, word: usize) -> Result<bool, SimError> {
        let ready = self.pred_ready[cluster as usize][pred.index()];
        if ready > self.cycle && self.policy == HazardPolicy::Fault {
            return Err(SimError::PrematureRead {
                cycle: self.cycle,
                word,
                cluster,
                reg: Reg(u16::from(pred.0) | 0x8000),
                ready_at: ready,
            });
        }
        Ok(self.preds[cluster as usize][pred.index()])
    }

    fn read_operand(
        &self,
        cluster: ClusterId,
        operand: Operand,
        word: usize,
    ) -> Result<i16, SimError> {
        match operand {
            Operand::Reg(r) => self.read_reg(cluster, r, word),
            Operand::Imm(v) => Ok(v),
        }
    }

    fn effective_addr(
        &self,
        cluster: ClusterId,
        addr: AddrMode,
        word: usize,
    ) -> Result<u32, SimError> {
        let a = match addr {
            AddrMode::Absolute(a) => a,
            AddrMode::Register(r) => self.read_reg(cluster, r, word)? as u16,
            AddrMode::BaseDisp(r, d) => (self.read_reg(cluster, r, word)?).wrapping_add(d) as u16,
            AddrMode::Indexed(r, s) => {
                let base = self.read_reg(cluster, r, word)?;
                let idx = self.read_reg(cluster, s, word)?;
                base.wrapping_add(idx) as u16
            }
        };
        Ok(u32::from(a))
    }

    /// Interpretive-path commit scheduling: always through the ordered
    /// map, mirroring the original interpreter's `BTreeMap` bookkeeping.
    /// [`Simulator::apply_commits`] drains both structures, so mixing
    /// `step` and `step_interp` on one simulator stays coherent.
    fn schedule_reg_interp(
        &mut self,
        cluster: ClusterId,
        reg: u16,
        value: i16,
        latency: u32,
    ) -> Result<(), SimError> {
        let at = self.cycle + u64::from(latency);
        let ready = self.reg_ready[cluster as usize][reg as usize];
        self.check_write_port(ready, at, latency, cluster, Reg(reg))?;
        self.pending_far
            .entry(at)
            .or_default()
            .push(Commit::Reg(cluster, Reg(reg), value));
        let slot = &mut self.reg_ready[cluster as usize][reg as usize];
        *slot = (*slot).max(at);
        Ok(())
    }

    /// Predicate twin of [`Simulator::schedule_reg_interp`].
    fn schedule_pred_interp(
        &mut self,
        cluster: ClusterId,
        pred: u8,
        value: bool,
        latency: u32,
    ) -> Result<(), SimError> {
        let at = self.cycle + u64::from(latency);
        let ready = self.pred_ready[cluster as usize][pred as usize];
        self.check_write_port(ready, at, latency, cluster, Reg(u16::from(pred) | 0x8000))?;
        self.pending_far
            .entry(at)
            .or_default()
            .push(Commit::Pred(cluster, Pred(pred), value));
        let slot = &mut self.pred_ready[cluster as usize][pred as usize];
        *slot = (*slot).max(at);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_op(
        &mut self,
        op: &Operation,
        word: usize,
        stores: &mut Vec<(ClusterId, u8, u32, i16)>,
        swaps: &mut Vec<(ClusterId, u8)>,
        reg_writes: &mut Vec<(ClusterId, u16, i16, u32)>,
        pred_writes: &mut Vec<(ClusterId, u8, bool, u32)>,
        branch: &mut Option<usize>,
        halt: &mut bool,
    ) -> Result<(), SimError> {
        let c = op.cluster;
        let latency = LatencyModel::new(self.machine).latency(&op.kind);
        match &op.kind {
            OpKind::AluBin { op: f, dst, a, b } => {
                let x = self.read_operand(c, *a, word)?;
                let y = self.read_operand(c, *b, word)?;
                reg_writes.push((c, dst.0, semantics::alu_bin(*f, x, y), latency));
            }
            OpKind::AluUn { op: f, dst, a } => {
                let x = self.read_operand(c, *a, word)?;
                reg_writes.push((c, dst.0, semantics::alu_un(*f, x), latency));
            }
            OpKind::Shift { op: f, dst, a, b } => {
                let x = self.read_operand(c, *a, word)?;
                let y = self.read_operand(c, *b, word)?;
                reg_writes.push((c, dst.0, semantics::shift(*f, x, y), latency));
            }
            OpKind::Mul { kind, dst, a, b } => {
                let x = self.read_operand(c, *a, word)?;
                let y = self.read_operand(c, *b, word)?;
                reg_writes.push((c, dst.0, semantics::mul(*kind, x, y), latency));
            }
            OpKind::Cmp { op: f, dst, a, b } => {
                let x = self.read_operand(c, *a, word)?;
                let y = self.read_operand(c, *b, word)?;
                pred_writes.push((c, dst.0, semantics::cmp(*f, x, y), latency));
            }
            OpKind::Load { dst, addr, bank } => {
                let a = self.effective_addr(c, *addr, word)?;
                let mem = &self.mems[c as usize][bank.index()];
                let v = mem.read(a).ok_or(SimError::MemOutOfRange {
                    cycle: self.cycle,
                    cluster: c,
                    bank: bank.0,
                    addr: a,
                    words: mem.words(),
                })?;
                self.stats.loads += 1;
                reg_writes.push((c, dst.0, v, latency));
            }
            OpKind::Store { src, addr, bank } => {
                let a = self.effective_addr(c, *addr, word)?;
                let v = self.read_operand(c, *src, word)?;
                // Range check now so the error carries the issue cycle.
                let mem = &self.mems[c as usize][bank.index()];
                if a >= mem.words() {
                    return Err(SimError::MemOutOfRange {
                        cycle: self.cycle,
                        cluster: c,
                        bank: bank.0,
                        addr: a,
                        words: mem.words(),
                    });
                }
                self.stats.stores += 1;
                stores.push((c, bank.0, a, v));
            }
            OpKind::Xfer { dst, from, src } => {
                let v = self.read_reg(*from, *src, word)?;
                self.stats.transfers += 1;
                reg_writes.push((c, dst.0, v, latency));
            }
            OpKind::Branch {
                pred,
                sense,
                target,
            } => {
                if self.read_pred(c, *pred, word)? == *sense {
                    *branch = Some(*target);
                }
            }
            OpKind::Jump { target } => *branch = Some(*target),
            OpKind::Halt => *halt = true,
            OpKind::MemCtl {
                op: MemCtlOp::SwapBuffers,
                bank,
            } => swaps.push((c, bank.0)),
            OpKind::Nop => {}
        }
        Ok(())
    }
}
