//! Fast-path operand access: indexed register/predicate reads,
//! effective-address computation, and the fault-injection hooks that
//! sit on every exposed datapath read.

use crate::decoded::{DAddr, DOperand};
use crate::error::SimError;
use crate::fault::FaultModel;
use vsp_isa::{ClusterId, Reg};
use vsp_trace::{FaultSite, TraceEvent, TraceSink};

use super::{HazardPolicy, Simulator};

impl<'a, S: TraceSink, F: FaultModel, M: vsp_metrics::Recorder> Simulator<'a, S, F, M> {
    /// Fast-path twin of [`Simulator::read_reg`] taking a raw register
    /// index; errors reconstruct the [`Reg`] so faults are identical to
    /// the interpretive path's.
    #[inline]
    pub(super) fn read_reg_idx(
        &mut self,
        cluster: ClusterId,
        reg: u16,
        word: usize,
    ) -> Result<i16, SimError> {
        let ready = self.reg_ready[cluster as usize][reg as usize];
        if ready > self.cycle && self.policy == HazardPolicy::Fault {
            return Err(SimError::PrematureRead {
                cycle: self.cycle,
                word,
                cluster,
                reg: Reg(reg),
                ready_at: ready,
            });
        }
        let v = self.regs[cluster as usize][reg as usize];
        if self.faults.enabled() {
            return Ok(self.fault_reg_read(cluster, reg, v));
        }
        Ok(v)
    }

    /// Runs a register-file read through the fault model, recording an
    /// injection (stats counter + trace event) when the value changed.
    fn fault_reg_read(&mut self, cluster: ClusterId, reg: u16, value: i16) -> i16 {
        let faulted = self.faults.on_reg_read(self.cycle, cluster, reg, value);
        if faulted != value {
            self.stats.faults_injected += 1;
            if self.sink.enabled() {
                self.sink.emit(TraceEvent::FaultInject {
                    cycle: self.cycle,
                    site: FaultSite::RegRead,
                    cluster,
                    index: u32::from(reg),
                    detail: u32::from((faulted ^ value) as u16),
                });
            }
        }
        faulted
    }

    /// Local-SRAM twin of [`Simulator::fault_reg_read`].
    pub(super) fn fault_mem_read(
        &mut self,
        cluster: ClusterId,
        bank: u8,
        addr: u32,
        value: i16,
    ) -> i16 {
        let faulted = self
            .faults
            .on_mem_read(self.cycle, cluster, bank, addr, value);
        if faulted != value {
            self.stats.faults_injected += 1;
            if self.sink.enabled() {
                self.sink.emit(TraceEvent::FaultInject {
                    cycle: self.cycle,
                    site: FaultSite::MemRead,
                    cluster,
                    index: addr,
                    detail: u32::from((faulted ^ value) as u16),
                });
            }
        }
        faulted
    }

    /// Crossbar twin of [`Simulator::fault_reg_read`]; the event is
    /// attributed to the *destination* cluster (the consumer of the
    /// corrupted transfer).
    pub(super) fn fault_xfer(
        &mut self,
        from: ClusterId,
        to: ClusterId,
        src: u16,
        value: i16,
    ) -> i16 {
        let faulted = self.faults.on_xfer(self.cycle, from, to, src, value);
        if faulted != value {
            self.stats.faults_injected += 1;
            if self.sink.enabled() {
                self.sink.emit(TraceEvent::FaultInject {
                    cycle: self.cycle,
                    site: FaultSite::Xfer,
                    cluster: to,
                    index: u32::from(src),
                    detail: u32::from((faulted ^ value) as u16),
                });
            }
        }
        faulted
    }

    /// Fast-path twin of [`Simulator::read_pred`]; faults encode the
    /// predicate with the same high-bit convention.
    #[inline]
    pub(super) fn read_pred_idx(
        &self,
        cluster: ClusterId,
        pred: u8,
        word: usize,
    ) -> Result<bool, SimError> {
        let ready = self.pred_ready[cluster as usize][pred as usize];
        if ready > self.cycle && self.policy == HazardPolicy::Fault {
            return Err(SimError::PrematureRead {
                cycle: self.cycle,
                word,
                cluster,
                reg: Reg(u16::from(pred) | 0x8000),
                ready_at: ready,
            });
        }
        Ok(self.preds[cluster as usize][pred as usize])
    }

    #[inline]
    pub(super) fn read_doperand(
        &mut self,
        cluster: ClusterId,
        operand: DOperand,
        word: usize,
    ) -> Result<i16, SimError> {
        match operand {
            DOperand::Reg(r) => self.read_reg_idx(cluster, r, word),
            DOperand::Imm(v) => Ok(v),
        }
    }

    #[inline]
    pub(super) fn effective_addr_idx(
        &mut self,
        cluster: ClusterId,
        addr: DAddr,
        word: usize,
    ) -> Result<u32, SimError> {
        let a = match addr {
            DAddr::Abs(a) => a,
            DAddr::Reg(r) => self.read_reg_idx(cluster, r, word)? as u16,
            DAddr::BaseDisp(r, d) => (self.read_reg_idx(cluster, r, word)?).wrapping_add(d) as u16,
            DAddr::Indexed(r, s) => {
                let base = self.read_reg_idx(cluster, r, word)?;
                let idx = self.read_reg_idx(cluster, s, word)?;
                base.wrapping_add(idx) as u16
            }
        };
        Ok(u32::from(a))
    }
}
