//! The pre-decoded fast path: fetch, issue and execute one instruction
//! word per [`Simulator::step`] call.

use crate::decoded::{DKind, NO_GUARD};
use crate::error::SimError;
use crate::fault::FaultModel;
use vsp_isa::semantics;
use vsp_trace::{FaultSite, TraceEvent, TraceSink};

use super::Simulator;

impl<'a, S: TraceSink, F: FaultModel, M: vsp_metrics::Recorder> Simulator<'a, S, F, M> {
    /// Executes one instruction word (plus any fetch stall preceding it)
    /// on the pre-decoded fast path.
    ///
    /// Semantically identical to [`Simulator::step_interp`] — the
    /// differential tests hold the two to exact [`RunStats`](crate::RunStats)
    /// equality —
    /// but works from the flat `DecodedProgram`: no word clone, no
    /// per-op latency lookup, no per-step allocation (scratch buffers
    /// live on the struct), and the trace check is hoisted into one
    /// per-step bool.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`], except the cycle budget.
    pub fn step(&mut self) -> Result<(), SimError> {
        if self.halted {
            return Ok(());
        }
        if self.pc >= self.program.len() {
            return Err(SimError::RanOffEnd { cycle: self.cycle });
        }
        let tracing = self.sink.enabled();
        // Hoisted like the trace check: with the default NullRecorder
        // this is a constant false and every metrics branch below is
        // dead code.
        let recording = self.recorder.enabled();

        // Fetch (may stall on an icache miss).
        let stall = self.icache.fetch(self.pc);
        if stall > 0 {
            self.stats.icache_misses += 1;
            self.stats.icache_stall_cycles += u64::from(stall);
            if recording {
                self.window.icache_refills += 1;
                self.window.icache_stall_cycles += u64::from(stall);
            }
            if tracing {
                self.sink.emit(TraceEvent::IcacheMiss {
                    cycle: self.cycle,
                    word: self.pc as u32,
                    stall,
                });
            }
            self.cycle += u64::from(stall);
        }
        if self.faults.enabled() {
            // Latency jitter: extra fetch stall charged as icache stall
            // cycles so `cycles == words + icache_stall_cycles` holds.
            let jitter = self.faults.fetch_jitter(self.cycle, self.pc as u32);
            if jitter > 0 {
                self.stats.icache_stall_cycles += u64::from(jitter);
                self.stats.faults_injected += 1;
                if tracing {
                    self.sink.emit(TraceEvent::FaultInject {
                        cycle: self.cycle,
                        site: FaultSite::Fetch,
                        cluster: 0,
                        index: self.pc as u32,
                        detail: jitter,
                    });
                }
                self.cycle += u64::from(jitter);
            }
        }

        self.apply_commits();

        let word_index = self.pc;
        let ops = self.decoded.word_range(word_index);

        // Take the scratch buffers out of `self` for the duration of the
        // step (sidestepping a borrow conflict with `&mut self` helper
        // calls); they are cleared and restored at the end. Error paths
        // leave them taken, which only costs their capacity — every
        // `SimError` here is terminal for the run.
        let mut stores = std::mem::take(&mut self.scratch_stores);
        let mut swaps = std::mem::take(&mut self.scratch_swaps);
        let mut reg_writes = std::mem::take(&mut self.scratch_reg_writes);
        let mut pred_writes = std::mem::take(&mut self.scratch_pred_writes);
        let mut branch: Option<usize> = None;
        let mut halt = false;

        // A word issued inside a branch-delay shadow that does no work at
        // all is a branch-redirect bubble; detect it for the stall-cycle
        // breakdown.
        let in_branch_shadow = self.redirect.is_some();
        let mut word_issued_ops: u32 = 0;

        // Phase 1: all operand fetches happen against the pre-cycle state;
        // results are collected, not yet visible to the scoreboard (so
        // same-word reads of a destination see the old value, as the
        // hardware's operand-fetch stage does).
        for i in ops {
            let op = self.decoded.op(i);
            let c = op.cluster;
            if op.guard_pred != NO_GUARD {
                let v = self.read_pred_idx(c, op.guard_pred, word_index)?;
                if v != op.guard_sense {
                    self.stats.annulled_ops += 1;
                    word_issued_ops += 1;
                    if tracing {
                        self.sink.emit(TraceEvent::Annul {
                            cycle: self.cycle,
                            word: word_index as u32,
                            cluster: c,
                            slot: op.slot,
                        });
                    }
                    continue;
                }
            }
            if let Some(class) = op.class {
                self.fast_class_ops[class as usize] += 1;
                self.stats.record_cluster_op(c as usize);
                word_issued_ops += 1;
                if self.word_cluster_ops[c as usize] == 0 {
                    self.word_touched.push(c);
                }
                self.word_cluster_ops[c as usize] += 1;
                if tracing {
                    self.sink.emit(TraceEvent::Issue {
                        cycle: self.cycle,
                        word: word_index as u32,
                        cluster: c,
                        slot: op.slot,
                        class,
                    });
                }
            }
            match op.kind {
                DKind::AluBin { op: f, dst, a, b } => {
                    let x = self.read_doperand(c, a, word_index)?;
                    let y = self.read_doperand(c, b, word_index)?;
                    reg_writes.push((c, dst, semantics::alu_bin(f, x, y), op.latency));
                }
                DKind::AluUn { op: f, dst, a } => {
                    let x = self.read_doperand(c, a, word_index)?;
                    reg_writes.push((c, dst, semantics::alu_un(f, x), op.latency));
                }
                DKind::Shift { op: f, dst, a, b } => {
                    let x = self.read_doperand(c, a, word_index)?;
                    let y = self.read_doperand(c, b, word_index)?;
                    reg_writes.push((c, dst, semantics::shift(f, x, y), op.latency));
                }
                DKind::Mul { kind, dst, a, b } => {
                    let x = self.read_doperand(c, a, word_index)?;
                    let y = self.read_doperand(c, b, word_index)?;
                    reg_writes.push((c, dst, semantics::mul(kind, x, y), op.latency));
                }
                DKind::Cmp { op: f, dst, a, b } => {
                    let x = self.read_doperand(c, a, word_index)?;
                    let y = self.read_doperand(c, b, word_index)?;
                    pred_writes.push((c, dst, semantics::cmp(f, x, y), op.latency));
                }
                DKind::Load { dst, addr, bank } => {
                    let a = self.effective_addr_idx(c, addr, word_index)?;
                    let mem = &self.mems[c as usize][bank as usize];
                    let v = mem.read(a).ok_or(SimError::MemOutOfRange {
                        cycle: self.cycle,
                        cluster: c,
                        bank,
                        addr: a,
                        words: mem.words(),
                    })?;
                    self.stats.loads += 1;
                    let v = if self.faults.enabled() {
                        self.fault_mem_read(c, bank, a, v)
                    } else {
                        v
                    };
                    reg_writes.push((c, dst, v, op.latency));
                }
                DKind::Store { src, addr, bank } => {
                    let a = self.effective_addr_idx(c, addr, word_index)?;
                    let v = self.read_doperand(c, src, word_index)?;
                    // Range check now so the error carries the issue cycle.
                    let mem = &self.mems[c as usize][bank as usize];
                    if a >= mem.words() {
                        return Err(SimError::MemOutOfRange {
                            cycle: self.cycle,
                            cluster: c,
                            bank,
                            addr: a,
                            words: mem.words(),
                        });
                    }
                    self.stats.stores += 1;
                    stores.push((c, bank, a, v));
                }
                DKind::Xfer { dst, from, src } => {
                    let v = self.read_reg_idx(from, src, word_index)?;
                    self.stats.transfers += 1;
                    if recording {
                        self.window.transfers += 1;
                    }
                    let v = if self.faults.enabled() {
                        self.fault_xfer(from, c, src, v)
                    } else {
                        v
                    };
                    reg_writes.push((c, dst, v, op.latency));
                }
                DKind::Branch {
                    pred,
                    sense,
                    target,
                } => {
                    if self.read_pred_idx(c, pred, word_index)? == sense {
                        branch = Some(target as usize);
                    }
                }
                DKind::Jump { target } => branch = Some(target as usize),
                DKind::Halt => halt = true,
                DKind::Swap { bank } => swaps.push((c, bank)),
                DKind::Nop => {}
            }
        }

        // Phase 2: register/predicate results enter the bypass network.
        for &(c, r, v, lat) in &reg_writes {
            self.schedule_reg(c, r, v, lat)?;
        }
        for &(c, p, v, lat) in &pred_writes {
            self.schedule_pred(c, p, v, lat)?;
        }

        // End of cycle: stores and buffer swaps become visible.
        for &(c, b, addr, v) in &stores {
            let mem = &mut self.mems[c as usize][b as usize];
            if !mem.write(addr, v) {
                return Err(SimError::MemOutOfRange {
                    cycle: self.cycle,
                    cluster: c,
                    bank: b,
                    addr,
                    words: mem.words(),
                });
            }
        }
        for &(c, b) in &swaps {
            self.mems[c as usize][b as usize].swap();
        }

        stores.clear();
        swaps.clear();
        reg_writes.clear();
        pred_writes.clear();
        self.scratch_stores = stores;
        self.scratch_swaps = swaps;
        self.scratch_reg_writes = reg_writes;
        self.scratch_pred_writes = pred_writes;

        self.stats.words += 1;
        self.stats.issue_capacity += u64::from(self.machine.peak_ops_per_cycle());

        // Fold this word's per-cluster occupancy into the histogram
        // (only clusters that issued; zero-buckets are derived at
        // finalize so idle clusters cost nothing here).
        while let Some(cluster) = self.word_touched.pop() {
            let ops = self.word_cluster_ops[cluster as usize];
            self.word_cluster_ops[cluster as usize] = 0;
            self.stats
                .record_cluster_word(cluster as usize, ops as usize);
        }
        if in_branch_shadow && word_issued_ops == 0 {
            self.stats.branch_bubble_cycles += 1;
            if tracing {
                self.sink.emit(TraceEvent::BranchBubble {
                    cycle: self.cycle,
                    word: word_index as u32,
                });
            }
        }

        if halt {
            self.halted = true;
            if tracing {
                self.sink.emit(TraceEvent::Halt { cycle: self.cycle });
            }
        }
        if let Some(target) = branch {
            self.stats.taken_branches += 1;
            if tracing {
                self.sink.emit(TraceEvent::Branch {
                    cycle: self.cycle,
                    word: word_index as u32,
                    target: target as u32,
                });
            }
            self.redirect = Some((target, self.machine.pipeline.branch_delay_slots));
        }

        match self.redirect {
            Some((target, 0)) => {
                self.pc = target;
                self.redirect = None;
            }
            Some((target, n)) => {
                self.redirect = Some((target, n - 1));
                self.pc += 1;
            }
            None => self.pc += 1,
        }
        self.cycle += 1;
        self.stats.cycles = self.cycle;

        if recording {
            self.window.words += 1;
            self.window.issued_ops += u64::from(word_issued_ops);
            if self.halted || self.cycle.wrapping_sub(self.window_start) >= self.metrics_window {
                self.flush_metrics_window();
            }
        }
        Ok(())
    }
}
