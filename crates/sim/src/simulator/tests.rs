use super::*;
use vsp_core::models;
use vsp_isa::{AddrMode, MemCtlOp, OpKind, Operand, Operation};
use vsp_isa::{AluBinOp, AluUnOp, CmpOp, MemBank, PredGuard, ProgramBuilder};
use vsp_trace::TraceEvent;

fn mov(cluster: ClusterId, slot: u8, dst: u16, v: i16) -> Operation {
    Operation::new(
        cluster,
        slot,
        OpKind::AluUn {
            op: AluUnOp::Mov,
            dst: Reg(dst),
            a: Operand::Imm(v),
        },
    )
}

fn add(cluster: ClusterId, slot: u8, dst: u16, a: u16, b: u16) -> Operation {
    Operation::new(
        cluster,
        slot,
        OpKind::AluBin {
            op: AluBinOp::Add,
            dst: Reg(dst),
            a: Operand::Reg(Reg(a)),
            b: Operand::Reg(Reg(b)),
        },
    )
}

fn halt_word(machine: &MachineConfig) -> Vec<Operation> {
    let (c, s) = machine.branch_slot();
    vec![Operation::new(c, s, OpKind::Halt)]
}

#[test]
fn straight_line_arithmetic() {
    let m = models::i4c8s4();
    let mut p = Program::new("t");
    p.push_word(vec![mov(0, 0, 1, 20), mov(0, 1, 2, 22)]);
    p.push_word(vec![add(0, 0, 3, 1, 2)]);
    p.push_word(halt_word(&m));
    let mut sim = Simulator::new(&m, &p).unwrap();
    sim.run(100).unwrap();
    assert_eq!(sim.reg(0, Reg(3)), 42);
}

#[test]
fn same_cycle_read_sees_old_value() {
    // Word 0 writes r1; an op in the same word reading r1 sees the
    // pre-write value (operand fetch precedes write-back).
    let m = models::i4c8s4();
    let mut p = Program::new("t");
    p.push_word(vec![mov(0, 0, 1, 7), add(0, 1, 2, 1, 1)]);
    p.push_word(halt_word(&m));
    let mut sim = Simulator::new(&m, &p).unwrap();
    sim.set_reg(0, Reg(1), 3);
    sim.run(100).unwrap();
    assert_eq!(sim.reg(0, Reg(2)), 6, "read old r1=3, not 7");
    assert_eq!(sim.reg(0, Reg(1)), 7);
}

#[test]
fn load_use_hazard_faults_on_five_stage() {
    let m = models::i4c8s5();
    let mut p = Program::new("t");
    let ld = Operation::new(
        0,
        2,
        OpKind::Load {
            dst: Reg(1),
            addr: AddrMode::Absolute(0),
            bank: MemBank(0),
        },
    );
    p.push_word(vec![ld]);
    p.push_word(vec![add(0, 0, 2, 1, 1)]); // uses r1 one cycle too early
    p.push_word(halt_word(&m));
    let mut sim = Simulator::new(&m, &p).unwrap();
    let err = sim.run(100).unwrap_err();
    assert!(matches!(err, SimError::PrematureRead { .. }), "{err}");
}

#[test]
fn load_use_ok_on_four_stage() {
    let m = models::i4c8s4();
    let mut p = Program::new("t");
    let ld = Operation::new(
        0,
        2,
        OpKind::Load {
            dst: Reg(1),
            addr: AddrMode::Absolute(3),
            bank: MemBank(0),
        },
    );
    p.push_word(vec![ld]);
    p.push_word(vec![add(0, 0, 2, 1, 1)]);
    p.push_word(halt_word(&m));
    let mut sim = Simulator::new(&m, &p).unwrap();
    sim.mem_mut(0, 0).write(3, 21);
    sim.run(100).unwrap();
    assert_eq!(sim.reg(0, Reg(2)), 42);
}

#[test]
fn stale_read_policy_returns_old_value() {
    let m = models::i4c8s5();
    let mut p = Program::new("t");
    let ld = Operation::new(
        0,
        2,
        OpKind::Load {
            dst: Reg(1),
            addr: AddrMode::Absolute(0),
            bank: MemBank(0),
        },
    );
    p.push_word(vec![ld]);
    p.push_word(vec![add(0, 0, 2, 1, 1)]);
    p.push_word(halt_word(&m));
    let mut sim = Simulator::new(&m, &p).unwrap();
    sim.set_hazard_policy(HazardPolicy::StaleRead);
    sim.set_reg(0, Reg(1), 5);
    sim.mem_mut(0, 0).write(0, 100);
    sim.run(100).unwrap();
    assert_eq!(sim.reg(0, Reg(2)), 10, "stale r1 value used");
    assert_eq!(sim.reg(0, Reg(1)), 100, "load still lands");
}

#[test]
fn branch_with_delay_slot() {
    let m = models::i4c8s4();
    let mut b = ProgramBuilder::new("loop");
    // r1 counts down from 3; r2 accumulates.
    b.word(vec![mov(0, 0, 1, 3), mov(0, 1, 2, 0)]);
    b.label("top");
    b.word(vec![
        add(0, 0, 2, 2, 1), // r2 += r1
        Operation::new(
            0,
            1,
            OpKind::AluBin {
                op: AluBinOp::Sub,
                dst: Reg(1),
                a: Operand::Reg(Reg(1)),
                b: Operand::Imm(1),
            },
        ),
    ]);
    // cmp in the next word (r1 updated), branch after that.
    b.word(vec![Operation::new(
        0,
        0,
        OpKind::Cmp {
            op: CmpOp::Gt,
            dst: Pred(0),
            a: Operand::Reg(Reg(1)),
            b: Operand::Imm(0),
        },
    )]);
    let (bc, bs) = m.branch_slot();
    let mut w = vsp_isa::Instruction::new();
    w.push(Operation::new(
        bc,
        bs,
        OpKind::Branch {
            pred: Pred(0),
            sense: true,
            target: usize::MAX,
        },
    ));
    b.word_with_fixup(w, "top");
    b.word(vec![]); // delay slot (empty)
    b.word(halt_word(&m));
    let p = b.finish().unwrap();
    let mut sim = Simulator::new(&m, &p).unwrap();
    sim.run(1000).unwrap();
    assert_eq!(sim.reg(0, Reg(2)), 3 + 2 + 1);
    assert_eq!(sim.reg(0, Reg(1)), 0);
}

#[test]
fn predicated_ops_annul() {
    let m = models::i4c8s4();
    let mut p = Program::new("t");
    p.push_word(vec![Operation::new(
        0,
        0,
        OpKind::Cmp {
            op: CmpOp::Lt,
            dst: Pred(1),
            a: Operand::Imm(1),
            b: Operand::Imm(2),
        },
    )]);
    p.push_word(vec![
        Operation::guarded(
            0,
            0,
            PredGuard::if_true(Pred(1)),
            mov(0, 0, 1, 10).kind.clone(),
        )
        .into_slot(0, 0),
        Operation::guarded(
            0,
            1,
            PredGuard::if_false(Pred(1)),
            mov(0, 1, 2, 20).kind.clone(),
        )
        .into_slot(0, 1),
    ]);
    p.push_word(halt_word(&m));
    let mut sim = Simulator::new(&m, &p).unwrap();
    let stats = sim.run(100).unwrap();
    assert_eq!(sim.reg(0, Reg(1)), 10, "true guard commits");
    assert_eq!(sim.reg(0, Reg(2)), 0, "false guard annuls");
    assert_eq!(stats.annulled_ops, 1);
}

#[test]
fn crossbar_transfer_moves_values() {
    let m = models::i4c8s4();
    let mut p = Program::new("t");
    p.push_word(vec![mov(3, 0, 7, 99)]);
    p.push_word(vec![Operation::new(
        0,
        0,
        OpKind::Xfer {
            dst: Reg(1),
            from: 3,
            src: Reg(7),
        },
    )]);
    p.push_word(halt_word(&m));
    let mut sim = Simulator::new(&m, &p).unwrap();
    let stats = sim.run(100).unwrap();
    assert_eq!(sim.reg(0, Reg(1)), 99);
    assert_eq!(stats.transfers, 1);
}

#[test]
fn xfer_latency_respected_on_narrow_machine() {
    let m = models::i2c16s4(); // xfer latency 2
    let mut p = Program::new("t");
    p.push_word(vec![mov(3, 0, 7, 99)]);
    p.push_word(vec![Operation::new(
        0,
        0,
        OpKind::Xfer {
            dst: Reg(1),
            from: 3,
            src: Reg(7),
        },
    )]);
    p.push_word(vec![add(0, 0, 2, 1, 1)]); // one cycle too early
    p.push_word(halt_word(&m));
    let mut sim = Simulator::new(&m, &p).unwrap();
    assert!(matches!(
        sim.run(100).unwrap_err(),
        SimError::PrematureRead { .. }
    ));
}

#[test]
fn store_visible_next_cycle() {
    let m = models::i4c8s4();
    let mut p = Program::new("t");
    let st = Operation::new(
        0,
        2,
        OpKind::Store {
            src: Operand::Imm(55),
            addr: AddrMode::Absolute(4),
            bank: MemBank(0),
        },
    );
    p.push_word(vec![st]);
    let ld = Operation::new(
        0,
        2,
        OpKind::Load {
            dst: Reg(1),
            addr: AddrMode::Absolute(4),
            bank: MemBank(0),
        },
    );
    p.push_word(vec![ld]);
    p.push_word(halt_word(&m));
    let mut sim = Simulator::new(&m, &p).unwrap();
    sim.run(100).unwrap();
    assert_eq!(sim.reg(0, Reg(1)), 55);
}

#[test]
fn buffer_swap_op() {
    let m = models::i4c8s4();
    let mut p = Program::new("t");
    p.push_word(vec![Operation::new(
        0,
        2,
        OpKind::MemCtl {
            op: MemCtlOp::SwapBuffers,
            bank: MemBank(0),
        },
    )]);
    let ld = Operation::new(
        0,
        2,
        OpKind::Load {
            dst: Reg(1),
            addr: AddrMode::Absolute(0),
            bank: MemBank(0),
        },
    );
    p.push_word(vec![ld]);
    p.push_word(halt_word(&m));
    let mut sim = Simulator::new(&m, &p).unwrap();
    sim.mem_mut(0, 0).io_buffer_mut()[0] = 123;
    sim.run(100).unwrap();
    assert_eq!(sim.reg(0, Reg(1)), 123);
}

#[test]
fn mem_range_fault() {
    let m = models::i2c16s4(); // 4096-word banks
    let mut p = Program::new("t");
    let ld = Operation::new(
        0,
        0,
        OpKind::Load {
            dst: Reg(1),
            addr: AddrMode::Absolute(5000),
            bank: MemBank(0),
        },
    );
    p.push_word(vec![ld]);
    p.push_word(halt_word(&m));
    let mut sim = Simulator::new(&m, &p).unwrap();
    assert!(matches!(
        sim.run(100).unwrap_err(),
        SimError::MemOutOfRange { addr: 5000, .. }
    ));
}

#[test]
fn cycle_limit_and_run_off_end() {
    let m = models::i4c8s4();
    let mut b = ProgramBuilder::new("spin");
    b.label("top");
    b.branch_word(vec![], "top", None);
    b.word(vec![]); // delay slot
    let p = b.finish().unwrap();
    // The jump is placed by branch_word on cluster 0 slot 0, which is
    // not the control slot -> validation rejects it; rebuild manually.
    assert!(Simulator::new(&m, &p).is_err());

    let (bc, bs) = m.branch_slot();
    let mut p = Program::new("spin");
    p.push_word(vec![Operation::new(bc, bs, OpKind::Jump { target: 0 })]);
    p.push_word(vec![]);
    let mut sim = Simulator::new(&m, &p).unwrap();
    assert!(matches!(
        sim.run(50).unwrap_err(),
        SimError::CycleLimit { limit: 50 }
    ));

    let mut p2 = Program::new("off-end");
    p2.push_word(vec![mov(0, 0, 1, 1)]);
    let mut sim = Simulator::new(&m, &p2).unwrap();
    assert!(matches!(
        sim.run(10).unwrap_err(),
        SimError::RanOffEnd { .. }
    ));
}

#[test]
fn stats_accounting() {
    let m = models::i4c8s4();
    let mut p = Program::new("t");
    p.push_word(vec![mov(0, 0, 1, 1), mov(1, 0, 1, 2)]);
    p.push_word(halt_word(&m));
    let mut sim = Simulator::new(&m, &p).unwrap();
    let stats = sim.run(100).unwrap();
    assert_eq!(stats.words, 2);
    assert_eq!(stats.total_ops(), 3); // 2 movs + halt
    assert_eq!(stats.issue_capacity, 2 * 33);
    assert!(stats.utilization() > 0.0);
    assert_eq!(stats.icache_misses, 0, "warmed cache");
}

#[test]
fn branch_shadow_bubbles_are_counted() {
    let m = models::i4c8s4();
    let (bc, bs) = m.branch_slot();
    let bds = m.pipeline.branch_delay_slots as usize;
    let mut p = Program::new("t");
    p.push_word(vec![Operation::new(
        bc,
        bs,
        OpKind::Jump { target: 1 + bds },
    )]);
    for _ in 0..bds {
        p.push_word(vec![]); // empty delay slots: pure bubbles
    }
    p.push_word(halt_word(&m));
    let mut sim = Simulator::new(&m, &p).unwrap();
    let stats = sim.run(100).unwrap();
    assert_eq!(stats.branch_bubble_cycles, bds as u64);
    // Bubbles are issued words, not stalls: the coherence invariant
    // between cycles, words, and icache stalls is untouched.
    assert_eq!(stats.cycles, stats.words + stats.icache_stall_cycles);
}

#[test]
fn per_cluster_ops_and_histogram() {
    let m = models::i4c8s4();
    let mut p = Program::new("t");
    p.push_word(vec![mov(0, 0, 1, 1), mov(0, 1, 2, 2), mov(2, 0, 1, 3)]);
    p.push_word(vec![mov(2, 0, 2, 4)]);
    p.push_word(halt_word(&m));
    let mut sim = Simulator::new(&m, &p).unwrap();
    let stats = sim.run(100).unwrap();
    // Cluster 0: two movs plus the halt (branch-class, lives in the
    // control slot on cluster 0).
    assert_eq!(stats.ops_by_cluster[0], 3);
    assert_eq!(stats.ops_by_cluster[2], 2);
    // Cluster 0: one word with 2 ops, one with 1 (halt), one idle.
    assert_eq!(stats.util_histogram[0], vec![1, 1, 1]);
    // Cluster 2: two words with 1 op each.
    assert_eq!(stats.util_histogram[2], vec![1, 2]);
    // Histogram mass equals the word count for every traced cluster.
    for hist in &stats.util_histogram {
        assert_eq!(hist.iter().sum::<u64>(), stats.words);
    }
}

#[test]
fn trace_events_reconcile_with_stats() {
    let m = models::i4c8s4();
    let mut p = Program::new("t");
    p.push_word(vec![Operation::new(
        0,
        0,
        OpKind::Cmp {
            op: CmpOp::Lt,
            dst: Pred(1),
            a: Operand::Imm(5),
            b: Operand::Imm(2),
        },
    )]);
    p.push_word(vec![
        Operation::guarded(
            0,
            0,
            PredGuard::if_true(Pred(1)),
            mov(0, 0, 1, 10).kind.clone(),
        )
        .into_slot(0, 0),
        mov(1, 0, 3, 7),
    ]);
    p.push_word(halt_word(&m));
    let mut sink = vsp_trace::MemorySink::new();
    let mut sim = Simulator::with_sink(&m, &p, &mut sink).unwrap();
    let stats = sim.run(100).unwrap();
    drop(sim);
    assert_eq!(
        sink.count(|e| matches!(e, TraceEvent::Issue { .. })),
        stats.total_ops()
    );
    assert_eq!(
        sink.count(|e| matches!(e, TraceEvent::Annul { .. })),
        stats.annulled_ops
    );
    assert_eq!(sink.count(|e| matches!(e, TraceEvent::Halt { .. })), 1);
    assert_eq!(sink.dropped(), 0);
}

#[test]
fn validation_errors_surface_at_construction() {
    let m = models::i4c8s4();
    let mut p = Program::new("bad");
    p.push_word(vec![mov(0, 0, 200, 1)]); // r200 out of range
    assert!(matches!(
        Simulator::new(&m, &p).unwrap_err(),
        SimError::Invalid(_)
    ));
}

// Helper so the predicated test above reads naturally.
trait IntoSlot {
    fn into_slot(self, cluster: ClusterId, slot: u8) -> Operation;
}
impl IntoSlot for Operation {
    fn into_slot(mut self, cluster: ClusterId, slot: u8) -> Operation {
        self.cluster = cluster;
        self.slot = slot;
        self
    }
}
