//! The cycle-accurate simulator core.
//!
//! The [`Simulator`] type, its state, and the public control surface
//! (construction, register/memory access, [`Simulator::run`] /
//! [`Simulator::run_interp`], statistics) live in this module root; the
//! datapath is split across focused submodules:
//!
//! * `fetch` — the pre-decoded fast path ([`Simulator::step`]);
//! * `interp` — the legacy interpretive path ([`Simulator::step_interp`]),
//!   kept verbatim as the reference semantics;
//! * `commit` — the pending-commit ring, write-port conflict checks and
//!   bypass-network scheduling;
//! * `datapath` — indexed operand reads, effective addressing and the
//!   fault-injection hooks;
//! * `recovery` — microarchitectural [`Checkpoint`] snapshot/restore.

use crate::decoded::DecodedProgram;
use crate::error::SimError;
use crate::fault::{FaultModel, NoFaults};
use crate::icache::InstructionCache;
use crate::memory::LocalMemory;
use crate::stats::RunStats;
use std::collections::BTreeMap;
use vsp_core::{validate_program, MachineConfig};
use vsp_isa::{ClusterId, Pred, Program, Reg};
use vsp_metrics::{NullRecorder, Recorder};
use vsp_trace::{NullSink, TraceSink};

mod commit;
mod datapath;
mod fetch;
mod interp;
mod recovery;

pub use recovery::Checkpoint;

#[cfg(test)]
mod tests;

/// Size of the pending-commit ring: one slot per future cycle. Result
/// latencies are tiny (bounded by load-use, multiply, and crossbar
/// delays), so a fixed window covers every commit; the rare latency
/// beyond it falls back to the ordered overflow map.
pub(crate) const PENDING_SLOTS: usize = 16;

/// Default width of a metrics sampling window, in cycles (see
/// [`Simulator::set_metrics_window`]).
pub const DEFAULT_METRICS_WINDOW: u64 = 4096;

/// Per-window accumulators for the time-windowed metrics the fast path
/// samples when a recorder is attached. Never touched (beyond struct
/// init) when the recorder reports itself disabled.
#[derive(Debug, Clone, Copy, Default)]
struct MetricsWindow {
    words: u64,
    issued_ops: u64,
    transfers: u64,
    icache_stall_cycles: u64,
    icache_refills: u64,
}

/// What to do when an operation reads a register whose producer has not
/// completed.
///
/// The machine has no interlocks ("run-time arbitration for resources is
/// never allowed"), so such a read is a *scheduling* bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HazardPolicy {
    /// Abort simulation with [`SimError::PrematureRead`] — the default,
    /// catching scheduler bugs immediately.
    #[default]
    Fault,
    /// Return the stale register contents, as the real hardware would.
    StaleRead,
}

/// A pending register/predicate write (full bypass makes results visible
/// exactly `latency` cycles after issue).
#[derive(Debug, Clone, Copy)]
enum Commit {
    Reg(ClusterId, Reg, i16),
    Pred(ClusterId, Pred, bool),
}

/// A full snapshot of the architectural state of a simulator: every
/// register file, predicate file and local-memory buffer, plus the
/// control state.
///
/// Built by [`Simulator::arch_state`] for differential comparison —
/// two execution paths (or two simulators fed identical programs) agree
/// exactly when their `ArchState`s compare equal.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ArchState {
    /// Cycles elapsed.
    pub cycle: u64,
    /// Whether a halt has committed.
    pub halted: bool,
    /// General registers, indexed `[cluster][register]`.
    pub regs: Vec<Vec<i16>>,
    /// Predicate registers, indexed `[cluster][predicate]`.
    pub preds: Vec<Vec<bool>>,
    /// Local-memory buffers, indexed `[cluster][bank]` as
    /// `(processing buffer, I/O buffer)` — both halves matter because a
    /// `swapbuf` exchanges them.
    pub mems: Vec<Vec<(Vec<i16>, Vec<i16>)>>,
}

/// Cycle-accurate simulator for one program on one machine.
///
/// Generic over a [`TraceSink`]; the default [`NullSink`] reports itself
/// disabled from an inlinable body, so the untraced monomorphization —
/// everything built via [`Simulator::new`] — contains no tracing code.
/// Use [`Simulator::with_sink`] (typically with `&mut sink`, since
/// `TraceSink` is implemented for mutable references) to record a run.
///
/// Also generic over a [`FaultModel`] by the same pattern: the default
/// [`NoFaults`] compiles all injection hooks out of the fast path, and
/// [`Simulator::with_sink_and_faults`] opts a run into a concrete model
/// (see the `vsp-fault` crate for seeded plans and recovery).
///
/// And generic over a [`Recorder`] the same way: the default
/// [`NullRecorder`] compiles the metrics sampling out, while
/// [`Simulator::with_recorder`] / [`Simulator::with_instrumentation`]
/// stream time-windowed issue/stall/crossbar/icache histograms into a
/// metrics registry as the run progresses.
#[derive(Debug)]
pub struct Simulator<
    'a,
    S: TraceSink = NullSink,
    F: FaultModel = NoFaults,
    M: Recorder = NullRecorder,
> {
    machine: &'a MachineConfig,
    program: &'a Program,
    /// Pre-decoded twin of `program` (flat ops, resolved latencies);
    /// what [`Simulator::step`] actually executes.
    decoded: DecodedProgram,
    policy: HazardPolicy,
    regs: Vec<Vec<i16>>,
    reg_ready: Vec<Vec<u64>>,
    preds: Vec<Vec<bool>>,
    pred_ready: Vec<Vec<u64>>,
    mems: Vec<Vec<LocalMemory>>,
    /// Pending commits within the next `PENDING_SLOTS` cycles, indexed
    /// by `cycle % PENDING_SLOTS` (allocation-free in steady state).
    pending_ring: Vec<Vec<Commit>>,
    /// Total commits outstanding in the ring (fast empty check).
    pending_count: usize,
    /// Commits scheduled beyond the ring window (pathological
    /// latencies only; normally empty forever).
    pending_far: BTreeMap<u64, Vec<Commit>>,
    /// Last cycle whose ring slot has been drained.
    drained_through: u64,
    icache: InstructionCache,
    pc: usize,
    cycle: u64,
    redirect: Option<(usize, u32)>,
    halted: bool,
    stats: RunStats,
    sink: S,
    faults: F,
    recorder: M,
    /// Width of one metrics sampling window, in cycles.
    metrics_window: u64,
    /// Cycle at which the current metrics window opened.
    window_start: u64,
    /// Accumulators for the window in progress.
    window: MetricsWindow,
    /// Committed ops per cluster within the word being issued (scratch
    /// for the utilization histogram).
    word_cluster_ops: Vec<u32>,
    /// Clusters with a non-zero entry in `word_cluster_ops`, so the
    /// per-word drain touches only busy clusters.
    word_touched: Vec<ClusterId>,
    /// Reusable per-step scratch: stores buffered to the end of the
    /// cycle as `(cluster, bank, addr, value)`.
    scratch_stores: Vec<(u8, u8, u32, i16)>,
    /// Reusable per-step scratch: banks swapping at the end of cycle.
    scratch_swaps: Vec<(u8, u8)>,
    /// Reusable per-step scratch: register results entering the bypass
    /// network as `(cluster, reg, value, latency)`.
    scratch_reg_writes: Vec<(u8, u16, i16, u32)>,
    /// Reusable per-step scratch: predicate results.
    scratch_pred_writes: Vec<(u8, u8, bool, u32)>,
    /// Fast-path per-class op counters, indexed by `FuClass` discriminant;
    /// folded into `RunStats::ops_by_class` by [`Simulator::stats`] so
    /// the hot loop skips the map lookup the interpretive path pays.
    fast_class_ops: [u64; 6],
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with a warmed instruction cache and the default
    /// ([`HazardPolicy::Fault`]) hazard policy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invalid`] if the program fails structural
    /// validation for the machine.
    pub fn new(machine: &'a MachineConfig, program: &'a Program) -> Result<Self, SimError> {
        Self::with_sink(machine, program, NullSink)
    }

    /// Creates a simulator from an already-prepared [`DecodedProgram`],
    /// skipping re-validation and re-decode.
    ///
    /// `decoded` must come from [`DecodedProgram::prepare`] for the
    /// *same* `machine` and `program` — the constructor trusts that
    /// contract (it is what makes the amortization worthwhile) and only
    /// debug-asserts the word count.
    pub fn with_decoded(
        machine: &'a MachineConfig,
        program: &'a Program,
        decoded: DecodedProgram,
    ) -> Self {
        debug_assert_eq!(
            decoded.len(),
            program.len(),
            "decoded program does not match its source"
        );
        Self::build(machine, program, decoded, NullSink, NoFaults, NullRecorder)
    }
}

impl<'a, S: TraceSink> Simulator<'a, S> {
    /// Creates a simulator that emits trace events into `sink` (and
    /// never injects faults).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invalid`] if the program fails structural
    /// validation for the machine.
    pub fn with_sink(
        machine: &'a MachineConfig,
        program: &'a Program,
        sink: S,
    ) -> Result<Self, SimError> {
        Self::with_sink_and_faults(machine, program, sink, NoFaults)
    }
}

impl<'a, S: TraceSink, F: FaultModel> Simulator<'a, S, F> {
    /// Creates a simulator that emits trace events into `sink` and
    /// consults `faults` on every exposed datapath read (typically with
    /// `&mut model`, since [`FaultModel`] is implemented for mutable
    /// references, so injection counters stay readable after the run).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invalid`] if the program fails structural
    /// validation for the machine.
    pub fn with_sink_and_faults(
        machine: &'a MachineConfig,
        program: &'a Program,
        sink: S,
        faults: F,
    ) -> Result<Self, SimError> {
        Self::with_instrumentation(machine, program, sink, faults, NullRecorder)
    }
}

impl<'a, M: Recorder> Simulator<'a, NullSink, NoFaults, M> {
    /// Creates a simulator that samples time-windowed metrics into
    /// `recorder` (typically `&mut registry`, since [`Recorder`] is
    /// implemented for mutable references) without tracing or faults.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invalid`] if the program fails structural
    /// validation for the machine.
    pub fn with_recorder(
        machine: &'a MachineConfig,
        program: &'a Program,
        recorder: M,
    ) -> Result<Self, SimError> {
        Self::with_instrumentation(machine, program, NullSink, NoFaults, recorder)
    }
}

impl<'a, S: TraceSink, F: FaultModel, M: Recorder> Simulator<'a, S, F, M> {
    /// Fully-instrumented construction: trace sink, fault model and
    /// metrics recorder together.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invalid`] if the program fails structural
    /// validation for the machine.
    pub fn with_instrumentation(
        machine: &'a MachineConfig,
        program: &'a Program,
        sink: S,
        faults: F,
        recorder: M,
    ) -> Result<Self, SimError> {
        validate_program(machine, program)?;
        let decoded = DecodedProgram::decode(machine, program);
        Ok(Self::build(
            machine, program, decoded, sink, faults, recorder,
        ))
    }

    /// Shared constructor body: wires an already-decoded program into a
    /// fresh simulator without validating (callers either validated the
    /// program themselves or inherited a [`DecodedProgram::prepare`]
    /// result).
    fn build(
        machine: &'a MachineConfig,
        program: &'a Program,
        decoded: DecodedProgram,
        sink: S,
        faults: F,
        recorder: M,
    ) -> Self {
        let clusters = machine.clusters as usize;
        let regs = machine.cluster.registers as usize;
        let preds = machine.cluster.pred_regs as usize;
        let mut icache = InstructionCache::new(machine.icache_words, machine.icache_refill_cycles);
        icache.warm(program.len());
        Simulator {
            machine,
            program,
            decoded,
            policy: HazardPolicy::Fault,
            regs: vec![vec![0; regs]; clusters],
            reg_ready: vec![vec![0; regs]; clusters],
            preds: vec![vec![false; preds]; clusters],
            pred_ready: vec![vec![0; preds]; clusters],
            mems: (0..clusters)
                .map(|_| {
                    machine
                        .cluster
                        .banks
                        .iter()
                        .map(|b| LocalMemory::new(b.words))
                        .collect()
                })
                .collect(),
            pending_ring: (0..PENDING_SLOTS).map(|_| Vec::new()).collect(),
            pending_count: 0,
            pending_far: BTreeMap::new(),
            drained_through: 0,
            icache,
            pc: 0,
            cycle: 0,
            redirect: None,
            halted: false,
            stats: RunStats::default(),
            sink,
            faults,
            recorder,
            metrics_window: DEFAULT_METRICS_WINDOW,
            window_start: 0,
            window: MetricsWindow::default(),
            word_cluster_ops: vec![0; clusters],
            word_touched: Vec::with_capacity(clusters),
            scratch_stores: Vec::new(),
            scratch_swaps: Vec::new(),
            scratch_reg_writes: Vec::new(),
            scratch_pred_writes: Vec::new(),
            fast_class_ops: [0; 6],
        }
    }

    /// The trace sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the trace sink (e.g. to flush it).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// The fault model.
    pub fn faults(&self) -> &F {
        &self.faults
    }

    /// Mutable access to the fault model (e.g. to re-arm a trigger).
    pub fn faults_mut(&mut self) -> &mut F {
        &mut self.faults
    }

    /// The metrics recorder.
    pub fn recorder(&self) -> &M {
        &self.recorder
    }

    /// Mutable access to the metrics recorder.
    pub fn recorder_mut(&mut self) -> &mut M {
        &mut self.recorder
    }

    /// Sets the metrics sampling window width (cycles per histogram
    /// observation; default [`DEFAULT_METRICS_WINDOW`]). Ignored when
    /// the recorder is disabled.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn set_metrics_window(&mut self, cycles: u64) {
        assert!(cycles > 0, "metrics window must be at least one cycle");
        self.metrics_window = cycles;
    }

    /// Flushes the metrics window in progress (called automatically at
    /// window boundaries and when a halt commits; harnesses that stop a
    /// run early — cycle budgets, checkpoint abandonment — call this to
    /// avoid losing the tail window). No-op when the recorder is
    /// disabled or the window is empty.
    pub fn flush_metrics_window(&mut self) {
        if !self.recorder.enabled() {
            return;
        }
        let w = self.window;
        if w.words == 0
            && w.issued_ops == 0
            && w.transfers == 0
            && w.icache_stall_cycles == 0
            && w.icache_refills == 0
        {
            self.window_start = self.cycle;
            return;
        }
        self.recorder.observe("vsp_sim_window_words", &[], w.words);
        self.recorder
            .observe("vsp_sim_window_issued_ops", &[], w.issued_ops);
        self.recorder
            .observe("vsp_sim_window_transfers", &[], w.transfers);
        self.recorder.observe(
            "vsp_sim_window_icache_stall_cycles",
            &[],
            w.icache_stall_cycles,
        );
        self.recorder
            .observe("vsp_sim_window_icache_refills", &[], w.icache_refills);
        self.window = MetricsWindow::default();
        self.window_start = self.cycle;
    }

    /// Selects the hazard policy.
    pub fn set_hazard_policy(&mut self, policy: HazardPolicy) {
        self.policy = policy;
    }

    /// Current value of a general register.
    pub fn reg(&self, cluster: ClusterId, reg: Reg) -> i16 {
        self.regs[cluster as usize][reg.index()]
    }

    /// Sets a general register (test/workload setup); the value is
    /// immediately readable.
    pub fn set_reg(&mut self, cluster: ClusterId, reg: Reg, value: i16) {
        self.regs[cluster as usize][reg.index()] = value;
        self.reg_ready[cluster as usize][reg.index()] = 0;
    }

    /// Current value of a predicate register.
    pub fn pred(&self, cluster: ClusterId, pred: Pred) -> bool {
        self.preds[cluster as usize][pred.index()]
    }

    /// Sets a predicate register (test/workload setup).
    pub fn set_pred(&mut self, cluster: ClusterId, pred: Pred, value: bool) {
        self.preds[cluster as usize][pred.index()] = value;
        self.pred_ready[cluster as usize][pred.index()] = 0;
    }

    /// A cluster's memory bank.
    pub fn mem(&self, cluster: ClusterId, bank: u8) -> &LocalMemory {
        &self.mems[cluster as usize][bank as usize]
    }

    /// Mutable access to a cluster's memory bank (to stage input data).
    pub fn mem_mut(&mut self, cluster: ClusterId, bank: u8) -> &mut LocalMemory {
        &mut self.mems[cluster as usize][bank as usize]
    }

    /// Cycles elapsed so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Snapshots the complete architectural state — registers,
    /// predicates, both halves of every local-memory bank, cycle count
    /// and halt flag — for differential comparison between execution
    /// paths or simulators.
    pub fn arch_state(&self) -> ArchState {
        ArchState {
            cycle: self.cycle,
            halted: self.halted,
            regs: self.regs.clone(),
            preds: self.preds.clone(),
            mems: self
                .mems
                .iter()
                .map(|banks| {
                    banks
                        .iter()
                        .map(|b| (b.active_buffer().to_vec(), b.io_buffer().to_vec()))
                        .collect()
                })
                .collect(),
        }
    }

    /// Whether a halt has committed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Runs until a halt commits or `max_cycles` elapse.
    ///
    /// ```
    /// use vsp_core::models;
    /// use vsp_isa::{AluBinOp, OpKind, Operand, Operation, Program, Reg};
    /// use vsp_sim::Simulator;
    ///
    /// let machine = models::i4c8s4();
    /// let mut p = Program::new("add");
    /// p.push_word(vec![Operation::new(0, 0, OpKind::AluBin {
    ///     op: AluBinOp::Add, dst: Reg(2), a: Operand::Imm(40), b: Operand::Imm(2),
    /// })]);
    /// p.push_word(vec![Operation::new(0, 4, OpKind::Halt)]);
    ///
    /// let mut sim = Simulator::new(&machine, &p).unwrap();
    /// let stats = sim.run(100).unwrap();
    /// assert_eq!(sim.reg(0, Reg(2)), 42);
    /// // The cycle-accounting invariant checked by the fuzz oracle:
    /// assert_eq!(stats.cycles, stats.words + stats.icache_stall_cycles);
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates hazard faults, memory range errors, fetch running past
    /// the program end, and [`SimError::CycleLimit`] when the budget is
    /// exhausted.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunStats, SimError> {
        while !self.halted {
            if self.cycle >= max_cycles {
                return Err(SimError::CycleLimit { limit: max_cycles });
            }
            self.step()?;
        }
        Ok(self.stats())
    }

    /// Runs via the legacy interpretive path ([`Simulator::step_interp`])
    /// instead of the pre-decoded fast path.
    ///
    /// Exists as the measurement baseline for the fast path and as the
    /// reference implementation for the differential tests; both paths
    /// must produce identical [`RunStats`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_interp(&mut self, max_cycles: u64) -> Result<RunStats, SimError> {
        while !self.halted {
            if self.cycle >= max_cycles {
                return Err(SimError::CycleLimit { limit: max_cycles });
            }
            self.step_interp()?;
        }
        Ok(self.stats())
    }

    /// Statistics gathered so far (with derived fields such as the
    /// histogram zero-buckets filled in).
    pub fn stats(&self) -> RunStats {
        let mut stats = self.stats.clone();
        for class in vsp_isa::FuClass::ALL {
            let n = self.fast_class_ops[class as usize];
            if n > 0 {
                *stats.ops_by_class.entry(class).or_insert(0) += n;
            }
        }
        stats.finalize();
        stats
    }
}
