//! Fault-model hooks for the decoded fast path.
//!
//! The simulator is generic over a [`FaultModel`] exactly the way it is
//! generic over a `TraceSink`: the default [`NoFaults`] answers `false`
//! from an inlinable [`FaultModel::enabled`], so the fault-free
//! monomorphization — everything built via `Simulator::new` or
//! `Simulator::with_sink` — contains no injection code at all and is
//! held bit-identical to the pre-fault simulator by the differential
//! tests.
//!
//! A fault model sees every value the datapath's exposed megacells
//! produce — register-file read ports, local-SRAM reads, crossbar
//! transfers — and may return a perturbed value; it may also add
//! latency jitter to instruction fetch. Concrete seeded models live in
//! the `vsp-fault` crate; this module only defines the hook surface so
//! `vsp-sim` carries no policy.
//!
//! Hooks are only consulted on the pre-decoded fast path
//! (`Simulator::step`). The interpretive path (`step_interp`) never
//! injects, which keeps it an honest fault-free oracle for differential
//! comparison against a faulted fast-path run.

use vsp_isa::ClusterId;

/// Observer/perturbation hooks over the datapath structures most
/// exposed to transient soft errors.
///
/// All hooks take `&mut self` so stateful models (seeded RNG streams,
/// one-shot triggers, stuck-at latches) need no interior mutability.
/// Hooks return the value to use; returning the input unchanged means
/// "no fault here".
pub trait FaultModel {
    /// Whether this model can ever inject. `false` lets the simulator
    /// compile the hook calls out entirely (the [`NoFaults`] case) or
    /// skip them dynamically for a zero-rate plan.
    fn enabled(&self) -> bool {
        true
    }

    /// A register-file read port delivered `value`; return what the
    /// consuming functional unit actually sees.
    fn on_reg_read(&mut self, cycle: u64, cluster: ClusterId, reg: u16, value: i16) -> i16 {
        let _ = (cycle, cluster, reg);
        value
    }

    /// A local-SRAM read of `addr` in `bank` delivered `value`.
    fn on_mem_read(
        &mut self,
        cycle: u64,
        cluster: ClusterId,
        bank: u8,
        addr: u32,
        value: i16,
    ) -> i16 {
        let _ = (cycle, cluster, bank, addr);
        value
    }

    /// The crossbar carried `value` from register `src` of cluster
    /// `from` toward cluster `to`.
    fn on_xfer(&mut self, cycle: u64, from: ClusterId, to: ClusterId, src: u16, value: i16) -> i16 {
        let _ = (cycle, from, to, src);
        value
    }

    /// Extra stall cycles to charge this fetch of `word` (icache-miss
    /// latency jitter). Returned cycles are accounted as icache stall
    /// cycles, preserving `cycles == words + icache_stall_cycles`.
    fn fetch_jitter(&mut self, cycle: u64, word: u32) -> u32 {
        let _ = (cycle, word);
        0
    }
}

/// The default fault model: never injects, and says so from an
/// inlinable body so the fault-free monomorphization carries no
/// injection code at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultModel for NoFaults {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

/// Forwarding impl so a caller can keep ownership of a stateful model
/// (for example to read its injection counters after the run) by
/// handing the simulator `&mut model`.
impl<F: FaultModel + ?Sized> FaultModel for &mut F {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn on_reg_read(&mut self, cycle: u64, cluster: ClusterId, reg: u16, value: i16) -> i16 {
        (**self).on_reg_read(cycle, cluster, reg, value)
    }

    #[inline]
    fn on_mem_read(
        &mut self,
        cycle: u64,
        cluster: ClusterId,
        bank: u8,
        addr: u32,
        value: i16,
    ) -> i16 {
        (**self).on_mem_read(cycle, cluster, bank, addr, value)
    }

    #[inline]
    fn on_xfer(&mut self, cycle: u64, from: ClusterId, to: ClusterId, src: u16, value: i16) -> i16 {
        (**self).on_xfer(cycle, from, to, src, value)
    }

    #[inline]
    fn fetch_jitter(&mut self, cycle: u64, word: u32) -> u32 {
        (**self).fetch_jitter(cycle, word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_disabled_identity() {
        let mut f = NoFaults;
        assert!(!f.enabled());
        assert_eq!(f.on_reg_read(1, 0, 3, 42), 42);
        assert_eq!(f.on_mem_read(1, 0, 0, 7, -5), -5);
        assert_eq!(f.on_xfer(1, 0, 1, 3, 9), 9);
        assert_eq!(f.fetch_jitter(1, 0), 0);
    }

    #[test]
    fn mut_ref_forwards() {
        struct FlipBit0;
        impl FaultModel for FlipBit0 {
            fn on_reg_read(&mut self, _: u64, _: ClusterId, _: u16, value: i16) -> i16 {
                value ^ 1
            }
        }
        let mut f = FlipBit0;
        let mut r = &mut f;
        assert!(<&mut FlipBit0 as FaultModel>::enabled(&r));
        assert_eq!(
            <&mut FlipBit0 as FaultModel>::on_reg_read(&mut r, 0, 0, 0, 2),
            3
        );
    }
}
