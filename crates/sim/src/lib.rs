//! Cycle-accurate simulator for the cluster-based VLIW video signal
//! processor.
//!
//! The simulator executes [`vsp_isa::Program`]s against a
//! [`vsp_core::MachineConfig`], modeling exactly the timing the paper's
//! datapaths expose to software:
//!
//! * one VLIW instruction word per cycle, operations issuing in their
//!   assigned (cluster, slot) with **no run-time arbitration or
//!   interlocks** (§2) — a premature read of a not-yet-written register is
//!   a scheduling bug and faults by default ([`HazardPolicy::Fault`]), or
//!   returns the stale value like real hardware would
//!   ([`HazardPolicy::StaleRead`]);
//! * full bypassing: results are readable `latency` cycles after issue
//!   (1 for ALU/shift, `1 + load_use_delay` for loads, `mul_latency` for
//!   multiplies, `xfer_latency` for crossbar transfers);
//! * branches resolve after the machine's delay slots, which always
//!   execute;
//! * per-cluster, double-buffered local memories with word addressing and
//!   a swap-buffers control operation;
//! * a direct-mapped instruction cache (loops that do not fit pay a
//!   >100-cycle refill per missed word — the paper's reason why "all
//!   > critical loops must fit into the cache").
//!
//! # Example
//!
//! ```
//! use vsp_core::models;
//! use vsp_isa::{Operation, OpKind, AluUnOp, Reg, Operand, Program};
//! use vsp_sim::Simulator;
//!
//! let machine = models::i4c8s4();
//! let mut p = Program::new("demo");
//! p.push_word(vec![Operation::new(0, 0, OpKind::AluUn {
//!     op: AluUnOp::Mov, dst: Reg(1), a: Operand::Imm(42),
//! })]);
//! p.push_word(vec![Operation::new(0, 4, OpKind::Halt)]);
//!
//! let mut sim = Simulator::new(&machine, &p).unwrap();
//! let stats = sim.run(1000).unwrap();
//! assert_eq!(sim.reg(0, Reg(1)), 42);
//! assert!(stats.cycles >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod decoded;
pub mod error;
pub mod fault;
pub mod icache;
pub mod memory;
pub mod metrics;
pub mod simulator;
pub mod stats;

pub use batch::{BatchSimulator, LaneOutcome, RunSpec};
pub use decoded::{DAddr, DKind, DOperand, DecodedOp, DecodedProgram, NO_GUARD};
pub use error::SimError;
pub use fault::{FaultModel, NoFaults};
pub use icache::InstructionCache;
pub use memory::LocalMemory;
pub use metrics::record_run_stats;
pub use simulator::{ArchState, Checkpoint, HazardPolicy, Simulator, DEFAULT_METRICS_WINDOW};
pub use stats::RunStats;
