//! Simulation errors.

use serde::{Deserialize, Serialize};
use std::fmt;
use vsp_core::validate::ValidationError;
use vsp_isa::{ClusterId, Reg};

/// Errors raised during simulation.
///
/// Serializable so fault-campaign reports (`vsp-fault`, the `vsp-bench`
/// `faults` bin) can carry the exact error a case died with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimError {
    /// The program failed structural validation for the machine.
    Invalid(Vec<ValidationError>),
    /// A register was read before its producing operation's latency had
    /// elapsed — a statically scheduled machine has no interlocks, so
    /// this is a scheduler bug (only raised under
    /// [`crate::HazardPolicy::Fault`]).
    PrematureRead {
        /// Cycle of the offending read.
        cycle: u64,
        /// Word index being executed.
        word: usize,
        /// Cluster of the read.
        cluster: ClusterId,
        /// Register read too early.
        reg: Reg,
        /// Cycle at which the value would have become readable.
        ready_at: u64,
    },
    /// Two operations committed a write to the same register in the same
    /// cycle.
    WriteConflict {
        /// Commit cycle.
        cycle: u64,
        /// Cluster of the conflict.
        cluster: ClusterId,
        /// Register written twice.
        reg: Reg,
    },
    /// A memory access fell outside its bank.
    MemOutOfRange {
        /// Cycle of the access.
        cycle: u64,
        /// Cluster of the access.
        cluster: ClusterId,
        /// Bank index.
        bank: u8,
        /// Offending word address.
        addr: u32,
        /// Bank capacity in words.
        words: u32,
    },
    /// The program ran past the cycle budget without halting.
    CycleLimit {
        /// The exhausted budget.
        limit: u64,
    },
    /// Execution fell off the end of the program without a halt.
    RanOffEnd {
        /// Cycle at which it happened.
        cycle: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Invalid(errs) => {
                write!(f, "program invalid for machine ({} violations; first: {})",
                    errs.len(),
                    errs.first().map(|e| e.to_string()).unwrap_or_default())
            }
            SimError::PrematureRead {
                cycle,
                word,
                cluster,
                reg,
                ready_at,
            } => write!(
                f,
                "cycle {cycle}, word {word}: c{cluster}.{reg} read before ready (ready at {ready_at})"
            ),
            SimError::WriteConflict { cycle, cluster, reg } => {
                write!(f, "cycle {cycle}: conflicting writes to c{cluster}.{reg}")
            }
            SimError::MemOutOfRange {
                cycle,
                cluster,
                bank,
                addr,
                words,
            } => write!(
                f,
                "cycle {cycle}: address {addr} outside c{cluster}.m{bank} ({words} words)"
            ),
            SimError::CycleLimit { limit } => {
                write!(f, "no halt within {limit} cycles")
            }
            SimError::RanOffEnd { cycle } => {
                write!(f, "cycle {cycle}: fetch ran past the end of the program")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<Vec<ValidationError>> for SimError {
    fn from(errs: Vec<ValidationError>) -> Self {
        SimError::Invalid(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SimError::PrematureRead {
            cycle: 10,
            word: 3,
            cluster: 2,
            reg: Reg(5),
            ready_at: 11,
        };
        let s = e.to_string();
        assert!(s.contains("cycle 10"));
        assert!(s.contains("r5"));
        assert!(s.contains("ready at 11"));

        let e = SimError::CycleLimit { limit: 100 };
        assert!(e.to_string().contains("100"));
    }
}
