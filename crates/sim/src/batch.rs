//! Batched lockstep execution: N runs of one decoded program at once.
//!
//! Campaign harnesses (fault sweeps, fuzzing, design-space search) run
//! the *same program* thousands of times with different seeds, fault
//! plans and initial state. Scalar [`crate::Simulator`] construction
//! pays validation, decode and a dozen allocations per run, and the
//! per-cycle interpreter re-dispatches every operation for every run.
//! This module amortizes all of it:
//!
//! * **One decode.** A shared [`DecodedProgram`] (from
//!   [`DecodedProgram::prepare`]) is borrowed by the whole batch.
//! * **Struct-of-arrays state.** Register files, predicate files,
//!   scoreboard ready-cycles, local SRAM, icache tags and pipeline
//!   control all live in flat arrays laid out `[run0, run1, …]` per
//!   field, so the inner loops sweep contiguous lanes.
//! * **Op-major dispatch.** Lanes at the same `pc` execute as one
//!   group: each operation's `match` is dispatched once and its body
//!   loops over lanes, instead of once per lane per cycle.
//! * **Arena allocation.** All per-run state comes from a
//!   [`BatchArena`] owned by the [`BatchSimulator`]; pools are
//!   grow-only and reused across `run_batch` calls, so a 10⁵-run
//!   campaign performs zero steady-state allocations.
//! * **Per-lane retirement.** A lane that halts, errors or exhausts
//!   its cycle budget is compacted out of the active set; long-tail
//!   runs don't stall the batch, and divergent lanes (fault-injected
//!   branch flips, fetch jitter) regroup by `pc` each super-step.
//!
//! # Bit-identity contract
//!
//! Every lane of [`BatchSimulator::run_batch`] produces the exact
//! [`RunStats`] and [`ArchState`] — and on failure the exact
//! [`SimError`] — that a scalar `Simulator` given the same machine,
//! program, initial state and fault model would produce. Fault-model
//! hooks are consulted in the same datapath-event order (guards and
//! branch predicates consult no hooks, exactly like the scalar fast
//! path), so seeded RNG streams line up draw for draw. The contract is
//! pinned by `tests/batch_diff.rs` across every kernel × machine model
//! of the paper, with and without fault plans.

use crate::decoded::{DAddr, DKind, DOperand, DecodedProgram, NO_GUARD};
use crate::error::SimError;
use crate::fault::{FaultModel, NoFaults};
use crate::simulator::{ArchState, HazardPolicy, PENDING_SLOTS};
use crate::stats::RunStats;
use std::collections::BTreeMap;
use std::time::Instant;
use vsp_core::MachineConfig;
use vsp_isa::{
    semantics, AluBinOp, AluUnOp, ClusterId, CmpOp, FuClass, MulKind, Pred, Reg, ShiftOp,
};
use vsp_metrics::{NullRecorder, Recorder};

/// Initial state and budget for one lane of a batch.
///
/// The default-`NoFaults` form describes a clean run; campaign
/// harnesses attach a seeded fault model per lane with
/// [`RunSpec::with_faults`].
#[derive(Debug, Clone)]
pub struct RunSpec<F: FaultModel = NoFaults> {
    /// Fault model consulted on this lane's exposed datapath reads
    /// (moved back out in [`LaneOutcome::faults`] so injection counters
    /// stay readable).
    pub faults: F,
    /// Cycle budget; the lane retires with [`SimError::CycleLimit`]
    /// when it is exhausted before a halt commits.
    pub max_cycles: u64,
    /// Initial register values, applied before the first cycle.
    pub regs: Vec<(ClusterId, Reg, i16)>,
    /// Initial predicate values.
    pub preds: Vec<(ClusterId, Pred, bool)>,
    /// Initial processing-buffer memory words as
    /// `(cluster, bank, addr, value)`.
    pub mem: Vec<(ClusterId, u8, u32, i16)>,
}

impl RunSpec {
    /// A clean (fault-free) lane with zeroed initial state.
    #[must_use]
    pub fn new(max_cycles: u64) -> Self {
        Self::with_faults(max_cycles, NoFaults)
    }
}

impl<F: FaultModel> RunSpec<F> {
    /// A lane driven by `faults` with zeroed initial state.
    pub fn with_faults(max_cycles: u64, faults: F) -> Self {
        RunSpec {
            faults,
            max_cycles,
            regs: Vec::new(),
            preds: Vec::new(),
            mem: Vec::new(),
        }
    }
}

/// Everything one lane retired with.
#[derive(Debug, Clone)]
pub struct LaneOutcome<F: FaultModel = NoFaults> {
    /// Statistics, identical to what `Simulator::stats` would report.
    pub stats: RunStats,
    /// Final architectural state (identical to `Simulator::arch_state`).
    pub state: ArchState,
    /// How the lane ended: `None` for a committed halt, otherwise the
    /// exact error the scalar path would have returned.
    pub error: Option<SimError>,
    /// The lane's fault model, returned so seeded injection counters
    /// survive the run.
    pub faults: F,
}

impl<F: FaultModel> LaneOutcome<F> {
    /// Whether the lane ran to a committed halt.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.error.is_none()
    }
}

/// A pending register/predicate commit for one lane; the field index is
/// pre-flattened (`cluster * width + reg`) so applying it is one store.
#[derive(Debug, Clone, Copy)]
enum LaneCommit {
    Reg(u32, i16),
    Pred(u32, bool),
}

/// The batch-lifetime arena: every struct-of-arrays pool the engine
/// needs, owned by the [`BatchSimulator`] and resized (never shrunk)
/// per `run_batch` call.
///
/// Layout convention: a per-lane scalar field `f` of logical shape
/// `[dims…]` is stored flat as `f[(flatten(dims…)) * lanes + lane]`,
/// so sweeping one field across the batch touches contiguous memory.
/// All pools are grow-only: `reset` clears values but keeps capacity,
/// and the pending-commit ring reuses its inner vectors, so steady
/// state (every batch after the largest-shaped one) allocates nothing.
#[derive(Debug, Default)]
pub struct BatchArena {
    // Shape of the current batch (set by `reset`).
    nl: usize,
    nc: usize,
    nr: usize,
    np: usize,
    nb: usize,
    stride: usize,
    icap: usize,
    plen: usize,
    // Architectural state, SoA.
    regs: Vec<i16>,
    reg_ready: Vec<u64>,
    preds: Vec<bool>,
    pred_ready: Vec<u64>,
    /// All memory buffers of all lanes: bank `(c, b)` starts at
    /// `mem_off[c * nb + b]` and holds `2 * words * lanes` values
    /// (both double-buffer halves).
    mems: Vec<i16>,
    /// Which buffer of each `(cluster, bank)` is the processing buffer.
    mem_active: Vec<u8>,
    mem_off: Vec<usize>,
    bank_words: Vec<u32>,
    /// Unique SRAM pool rows written this batch, as
    /// `(cluster * banks + bank, buffer * words + addr)`; `reset` scrubs
    /// exactly these rows instead of refilling the whole pool, and the
    /// state gather reads only these rows (everything else is zero).
    mems_dirty: Vec<(u32, u32)>,
    /// One flag per SRAM pool row deduplicating `mems_dirty`.
    mem_row_flag: Vec<u8>,
    /// Row-index base per `(cluster, bank)`: `mem_off / lanes`.
    mem_row_off: Vec<usize>,
    /// Direct-mapped icache tags, `u32::MAX` = empty line.
    itags: Vec<u32>,
    // Pipeline control, one entry per lane.
    pc: Vec<u32>,
    cycle: Vec<u64>,
    halted: Vec<bool>,
    alive: Vec<bool>,
    redirect: Vec<Option<(u32, u32)>>,
    errs: Vec<Option<SimError>>,
    max_cycles: Vec<u64>,
    // Per-lane run counters, SoA so the hot loop never touches a
    // scattered `RunStats` struct; folded into one per lane at the end.
    c_icache_miss: Vec<u64>,
    c_icache_stall: Vec<u64>,
    c_fault_inj: Vec<u64>,
    c_annulled: Vec<u64>,
    c_loads: Vec<u64>,
    c_stores: Vec<u64>,
    c_xfers: Vec<u64>,
    c_words: Vec<u64>,
    c_bubbles: Vec<u64>,
    c_taken: Vec<u64>,
    c_cycles: Vec<u64>,
    /// Flat utilisation histogram, `(cluster * hist_bins + ops) * lanes
    /// + lane` — the SoA twin of `RunStats::util_histogram`.
    util_hist: Vec<u64>,
    hist_bins: usize,
    // Per-class / per-cluster op counters, folded into stats at the end
    // (mirrors the scalar fast path's `fast_class_ops`).
    class_ops: Vec<u64>,
    cluster_ops: Vec<u64>,
    word_cluster_ops: Vec<u32>,
    // Pending-commit ring: `ring_cap` flat entries per (lane, slot)
    // with `PENDING_SLOTS` slots per lane, plus the ordered overflow
    // map for pathological latencies. Keys are
    // `field_index << 1 | is_pred`, so applying one is a shift and a
    // store.
    ring_data: Vec<(u32, i16)>,
    ring_len: Vec<u16>,
    ring_cap: usize,
    pending_count: Vec<u32>,
    drained_through: Vec<u64>,
    far: Vec<BTreeMap<u64, Vec<LaneCommit>>>,
    // Per-word aggregates over unguarded ops (every live lane executes
    // them, so their issue/class/cluster counts are word constants):
    // `agg_*` indexed by word, `upre_*` the inclusive per-op prefix
    // used to credit a lane killed mid-word. Computed once per batch.
    nclass: usize,
    agg_issued: Vec<u32>,
    agg_class: Vec<u32>,
    agg_cluster: Vec<u32>,
    upre_class: Vec<u32>,
    upre_cluster: Vec<u32>,
    // Per-word scratch, `stride` (widest word) entries per lane.
    rw: Vec<(u32, i16, u32)>,
    rw_len: Vec<u32>,
    pw: Vec<(u32, bool, u32)>,
    pw_len: Vec<u32>,
    st: Vec<(u32, u32, i16)>,
    st_len: Vec<u32>,
    sw: Vec<u32>,
    sw_len: Vec<u32>,
    word_issued: Vec<u32>,
    branch_to: Vec<u32>,
    branch_set: Vec<bool>,
    halt_flag: Vec<bool>,
    in_shadow: Vec<bool>,
    // Active-lane bookkeeping.
    active: Vec<u32>,
    grouped: Vec<u32>,
    exec: Vec<u32>,
    // Uniform-lockstep mode. While `uniform` holds, every live lane
    // provably has identical *timing* state — cycle count, scoreboard
    // ready-cycles, icache tags, branch shadow, pending-commit
    // schedule — so the engine keeps ONE shared copy of it (the
    // `u_*` fields) and touches only data rows per lane. The mode is
    // entered for an all-quiet batch and left (for the rest of the
    // batch, via `flush_uniform`) the moment anything lane-dependent
    // could affect timing.
    uniform: bool,
    u_cycle: u64,
    u_drained: u64,
    u_redirect: Option<(u32, u32)>,
    u_reg_ready: Vec<u64>,
    u_pred_ready: Vec<u64>,
    u_itags: Vec<u32>,
    /// Shared pending-commit ring: one key/latency schedule for the
    /// whole batch, values as lane rows (`(slot * u_cap + j) * nl`).
    u_ring_key: Vec<u32>,
    u_ring_len: Vec<u16>,
    u_ring_val: Vec<i16>,
    u_cap: usize,
    u_pending: u32,
    /// Far (latency > ring) commits: value rows per key.
    u_far: BTreeMap<u64, Vec<(u32, Vec<i16>)>>,
    // Per-word shared scratch for the uniform executor.
    u_wr: Vec<(u32, u32)>,
    u_wp: Vec<(u32, u32)>,
    u_ann: Vec<u8>,
    u_dest_r: Vec<u32>,
    u_dest_p: Vec<u32>,
    u_ovl: Vec<(u32, u64)>,
    u_farmeta: Vec<(u64, u32, u32)>,
    u_farbuf: Vec<i16>,
    u_sw: Vec<u32>,
    u_gclass: Vec<u32>,
    u_gcluster: Vec<u32>,
}

/// Clears and resizes a pool without giving up its capacity.
fn pool<T: Clone>(v: &mut Vec<T>, n: usize, fill: T) {
    v.clear();
    v.resize(n, fill);
}

impl BatchArena {
    /// Shapes the arena for `lanes` runs of `program` on `machine`.
    fn reset(&mut self, machine: &MachineConfig, program: &DecodedProgram, lanes: usize) {
        // Scrub only the SRAM rows the previous batch dirtied, under the
        // previous geometry (`self.nl` / `self.mem_off` are not yet
        // updated). A lane-count change resizes the pool below, which
        // rezeroes it wholesale; the flags were already cleared here.
        if !self.mems_dirty.is_empty() {
            let onl = self.nl;
            for &(cb, bufw) in &self.mems_dirty {
                let base = self.mem_off[cb as usize] + bufw as usize * onl;
                self.mems[base..base + onl].fill(0);
                self.mem_row_flag[self.mem_row_off[cb as usize] + bufw as usize] = 0;
            }
            self.mems_dirty.clear();
        }
        let nl = lanes;
        let nc = machine.clusters as usize;
        let nr = machine.cluster.registers as usize;
        let np = machine.cluster.pred_regs as usize;
        let nb = machine.cluster.banks.len();
        self.nl = nl;
        self.nc = nc;
        self.nr = nr;
        self.np = np;
        self.nb = nb;
        self.stride = program.max_word_ops();
        self.icap = machine.icache_words.max(1) as usize;
        self.plen = program.len();

        pool(&mut self.regs, nc * nr * nl, 0);
        pool(&mut self.reg_ready, nc * nr * nl, 0);
        pool(&mut self.preds, nc * np * nl, false);
        pool(&mut self.pred_ready, nc * np * nl, 0);

        self.mem_off.clear();
        self.bank_words.clear();
        self.mem_row_off.clear();
        let mut off = 0usize;
        for _ in 0..nc {
            for bank in &machine.cluster.banks {
                self.mem_off.push(off);
                self.mem_row_off.push(off / nl);
                self.bank_words.push(bank.words);
                off += 2 * bank.words as usize * nl;
            }
        }
        // The pool is already all-zero (scrubbed above) unless its
        // shape changed, so the bulk refill runs only on reshape.
        if self.mems.len() != off {
            pool(&mut self.mems, off, 0);
        }
        if self.mem_row_flag.len() != off / nl {
            pool(&mut self.mem_row_flag, off / nl, 0);
        }
        pool(&mut self.mem_active, nc * nb * nl, 0);

        // Warm the cache rows exactly like `InstructionCache::warm`.
        pool(&mut self.itags, self.icap * nl, u32::MAX);
        for pc in 0..self.plen.min(self.icap) {
            let row = (pc % self.icap) * nl;
            self.itags[row..row + nl].fill(pc as u32);
        }

        pool(&mut self.pc, nl, 0);
        pool(&mut self.cycle, nl, 0);
        pool(&mut self.halted, nl, false);
        pool(&mut self.alive, nl, true);
        pool(&mut self.redirect, nl, None);
        pool(&mut self.errs, nl, None);
        pool(&mut self.max_cycles, nl, 0);
        for c in [
            &mut self.c_icache_miss,
            &mut self.c_icache_stall,
            &mut self.c_fault_inj,
            &mut self.c_annulled,
            &mut self.c_loads,
            &mut self.c_stores,
            &mut self.c_xfers,
            &mut self.c_words,
            &mut self.c_bubbles,
            &mut self.c_taken,
            &mut self.c_cycles,
        ] {
            pool(c, nl, 0);
        }
        // `ops` per cluster-word never exceeds the widest word.
        self.hist_bins = self.stride + 1;
        pool(&mut self.util_hist, nc * self.hist_bins * nl, 0);

        pool(&mut self.class_ops, FuClass::ALL.len() * nl, 0);
        pool(&mut self.cluster_ops, nc * nl, 0);
        pool(&mut self.word_cluster_ops, nc * nl, 0);

        // Two words can commit into the same slot (issue cycle plus
        // latency colliding mod the ring size), so give each slot twice
        // the widest word up front; `ring_push!` grows it if a program
        // still overflows.
        self.ring_cap = self.ring_cap.max(2 * self.stride.max(2));
        let need = nl * PENDING_SLOTS * self.ring_cap;
        if self.ring_data.len() < need {
            self.ring_data.resize(need, (0, 0));
        }
        pool(&mut self.ring_len, nl * PENDING_SLOTS, 0);
        pool(&mut self.pending_count, nl, 0);
        pool(&mut self.drained_through, nl, 0);
        for map in self.far.iter_mut() {
            map.clear();
        }
        if self.far.len() < nl {
            self.far.resize_with(nl, BTreeMap::new);
        } else {
            self.far.truncate(nl);
        }

        pool(&mut self.rw, self.stride * nl, (0, 0, 0));
        pool(&mut self.rw_len, nl, 0);
        pool(&mut self.pw, self.stride * nl, (0, false, 0));
        pool(&mut self.pw_len, nl, 0);
        pool(&mut self.st, self.stride * nl, (0, 0, 0));
        pool(&mut self.st_len, nl, 0);
        pool(&mut self.sw, self.stride * nl, 0);
        pool(&mut self.sw_len, nl, 0);
        pool(&mut self.word_issued, nl, 0);
        pool(&mut self.branch_to, nl, 0);
        pool(&mut self.branch_set, nl, false);
        pool(&mut self.halt_flag, nl, false);
        pool(&mut self.in_shadow, nl, false);

        self.active.clear();
        self.grouped.clear();
        self.exec.clear();

        self.nclass = FuClass::ALL.len();
        let nclass = self.nclass;
        pool(&mut self.agg_issued, self.plen, 0);
        pool(&mut self.agg_class, self.plen * nclass, 0);
        pool(&mut self.agg_cluster, self.plen * nc, 0);
        pool(&mut self.upre_class, program.op_count() * nclass, 0);
        pool(&mut self.upre_cluster, program.op_count() * nc, 0);
        let mut cur_class = vec![0u32; nclass];
        let mut cur_cluster = vec![0u32; nc];
        for w in 0..self.plen {
            cur_class.fill(0);
            cur_cluster.fill(0);
            let mut issued = 0;
            for i in program.word_range(w) {
                let op = program.op(i);
                if op.guard_pred == NO_GUARD {
                    if let Some(class) = op.class {
                        issued += 1;
                        cur_class[class as usize] += 1;
                        cur_cluster[op.cluster as usize] += 1;
                    }
                }
                self.upre_class[i * nclass..(i + 1) * nclass].copy_from_slice(&cur_class);
                self.upre_cluster[i * nc..(i + 1) * nc].copy_from_slice(&cur_cluster);
            }
            self.agg_issued[w] = issued;
            self.agg_class[w * nclass..(w + 1) * nclass].copy_from_slice(&cur_class);
            self.agg_cluster[w * nc..(w + 1) * nc].copy_from_slice(&cur_cluster);
        }

        // Uniform-lockstep shared timing state. `execute` turns the
        // mode on only for an all-quiet batch.
        self.uniform = false;
        self.u_cycle = 0;
        self.u_drained = 0;
        self.u_redirect = None;
        pool(&mut self.u_reg_ready, nc * nr, 0);
        pool(&mut self.u_pred_ready, nc * np, 0);
        pool(&mut self.u_itags, self.icap, u32::MAX);
        for pc in 0..self.plen.min(self.icap) {
            self.u_itags[pc % self.icap] = pc as u32;
        }
        self.u_cap = self.u_cap.max(2 * self.stride.max(2));
        pool(&mut self.u_ring_len, PENDING_SLOTS, 0);
        let need = PENDING_SLOTS * self.u_cap;
        if self.u_ring_key.len() < need {
            self.u_ring_key.resize(need, 0);
        }
        if self.u_ring_val.len() < need * nl {
            self.u_ring_val.resize(need * nl, 0);
        }
        self.u_pending = 0;
        self.u_far.clear();
        self.u_wr.clear();
        self.u_wp.clear();
        self.u_ann.clear();
        self.u_dest_r.clear();
        self.u_dest_p.clear();
        self.u_ovl.clear();
        self.u_farmeta.clear();
        self.u_farbuf.clear();
        self.u_sw.clear();
        pool(&mut self.u_gclass, nclass, 0);
        pool(&mut self.u_gcluster, nc, 0);
    }
}
/// Marks a `u_dest_*` entry that targets the far-commit value buffer
/// instead of the shared pending ring.
const FAR_BIT: u32 = 0x8000_0000;

/// Calls `f(lo, hi)` for each maximal run of consecutive lane indices
/// in `lanes` (ascending by construction), so row operations work on
/// contiguous slices — with no retired lanes this is a single call
/// spanning the whole row.
#[inline]
fn for_each_run(lanes: &[u32], mut f: impl FnMut(usize, usize)) {
    let mut i = 0;
    while i < lanes.len() {
        let lo = lanes[i] as usize;
        let mut hi = lo + 1;
        i += 1;
        while i < lanes.len() && lanes[i] as usize == hi {
            hi += 1;
            i += 1;
        }
        f(lo, hi);
    }
}

/// A data operand resolved against the SoA pools: a whole lane row
/// for a register, or one immediate shared by every lane.
#[derive(Clone, Copy)]
enum RowV<'a> {
    Row(&'a [i16]),
    Imm(i16),
}

/// `out[l] = f(a[l], b[l])` over the live-lane runs, with the operand
/// shapes (row vs. immediate) unswitched outside the inner loops.
#[inline]
fn row2(out: &mut [i16], lanes: &[u32], a: RowV, b: RowV, f: impl Fn(i16, i16) -> i16 + Copy) {
    for_each_run(lanes, |lo, hi| match (a, b) {
        (RowV::Row(x), RowV::Row(y)) => {
            for ((o, &p), &q) in out[lo..hi].iter_mut().zip(&x[lo..hi]).zip(&y[lo..hi]) {
                *o = f(p, q);
            }
        }
        (RowV::Row(x), RowV::Imm(q)) => {
            for (o, &p) in out[lo..hi].iter_mut().zip(&x[lo..hi]) {
                *o = f(p, q);
            }
        }
        (RowV::Imm(p), RowV::Row(y)) => {
            for (o, &q) in out[lo..hi].iter_mut().zip(&y[lo..hi]) {
                *o = f(p, q);
            }
        }
        (RowV::Imm(p), RowV::Imm(q)) => out[lo..hi].fill(f(p, q)),
    });
}

/// Unary twin of [`row2`].
#[inline]
fn row1(out: &mut [i16], lanes: &[u32], a: RowV, f: impl Fn(i16) -> i16 + Copy) {
    for_each_run(lanes, |lo, hi| match a {
        RowV::Row(x) => {
            for (o, &p) in out[lo..hi].iter_mut().zip(&x[lo..hi]) {
                *o = f(p);
            }
        }
        RowV::Imm(p) => out[lo..hi].fill(f(p)),
    });
}

/// `semantics::cmp` with the predicate widened to the ring's i16
/// payload encoding.
#[inline]
fn cmp_i16(op: CmpOp, a: i16, b: i16) -> i16 {
    i16::from(semantics::cmp(op, a, b))
}

/// The scoreboard value a shared write-port entry observes after the
/// earlier same-word writes (which live in the overlay until the whole
/// word is approved).
#[inline]
fn ovl_get(ovl: &[(u32, u64)], key: u32, fallback: u64) -> u64 {
    ovl.iter().find(|e| e.0 == key).map_or(fallback, |e| e.1)
}

#[inline]
fn ovl_set(ovl: &mut Vec<(u32, u64)>, key: u32, v: u64) {
    if let Some(e) = ovl.iter_mut().find(|e| e.0 == key) {
        e.1 = v;
    } else {
        ovl.push((key, v));
    }
}

/// Expands an opcode `match` whose every arm calls [`row2`] with the
/// opcode a compile-time constant, so each inner loop const-folds the
/// dispatch away and vectorizes.
macro_rules! unswitch2 {
    ($f:expr, $out:expr, $lanes:expr, $a:expr, $b:expr, $sem:path, $ety:ident,
     [$($v:ident),+ $(,)?]) => {
        match $f {
            $($ety::$v => row2($out, $lanes, $a, $b, |x, y| $sem($ety::$v, x, y)),)+
        }
    };
}

/// Unary twin of [`unswitch2`].
macro_rules! unswitch1 {
    ($f:expr, $out:expr, $lanes:expr, $a:expr, $sem:path, $ety:ident,
     [$($v:ident),+ $(,)?]) => {
        match $f {
            $($ety::$v => row1($out, $lanes, $a, |x| $sem($ety::$v, x)),)+
        }
    };
}

/// The batched lockstep engine.
///
/// Construct once per machine, then feed it any number of batches; the
/// internal [`BatchArena`] is reused across calls. Generic over a
/// [`Recorder`] by the usual zero-cost pattern — the default
/// [`NullRecorder`] compiles the `vsp_batch_*` metrics out.
///
/// ```
/// use vsp_core::models;
/// use vsp_isa::{AluBinOp, OpKind, Operand, Operation, Program, Reg};
/// use vsp_sim::batch::{BatchSimulator, RunSpec};
/// use vsp_sim::DecodedProgram;
///
/// let machine = models::i4c8s4();
/// let mut p = Program::new("add");
/// p.push_word(vec![Operation::new(0, 0, OpKind::AluBin {
///     op: AluBinOp::Add, dst: Reg(2), a: Operand::Imm(40), b: Operand::Imm(2),
/// })]);
/// p.push_word(vec![Operation::new(0, 4, OpKind::Halt)]);
///
/// let decoded = DecodedProgram::prepare(&machine, &p).unwrap();
/// let mut batch = BatchSimulator::new(&machine);
/// let outcomes = batch.run_batch(&decoded, vec![RunSpec::new(100); 8]);
/// assert!(outcomes.iter().all(|o| o.halted()));
/// assert_eq!(outcomes[0].state.regs[0][2], 42);
/// ```
#[derive(Debug)]
pub struct BatchSimulator<'a, M: Recorder = NullRecorder> {
    machine: &'a MachineConfig,
    policy: HazardPolicy,
    recorder: M,
    arena: BatchArena,
}

impl<'a> BatchSimulator<'a> {
    /// Creates an engine for `machine` with the default
    /// ([`HazardPolicy::Fault`]) hazard policy and no metrics.
    #[must_use]
    pub fn new(machine: &'a MachineConfig) -> Self {
        Self::with_recorder(machine, NullRecorder)
    }
}

impl<'a, M: Recorder> BatchSimulator<'a, M> {
    /// Creates an engine that streams `vsp_batch_*` metrics into
    /// `recorder` (typically `&mut registry`).
    pub fn with_recorder(machine: &'a MachineConfig, recorder: M) -> Self {
        BatchSimulator {
            machine,
            policy: HazardPolicy::Fault,
            recorder,
            arena: BatchArena::default(),
        }
    }

    /// Selects the hazard policy applied to every lane.
    pub fn set_hazard_policy(&mut self, policy: HazardPolicy) {
        self.policy = policy;
    }

    /// Runs one lane per spec to completion and returns the outcomes in
    /// spec order.
    ///
    /// `program` must come from [`DecodedProgram::prepare`] for this
    /// engine's machine. Each super-step advances every live lane by
    /// one instruction word: lanes are grouped by `pc` (one group and
    /// no sorting in the common non-divergent case) and each group
    /// executes op-major. Finished lanes retire immediately.
    ///
    /// # Panics
    ///
    /// Panics if a spec's initial register, predicate or memory indices
    /// fall outside the machine's shape.
    pub fn run_batch<F: FaultModel>(
        &mut self,
        program: &DecodedProgram,
        specs: Vec<RunSpec<F>>,
    ) -> Vec<LaneOutcome<F>> {
        let faults = self.execute(program, specs);
        if faults.is_empty() {
            return Vec::new();
        }
        let states = self.collect_states();
        faults
            .into_iter()
            .zip(states)
            .enumerate()
            .map(|(lane, (f, state))| LaneOutcome {
                stats: self.lane_stats(lane),
                state,
                error: self.arena.errs[lane].take(),
                faults: f,
            })
            .collect()
    }

    /// [`BatchSimulator::run_batch`] keeping only the statistics —
    /// skips the architectural-state gather entirely, which matters for
    /// campaign throughput: the SRAM pools never have to be read back.
    pub fn run_batch_stats<F: FaultModel>(
        &mut self,
        program: &DecodedProgram,
        specs: Vec<RunSpec<F>>,
    ) -> Vec<RunStats> {
        let nl = specs.len();
        let _faults = self.execute(program, specs);
        (0..nl).map(|lane| self.lane_stats(lane)).collect()
    }

    /// The shared driver: stages every spec into the arena, runs the
    /// super-step loop to completion and returns the fault models in
    /// lane order. Results stay in the arena for the caller to fold.
    fn execute<F: FaultModel>(
        &mut self,
        program: &DecodedProgram,
        specs: Vec<RunSpec<F>>,
    ) -> Vec<F> {
        let nl = specs.len();
        if nl == 0 {
            return Vec::new();
        }
        self.arena.reset(self.machine, program, nl);
        let mut faults = Vec::with_capacity(nl);
        for (lane, spec) in specs.into_iter().enumerate() {
            self.stage_lane(lane, &spec);
            self.arena.max_cycles[lane] = spec.max_cycles;
            faults.push(spec.faults);
        }
        // Uniform lockstep keeps ONE shared copy of the timing state
        // for the whole batch; it is sound only when no lane can
        // inject timing-perturbing faults.
        self.arena.uniform = faults.iter().all(|f| !f.enabled());
        // Scalar `run` checks the budget before the first step too.
        for lane in 0..nl {
            if self.arena.max_cycles[lane] == 0 {
                self.arena.errs[lane] = Some(SimError::CycleLimit { limit: 0 });
                self.arena.alive[lane] = false;
            } else {
                self.arena.active.push(lane as u32);
            }
        }

        let recording = self.recorder.enabled();
        let started = recording.then(Instant::now);
        let mut super_steps = 0u64;
        let mut lane_words = 0u64;

        while !self.arena.active.is_empty() {
            let act = std::mem::take(&mut self.arena.active);
            if recording {
                super_steps += 1;
                lane_words += act.len() as u64;
                self.recorder
                    .observe("vsp_batch_lane_occupancy", &[], act.len() as u64);
            }
            let pc0 = self.arena.pc[act[0] as usize];
            if self.arena.uniform {
                // All lanes provably share one pc while uniform holds.
                self.exec_word_uniform(program, pc0 as usize, &act, &mut faults);
            } else if act.iter().all(|&l| self.arena.pc[l as usize] == pc0) {
                self.exec_word(program, pc0 as usize, &act, &mut faults, false);
            } else {
                // Divergent lanes: bucket by pc (stable within a pc by
                // lane index) and run each bucket as its own group.
                let mut grouped = std::mem::take(&mut self.arena.grouped);
                grouped.clear();
                grouped.extend_from_slice(&act);
                grouped.sort_unstable_by_key(|&l| (self.arena.pc[l as usize], l));
                let mut i = 0;
                while i < grouped.len() {
                    let word = self.arena.pc[grouped[i] as usize];
                    let mut j = i + 1;
                    while j < grouped.len() && self.arena.pc[grouped[j] as usize] == word {
                        j += 1;
                    }
                    self.exec_word(program, word as usize, &grouped[i..j], &mut faults, false);
                    i = j;
                }
                self.arena.grouped = grouped;
            }
            // Retire: halts win over budget exhaustion, like scalar
            // `run`'s halt-then-budget check order.
            let mut act = act;
            act.retain(|&lane| {
                let l = lane as usize;
                if !self.arena.alive[l] {
                    return false;
                }
                if self.arena.halted[l] {
                    self.arena.alive[l] = false;
                    return false;
                }
                if self.arena.cycle[l] >= self.arena.max_cycles[l] {
                    self.arena.errs[l] = Some(SimError::CycleLimit {
                        limit: self.arena.max_cycles[l],
                    });
                    self.arena.alive[l] = false;
                    return false;
                }
                true
            });
            self.arena.active = act;
        }

        if recording {
            let total_cycles: u64 = self.arena.c_cycles[..nl].iter().sum();
            self.recorder.add("vsp_batch_runs_total", &[], nl as u64);
            self.recorder.add("vsp_batch_steps_total", &[], super_steps);
            self.recorder
                .add("vsp_batch_lane_words_total", &[], lane_words);
            self.recorder
                .add("vsp_batch_cycles_total", &[], total_cycles);
            if let Some(t0) = started {
                let wall = t0.elapsed().as_secs_f64();
                if wall > 0.0 {
                    self.recorder.gauge(
                        "vsp_batch_cycles_per_sec",
                        &[],
                        total_cycles as f64 / wall,
                    );
                }
            }
        }
        faults
    }

    /// Broadcasts the shared uniform-lockstep timing state into every
    /// live lane's per-lane pools so the general executor can take
    /// over mid-batch. Runs at most once per batch, on the first
    /// divergence; dead lanes keep their state-at-death untouched.
    fn flush_uniform(&mut self, lanes: &[u32]) {
        let BatchArena {
            nl,
            reg_ready,
            pred_ready,
            itags,
            cycle,
            c_cycles,
            drained_through,
            redirect,
            ring_data,
            ring_len,
            ring_cap,
            pending_count,
            far,
            uniform,
            u_cycle,
            u_drained,
            u_redirect,
            u_reg_ready,
            u_pred_ready,
            u_itags,
            u_ring_key,
            u_ring_len,
            u_ring_val,
            u_cap,
            u_pending,
            u_far,
            ..
        } = &mut self.arena;
        let nl = *nl;
        for (idx, &at) in u_reg_ready.iter().enumerate() {
            let row = idx * nl;
            for_each_run(lanes, |lo, hi| reg_ready[row + lo..row + hi].fill(at));
        }
        for (idx, &at) in u_pred_ready.iter().enumerate() {
            let row = idx * nl;
            for_each_run(lanes, |lo, hi| pred_ready[row + lo..row + hi].fill(at));
        }
        for (t, &tag) in u_itags.iter().enumerate() {
            let row = t * nl;
            for_each_run(lanes, |lo, hi| itags[row + lo..row + hi].fill(tag));
        }
        for_each_run(lanes, |lo, hi| {
            cycle[lo..hi].fill(*u_cycle);
            c_cycles[lo..hi].fill(*u_cycle);
            drained_through[lo..hi].fill(*u_drained);
            redirect[lo..hi].fill(*u_redirect);
        });
        // Convert the shared pending ring (shared keys, per-lane value
        // rows) into the per-lane rings, preserving push order. The
        // per-lane rings are untouched while uniform mode holds, so
        // every slot starts empty here.
        if *ring_cap < *u_cap {
            *ring_cap = *u_cap;
        }
        ring_data.resize(nl * PENDING_SLOTS * *ring_cap, (0, 0));
        for s in 0..PENDING_SLOTS {
            for j in 0..usize::from(u_ring_len[s]) {
                let key = u_ring_key[s * *u_cap + j];
                let vrow = (s * *u_cap + j) * nl;
                for &lane in lanes {
                    let l = lane as usize;
                    ring_data[(l * PENDING_SLOTS + s) * *ring_cap + j] =
                        (key, u_ring_val[vrow + l]);
                }
            }
        }
        for &lane in lanes {
            let l = lane as usize;
            for s in 0..PENDING_SLOTS {
                ring_len[l * PENDING_SLOTS + s] = u_ring_len[s];
            }
            pending_count[l] = *u_pending;
        }
        for (at, entries) in u_far.iter() {
            for &lane in lanes {
                let l = lane as usize;
                let list = far[l].entry(*at).or_default();
                for (key, vals) in entries {
                    list.push(if key & 1 == 0 {
                        LaneCommit::Reg(key >> 1, vals[l])
                    } else {
                        LaneCommit::Pred(key >> 1, vals[l] != 0)
                    });
                }
            }
        }
        u_ring_len.fill(0);
        *u_pending = 0;
        u_far.clear();
        *uniform = false;
    }

    /// Executes one word for the whole batch under uniform lockstep:
    /// fetch, scoreboard checks, write-port arbitration, and branch
    /// resolution run ONCE on the shared timing state, and only the
    /// data computation touches per-lane rows (in storage order, so
    /// the hot loops vectorize). Any condition whose outcome could
    /// differ between lanes — a non-uniform guard or branch predicate
    /// row, a hazard or write-port conflict — flushes the shared state
    /// into the per-lane pools and replays this word on the general
    /// executor, which then owns the rest of the batch.
    #[allow(clippy::too_many_lines)]
    fn exec_word_uniform<F: FaultModel>(
        &mut self,
        prog: &DecodedProgram,
        word: usize,
        lanes: &[u32],
        faults: &mut [F],
    ) {
        let policy = self.policy;
        let delay_slots = self.machine.pipeline.branch_delay_slots;
        let irefill = u64::from(self.machine.icache_refill_cycles);
        let diverge = 'word: {
            let BatchArena {
                nl,
                nc,
                nr,
                np,
                nb,
                stride,
                icap,
                plen,
                regs,
                preds,
                mems,
                mem_active,
                mem_off,
                bank_words,
                mems_dirty,
                mem_row_flag,
                mem_row_off,
                pc,
                cycle,
                halted,
                alive,
                errs,
                c_icache_miss,
                c_icache_stall,
                c_annulled,
                c_loads,
                c_stores,
                c_xfers,
                c_words,
                c_bubbles,
                c_taken,
                c_cycles,
                util_hist,
                hist_bins,
                class_ops,
                cluster_ops,
                nclass,
                agg_issued,
                agg_class,
                agg_cluster,
                upre_class,
                upre_cluster,
                st,
                st_len,
                exec,
                u_cycle,
                u_drained,
                u_redirect,
                u_reg_ready,
                u_pred_ready,
                u_itags,
                u_ring_key,
                u_ring_len,
                u_ring_val,
                u_cap,
                u_pending,
                u_far,
                u_wr,
                u_wp,
                u_ann,
                u_dest_r,
                u_dest_p,
                u_ovl,
                u_farmeta,
                u_farbuf,
                u_sw,
                u_gclass,
                u_gcluster,
                ..
            } = &mut self.arena;
            let (nl, nc, nr, np, nb, stride, icap, plen, hist_bins, nclass) = (
                *nl, *nc, *nr, *np, *nb, *stride, *icap, *plen, *hist_bins, *nclass,
            );
            debug_assert!(lanes.iter().all(|&l| pc[l as usize] as usize == word));

            // ---- Shared fetch ----
            if word >= plen {
                for &lane in lanes {
                    let l = lane as usize;
                    errs[l] = Some(SimError::RanOffEnd { cycle: *u_cycle });
                    alive[l] = false;
                }
                break 'word false;
            }
            let tag = &mut u_itags[word % icap];
            if *tag != word as u32 {
                *tag = word as u32;
                *u_cycle += irefill;
                for_each_run(lanes, |lo, hi| {
                    for v in &mut c_icache_miss[lo..hi] {
                        *v += 1;
                    }
                    for v in &mut c_icache_stall[lo..hi] {
                        *v += irefill;
                    }
                });
            }
            // ---- Shared commit drain: one row copy per due entry ----
            if *u_pending > 0 {
                let span = (*u_cycle - *u_drained).min(PENDING_SLOTS as u64);
                for cyc in (*u_cycle + 1 - span)..=*u_cycle {
                    let s = (cyc % PENDING_SLOTS as u64) as usize;
                    let n = usize::from(u_ring_len[s]);
                    if n == 0 {
                        continue;
                    }
                    u_ring_len[s] = 0;
                    *u_pending -= n as u32;
                    for j in 0..n {
                        let key = u_ring_key[s * *u_cap + j];
                        let vrow = (s * *u_cap + j) * nl;
                        let drow = (key >> 1) as usize * nl;
                        if key & 1 == 0 {
                            for_each_run(lanes, |lo, hi| {
                                regs[drow + lo..drow + hi]
                                    .copy_from_slice(&u_ring_val[vrow + lo..vrow + hi]);
                            });
                        } else {
                            for_each_run(lanes, |lo, hi| {
                                for l in lo..hi {
                                    preds[drow + l] = u_ring_val[vrow + l] != 0;
                                }
                            });
                        }
                    }
                }
            }
            *u_drained = *u_cycle;
            while let Some(entry) = u_far.first_entry() {
                if *entry.key() > *u_cycle {
                    break;
                }
                for (key, vals) in entry.remove() {
                    let drow = (key >> 1) as usize * nl;
                    if key & 1 == 0 {
                        for_each_run(lanes, |lo, hi| {
                            regs[drow + lo..drow + hi].copy_from_slice(&vals[lo..hi]);
                        });
                    } else {
                        for_each_run(lanes, |lo, hi| {
                            for l in lo..hi {
                                preds[drow + l] = vals[l] != 0;
                            }
                        });
                    }
                }
            }
            let cyc = *u_cycle;

            // ---- Shared meta pass: guards, hazards, branch/halt ----
            u_wr.clear();
            u_wp.clear();
            u_ann.clear();
            u_dest_r.clear();
            u_dest_p.clear();
            u_ovl.clear();
            u_farmeta.clear();
            u_farbuf.clear();
            u_sw.clear();
            u_gclass.fill(0);
            u_gcluster.fill(0);
            let mut n_ann = 0u32;
            let mut n_guard_issued = 0u32;
            let mut taken = false;
            let mut target = 0u32;
            let mut halt = false;
            let in_shadow_u = u_redirect.is_some();
            let l0 = lanes[0] as usize;
            let mut div = false;
            for i in prog.word_range(word) {
                let op = prog.op(i);
                let c = op.cluster as usize;
                // A predicate row is usable only when every live lane
                // agrees on its value AND it is hazard-free; otherwise
                // lanes would annul or branch differently and timing
                // diverges. `break` leaves the meta loop with `div`
                // set, which hands the word to the general executor.
                macro_rules! pred_row {
                    ($pidx:expr) => {{
                        let pidx = $pidx;
                        if policy == HazardPolicy::Fault && u_pred_ready[pidx] > cyc {
                            div = true;
                            break;
                        }
                        let row = pidx * nl;
                        let v0 = preds[row + l0];
                        let mut uni = true;
                        for_each_run(lanes, |lo, hi| {
                            for &b in &preds[row + lo..row + hi] {
                                uni &= b == v0;
                            }
                        });
                        if !uni {
                            div = true;
                            break;
                        }
                        v0
                    }};
                }
                macro_rules! rchk {
                    ($idx:expr) => {
                        if policy == HazardPolicy::Fault && u_reg_ready[$idx] > cyc {
                            div = true;
                            break;
                        }
                    };
                }
                macro_rules! ochk {
                    ($o:expr) => {
                        if let DOperand::Reg(r) = $o {
                            rchk!(c * nr + r as usize);
                        }
                    };
                }
                macro_rules! achk {
                    ($a:expr) => {
                        match $a {
                            DAddr::Abs(_) => {}
                            DAddr::Reg(r) | DAddr::BaseDisp(r, _) => rchk!(c * nr + r as usize),
                            DAddr::Indexed(r, r2) => {
                                rchk!(c * nr + r as usize);
                                rchk!(c * nr + r2 as usize);
                            }
                        }
                    };
                }
                if op.guard_pred != NO_GUARD {
                    let v0 = pred_row!(c * np + op.guard_pred as usize);
                    if v0 != op.guard_sense {
                        u_ann.push(1);
                        n_ann += 1;
                        continue;
                    }
                    if let Some(class) = op.class {
                        u_gclass[class as usize] += 1;
                        u_gcluster[c] += 1;
                        n_guard_issued += 1;
                    }
                }
                u_ann.push(0);
                match op.kind {
                    DKind::AluBin { a, b, dst, .. }
                    | DKind::Shift { a, b, dst, .. }
                    | DKind::Mul { a, b, dst, .. } => {
                        ochk!(a);
                        ochk!(b);
                        u_wr.push(((c * nr + dst as usize) as u32, op.latency));
                    }
                    DKind::AluUn { a, dst, .. } => {
                        ochk!(a);
                        u_wr.push(((c * nr + dst as usize) as u32, op.latency));
                    }
                    DKind::Cmp { a, b, dst, .. } => {
                        ochk!(a);
                        ochk!(b);
                        u_wp.push(((c * np + dst as usize) as u32, op.latency));
                    }
                    DKind::Load { addr, dst, .. } => {
                        achk!(addr);
                        u_wr.push(((c * nr + dst as usize) as u32, op.latency));
                    }
                    DKind::Store { src, addr, .. } => {
                        achk!(addr);
                        ochk!(src);
                    }
                    DKind::Xfer { from, src, dst } => {
                        rchk!(from as usize * nr + src as usize);
                        u_wr.push(((c * nr + dst as usize) as u32, op.latency));
                    }
                    DKind::Branch {
                        pred,
                        sense,
                        target: t,
                    } => {
                        let v0 = pred_row!(c * np + pred as usize);
                        if v0 == sense {
                            taken = true;
                            target = t;
                        }
                    }
                    DKind::Jump { target: t } => {
                        taken = true;
                        target = t;
                    }
                    DKind::Halt => halt = true,
                    DKind::Swap { bank } => u_sw.push((c * nb + bank as usize) as u32),
                    DKind::Nop => {}
                }
            }
            if div {
                break 'word true;
            }

            // Write-port arbitration on the shared scoreboards, in the
            // general path's order: every register write, then every
            // predicate write. A conflict kills all lanes identically,
            // which the general replay reproduces entry by entry.
            for &(idx, lat) in u_wr.iter() {
                let at = cyc + u64::from(lat);
                let key = idx << 1;
                let ready = ovl_get(u_ovl, key, u_reg_ready[idx as usize]);
                if lat > 0 && ready == at && policy == HazardPolicy::Fault {
                    div = true;
                    break;
                }
                ovl_set(u_ovl, key, ready.max(at));
            }
            if !div {
                for &(idx, lat) in u_wp.iter() {
                    let at = cyc + u64::from(lat);
                    let key = (idx << 1) | 1;
                    let ready = ovl_get(u_ovl, key, u_pred_ready[idx as usize]);
                    if lat > 0 && ready == at && policy == HazardPolicy::Fault {
                        div = true;
                        break;
                    }
                    ovl_set(u_ovl, key, ready.max(at));
                }
            }
            if div {
                break 'word true;
            }
            for &(key, at) in u_ovl.iter() {
                if key & 1 == 0 {
                    u_reg_ready[(key >> 1) as usize] = at;
                } else {
                    u_pred_ready[(key >> 1) as usize] = at;
                }
            }
            // Assign each write its destination row: a shared pending
            // ring slot for in-window latencies, a far-commit buffer
            // row otherwise (including latency 0, like the general
            // path, so it lands at the next drain).
            macro_rules! assign_slots {
                ($list:expr, $dests:expr, $tag:expr) => {
                    for &(idx, lat) in $list.iter() {
                        let at = cyc + u64::from(lat);
                        if (1..=PENDING_SLOTS as u32).contains(&lat) {
                            let s = (at % PENDING_SLOTS as u64) as usize;
                            let mut j = usize::from(u_ring_len[s]);
                            if j >= *u_cap {
                                let ncap = (*u_cap * 2).max(4);
                                let mut nk = vec![0u32; PENDING_SLOTS * ncap];
                                let mut nv = vec![0i16; PENDING_SLOTS * ncap * nl];
                                for s2 in 0..PENDING_SLOTS {
                                    let m = usize::from(u_ring_len[s2]);
                                    nk[s2 * ncap..s2 * ncap + m]
                                        .copy_from_slice(&u_ring_key[s2 * *u_cap..s2 * *u_cap + m]);
                                    nv[s2 * ncap * nl..(s2 * ncap + m) * nl].copy_from_slice(
                                        &u_ring_val[s2 * *u_cap * nl..(s2 * *u_cap + m) * nl],
                                    );
                                }
                                *u_ring_key = nk;
                                *u_ring_val = nv;
                                *u_cap = ncap;
                                j = usize::from(u_ring_len[s]);
                            }
                            u_ring_key[s * *u_cap + j] = (idx << 1) | $tag;
                            u_ring_len[s] += 1;
                            *u_pending += 1;
                            $dests.push(((s as u32) << 24) | j as u32);
                        } else {
                            let frow = (u_farbuf.len() / nl) as u32;
                            u_farbuf.resize(u_farbuf.len() + nl, 0);
                            u_farmeta.push((at, (idx << 1) | $tag, frow));
                            $dests.push(FAR_BIT | frow);
                        }
                    }
                };
            }
            assign_slots!(u_wr, u_dest_r, 0);
            assign_slots!(u_wp, u_dest_p, 1);

            // ---- Per-lane data pass: row loops in storage order ----
            let mut cur_r = 0usize;
            let mut cur_p = 0usize;
            let mut n_loads = 0u32;
            let mut n_stores = 0u32;
            let mut n_xfers = 0u32;
            let mut ann_pre = 0u32;
            let mut killed_any = false;
            for (k, i) in prog.word_range(word).enumerate() {
                if u_ann[k] == 1 {
                    ann_pre += 1;
                    continue;
                }
                let op = prog.op(i);
                let c = op.cluster as usize;
                macro_rules! out_row {
                    ($dest:expr) => {{
                        let d = $dest;
                        if d & FAR_BIT != 0 {
                            &mut u_farbuf[(d & !FAR_BIT) as usize * nl..][..nl]
                        } else {
                            let s = (d >> 24) as usize;
                            let j = (d & 0x00ff_ffff) as usize;
                            &mut u_ring_val[(s * *u_cap + j) * nl..][..nl]
                        }
                    }};
                }
                macro_rules! rowv {
                    ($o:expr) => {
                        match $o {
                            DOperand::Reg(r) => {
                                RowV::Row(&regs[(c * nr + r as usize) * nl..][..nl])
                            }
                            DOperand::Imm(v) => RowV::Imm(v),
                        }
                    };
                }
                // Per-lane mid-word death (memory out of range): credit
                // exactly what the general path's incremental counting
                // would have given the lane before the kill — its
                // loads/stores/xfers/annuls so far (exclusive), the
                // unguarded issue prefix (inclusive of this op), and
                // the guarded ops issued earlier this word.
                macro_rules! killu {
                    ($l:expr, $e:expr) => {{
                        let l = $l;
                        errs[l] = Some($e);
                        alive[l] = false;
                        killed_any = true;
                        cycle[l] = cyc;
                        c_loads[l] += u64::from(n_loads);
                        c_stores[l] += u64::from(n_stores);
                        c_xfers[l] += u64::from(n_xfers);
                        c_annulled[l] += u64::from(ann_pre);
                        for kk in 0..nclass {
                            class_ops[kk * nl + l] += u64::from(upre_class[i * nclass + kk]);
                        }
                        for cc in 0..nc {
                            cluster_ops[cc * nl + l] += u64::from(upre_cluster[i * nc + cc]);
                        }
                        for (k2, i2) in prog.word_range(word).enumerate() {
                            if i2 >= i {
                                break;
                            }
                            if u_ann[k2] == 1 {
                                continue;
                            }
                            let op2 = prog.op(i2);
                            if op2.guard_pred != NO_GUARD {
                                if let Some(cl2) = op2.class {
                                    class_ops[cl2 as usize * nl + l] += 1;
                                    cluster_ops[op2.cluster as usize * nl + l] += 1;
                                }
                            }
                        }
                        continue;
                    }};
                }
                match op.kind {
                    DKind::AluBin { op: f, a, b, .. } => {
                        let out = out_row!(u_dest_r[cur_r]);
                        cur_r += 1;
                        let (av, bv) = (rowv!(a), rowv!(b));
                        unswitch2!(
                            f,
                            out,
                            lanes,
                            av,
                            bv,
                            semantics::alu_bin,
                            AluBinOp,
                            [Add, Sub, And, Or, Xor, Min, Max, AbsDiff]
                        );
                    }
                    DKind::AluUn { op: f, a, .. } => {
                        let out = out_row!(u_dest_r[cur_r]);
                        cur_r += 1;
                        let av = rowv!(a);
                        unswitch1!(
                            f,
                            out,
                            lanes,
                            av,
                            semantics::alu_un,
                            AluUnOp,
                            [Mov, Abs, Neg, Not, SextB, ZextB]
                        );
                    }
                    DKind::Shift { op: f, a, b, .. } => {
                        let out = out_row!(u_dest_r[cur_r]);
                        cur_r += 1;
                        let (av, bv) = (rowv!(a), rowv!(b));
                        unswitch2!(
                            f,
                            out,
                            lanes,
                            av,
                            bv,
                            semantics::shift,
                            ShiftOp,
                            [Shl, ShrL, ShrA]
                        );
                    }
                    DKind::Mul { kind, a, b, .. } => {
                        let out = out_row!(u_dest_r[cur_r]);
                        cur_r += 1;
                        let (av, bv) = (rowv!(a), rowv!(b));
                        unswitch2!(
                            kind,
                            out,
                            lanes,
                            av,
                            bv,
                            semantics::mul,
                            MulKind,
                            [Mul8SS, Mul8UU, Mul8SU, Mul16Lo, Mul16Hi]
                        );
                    }
                    DKind::Cmp { op: f, a, b, .. } => {
                        let out = out_row!(u_dest_p[cur_p]);
                        cur_p += 1;
                        let (av, bv) = (rowv!(a), rowv!(b));
                        unswitch2!(
                            f,
                            out,
                            lanes,
                            av,
                            bv,
                            cmp_i16,
                            CmpOp,
                            [Eq, Ne, Lt, Le, Gt, Ge]
                        );
                    }
                    DKind::Load { addr, bank, .. } => {
                        let out = out_row!(u_dest_r[cur_r]);
                        cur_r += 1;
                        let cb = c * nb + bank as usize;
                        let words = bank_words[cb];
                        let off = mem_off[cb];
                        macro_rules! load_run {
                            ($af:expr) => {{
                                let af = $af;
                                for_each_run(lanes, |lo, hi| {
                                    for l in lo..hi {
                                        if !alive[l] {
                                            continue;
                                        }
                                        let adr = u32::from(af(l));
                                        if adr >= words {
                                            killu!(
                                                l,
                                                SimError::MemOutOfRange {
                                                    cycle: cyc,
                                                    cluster: op.cluster,
                                                    bank,
                                                    addr: adr,
                                                    words,
                                                }
                                            );
                                        }
                                        let buf = mem_active[cb * nl + l] as usize;
                                        out[l] = mems
                                            [off + (buf * words as usize + adr as usize) * nl + l];
                                    }
                                });
                            }};
                        }
                        match addr {
                            DAddr::Abs(a2) => load_run!(move |_l: usize| a2),
                            DAddr::Reg(r) => {
                                let base = (c * nr + r as usize) * nl;
                                load_run!(|l: usize| regs[base + l] as u16);
                            }
                            DAddr::BaseDisp(r, d) => {
                                let base = (c * nr + r as usize) * nl;
                                load_run!(|l: usize| regs[base + l].wrapping_add(d) as u16);
                            }
                            DAddr::Indexed(r, r2) => {
                                let b1 = (c * nr + r as usize) * nl;
                                let b2 = (c * nr + r2 as usize) * nl;
                                load_run!(|l: usize| regs[b1 + l].wrapping_add(regs[b2 + l]) as u16);
                            }
                        }
                        n_loads += 1;
                    }
                    DKind::Store { src, addr, bank } => {
                        let cb = c * nb + bank as usize;
                        let words = bank_words[cb];
                        macro_rules! store_run {
                            ($af:expr, $vf:expr) => {{
                                let af = $af;
                                let vf = $vf;
                                for_each_run(lanes, |lo, hi| {
                                    for l in lo..hi {
                                        if !alive[l] {
                                            continue;
                                        }
                                        let adr = u32::from(af(l));
                                        let v = vf(l);
                                        if adr >= words {
                                            killu!(
                                                l,
                                                SimError::MemOutOfRange {
                                                    cycle: cyc,
                                                    cluster: op.cluster,
                                                    bank,
                                                    addr: adr,
                                                    words,
                                                }
                                            );
                                        }
                                        st[l * stride + st_len[l] as usize] = (cb as u32, adr, v);
                                        st_len[l] += 1;
                                    }
                                });
                            }};
                        }
                        macro_rules! with_vf {
                            ($vf:expr) => {
                                match addr {
                                    DAddr::Abs(a2) => store_run!(move |_l: usize| a2, $vf),
                                    DAddr::Reg(r) => {
                                        let base = (c * nr + r as usize) * nl;
                                        store_run!(|l: usize| regs[base + l] as u16, $vf)
                                    }
                                    DAddr::BaseDisp(r, d) => {
                                        let base = (c * nr + r as usize) * nl;
                                        store_run!(
                                            |l: usize| regs[base + l].wrapping_add(d) as u16,
                                            $vf
                                        )
                                    }
                                    DAddr::Indexed(r, r2) => {
                                        let b1 = (c * nr + r as usize) * nl;
                                        let b2 = (c * nr + r2 as usize) * nl;
                                        store_run!(
                                            |l: usize| {
                                                regs[b1 + l].wrapping_add(regs[b2 + l]) as u16
                                            },
                                            $vf
                                        )
                                    }
                                }
                            };
                        }
                        match src {
                            DOperand::Reg(r) => {
                                let vbase = (c * nr + r as usize) * nl;
                                with_vf!(|l: usize| regs[vbase + l]);
                            }
                            DOperand::Imm(v) => with_vf!(move |_l: usize| v),
                        }
                        n_stores += 1;
                    }
                    DKind::Xfer { from, src, .. } => {
                        let out = out_row!(u_dest_r[cur_r]);
                        cur_r += 1;
                        let srow = (from as usize * nr + src as usize) * nl;
                        for_each_run(lanes, |lo, hi| {
                            out[lo..hi].copy_from_slice(&regs[srow + lo..srow + hi]);
                        });
                        n_xfers += 1;
                    }
                    DKind::Branch { .. }
                    | DKind::Jump { .. }
                    | DKind::Halt
                    | DKind::Swap { .. }
                    | DKind::Nop => {}
                }
            }
            // Materialize far commits (reg order then pred order, as
            // the general path pushes them).
            for &(at, key, frow) in u_farmeta.iter() {
                let row = frow as usize * nl;
                u_far
                    .entry(at)
                    .or_default()
                    .push((key, u_farbuf[row..row + nl].to_vec()));
            }

            // ---- Shared tail: stores, swaps, counters, control ----
            let live: &[u32] = if killed_any {
                exec.clear();
                for &lane in lanes {
                    if alive[lane as usize] {
                        exec.push(lane);
                    }
                }
                exec
            } else {
                lanes
            };
            if live.is_empty() {
                break 'word false;
            }
            if n_stores > 0 {
                for &lane in live {
                    let l = lane as usize;
                    for si in 0..st_len[l] as usize {
                        let (cb, a, v) = st[l * stride + si];
                        let cb = cb as usize;
                        let buf = mem_active[cb * nl + l] as usize;
                        let words = bank_words[cb] as usize;
                        let bufw = buf * words + a as usize;
                        mems[mem_off[cb] + bufw * nl + l] = v;
                        let flag = &mut mem_row_flag[mem_row_off[cb] + bufw];
                        if *flag == 0 {
                            *flag = 1;
                            mems_dirty.push((cb as u32, bufw as u32));
                        }
                    }
                    st_len[l] = 0;
                }
            }
            for &cb in u_sw.iter() {
                let row = cb as usize * nl;
                for_each_run(live, |lo, hi| {
                    for v in &mut mem_active[row + lo..row + hi] {
                        *v ^= 1;
                    }
                });
            }
            macro_rules! bump {
                ($arr:expr, $n:expr) => {{
                    let n = $n;
                    if n > 0 {
                        for_each_run(live, |lo, hi| {
                            for v in &mut $arr[lo..hi] {
                                *v += n;
                            }
                        });
                    }
                }};
            }
            bump!(c_words, 1u64);
            bump!(c_loads, u64::from(n_loads));
            bump!(c_stores, u64::from(n_stores));
            bump!(c_xfers, u64::from(n_xfers));
            bump!(c_annulled, u64::from(ann_pre));
            for k in 0..nclass {
                let n = u64::from(agg_class[word * nclass + k]) + u64::from(u_gclass[k]);
                if n > 0 {
                    let row = k * nl;
                    for_each_run(live, |lo, hi| {
                        for v in &mut class_ops[row + lo..row + hi] {
                            *v += n;
                        }
                    });
                }
            }
            for c in 0..nc {
                let an = agg_cluster[word * nc + c] + u_gcluster[c];
                if an > 0 {
                    let row = c * nl;
                    for_each_run(live, |lo, hi| {
                        for v in &mut cluster_ops[row + lo..row + hi] {
                            *v += u64::from(an);
                        }
                    });
                    let hrow = (c * hist_bins + an as usize) * nl;
                    for_each_run(live, |lo, hi| {
                        for v in &mut util_hist[hrow + lo..hrow + hi] {
                            *v += 1;
                        }
                    });
                }
            }
            let wi = agg_issued[word] + n_guard_issued + n_ann;
            if in_shadow_u && wi == 0 {
                bump!(c_bubbles, 1u64);
            }
            if halt {
                for_each_run(live, |lo, hi| halted[lo..hi].fill(true));
            }
            if taken {
                bump!(c_taken, 1u64);
                *u_redirect = Some((target, delay_slots));
            }
            let new_pc = match *u_redirect {
                Some((t, 0)) => {
                    *u_redirect = None;
                    t
                }
                Some((t, n2)) => {
                    *u_redirect = Some((t, n2 - 1));
                    word as u32 + 1
                }
                None => word as u32 + 1,
            };
            *u_cycle = cyc + 1;
            for_each_run(live, |lo, hi| {
                pc[lo..hi].fill(new_pc);
                cycle[lo..hi].fill(cyc + 1);
                c_cycles[lo..hi].fill(cyc + 1);
            });
            false
        };
        if diverge {
            // At most once per batch: uniform lockstep never resumes,
            // so this counts batches that fell off the shared-state
            // fast path onto the pc-grouped executor.
            self.recorder.add("vsp_batch_divergence_flushes", &[], 1);
            self.flush_uniform(lanes);
            self.exec_word(prog, word, lanes, faults, true);
        }
    }

    /// Applies one spec's initial state to its lane.
    fn stage_lane<F: FaultModel>(&mut self, lane: usize, spec: &RunSpec<F>) {
        let a = &mut self.arena;
        for &(c, r, v) in &spec.regs {
            let (c, r) = (c as usize, r.index());
            assert!(c < a.nc && r < a.nr, "initial register outside machine");
            a.regs[(c * a.nr + r) * a.nl + lane] = v;
        }
        for &(c, p, v) in &spec.preds {
            let (c, p) = (c as usize, p.index());
            assert!(c < a.nc && p < a.np, "initial predicate outside machine");
            a.preds[(c * a.np + p) * a.nl + lane] = v;
        }
        for &(c, b, addr, v) in &spec.mem {
            let (c, b) = (c as usize, b as usize);
            assert!(
                c < a.nc && b < a.nb && addr < a.bank_words[c * a.nb + b],
                "initial memory word outside machine"
            );
            // Staging targets the processing buffer, which is buffer 0
            // before the first swap.
            let cb = c * a.nb + b;
            a.mems[a.mem_off[cb] + addr as usize * a.nl + lane] = v;
            let flag = &mut a.mem_row_flag[a.mem_row_off[cb] + addr as usize];
            if *flag == 0 {
                *flag = 1;
                a.mems_dirty.push((cb as u32, addr));
            }
        }
    }

    /// Executes one instruction word for every lane in `lanes` (all at
    /// the same `word`), replicating `Simulator::step` exactly.
    ///
    /// `fetched` marks a replay from the uniform-lockstep path: the
    /// shared fetch (pc bounds, icache probe, commit drain) already
    /// ran once for every lane, so only the per-word scratch reset and
    /// the op phases execute.
    #[allow(clippy::too_many_lines)]
    fn exec_word<F: FaultModel>(
        &mut self,
        prog: &DecodedProgram,
        word: usize,
        lanes: &[u32],
        faults: &mut [F],
        fetched: bool,
    ) {
        let policy = self.policy;
        let delay_slots = self.machine.pipeline.branch_delay_slots;
        let irefill = u64::from(self.machine.icache_refill_cycles);
        let BatchArena {
            nl,
            nc,
            nr,
            np,
            nb,
            stride,
            icap,
            plen,
            regs,
            reg_ready,
            preds,
            pred_ready,
            mems,
            mem_active,
            mem_off,
            bank_words,
            mems_dirty,
            mem_row_flag,
            mem_row_off,
            itags,
            pc,
            cycle,
            halted,
            alive,
            redirect,
            errs,
            c_icache_miss,
            c_icache_stall,
            c_fault_inj,
            c_annulled,
            c_loads,
            c_stores,
            c_xfers,
            c_words,
            c_bubbles,
            c_taken,
            c_cycles,
            util_hist,
            hist_bins,
            class_ops,
            cluster_ops,
            word_cluster_ops,
            ring_data,
            ring_len,
            ring_cap,
            pending_count,
            drained_through,
            far,
            nclass,
            agg_issued,
            agg_class,
            agg_cluster,
            upre_class,
            upre_cluster,
            rw,
            rw_len,
            pw,
            pw_len,
            st,
            st_len,
            sw,
            sw_len,
            word_issued,
            branch_to,
            branch_set,
            halt_flag,
            in_shadow,
            exec,
            ..
        } = &mut self.arena;
        let (nl, nc, nr, np, nb, stride, icap, plen, hist_bins, nclass) = (
            *nl, *nc, *nr, *np, *nb, *stride, *icap, *plen, *hist_bins, *nclass,
        );

        // Fetch + commit-drain + per-word scratch reset, per lane.
        for &lane in lanes {
            let l = lane as usize;
            if !fetched {
                if pc[l] as usize >= plen {
                    errs[l] = Some(SimError::RanOffEnd { cycle: cycle[l] });
                    alive[l] = false;
                    continue;
                }
                let tag = &mut itags[(pc[l] as usize % icap) * nl + l];
                if *tag != pc[l] {
                    *tag = pc[l];
                    c_icache_miss[l] += 1;
                    c_icache_stall[l] += irefill;
                    cycle[l] += irefill;
                }
                if faults[l].enabled() {
                    let jitter = faults[l].fetch_jitter(cycle[l], pc[l]);
                    if jitter > 0 {
                        c_icache_stall[l] += u64::from(jitter);
                        c_fault_inj[l] += 1;
                        cycle[l] += u64::from(jitter);
                    }
                }
                // Apply all commits due at or before this cycle (the ring
                // drain mirrors `Simulator::apply_commits`).
                if pending_count[l] > 0 {
                    let span = (cycle[l] - drained_through[l]).min(PENDING_SLOTS as u64);
                    for c in (cycle[l] + 1 - span)..=cycle[l] {
                        let rs = l * PENDING_SLOTS + (c % PENDING_SLOTS as u64) as usize;
                        let n = ring_len[rs] as usize;
                        if n == 0 {
                            continue;
                        }
                        ring_len[rs] = 0;
                        pending_count[l] -= n as u32;
                        let base = rs * *ring_cap;
                        for &(key, v) in &ring_data[base..base + n] {
                            if key & 1 == 0 {
                                regs[(key >> 1) as usize * nl + l] = v;
                            } else {
                                preds[(key >> 1) as usize * nl + l] = v != 0;
                            }
                        }
                    }
                }
                drained_through[l] = cycle[l];
                while let Some(entry) = far[l].first_entry() {
                    if *entry.key() > cycle[l] {
                        break;
                    }
                    for commit in entry.remove() {
                        match commit {
                            LaneCommit::Reg(idx, v) => regs[idx as usize * nl + l] = v,
                            LaneCommit::Pred(idx, v) => preds[idx as usize * nl + l] = v,
                        }
                    }
                }
            }
            rw_len[l] = 0;
            pw_len[l] = 0;
            st_len[l] = 0;
            sw_len[l] = 0;
            word_issued[l] = agg_issued[word];
            branch_set[l] = false;
            halt_flag[l] = false;
            in_shadow[l] = redirect[l].is_some();
        }

        // Kills a lane with the exact scalar error; expands inside the
        // per-lane loops, so `continue` skips to the next lane.
        // Indexed register read with hazard check + fault hook, the
        // SoA twin of `Simulator::read_reg_idx`.
        macro_rules! read_reg {
            ($l:expr, $cl:expr, $r:expr) => {{
                let idx = $cl as usize * nr + $r as usize;
                let ready = reg_ready[idx * nl + $l];
                if ready > cycle[$l] && policy == HazardPolicy::Fault {
                    kill!(
                        $l,
                        SimError::PrematureRead {
                            cycle: cycle[$l],
                            word,
                            cluster: $cl,
                            reg: Reg($r),
                            ready_at: ready,
                        }
                    );
                }
                let v = regs[idx * nl + $l];
                if faults[$l].enabled() {
                    let f = faults[$l].on_reg_read(cycle[$l], $cl, $r, v);
                    if f != v {
                        c_fault_inj[$l] += 1;
                    }
                    f
                } else {
                    v
                }
            }};
        }
        macro_rules! read_operand {
            ($l:expr, $cl:expr, $o:expr) => {
                match $o {
                    DOperand::Reg(r) => read_reg!($l, $cl, r),
                    DOperand::Imm(v) => v,
                }
            };
        }
        macro_rules! eff_addr {
            ($l:expr, $cl:expr, $a:expr) => {
                u32::from(match $a {
                    DAddr::Abs(a) => a,
                    DAddr::Reg(r) => read_reg!($l, $cl, r) as u16,
                    DAddr::BaseDisp(r, d) => (read_reg!($l, $cl, r)).wrapping_add(d) as u16,
                    DAddr::Indexed(r, s) => {
                        let base = read_reg!($l, $cl, r);
                        let idx = read_reg!($l, $cl, s);
                        base.wrapping_add(idx) as u16
                    }
                })
            };
        }
        macro_rules! push_rw {
            ($l:expr, $idx:expr, $v:expr, $lat:expr) => {{
                rw[$l * stride + rw_len[$l] as usize] = ($idx, $v, $lat);
                rw_len[$l] += 1;
            }};
        }

        // Flat-ring push; the grow path repacks every slot and should
        // never trigger with the `2 * stride` starting capacity.
        macro_rules! ring_push {
            ($l:expr, $at:expr, $key:expr, $v:expr) => {{
                let rs = $l * PENDING_SLOTS + ($at % PENDING_SLOTS as u64) as usize;
                let mut n = ring_len[rs] as usize;
                if n >= *ring_cap {
                    let ncap = (*ring_cap * 2).max(4);
                    let mut nd = vec![(0u32, 0i16); nl * PENDING_SLOTS * ncap];
                    for s in 0..nl * PENDING_SLOTS {
                        let m = ring_len[s] as usize;
                        nd[s * ncap..s * ncap + m]
                            .copy_from_slice(&ring_data[s * *ring_cap..s * *ring_cap + m]);
                    }
                    *ring_data = nd;
                    *ring_cap = ncap;
                    n = ring_len[rs] as usize;
                }
                ring_data[rs * *ring_cap + n] = ($key, $v);
                ring_len[rs] = n as u16 + 1;
                pending_count[$l] += 1;
            }};
        }

        // Phase 1, op-major: unguarded ops (the common case) execute
        // for every live lane, so their bookkeeping lives in the word
        // aggregates; only guarded ops walk a per-lane annul pass.
        for i in prog.word_range(word) {
            let op = prog.op(i);
            let c = op.cluster as usize;
            // Kills also credit the unguarded ops counted so far this
            // word (inclusive of the current op `i`), mirroring the
            // scalar path's incremental counting: surviving lanes get
            // the same totals from the word aggregate in phase 2
            // instead. Defined here so the expansion sees `i`.
            macro_rules! kill {
                ($l:expr, $e:expr) => {{
                    errs[$l] = Some($e);
                    alive[$l] = false;
                    for k in 0..nclass {
                        class_ops[k * nl + $l] += u64::from(upre_class[i * nclass + k]);
                    }
                    for cc in 0..nc {
                        cluster_ops[cc * nl + $l] += u64::from(upre_cluster[i * nc + cc]);
                    }
                    continue;
                }};
            }
            let group: &[u32] = if op.guard_pred == NO_GUARD {
                lanes
            } else {
                exec.clear();
                for &lane in lanes.iter() {
                    let l = lane as usize;
                    if !alive[l] {
                        continue;
                    }
                    let pidx = c * np + op.guard_pred as usize;
                    let ready = pred_ready[pidx * nl + l];
                    if ready > cycle[l] && policy == HazardPolicy::Fault {
                        kill!(
                            l,
                            SimError::PrematureRead {
                                cycle: cycle[l],
                                word,
                                cluster: op.cluster,
                                reg: Reg(u16::from(op.guard_pred) | 0x8000),
                                ready_at: ready,
                            }
                        );
                    }
                    if preds[pidx * nl + l] != op.guard_sense {
                        c_annulled[l] += 1;
                        word_issued[l] += 1;
                        continue;
                    }
                    if let Some(class) = op.class {
                        class_ops[class as usize * nl + l] += 1;
                        cluster_ops[c * nl + l] += 1;
                        word_cluster_ops[c * nl + l] += 1;
                        word_issued[l] += 1;
                    }
                    exec.push(lane);
                }
                exec
            };
            match op.kind {
                DKind::AluBin { op: f, dst, a, b } => {
                    let ridx = (c * nr + dst as usize) as u32;
                    for &lane in group.iter() {
                        let l = lane as usize;
                        if !alive[l] {
                            continue;
                        }
                        let x = read_operand!(l, op.cluster, a);
                        let y = read_operand!(l, op.cluster, b);
                        push_rw!(l, ridx, semantics::alu_bin(f, x, y), op.latency);
                    }
                }
                DKind::AluUn { op: f, dst, a } => {
                    let ridx = (c * nr + dst as usize) as u32;
                    for &lane in group.iter() {
                        let l = lane as usize;
                        if !alive[l] {
                            continue;
                        }
                        let x = read_operand!(l, op.cluster, a);
                        push_rw!(l, ridx, semantics::alu_un(f, x), op.latency);
                    }
                }
                DKind::Shift { op: f, dst, a, b } => {
                    let ridx = (c * nr + dst as usize) as u32;
                    for &lane in group.iter() {
                        let l = lane as usize;
                        if !alive[l] {
                            continue;
                        }
                        let x = read_operand!(l, op.cluster, a);
                        let y = read_operand!(l, op.cluster, b);
                        push_rw!(l, ridx, semantics::shift(f, x, y), op.latency);
                    }
                }
                DKind::Mul { kind, dst, a, b } => {
                    let ridx = (c * nr + dst as usize) as u32;
                    for &lane in group.iter() {
                        let l = lane as usize;
                        if !alive[l] {
                            continue;
                        }
                        let x = read_operand!(l, op.cluster, a);
                        let y = read_operand!(l, op.cluster, b);
                        push_rw!(l, ridx, semantics::mul(kind, x, y), op.latency);
                    }
                }
                DKind::Cmp { op: f, dst, a, b } => {
                    let pidx = (c * np + dst as usize) as u32;
                    for &lane in group.iter() {
                        let l = lane as usize;
                        if !alive[l] {
                            continue;
                        }
                        let x = read_operand!(l, op.cluster, a);
                        let y = read_operand!(l, op.cluster, b);
                        pw[l * stride + pw_len[l] as usize] =
                            (pidx, semantics::cmp(f, x, y), op.latency);
                        pw_len[l] += 1;
                    }
                }
                DKind::Load { dst, addr, bank } => {
                    let ridx = (c * nr + dst as usize) as u32;
                    let cb = c * nb + bank as usize;
                    let words = bank_words[cb];
                    let off = mem_off[cb];
                    for &lane in group.iter() {
                        let l = lane as usize;
                        if !alive[l] {
                            continue;
                        }
                        let a = eff_addr!(l, op.cluster, addr);
                        if a >= words {
                            kill!(
                                l,
                                SimError::MemOutOfRange {
                                    cycle: cycle[l],
                                    cluster: op.cluster,
                                    bank,
                                    addr: a,
                                    words,
                                }
                            );
                        }
                        let buf = mem_active[cb * nl + l] as usize;
                        let v = mems[off + (buf * words as usize + a as usize) * nl + l];
                        c_loads[l] += 1;
                        let v = if faults[l].enabled() {
                            let f = faults[l].on_mem_read(cycle[l], op.cluster, bank, a, v);
                            if f != v {
                                c_fault_inj[l] += 1;
                            }
                            f
                        } else {
                            v
                        };
                        push_rw!(l, ridx, v, op.latency);
                    }
                }
                DKind::Store { src, addr, bank } => {
                    let cb = c * nb + bank as usize;
                    let words = bank_words[cb];
                    for &lane in group.iter() {
                        let l = lane as usize;
                        if !alive[l] {
                            continue;
                        }
                        let a = eff_addr!(l, op.cluster, addr);
                        let v = read_operand!(l, op.cluster, src);
                        if a >= words {
                            kill!(
                                l,
                                SimError::MemOutOfRange {
                                    cycle: cycle[l],
                                    cluster: op.cluster,
                                    bank,
                                    addr: a,
                                    words,
                                }
                            );
                        }
                        c_stores[l] += 1;
                        st[l * stride + st_len[l] as usize] = (cb as u32, a, v);
                        st_len[l] += 1;
                    }
                }
                DKind::Xfer { dst, from, src } => {
                    let ridx = (c * nr + dst as usize) as u32;
                    for &lane in group.iter() {
                        let l = lane as usize;
                        if !alive[l] {
                            continue;
                        }
                        let v = read_reg!(l, from, src);
                        c_xfers[l] += 1;
                        let v = if faults[l].enabled() {
                            let f = faults[l].on_xfer(cycle[l], from, op.cluster, src, v);
                            if f != v {
                                c_fault_inj[l] += 1;
                            }
                            f
                        } else {
                            v
                        };
                        push_rw!(l, ridx, v, op.latency);
                    }
                }
                DKind::Branch {
                    pred,
                    sense,
                    target,
                } => {
                    let pidx = c * np + pred as usize;
                    for &lane in group.iter() {
                        let l = lane as usize;
                        if !alive[l] {
                            continue;
                        }
                        let ready = pred_ready[pidx * nl + l];
                        if ready > cycle[l] && policy == HazardPolicy::Fault {
                            kill!(
                                l,
                                SimError::PrematureRead {
                                    cycle: cycle[l],
                                    word,
                                    cluster: op.cluster,
                                    reg: Reg(u16::from(pred) | 0x8000),
                                    ready_at: ready,
                                }
                            );
                        }
                        if preds[pidx * nl + l] == sense {
                            branch_set[l] = true;
                            branch_to[l] = target;
                        }
                    }
                }
                DKind::Jump { target } => {
                    for &lane in group.iter() {
                        let l = lane as usize;
                        if !alive[l] {
                            continue;
                        }
                        branch_set[l] = true;
                        branch_to[l] = target;
                    }
                }
                DKind::Halt => {
                    for &lane in group.iter() {
                        let l = lane as usize;
                        if alive[l] {
                            halt_flag[l] = true;
                        }
                    }
                }
                DKind::Swap { bank } => {
                    let cb = (c * nb + bank as usize) as u32;
                    for &lane in group.iter() {
                        let l = lane as usize;
                        if !alive[l] {
                            continue;
                        }
                        sw[l * stride + sw_len[l] as usize] = cb;
                        sw_len[l] += 1;
                    }
                }
                DKind::Nop => {}
            }
        }

        // Phase 2 + end of cycle, per lane: results enter the bypass
        // network (write-port check), stores and swaps become visible,
        // then the word/branch/redirect bookkeeping.
        for &lane in lanes {
            let l = lane as usize;
            if !alive[l] {
                continue;
            }
            let cyc = cycle[l];
            let base = l * stride;
            let mut failed = false;
            for &(ridx, v, lat) in &rw[base..base + rw_len[l] as usize] {
                let at = cyc + u64::from(lat);
                let ready = reg_ready[ridx as usize * nl + l];
                if lat > 0 && ready == at && policy == HazardPolicy::Fault {
                    errs[l] = Some(SimError::WriteConflict {
                        cycle: at,
                        cluster: (ridx as usize / nr) as ClusterId,
                        reg: Reg((ridx as usize % nr) as u16),
                    });
                    alive[l] = false;
                    failed = true;
                    break;
                }
                if (1..=PENDING_SLOTS as u32).contains(&lat) {
                    ring_push!(l, at, ridx << 1, v);
                } else {
                    far[l].entry(at).or_default().push(LaneCommit::Reg(ridx, v));
                }
                let slot = &mut reg_ready[ridx as usize * nl + l];
                *slot = (*slot).max(at);
            }
            if failed {
                continue;
            }
            for &(pidx, v, lat) in &pw[base..base + pw_len[l] as usize] {
                let at = cyc + u64::from(lat);
                let ready = pred_ready[pidx as usize * nl + l];
                if lat > 0 && ready == at && policy == HazardPolicy::Fault {
                    errs[l] = Some(SimError::WriteConflict {
                        cycle: at,
                        cluster: (pidx as usize / np) as ClusterId,
                        reg: Reg((pidx as usize % np) as u16 | 0x8000),
                    });
                    alive[l] = false;
                    failed = true;
                    break;
                }
                if (1..=PENDING_SLOTS as u32).contains(&lat) {
                    ring_push!(l, at, (pidx << 1) | 1, i16::from(v));
                } else {
                    far[l]
                        .entry(at)
                        .or_default()
                        .push(LaneCommit::Pred(pidx, v));
                }
                let slot = &mut pred_ready[pidx as usize * nl + l];
                *slot = (*slot).max(at);
            }
            if failed {
                continue;
            }
            for &(cb, a, v) in &st[base..base + st_len[l] as usize] {
                let cb = cb as usize;
                let buf = mem_active[cb * nl + l] as usize;
                let words = bank_words[cb] as usize;
                let bufw = buf * words + a as usize;
                mems[mem_off[cb] + bufw * nl + l] = v;
                let flag = &mut mem_row_flag[mem_row_off[cb] + bufw];
                if *flag == 0 {
                    *flag = 1;
                    mems_dirty.push((cb as u32, bufw as u32));
                }
            }
            for &cb in &sw[base..base + sw_len[l] as usize] {
                mem_active[cb as usize * nl + l] ^= 1;
            }

            c_words[l] += 1;
            for k in 0..nclass {
                let n = agg_class[word * nclass + k];
                if n > 0 {
                    class_ops[k * nl + l] += u64::from(n);
                }
            }
            for c in 0..nc {
                let an = agg_cluster[word * nc + c];
                if an > 0 {
                    cluster_ops[c * nl + l] += u64::from(an);
                }
                let wco = &mut word_cluster_ops[c * nl + l];
                let ops = an + *wco;
                if *wco != 0 {
                    *wco = 0;
                }
                if ops > 0 {
                    util_hist[(c * hist_bins + ops as usize) * nl + l] += 1;
                }
            }
            if in_shadow[l] && word_issued[l] == 0 {
                c_bubbles[l] += 1;
            }
            if halt_flag[l] {
                halted[l] = true;
            }
            if branch_set[l] {
                c_taken[l] += 1;
                redirect[l] = Some((branch_to[l], delay_slots));
            }
            match redirect[l] {
                Some((target, 0)) => {
                    pc[l] = target;
                    redirect[l] = None;
                }
                Some((target, n)) => {
                    redirect[l] = Some((target, n - 1));
                    pc[l] += 1;
                }
                None => pc[l] += 1,
            }
            cycle[l] += 1;
            c_cycles[l] = cycle[l];
        }
    }

    /// Folds a lane's SoA counters into one [`RunStats`], exactly like
    /// the scalar `Simulator::stats`. Issue capacity is `words x peak`
    /// by construction (the scalar path adds `peak` once per word), and
    /// the utilisation histogram takes the same shape the incremental
    /// `record_cluster_word` calls would have produced: the outer list
    /// reaches the last cluster that issued, each inner list its
    /// busiest word.
    fn lane_stats(&self, lane: usize) -> RunStats {
        let a = &self.arena;
        let mut stats = RunStats {
            cycles: a.c_cycles[lane],
            words: a.c_words[lane],
            annulled_ops: a.c_annulled[lane],
            loads: a.c_loads[lane],
            stores: a.c_stores[lane],
            transfers: a.c_xfers[lane],
            taken_branches: a.c_taken[lane],
            icache_misses: a.c_icache_miss[lane],
            icache_stall_cycles: a.c_icache_stall[lane],
            issue_capacity: a.c_words[lane] * u64::from(self.machine.peak_ops_per_cycle()),
            branch_bubble_cycles: a.c_bubbles[lane],
            faults_injected: a.c_fault_inj[lane],
            ..RunStats::default()
        };
        for c in 0..a.nc {
            for ops in 1..a.hist_bins {
                let n = a.util_hist[(c * a.hist_bins + ops) * a.nl + lane];
                if n > 0 {
                    if stats.util_histogram.len() <= c {
                        stats.util_histogram.resize(c + 1, Vec::new());
                    }
                    let h = &mut stats.util_histogram[c];
                    if h.len() <= ops {
                        h.resize(ops + 1, 0);
                    }
                    h[ops] += n;
                }
            }
        }
        for class in FuClass::ALL {
            let n = a.class_ops[class as usize * a.nl + lane];
            if n > 0 {
                *stats.ops_by_class.entry(class).or_insert(0) += n;
            }
        }
        for c in 0..a.nc {
            let n = a.cluster_ops[c * a.nl + lane];
            if n > 0 {
                if stats.ops_by_cluster.len() <= c {
                    stats.ops_by_cluster.resize(c + 1, 0);
                }
                stats.ops_by_cluster[c] += n;
            }
        }
        stats.finalize();
        stats
    }

    /// Reconstructs every lane's [`ArchState`] from the SoA pools in
    /// one pass, identical lane for lane to the scalar
    /// `Simulator::arch_state`.
    ///
    /// The pools are lane-strided, so a per-lane gather would touch one
    /// cache line per element; instead this walks each pool row in
    /// storage order and scatters the `lanes` contiguous values into
    /// the per-lane structures. The SRAM pool — by far the largest —
    /// is visited only at the rows the batch actually dirtied: every
    /// other row is still zero, exactly what the freshly allocated
    /// buffers already hold.
    fn collect_states(&self) -> Vec<ArchState> {
        let a = &self.arena;
        let nl = a.nl;
        let mut states: Vec<ArchState> = (0..nl)
            .map(|lane| ArchState {
                cycle: a.cycle[lane],
                halted: a.halted[lane],
                regs: vec![vec![0; a.nr]; a.nc],
                preds: vec![vec![false; a.np]; a.nc],
                mems: (0..a.nc)
                    .map(|c| {
                        (0..a.nb)
                            .map(|b| {
                                let words = a.bank_words[c * a.nb + b] as usize;
                                (vec![0; words], vec![0; words])
                            })
                            .collect()
                    })
                    .collect(),
            })
            .collect();
        for c in 0..a.nc {
            for r in 0..a.nr {
                let row = (c * a.nr + r) * nl;
                for (lane, st) in states.iter_mut().enumerate() {
                    st.regs[c][r] = a.regs[row + lane];
                }
            }
            for p in 0..a.np {
                let row = (c * a.np + p) * nl;
                for (lane, st) in states.iter_mut().enumerate() {
                    st.preds[c][p] = a.preds[row + lane];
                }
            }
        }
        for &(cb, bufw) in &a.mems_dirty {
            let (cb, bufw) = (cb as usize, bufw as usize);
            let (c, b) = (cb / a.nb, cb % a.nb);
            let words = a.bank_words[cb] as usize;
            let (buf, w) = (bufw / words, bufw % words);
            let row = a.mem_off[cb] + bufw * nl;
            for (lane, st) in states.iter_mut().enumerate() {
                let v = a.mems[row + lane];
                if v != 0 {
                    let bank = &mut st.mems[c][b];
                    // `ArchState` orders buffers (processing, filling).
                    let dst = if buf == a.mem_active[cb * nl + lane] as usize {
                        &mut bank.0
                    } else {
                        &mut bank.1
                    };
                    dst[w] = v;
                }
            }
        }
        states
    }
}
