//! End-of-run metrics: folds a [`RunStats`] into a [`Recorder`].
//!
//! The fast path samples *time-windowed* histograms as it runs (see
//! [`Simulator::with_recorder`](crate::Simulator::with_recorder)); this
//! module covers the other half — the end-of-run totals the paper's
//! tables are built from (per-FU operation counts, the stall
//! breakdown, crossbar traffic, utilization) — so harnesses can stamp
//! any finished run into a registry with one call.

use crate::stats::RunStats;
use vsp_metrics::Recorder;

/// Records the end-of-run totals of `stats` into `recorder`, under the
/// `vsp_sim_*` metric-name schema. `labels` (e.g. kernel and model
/// names) are attached to every sample. No-op when the recorder is
/// disabled.
pub fn record_run_stats<R: Recorder>(stats: &RunStats, recorder: &mut R, labels: &[(&str, &str)]) {
    if !recorder.enabled() {
        return;
    }
    let mut fu_labels: Vec<(&str, &str)> = labels.to_vec();
    fu_labels.push(("fu", ""));
    for (class, &n) in &stats.ops_by_class {
        let name = match class {
            vsp_isa::FuClass::Alu => "alu",
            vsp_isa::FuClass::Mul => "mul",
            vsp_isa::FuClass::Shift => "shift",
            vsp_isa::FuClass::Mem => "mem",
            vsp_isa::FuClass::Branch => "branch",
            vsp_isa::FuClass::Xfer => "xfer",
        };
        *fu_labels.last_mut().expect("fu label slot") = ("fu", name);
        recorder.add("vsp_sim_ops_total", &fu_labels, n);
    }

    recorder.add("vsp_sim_cycles_total", labels, stats.cycles);
    recorder.add("vsp_sim_words_total", labels, stats.words);
    recorder.add("vsp_sim_annulled_ops_total", labels, stats.annulled_ops);
    recorder.add("vsp_sim_loads_total", labels, stats.loads);
    recorder.add("vsp_sim_stores_total", labels, stats.stores);
    recorder.add("vsp_sim_transfers_total", labels, stats.transfers);
    recorder.add("vsp_sim_taken_branches_total", labels, stats.taken_branches);
    recorder.add("vsp_sim_icache_misses_total", labels, stats.icache_misses);

    let mut cause_labels: Vec<(&str, &str)> = labels.to_vec();
    cause_labels.push(("cause", "icache"));
    recorder.add(
        "vsp_sim_stall_cycles_total",
        &cause_labels,
        stats.icache_stall_cycles,
    );
    *cause_labels.last_mut().expect("cause label slot") = ("cause", "branch_bubble");
    recorder.add(
        "vsp_sim_stall_cycles_total",
        &cause_labels,
        stats.branch_bubble_cycles,
    );

    recorder.gauge("vsp_sim_issue_utilization", labels, stats.utilization());
    recorder.gauge("vsp_sim_ops_per_cycle", labels, stats.ops_per_cycle());

    if stats.faults_injected > 0 || stats.faults_detected > 0 {
        recorder.add(
            "vsp_sim_faults_injected_total",
            labels,
            stats.faults_injected,
        );
        recorder.add(
            "vsp_sim_faults_detected_total",
            labels,
            stats.faults_detected,
        );
        recorder.add(
            "vsp_sim_faults_corrected_total",
            labels,
            stats.faults_corrected,
        );
        recorder.add(
            "vsp_sim_faults_uncorrectable_total",
            labels,
            stats.faults_uncorrectable,
        );
        recorder.add(
            "vsp_sim_recovery_cycles_total",
            labels,
            stats.recovery_cycles,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsp_isa::FuClass;
    use vsp_metrics::{NullRecorder, Registry};

    fn stats_fixture() -> RunStats {
        let mut s = RunStats {
            cycles: 110,
            words: 100,
            issue_capacity: 1000,
            loads: 8,
            stores: 4,
            transfers: 6,
            taken_branches: 2,
            icache_stall_cycles: 10,
            icache_misses: 1,
            branch_bubble_cycles: 3,
            annulled_ops: 5,
            ..RunStats::default()
        };
        s.ops_by_class.insert(FuClass::Alu, 200);
        s.ops_by_class.insert(FuClass::Mul, 40);
        s
    }

    #[test]
    fn run_stats_fold_into_registry() {
        let mut reg = Registry::new();
        record_run_stats(&stats_fixture(), &mut reg, &[("kernel", "sad")]);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("vsp_sim_ops_total", &[("kernel", "sad"), ("fu", "alu")]),
            Some(200)
        );
        assert_eq!(
            snap.counter("vsp_sim_ops_total", &[("kernel", "sad"), ("fu", "mul")]),
            Some(40)
        );
        assert_eq!(
            snap.counter("vsp_sim_cycles_total", &[("kernel", "sad")]),
            Some(110)
        );
        assert_eq!(
            snap.counter(
                "vsp_sim_stall_cycles_total",
                &[("kernel", "sad"), ("cause", "icache")]
            ),
            Some(10)
        );
        assert_eq!(
            snap.counter(
                "vsp_sim_stall_cycles_total",
                &[("kernel", "sad"), ("cause", "branch_bubble")]
            ),
            Some(3)
        );
        let util = snap
            .gauge("vsp_sim_issue_utilization", &[("kernel", "sad")])
            .unwrap();
        assert!((util - 0.24).abs() < 1e-12, "{util}");
        // No fault counters unless faults actually happened.
        assert_eq!(
            snap.counter("vsp_sim_faults_injected_total", &[("kernel", "sad")]),
            None
        );
    }

    #[test]
    fn disabled_recorder_short_circuits() {
        record_run_stats(&stats_fixture(), &mut NullRecorder, &[]);
    }
}
