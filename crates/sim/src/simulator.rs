//! The cycle-accurate simulator core.

use crate::decoded::{DAddr, DKind, DOperand, DecodedProgram, NO_GUARD};
use crate::error::SimError;
use crate::fault::{FaultModel, NoFaults};
use crate::icache::InstructionCache;
use crate::memory::LocalMemory;
use crate::stats::RunStats;
use std::collections::BTreeMap;
use vsp_core::{validate_program, LatencyModel, MachineConfig};
use vsp_isa::semantics;
use vsp_isa::{AddrMode, ClusterId, MemCtlOp, OpKind, Operand, Operation, Pred, Program, Reg};
use vsp_trace::{FaultSite, NullSink, TraceEvent, TraceSink};

/// Size of the pending-commit ring: one slot per future cycle. Result
/// latencies are tiny (bounded by load-use, multiply, and crossbar
/// delays), so a fixed window covers every commit; the rare latency
/// beyond it falls back to the ordered overflow map.
const PENDING_SLOTS: usize = 16;

/// What to do when an operation reads a register whose producer has not
/// completed.
///
/// The machine has no interlocks ("run-time arbitration for resources is
/// never allowed"), so such a read is a *scheduling* bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HazardPolicy {
    /// Abort simulation with [`SimError::PrematureRead`] — the default,
    /// catching scheduler bugs immediately.
    #[default]
    Fault,
    /// Return the stale register contents, as the real hardware would.
    StaleRead,
}

/// A pending register/predicate write (full bypass makes results visible
/// exactly `latency` cycles after issue).
#[derive(Debug, Clone, Copy)]
enum Commit {
    Reg(ClusterId, Reg, i16),
    Pred(ClusterId, Pred, bool),
}

/// A full snapshot of the architectural state of a simulator: every
/// register file, predicate file and local-memory buffer, plus the
/// control state.
///
/// Built by [`Simulator::arch_state`] for differential comparison —
/// two execution paths (or two simulators fed identical programs) agree
/// exactly when their `ArchState`s compare equal.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ArchState {
    /// Cycles elapsed.
    pub cycle: u64,
    /// Whether a halt has committed.
    pub halted: bool,
    /// General registers, indexed `[cluster][register]`.
    pub regs: Vec<Vec<i16>>,
    /// Predicate registers, indexed `[cluster][predicate]`.
    pub preds: Vec<Vec<bool>>,
    /// Local-memory buffers, indexed `[cluster][bank]` as
    /// `(processing buffer, I/O buffer)` — both halves matter because a
    /// `swapbuf` exchanges them.
    pub mems: Vec<Vec<(Vec<i16>, Vec<i16>)>>,
}

/// A full microarchitectural snapshot of a [`Simulator`]: architectural
/// state plus everything in flight — pending commits, scoreboard ready
/// times, icache tags, fetch/redirect state, and statistics.
///
/// Built by [`Simulator::checkpoint`] and consumed by
/// [`Simulator::restore`]; re-executing from a restored checkpoint
/// replays the simulation exactly (the basis of the `vsp-fault`
/// re-execute-from-checkpoint recovery loop). Fields are private: a
/// checkpoint is only meaningful to a simulator over the same machine
/// and program shape that produced it.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    regs: Vec<Vec<i16>>,
    reg_ready: Vec<Vec<u64>>,
    preds: Vec<Vec<bool>>,
    pred_ready: Vec<Vec<u64>>,
    mems: Vec<Vec<LocalMemory>>,
    pending_ring: Vec<Vec<Commit>>,
    pending_count: usize,
    pending_far: BTreeMap<u64, Vec<Commit>>,
    drained_through: u64,
    icache: InstructionCache,
    pc: usize,
    cycle: u64,
    redirect: Option<(usize, u32)>,
    halted: bool,
    stats: RunStats,
    fast_class_ops: [u64; 6],
}

impl Checkpoint {
    /// Cycle count at the moment the checkpoint was taken.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }
}

/// Cycle-accurate simulator for one program on one machine.
///
/// Generic over a [`TraceSink`]; the default [`NullSink`] reports itself
/// disabled from an inlinable body, so the untraced monomorphization —
/// everything built via [`Simulator::new`] — contains no tracing code.
/// Use [`Simulator::with_sink`] (typically with `&mut sink`, since
/// `TraceSink` is implemented for mutable references) to record a run.
///
/// Also generic over a [`FaultModel`] by the same pattern: the default
/// [`NoFaults`] compiles all injection hooks out of the fast path, and
/// [`Simulator::with_sink_and_faults`] opts a run into a concrete model
/// (see the `vsp-fault` crate for seeded plans and recovery).
#[derive(Debug)]
pub struct Simulator<'a, S: TraceSink = NullSink, F: FaultModel = NoFaults> {
    machine: &'a MachineConfig,
    program: &'a Program,
    /// Pre-decoded twin of `program` (flat ops, resolved latencies);
    /// what [`Simulator::step`] actually executes.
    decoded: DecodedProgram,
    policy: HazardPolicy,
    regs: Vec<Vec<i16>>,
    reg_ready: Vec<Vec<u64>>,
    preds: Vec<Vec<bool>>,
    pred_ready: Vec<Vec<u64>>,
    mems: Vec<Vec<LocalMemory>>,
    /// Pending commits within the next `PENDING_SLOTS` cycles, indexed
    /// by `cycle % PENDING_SLOTS` (allocation-free in steady state).
    pending_ring: Vec<Vec<Commit>>,
    /// Total commits outstanding in the ring (fast empty check).
    pending_count: usize,
    /// Commits scheduled beyond the ring window (pathological
    /// latencies only; normally empty forever).
    pending_far: BTreeMap<u64, Vec<Commit>>,
    /// Last cycle whose ring slot has been drained.
    drained_through: u64,
    icache: InstructionCache,
    pc: usize,
    cycle: u64,
    redirect: Option<(usize, u32)>,
    halted: bool,
    stats: RunStats,
    sink: S,
    faults: F,
    /// Committed ops per cluster within the word being issued (scratch
    /// for the utilization histogram).
    word_cluster_ops: Vec<u32>,
    /// Clusters with a non-zero entry in `word_cluster_ops`, so the
    /// per-word drain touches only busy clusters.
    word_touched: Vec<ClusterId>,
    /// Reusable per-step scratch: stores buffered to the end of the
    /// cycle as `(cluster, bank, addr, value)`.
    scratch_stores: Vec<(u8, u8, u32, i16)>,
    /// Reusable per-step scratch: banks swapping at the end of cycle.
    scratch_swaps: Vec<(u8, u8)>,
    /// Reusable per-step scratch: register results entering the bypass
    /// network as `(cluster, reg, value, latency)`.
    scratch_reg_writes: Vec<(u8, u16, i16, u32)>,
    /// Reusable per-step scratch: predicate results.
    scratch_pred_writes: Vec<(u8, u8, bool, u32)>,
    /// Fast-path per-class op counters, indexed by `FuClass` discriminant;
    /// folded into `RunStats::ops_by_class` by [`Simulator::stats`] so
    /// the hot loop skips the map lookup the interpretive path pays.
    fast_class_ops: [u64; 6],
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with a warmed instruction cache and the default
    /// ([`HazardPolicy::Fault`]) hazard policy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invalid`] if the program fails structural
    /// validation for the machine.
    pub fn new(machine: &'a MachineConfig, program: &'a Program) -> Result<Self, SimError> {
        Self::with_sink(machine, program, NullSink)
    }
}

impl<'a, S: TraceSink> Simulator<'a, S> {
    /// Creates a simulator that emits trace events into `sink` (and
    /// never injects faults).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invalid`] if the program fails structural
    /// validation for the machine.
    pub fn with_sink(
        machine: &'a MachineConfig,
        program: &'a Program,
        sink: S,
    ) -> Result<Self, SimError> {
        Self::with_sink_and_faults(machine, program, sink, NoFaults)
    }
}

impl<'a, S: TraceSink, F: FaultModel> Simulator<'a, S, F> {
    /// Creates a simulator that emits trace events into `sink` and
    /// consults `faults` on every exposed datapath read (typically with
    /// `&mut model`, since [`FaultModel`] is implemented for mutable
    /// references, so injection counters stay readable after the run).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invalid`] if the program fails structural
    /// validation for the machine.
    pub fn with_sink_and_faults(
        machine: &'a MachineConfig,
        program: &'a Program,
        sink: S,
        faults: F,
    ) -> Result<Self, SimError> {
        validate_program(machine, program)?;
        let clusters = machine.clusters as usize;
        let regs = machine.cluster.registers as usize;
        let preds = machine.cluster.pred_regs as usize;
        let mut icache = InstructionCache::new(machine.icache_words, machine.icache_refill_cycles);
        icache.warm(program.len());
        Ok(Simulator {
            machine,
            program,
            decoded: DecodedProgram::decode(machine, program),
            policy: HazardPolicy::Fault,
            regs: vec![vec![0; regs]; clusters],
            reg_ready: vec![vec![0; regs]; clusters],
            preds: vec![vec![false; preds]; clusters],
            pred_ready: vec![vec![0; preds]; clusters],
            mems: (0..clusters)
                .map(|_| {
                    machine
                        .cluster
                        .banks
                        .iter()
                        .map(|b| LocalMemory::new(b.words))
                        .collect()
                })
                .collect(),
            pending_ring: (0..PENDING_SLOTS).map(|_| Vec::new()).collect(),
            pending_count: 0,
            pending_far: BTreeMap::new(),
            drained_through: 0,
            icache,
            pc: 0,
            cycle: 0,
            redirect: None,
            halted: false,
            stats: RunStats::default(),
            sink,
            faults,
            word_cluster_ops: vec![0; clusters],
            word_touched: Vec::with_capacity(clusters),
            scratch_stores: Vec::new(),
            scratch_swaps: Vec::new(),
            scratch_reg_writes: Vec::new(),
            scratch_pred_writes: Vec::new(),
            fast_class_ops: [0; 6],
        })
    }

    /// The trace sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the trace sink (e.g. to flush it).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// The fault model.
    pub fn faults(&self) -> &F {
        &self.faults
    }

    /// Mutable access to the fault model (e.g. to re-arm a trigger).
    pub fn faults_mut(&mut self) -> &mut F {
        &mut self.faults
    }

    /// Selects the hazard policy.
    pub fn set_hazard_policy(&mut self, policy: HazardPolicy) {
        self.policy = policy;
    }

    /// Current value of a general register.
    pub fn reg(&self, cluster: ClusterId, reg: Reg) -> i16 {
        self.regs[cluster as usize][reg.index()]
    }

    /// Sets a general register (test/workload setup); the value is
    /// immediately readable.
    pub fn set_reg(&mut self, cluster: ClusterId, reg: Reg, value: i16) {
        self.regs[cluster as usize][reg.index()] = value;
        self.reg_ready[cluster as usize][reg.index()] = 0;
    }

    /// Current value of a predicate register.
    pub fn pred(&self, cluster: ClusterId, pred: Pred) -> bool {
        self.preds[cluster as usize][pred.index()]
    }

    /// Sets a predicate register (test/workload setup).
    pub fn set_pred(&mut self, cluster: ClusterId, pred: Pred, value: bool) {
        self.preds[cluster as usize][pred.index()] = value;
        self.pred_ready[cluster as usize][pred.index()] = 0;
    }

    /// A cluster's memory bank.
    pub fn mem(&self, cluster: ClusterId, bank: u8) -> &LocalMemory {
        &self.mems[cluster as usize][bank as usize]
    }

    /// Mutable access to a cluster's memory bank (to stage input data).
    pub fn mem_mut(&mut self, cluster: ClusterId, bank: u8) -> &mut LocalMemory {
        &mut self.mems[cluster as usize][bank as usize]
    }

    /// Cycles elapsed so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Snapshots the complete architectural state — registers,
    /// predicates, both halves of every local-memory bank, cycle count
    /// and halt flag — for differential comparison between execution
    /// paths or simulators.
    pub fn arch_state(&self) -> ArchState {
        ArchState {
            cycle: self.cycle,
            halted: self.halted,
            regs: self.regs.clone(),
            preds: self.preds.clone(),
            mems: self
                .mems
                .iter()
                .map(|banks| {
                    banks
                        .iter()
                        .map(|b| (b.active_buffer().to_vec(), b.io_buffer().to_vec()))
                        .collect()
                })
                .collect(),
        }
    }

    /// Whether a halt has committed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Snapshots the complete microarchitectural state for later
    /// [`Simulator::restore`]. Unlike [`Simulator::arch_state`] this
    /// includes in-flight commits, scoreboard ready times, the icache,
    /// fetch/redirect state and statistics, so resuming from it replays
    /// the run exactly.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            regs: self.regs.clone(),
            reg_ready: self.reg_ready.clone(),
            preds: self.preds.clone(),
            pred_ready: self.pred_ready.clone(),
            mems: self.mems.clone(),
            pending_ring: self.pending_ring.clone(),
            pending_count: self.pending_count,
            pending_far: self.pending_far.clone(),
            drained_through: self.drained_through,
            icache: self.icache.clone(),
            pc: self.pc,
            cycle: self.cycle,
            redirect: self.redirect,
            halted: self.halted,
            stats: self.stats.clone(),
            fast_class_ops: self.fast_class_ops,
        }
    }

    /// Rolls the simulator back to a [`Checkpoint`] taken earlier on
    /// this same machine/program pair.
    ///
    /// Statistics roll back too (the discarded cycles never happened on
    /// the surviving timeline); the `vsp-fault` recovery loop accounts
    /// the thrown-away work separately as `recovery_cycles`. Per-step
    /// scratch state is cleared — a step aborted mid-word by a fault may
    /// have left it dirty.
    pub fn restore(&mut self, cp: &Checkpoint) {
        self.regs.clone_from(&cp.regs);
        self.reg_ready.clone_from(&cp.reg_ready);
        self.preds.clone_from(&cp.preds);
        self.pred_ready.clone_from(&cp.pred_ready);
        self.mems.clone_from(&cp.mems);
        self.pending_ring.clone_from(&cp.pending_ring);
        self.pending_count = cp.pending_count;
        self.pending_far.clone_from(&cp.pending_far);
        self.drained_through = cp.drained_through;
        self.icache.clone_from(&cp.icache);
        self.pc = cp.pc;
        self.cycle = cp.cycle;
        self.redirect = cp.redirect;
        self.halted = cp.halted;
        self.stats.clone_from(&cp.stats);
        self.fast_class_ops = cp.fast_class_ops;
        for n in &mut self.word_cluster_ops {
            *n = 0;
        }
        self.word_touched.clear();
        self.scratch_stores.clear();
        self.scratch_swaps.clear();
        self.scratch_reg_writes.clear();
        self.scratch_pred_writes.clear();
    }

    /// Runs until a halt commits or `max_cycles` elapse.
    ///
    /// ```
    /// use vsp_core::models;
    /// use vsp_isa::{AluBinOp, OpKind, Operand, Operation, Program, Reg};
    /// use vsp_sim::Simulator;
    ///
    /// let machine = models::i4c8s4();
    /// let mut p = Program::new("add");
    /// p.push_word(vec![Operation::new(0, 0, OpKind::AluBin {
    ///     op: AluBinOp::Add, dst: Reg(2), a: Operand::Imm(40), b: Operand::Imm(2),
    /// })]);
    /// p.push_word(vec![Operation::new(0, 4, OpKind::Halt)]);
    ///
    /// let mut sim = Simulator::new(&machine, &p).unwrap();
    /// let stats = sim.run(100).unwrap();
    /// assert_eq!(sim.reg(0, Reg(2)), 42);
    /// // The cycle-accounting invariant checked by the fuzz oracle:
    /// assert_eq!(stats.cycles, stats.words + stats.icache_stall_cycles);
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates hazard faults, memory range errors, fetch running past
    /// the program end, and [`SimError::CycleLimit`] when the budget is
    /// exhausted.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunStats, SimError> {
        while !self.halted {
            if self.cycle >= max_cycles {
                return Err(SimError::CycleLimit { limit: max_cycles });
            }
            self.step()?;
        }
        Ok(self.stats())
    }

    /// Runs via the legacy interpretive path ([`Simulator::step_interp`])
    /// instead of the pre-decoded fast path.
    ///
    /// Exists as the measurement baseline for the fast path and as the
    /// reference implementation for the differential tests; both paths
    /// must produce identical [`RunStats`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_interp(&mut self, max_cycles: u64) -> Result<RunStats, SimError> {
        while !self.halted {
            if self.cycle >= max_cycles {
                return Err(SimError::CycleLimit { limit: max_cycles });
            }
            self.step_interp()?;
        }
        Ok(self.stats())
    }

    /// Statistics gathered so far (with derived fields such as the
    /// histogram zero-buckets filled in).
    pub fn stats(&self) -> RunStats {
        let mut stats = self.stats.clone();
        for class in vsp_isa::FuClass::ALL {
            let n = self.fast_class_ops[class as usize];
            if n > 0 {
                *stats.ops_by_class.entry(class).or_insert(0) += n;
            }
        }
        stats.finalize();
        stats
    }

    /// Executes one instruction word (plus any fetch stall preceding it)
    /// on the pre-decoded fast path.
    ///
    /// Semantically identical to [`Simulator::step_interp`] — the
    /// differential tests hold the two to exact [`RunStats`] equality —
    /// but works from the flat `DecodedProgram`: no word clone, no
    /// per-op latency lookup, no per-step allocation (scratch buffers
    /// live on the struct), and the trace check is hoisted into one
    /// per-step bool.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`], except the cycle budget.
    pub fn step(&mut self) -> Result<(), SimError> {
        if self.halted {
            return Ok(());
        }
        if self.pc >= self.program.len() {
            return Err(SimError::RanOffEnd { cycle: self.cycle });
        }
        let tracing = self.sink.enabled();

        // Fetch (may stall on an icache miss).
        let stall = self.icache.fetch(self.pc);
        if stall > 0 {
            self.stats.icache_misses += 1;
            self.stats.icache_stall_cycles += u64::from(stall);
            if tracing {
                self.sink.emit(TraceEvent::IcacheMiss {
                    cycle: self.cycle,
                    word: self.pc as u32,
                    stall,
                });
            }
            self.cycle += u64::from(stall);
        }
        if self.faults.enabled() {
            // Latency jitter: extra fetch stall charged as icache stall
            // cycles so `cycles == words + icache_stall_cycles` holds.
            let jitter = self.faults.fetch_jitter(self.cycle, self.pc as u32);
            if jitter > 0 {
                self.stats.icache_stall_cycles += u64::from(jitter);
                self.stats.faults_injected += 1;
                if tracing {
                    self.sink.emit(TraceEvent::FaultInject {
                        cycle: self.cycle,
                        site: FaultSite::Fetch,
                        cluster: 0,
                        index: self.pc as u32,
                        detail: jitter,
                    });
                }
                self.cycle += u64::from(jitter);
            }
        }

        self.apply_commits();

        let word_index = self.pc;
        let ops = self.decoded.word_range(word_index);

        // Take the scratch buffers out of `self` for the duration of the
        // step (sidestepping a borrow conflict with `&mut self` helper
        // calls); they are cleared and restored at the end. Error paths
        // leave them taken, which only costs their capacity — every
        // `SimError` here is terminal for the run.
        let mut stores = std::mem::take(&mut self.scratch_stores);
        let mut swaps = std::mem::take(&mut self.scratch_swaps);
        let mut reg_writes = std::mem::take(&mut self.scratch_reg_writes);
        let mut pred_writes = std::mem::take(&mut self.scratch_pred_writes);
        let mut branch: Option<usize> = None;
        let mut halt = false;

        // A word issued inside a branch-delay shadow that does no work at
        // all is a branch-redirect bubble; detect it for the stall-cycle
        // breakdown.
        let in_branch_shadow = self.redirect.is_some();
        let mut word_issued_ops: u32 = 0;

        // Phase 1: all operand fetches happen against the pre-cycle state;
        // results are collected, not yet visible to the scoreboard (so
        // same-word reads of a destination see the old value, as the
        // hardware's operand-fetch stage does).
        for i in ops {
            let op = self.decoded.op(i);
            let c = op.cluster;
            if op.guard_pred != NO_GUARD {
                let v = self.read_pred_idx(c, op.guard_pred, word_index)?;
                if v != op.guard_sense {
                    self.stats.annulled_ops += 1;
                    word_issued_ops += 1;
                    if tracing {
                        self.sink.emit(TraceEvent::Annul {
                            cycle: self.cycle,
                            word: word_index as u32,
                            cluster: c,
                            slot: op.slot,
                        });
                    }
                    continue;
                }
            }
            if let Some(class) = op.class {
                self.fast_class_ops[class as usize] += 1;
                self.stats.record_cluster_op(c as usize);
                word_issued_ops += 1;
                if self.word_cluster_ops[c as usize] == 0 {
                    self.word_touched.push(c);
                }
                self.word_cluster_ops[c as usize] += 1;
                if tracing {
                    self.sink.emit(TraceEvent::Issue {
                        cycle: self.cycle,
                        word: word_index as u32,
                        cluster: c,
                        slot: op.slot,
                        class,
                    });
                }
            }
            match op.kind {
                DKind::AluBin { op: f, dst, a, b } => {
                    let x = self.read_doperand(c, a, word_index)?;
                    let y = self.read_doperand(c, b, word_index)?;
                    reg_writes.push((c, dst, semantics::alu_bin(f, x, y), op.latency));
                }
                DKind::AluUn { op: f, dst, a } => {
                    let x = self.read_doperand(c, a, word_index)?;
                    reg_writes.push((c, dst, semantics::alu_un(f, x), op.latency));
                }
                DKind::Shift { op: f, dst, a, b } => {
                    let x = self.read_doperand(c, a, word_index)?;
                    let y = self.read_doperand(c, b, word_index)?;
                    reg_writes.push((c, dst, semantics::shift(f, x, y), op.latency));
                }
                DKind::Mul { kind, dst, a, b } => {
                    let x = self.read_doperand(c, a, word_index)?;
                    let y = self.read_doperand(c, b, word_index)?;
                    reg_writes.push((c, dst, semantics::mul(kind, x, y), op.latency));
                }
                DKind::Cmp { op: f, dst, a, b } => {
                    let x = self.read_doperand(c, a, word_index)?;
                    let y = self.read_doperand(c, b, word_index)?;
                    pred_writes.push((c, dst, semantics::cmp(f, x, y), op.latency));
                }
                DKind::Load { dst, addr, bank } => {
                    let a = self.effective_addr_idx(c, addr, word_index)?;
                    let mem = &self.mems[c as usize][bank as usize];
                    let v = mem.read(a).ok_or(SimError::MemOutOfRange {
                        cycle: self.cycle,
                        cluster: c,
                        bank,
                        addr: a,
                        words: mem.words(),
                    })?;
                    self.stats.loads += 1;
                    let v = if self.faults.enabled() {
                        self.fault_mem_read(c, bank, a, v)
                    } else {
                        v
                    };
                    reg_writes.push((c, dst, v, op.latency));
                }
                DKind::Store { src, addr, bank } => {
                    let a = self.effective_addr_idx(c, addr, word_index)?;
                    let v = self.read_doperand(c, src, word_index)?;
                    // Range check now so the error carries the issue cycle.
                    let mem = &self.mems[c as usize][bank as usize];
                    if a >= mem.words() {
                        return Err(SimError::MemOutOfRange {
                            cycle: self.cycle,
                            cluster: c,
                            bank,
                            addr: a,
                            words: mem.words(),
                        });
                    }
                    self.stats.stores += 1;
                    stores.push((c, bank, a, v));
                }
                DKind::Xfer { dst, from, src } => {
                    let v = self.read_reg_idx(from, src, word_index)?;
                    self.stats.transfers += 1;
                    let v = if self.faults.enabled() {
                        self.fault_xfer(from, c, src, v)
                    } else {
                        v
                    };
                    reg_writes.push((c, dst, v, op.latency));
                }
                DKind::Branch {
                    pred,
                    sense,
                    target,
                } => {
                    if self.read_pred_idx(c, pred, word_index)? == sense {
                        branch = Some(target as usize);
                    }
                }
                DKind::Jump { target } => branch = Some(target as usize),
                DKind::Halt => halt = true,
                DKind::Swap { bank } => swaps.push((c, bank)),
                DKind::Nop => {}
            }
        }

        // Phase 2: register/predicate results enter the bypass network.
        for &(c, r, v, lat) in &reg_writes {
            self.schedule_reg(c, r, v, lat)?;
        }
        for &(c, p, v, lat) in &pred_writes {
            self.schedule_pred(c, p, v, lat)?;
        }

        // End of cycle: stores and buffer swaps become visible.
        for &(c, b, addr, v) in &stores {
            let mem = &mut self.mems[c as usize][b as usize];
            if !mem.write(addr, v) {
                return Err(SimError::MemOutOfRange {
                    cycle: self.cycle,
                    cluster: c,
                    bank: b,
                    addr,
                    words: mem.words(),
                });
            }
        }
        for &(c, b) in &swaps {
            self.mems[c as usize][b as usize].swap();
        }

        stores.clear();
        swaps.clear();
        reg_writes.clear();
        pred_writes.clear();
        self.scratch_stores = stores;
        self.scratch_swaps = swaps;
        self.scratch_reg_writes = reg_writes;
        self.scratch_pred_writes = pred_writes;

        self.stats.words += 1;
        self.stats.issue_capacity += u64::from(self.machine.peak_ops_per_cycle());

        // Fold this word's per-cluster occupancy into the histogram
        // (only clusters that issued; zero-buckets are derived at
        // finalize so idle clusters cost nothing here).
        while let Some(cluster) = self.word_touched.pop() {
            let ops = self.word_cluster_ops[cluster as usize];
            self.word_cluster_ops[cluster as usize] = 0;
            self.stats
                .record_cluster_word(cluster as usize, ops as usize);
        }
        if in_branch_shadow && word_issued_ops == 0 {
            self.stats.branch_bubble_cycles += 1;
            if tracing {
                self.sink.emit(TraceEvent::BranchBubble {
                    cycle: self.cycle,
                    word: word_index as u32,
                });
            }
        }

        if halt {
            self.halted = true;
            if tracing {
                self.sink.emit(TraceEvent::Halt { cycle: self.cycle });
            }
        }
        if let Some(target) = branch {
            self.stats.taken_branches += 1;
            if tracing {
                self.sink.emit(TraceEvent::Branch {
                    cycle: self.cycle,
                    word: word_index as u32,
                    target: target as u32,
                });
            }
            self.redirect = Some((target, self.machine.pipeline.branch_delay_slots));
        }

        match self.redirect {
            Some((target, 0)) => {
                self.pc = target;
                self.redirect = None;
            }
            Some((target, n)) => {
                self.redirect = Some((target, n - 1));
                self.pc += 1;
            }
            None => self.pc += 1,
        }
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        Ok(())
    }

    /// Executes one instruction word on the legacy interpretive path:
    /// walks the symbolic [`Program`] word (cloned per step), resolving
    /// operands, functional-unit classes, and latencies on the fly.
    ///
    /// Kept verbatim as the measurement baseline and reference semantics
    /// for [`Simulator::step`]; only the commit bookkeeping underneath
    /// (`Simulator::apply_commits`) is shared.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`], except the cycle budget.
    pub fn step_interp(&mut self) -> Result<(), SimError> {
        if self.halted {
            return Ok(());
        }
        if self.pc >= self.program.len() {
            return Err(SimError::RanOffEnd { cycle: self.cycle });
        }

        // Fetch (may stall on an icache miss).
        let stall = self.icache.fetch(self.pc);
        if stall > 0 {
            self.stats.icache_misses += 1;
            self.stats.icache_stall_cycles += u64::from(stall);
            if self.sink.enabled() {
                self.sink.emit(TraceEvent::IcacheMiss {
                    cycle: self.cycle,
                    word: self.pc as u32,
                    stall,
                });
            }
            self.cycle += u64::from(stall);
        }

        self.apply_commits();

        let word = self
            .program
            .word(self.pc)
            .expect("pc checked above")
            .clone();
        let word_index = self.pc;

        let mut stores: Vec<(ClusterId, u8, u32, i16)> = Vec::new();
        let mut swaps: Vec<(ClusterId, u8)> = Vec::new();
        let mut reg_writes: Vec<(ClusterId, u16, i16, u32)> = Vec::new();
        let mut pred_writes: Vec<(ClusterId, u8, bool, u32)> = Vec::new();
        let mut branch: Option<usize> = None;
        let mut halt = false;

        // A word issued inside a branch-delay shadow that does no work at
        // all is a branch-redirect bubble; detect it for the stall-cycle
        // breakdown.
        let in_branch_shadow = self.redirect.is_some();
        let mut word_issued_ops: u32 = 0;

        // Phase 1: all operand fetches happen against the pre-cycle state;
        // results are collected, not yet visible to the scoreboard (so
        // same-word reads of a destination see the old value, as the
        // hardware's operand-fetch stage does).
        for op in word.iter() {
            if let Some(active) = self.guard_value(op, word_index)? {
                if !active {
                    self.stats.annulled_ops += 1;
                    word_issued_ops += 1;
                    if self.sink.enabled() {
                        self.sink.emit(TraceEvent::Annul {
                            cycle: self.cycle,
                            word: word_index as u32,
                            cluster: op.cluster,
                            slot: op.slot,
                        });
                    }
                    continue;
                }
            }
            if let Some(class) = op.fu_class() {
                self.stats.record_op(class, op.cluster as usize);
                word_issued_ops += 1;
                if self.word_cluster_ops[op.cluster as usize] == 0 {
                    self.word_touched.push(op.cluster);
                }
                self.word_cluster_ops[op.cluster as usize] += 1;
                if self.sink.enabled() {
                    self.sink.emit(TraceEvent::Issue {
                        cycle: self.cycle,
                        word: word_index as u32,
                        cluster: op.cluster,
                        slot: op.slot,
                        class,
                    });
                }
            }
            self.execute_op(
                op,
                word_index,
                &mut stores,
                &mut swaps,
                &mut reg_writes,
                &mut pred_writes,
                &mut branch,
                &mut halt,
            )?;
        }

        // Phase 2: register/predicate results enter the bypass network.
        // The interpretive path schedules through the ordered map, as the
        // original interpreter did, so it stays an honest baseline for
        // the ring-buffered fast path.
        for (c, r, v, lat) in reg_writes {
            self.schedule_reg_interp(c, r, v, lat)?;
        }
        for (c, p, v, lat) in pred_writes {
            self.schedule_pred_interp(c, p, v, lat)?;
        }

        // End of cycle: stores and buffer swaps become visible.
        for (c, b, addr, v) in stores {
            let mem = &mut self.mems[c as usize][b as usize];
            if !mem.write(addr, v) {
                return Err(SimError::MemOutOfRange {
                    cycle: self.cycle,
                    cluster: c,
                    bank: b,
                    addr,
                    words: mem.words(),
                });
            }
        }
        for (c, b) in swaps {
            self.mems[c as usize][b as usize].swap();
        }

        self.stats.words += 1;
        self.stats.issue_capacity += u64::from(self.machine.peak_ops_per_cycle());

        // Fold this word's per-cluster occupancy into the histogram
        // (only clusters that issued; zero-buckets are derived at
        // finalize so idle clusters cost nothing here).
        while let Some(cluster) = self.word_touched.pop() {
            let ops = self.word_cluster_ops[cluster as usize];
            self.word_cluster_ops[cluster as usize] = 0;
            self.stats
                .record_cluster_word(cluster as usize, ops as usize);
        }
        if in_branch_shadow && word_issued_ops == 0 {
            self.stats.branch_bubble_cycles += 1;
            if self.sink.enabled() {
                self.sink.emit(TraceEvent::BranchBubble {
                    cycle: self.cycle,
                    word: word_index as u32,
                });
            }
        }

        if halt {
            self.halted = true;
            if self.sink.enabled() {
                self.sink.emit(TraceEvent::Halt { cycle: self.cycle });
            }
        }
        if let Some(target) = branch {
            self.stats.taken_branches += 1;
            if self.sink.enabled() {
                self.sink.emit(TraceEvent::Branch {
                    cycle: self.cycle,
                    word: word_index as u32,
                    target: target as u32,
                });
            }
            self.redirect = Some((target, self.machine.pipeline.branch_delay_slots));
        }

        match self.redirect {
            Some((target, 0)) => {
                self.pc = target;
                self.redirect = None;
            }
            Some((target, n)) => {
                self.redirect = Some((target, n - 1));
                self.pc += 1;
            }
            None => self.pc += 1,
        }
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        Ok(())
    }

    /// Applies all register/predicate commits due at or before this cycle.
    ///
    /// Drains the ring slots for every cycle in
    /// `(drained_through, cycle]`. The span is capped at
    /// [`PENDING_SLOTS`]: when a fetch stall jumps the cycle counter
    /// further than the window, draining all slots once covers every
    /// outstanding commit, because each was scheduled at most
    /// `PENDING_SLOTS` cycles past `drained_through` (longer latencies
    /// live in `pending_far`).
    fn apply_commits(&mut self) {
        if self.pending_count > 0 {
            let span = (self.cycle - self.drained_through).min(PENDING_SLOTS as u64);
            for c in (self.cycle + 1 - span)..=self.cycle {
                let slot = (c % PENDING_SLOTS as u64) as usize;
                if self.pending_ring[slot].is_empty() {
                    continue;
                }
                let mut commits = std::mem::take(&mut self.pending_ring[slot]);
                self.pending_count -= commits.len();
                for commit in &commits {
                    match *commit {
                        Commit::Reg(c, r, v) => self.regs[c as usize][r.index()] = v,
                        Commit::Pred(c, p, v) => self.preds[c as usize][p.index()] = v,
                    }
                }
                commits.clear();
                self.pending_ring[slot] = commits;
            }
        }
        self.drained_through = self.cycle;
        while let Some(entry) = self.pending_far.first_entry() {
            if *entry.key() > self.cycle {
                break;
            }
            for commit in entry.remove() {
                match commit {
                    Commit::Reg(c, r, v) => self.regs[c as usize][r.index()] = v,
                    Commit::Pred(c, p, v) => self.preds[c as usize][p.index()] = v,
                }
            }
        }
    }

    /// Reads the guard predicate, or `None` when unguarded.
    fn guard_value(&self, op: &Operation, word: usize) -> Result<Option<bool>, SimError> {
        match &op.guard {
            None => Ok(None),
            Some(g) => {
                let v = self.read_pred(op.cluster, g.pred, word)?;
                Ok(Some(v == g.sense))
            }
        }
    }

    fn read_reg(&self, cluster: ClusterId, reg: Reg, word: usize) -> Result<i16, SimError> {
        let ready = self.reg_ready[cluster as usize][reg.index()];
        if ready > self.cycle && self.policy == HazardPolicy::Fault {
            return Err(SimError::PrematureRead {
                cycle: self.cycle,
                word,
                cluster,
                reg,
                ready_at: ready,
            });
        }
        Ok(self.regs[cluster as usize][reg.index()])
    }

    fn read_pred(&self, cluster: ClusterId, pred: Pred, word: usize) -> Result<bool, SimError> {
        let ready = self.pred_ready[cluster as usize][pred.index()];
        if ready > self.cycle && self.policy == HazardPolicy::Fault {
            return Err(SimError::PrematureRead {
                cycle: self.cycle,
                word,
                cluster,
                reg: Reg(u16::from(pred.0) | 0x8000),
                ready_at: ready,
            });
        }
        Ok(self.preds[cluster as usize][pred.index()])
    }

    fn read_operand(
        &self,
        cluster: ClusterId,
        operand: Operand,
        word: usize,
    ) -> Result<i16, SimError> {
        match operand {
            Operand::Reg(r) => self.read_reg(cluster, r, word),
            Operand::Imm(v) => Ok(v),
        }
    }

    /// Fast-path twin of [`Simulator::read_reg`] taking a raw register
    /// index; errors reconstruct the [`Reg`] so faults are identical to
    /// the interpretive path's.
    #[inline]
    fn read_reg_idx(&mut self, cluster: ClusterId, reg: u16, word: usize) -> Result<i16, SimError> {
        let ready = self.reg_ready[cluster as usize][reg as usize];
        if ready > self.cycle && self.policy == HazardPolicy::Fault {
            return Err(SimError::PrematureRead {
                cycle: self.cycle,
                word,
                cluster,
                reg: Reg(reg),
                ready_at: ready,
            });
        }
        let v = self.regs[cluster as usize][reg as usize];
        if self.faults.enabled() {
            return Ok(self.fault_reg_read(cluster, reg, v));
        }
        Ok(v)
    }

    /// Runs a register-file read through the fault model, recording an
    /// injection (stats counter + trace event) when the value changed.
    fn fault_reg_read(&mut self, cluster: ClusterId, reg: u16, value: i16) -> i16 {
        let faulted = self.faults.on_reg_read(self.cycle, cluster, reg, value);
        if faulted != value {
            self.stats.faults_injected += 1;
            if self.sink.enabled() {
                self.sink.emit(TraceEvent::FaultInject {
                    cycle: self.cycle,
                    site: FaultSite::RegRead,
                    cluster,
                    index: u32::from(reg),
                    detail: u32::from((faulted ^ value) as u16),
                });
            }
        }
        faulted
    }

    /// Local-SRAM twin of [`Simulator::fault_reg_read`].
    fn fault_mem_read(&mut self, cluster: ClusterId, bank: u8, addr: u32, value: i16) -> i16 {
        let faulted = self.faults.on_mem_read(self.cycle, cluster, bank, addr, value);
        if faulted != value {
            self.stats.faults_injected += 1;
            if self.sink.enabled() {
                self.sink.emit(TraceEvent::FaultInject {
                    cycle: self.cycle,
                    site: FaultSite::MemRead,
                    cluster,
                    index: addr,
                    detail: u32::from((faulted ^ value) as u16),
                });
            }
        }
        faulted
    }

    /// Crossbar twin of [`Simulator::fault_reg_read`]; the event is
    /// attributed to the *destination* cluster (the consumer of the
    /// corrupted transfer).
    fn fault_xfer(&mut self, from: ClusterId, to: ClusterId, src: u16, value: i16) -> i16 {
        let faulted = self.faults.on_xfer(self.cycle, from, to, src, value);
        if faulted != value {
            self.stats.faults_injected += 1;
            if self.sink.enabled() {
                self.sink.emit(TraceEvent::FaultInject {
                    cycle: self.cycle,
                    site: FaultSite::Xfer,
                    cluster: to,
                    index: u32::from(src),
                    detail: u32::from((faulted ^ value) as u16),
                });
            }
        }
        faulted
    }

    /// Fast-path twin of [`Simulator::read_pred`]; faults encode the
    /// predicate with the same high-bit convention.
    #[inline]
    fn read_pred_idx(&self, cluster: ClusterId, pred: u8, word: usize) -> Result<bool, SimError> {
        let ready = self.pred_ready[cluster as usize][pred as usize];
        if ready > self.cycle && self.policy == HazardPolicy::Fault {
            return Err(SimError::PrematureRead {
                cycle: self.cycle,
                word,
                cluster,
                reg: Reg(u16::from(pred) | 0x8000),
                ready_at: ready,
            });
        }
        Ok(self.preds[cluster as usize][pred as usize])
    }

    #[inline]
    fn read_doperand(
        &mut self,
        cluster: ClusterId,
        operand: DOperand,
        word: usize,
    ) -> Result<i16, SimError> {
        match operand {
            DOperand::Reg(r) => self.read_reg_idx(cluster, r, word),
            DOperand::Imm(v) => Ok(v),
        }
    }

    #[inline]
    fn effective_addr_idx(
        &mut self,
        cluster: ClusterId,
        addr: DAddr,
        word: usize,
    ) -> Result<u32, SimError> {
        let a = match addr {
            DAddr::Abs(a) => a,
            DAddr::Reg(r) => self.read_reg_idx(cluster, r, word)? as u16,
            DAddr::BaseDisp(r, d) => (self.read_reg_idx(cluster, r, word)?).wrapping_add(d) as u16,
            DAddr::Indexed(r, s) => {
                let base = self.read_reg_idx(cluster, r, word)?;
                let idx = self.read_reg_idx(cluster, s, word)?;
                base.wrapping_add(idx) as u16
            }
        };
        Ok(u32::from(a))
    }

    fn effective_addr(
        &self,
        cluster: ClusterId,
        addr: AddrMode,
        word: usize,
    ) -> Result<u32, SimError> {
        let a = match addr {
            AddrMode::Absolute(a) => a,
            AddrMode::Register(r) => self.read_reg(cluster, r, word)? as u16,
            AddrMode::BaseDisp(r, d) => (self.read_reg(cluster, r, word)?).wrapping_add(d) as u16,
            AddrMode::Indexed(r, s) => {
                let base = self.read_reg(cluster, r, word)?;
                let idx = self.read_reg(cluster, s, word)?;
                base.wrapping_add(idx) as u16
            }
        };
        Ok(u32::from(a))
    }

    /// Queues a commit for `at` cycles: in the ring when the latency fits
    /// the window (always, for real latency models), else in the ordered
    /// overflow map. Latency 0 also takes the map so the commit still
    /// lands on the next [`Simulator::apply_commits`] — its ring slot was
    /// already drained this cycle.
    #[inline]
    fn push_commit(&mut self, at: u64, latency: u32, commit: Commit) {
        if (1..=PENDING_SLOTS as u32).contains(&latency) {
            self.pending_ring[(at % PENDING_SLOTS as u64) as usize].push(commit);
            self.pending_count += 1;
        } else {
            self.pending_far.entry(at).or_default().push(commit);
        }
    }

    /// Checks a result entering the bypass network against the single
    /// write port: a second result landing on the same register in the
    /// same cycle is a [`SimError::WriteConflict`] under
    /// [`HazardPolicy::Fault`]. `at = cycle + latency` with `latency ≥ 1`
    /// is strictly in the future, so `ready == at` can only mean another
    /// commit is already pending for that exact cycle.
    #[inline]
    fn check_write_port(
        &self,
        ready: u64,
        at: u64,
        latency: u32,
        cluster: ClusterId,
        reg: Reg,
    ) -> Result<(), SimError> {
        if latency > 0 && ready == at && self.policy == HazardPolicy::Fault {
            return Err(SimError::WriteConflict {
                cycle: at,
                cluster,
                reg,
            });
        }
        Ok(())
    }

    fn schedule_reg(
        &mut self,
        cluster: ClusterId,
        reg: u16,
        value: i16,
        latency: u32,
    ) -> Result<(), SimError> {
        let at = self.cycle + u64::from(latency);
        let ready = self.reg_ready[cluster as usize][reg as usize];
        self.check_write_port(ready, at, latency, cluster, Reg(reg))?;
        self.push_commit(at, latency, Commit::Reg(cluster, Reg(reg), value));
        let slot = &mut self.reg_ready[cluster as usize][reg as usize];
        *slot = (*slot).max(at);
        Ok(())
    }

    fn schedule_pred(
        &mut self,
        cluster: ClusterId,
        pred: u8,
        value: bool,
        latency: u32,
    ) -> Result<(), SimError> {
        let at = self.cycle + u64::from(latency);
        let ready = self.pred_ready[cluster as usize][pred as usize];
        self.check_write_port(ready, at, latency, cluster, Reg(u16::from(pred) | 0x8000))?;
        self.push_commit(at, latency, Commit::Pred(cluster, Pred(pred), value));
        let slot = &mut self.pred_ready[cluster as usize][pred as usize];
        *slot = (*slot).max(at);
        Ok(())
    }

    /// Interpretive-path commit scheduling: always through the ordered
    /// map, mirroring the original interpreter's `BTreeMap` bookkeeping.
    /// [`Simulator::apply_commits`] drains both structures, so mixing
    /// `step` and `step_interp` on one simulator stays coherent.
    fn schedule_reg_interp(
        &mut self,
        cluster: ClusterId,
        reg: u16,
        value: i16,
        latency: u32,
    ) -> Result<(), SimError> {
        let at = self.cycle + u64::from(latency);
        let ready = self.reg_ready[cluster as usize][reg as usize];
        self.check_write_port(ready, at, latency, cluster, Reg(reg))?;
        self.pending_far
            .entry(at)
            .or_default()
            .push(Commit::Reg(cluster, Reg(reg), value));
        let slot = &mut self.reg_ready[cluster as usize][reg as usize];
        *slot = (*slot).max(at);
        Ok(())
    }

    /// Predicate twin of [`Simulator::schedule_reg_interp`].
    fn schedule_pred_interp(
        &mut self,
        cluster: ClusterId,
        pred: u8,
        value: bool,
        latency: u32,
    ) -> Result<(), SimError> {
        let at = self.cycle + u64::from(latency);
        let ready = self.pred_ready[cluster as usize][pred as usize];
        self.check_write_port(ready, at, latency, cluster, Reg(u16::from(pred) | 0x8000))?;
        self.pending_far
            .entry(at)
            .or_default()
            .push(Commit::Pred(cluster, Pred(pred), value));
        let slot = &mut self.pred_ready[cluster as usize][pred as usize];
        *slot = (*slot).max(at);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_op(
        &mut self,
        op: &Operation,
        word: usize,
        stores: &mut Vec<(ClusterId, u8, u32, i16)>,
        swaps: &mut Vec<(ClusterId, u8)>,
        reg_writes: &mut Vec<(ClusterId, u16, i16, u32)>,
        pred_writes: &mut Vec<(ClusterId, u8, bool, u32)>,
        branch: &mut Option<usize>,
        halt: &mut bool,
    ) -> Result<(), SimError> {
        let c = op.cluster;
        let latency = LatencyModel::new(self.machine).latency(&op.kind);
        match &op.kind {
            OpKind::AluBin { op: f, dst, a, b } => {
                let x = self.read_operand(c, *a, word)?;
                let y = self.read_operand(c, *b, word)?;
                reg_writes.push((c, dst.0, semantics::alu_bin(*f, x, y), latency));
            }
            OpKind::AluUn { op: f, dst, a } => {
                let x = self.read_operand(c, *a, word)?;
                reg_writes.push((c, dst.0, semantics::alu_un(*f, x), latency));
            }
            OpKind::Shift { op: f, dst, a, b } => {
                let x = self.read_operand(c, *a, word)?;
                let y = self.read_operand(c, *b, word)?;
                reg_writes.push((c, dst.0, semantics::shift(*f, x, y), latency));
            }
            OpKind::Mul { kind, dst, a, b } => {
                let x = self.read_operand(c, *a, word)?;
                let y = self.read_operand(c, *b, word)?;
                reg_writes.push((c, dst.0, semantics::mul(*kind, x, y), latency));
            }
            OpKind::Cmp { op: f, dst, a, b } => {
                let x = self.read_operand(c, *a, word)?;
                let y = self.read_operand(c, *b, word)?;
                pred_writes.push((c, dst.0, semantics::cmp(*f, x, y), latency));
            }
            OpKind::Load { dst, addr, bank } => {
                let a = self.effective_addr(c, *addr, word)?;
                let mem = &self.mems[c as usize][bank.index()];
                let v = mem.read(a).ok_or(SimError::MemOutOfRange {
                    cycle: self.cycle,
                    cluster: c,
                    bank: bank.0,
                    addr: a,
                    words: mem.words(),
                })?;
                self.stats.loads += 1;
                reg_writes.push((c, dst.0, v, latency));
            }
            OpKind::Store { src, addr, bank } => {
                let a = self.effective_addr(c, *addr, word)?;
                let v = self.read_operand(c, *src, word)?;
                // Range check now so the error carries the issue cycle.
                let mem = &self.mems[c as usize][bank.index()];
                if a >= mem.words() {
                    return Err(SimError::MemOutOfRange {
                        cycle: self.cycle,
                        cluster: c,
                        bank: bank.0,
                        addr: a,
                        words: mem.words(),
                    });
                }
                self.stats.stores += 1;
                stores.push((c, bank.0, a, v));
            }
            OpKind::Xfer { dst, from, src } => {
                let v = self.read_reg(*from, *src, word)?;
                self.stats.transfers += 1;
                reg_writes.push((c, dst.0, v, latency));
            }
            OpKind::Branch {
                pred,
                sense,
                target,
            } => {
                if self.read_pred(c, *pred, word)? == *sense {
                    *branch = Some(*target);
                }
            }
            OpKind::Jump { target } => *branch = Some(*target),
            OpKind::Halt => *halt = true,
            OpKind::MemCtl {
                op: MemCtlOp::SwapBuffers,
                bank,
            } => swaps.push((c, bank.0)),
            OpKind::Nop => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsp_core::models;
    use vsp_isa::{AluBinOp, AluUnOp, CmpOp, MemBank, PredGuard, ProgramBuilder};

    fn mov(cluster: ClusterId, slot: u8, dst: u16, v: i16) -> Operation {
        Operation::new(
            cluster,
            slot,
            OpKind::AluUn {
                op: AluUnOp::Mov,
                dst: Reg(dst),
                a: Operand::Imm(v),
            },
        )
    }

    fn add(cluster: ClusterId, slot: u8, dst: u16, a: u16, b: u16) -> Operation {
        Operation::new(
            cluster,
            slot,
            OpKind::AluBin {
                op: AluBinOp::Add,
                dst: Reg(dst),
                a: Operand::Reg(Reg(a)),
                b: Operand::Reg(Reg(b)),
            },
        )
    }

    fn halt_word(machine: &MachineConfig) -> Vec<Operation> {
        let (c, s) = machine.branch_slot();
        vec![Operation::new(c, s, OpKind::Halt)]
    }

    #[test]
    fn straight_line_arithmetic() {
        let m = models::i4c8s4();
        let mut p = Program::new("t");
        p.push_word(vec![mov(0, 0, 1, 20), mov(0, 1, 2, 22)]);
        p.push_word(vec![add(0, 0, 3, 1, 2)]);
        p.push_word(halt_word(&m));
        let mut sim = Simulator::new(&m, &p).unwrap();
        sim.run(100).unwrap();
        assert_eq!(sim.reg(0, Reg(3)), 42);
    }

    #[test]
    fn same_cycle_read_sees_old_value() {
        // Word 0 writes r1; an op in the same word reading r1 sees the
        // pre-write value (operand fetch precedes write-back).
        let m = models::i4c8s4();
        let mut p = Program::new("t");
        p.push_word(vec![mov(0, 0, 1, 7), add(0, 1, 2, 1, 1)]);
        p.push_word(halt_word(&m));
        let mut sim = Simulator::new(&m, &p).unwrap();
        sim.set_reg(0, Reg(1), 3);
        sim.run(100).unwrap();
        assert_eq!(sim.reg(0, Reg(2)), 6, "read old r1=3, not 7");
        assert_eq!(sim.reg(0, Reg(1)), 7);
    }

    #[test]
    fn load_use_hazard_faults_on_five_stage() {
        let m = models::i4c8s5();
        let mut p = Program::new("t");
        let ld = Operation::new(
            0,
            2,
            OpKind::Load {
                dst: Reg(1),
                addr: AddrMode::Absolute(0),
                bank: MemBank(0),
            },
        );
        p.push_word(vec![ld]);
        p.push_word(vec![add(0, 0, 2, 1, 1)]); // uses r1 one cycle too early
        p.push_word(halt_word(&m));
        let mut sim = Simulator::new(&m, &p).unwrap();
        let err = sim.run(100).unwrap_err();
        assert!(matches!(err, SimError::PrematureRead { .. }), "{err}");
    }

    #[test]
    fn load_use_ok_on_four_stage() {
        let m = models::i4c8s4();
        let mut p = Program::new("t");
        let ld = Operation::new(
            0,
            2,
            OpKind::Load {
                dst: Reg(1),
                addr: AddrMode::Absolute(3),
                bank: MemBank(0),
            },
        );
        p.push_word(vec![ld]);
        p.push_word(vec![add(0, 0, 2, 1, 1)]);
        p.push_word(halt_word(&m));
        let mut sim = Simulator::new(&m, &p).unwrap();
        sim.mem_mut(0, 0).write(3, 21);
        sim.run(100).unwrap();
        assert_eq!(sim.reg(0, Reg(2)), 42);
    }

    #[test]
    fn stale_read_policy_returns_old_value() {
        let m = models::i4c8s5();
        let mut p = Program::new("t");
        let ld = Operation::new(
            0,
            2,
            OpKind::Load {
                dst: Reg(1),
                addr: AddrMode::Absolute(0),
                bank: MemBank(0),
            },
        );
        p.push_word(vec![ld]);
        p.push_word(vec![add(0, 0, 2, 1, 1)]);
        p.push_word(halt_word(&m));
        let mut sim = Simulator::new(&m, &p).unwrap();
        sim.set_hazard_policy(HazardPolicy::StaleRead);
        sim.set_reg(0, Reg(1), 5);
        sim.mem_mut(0, 0).write(0, 100);
        sim.run(100).unwrap();
        assert_eq!(sim.reg(0, Reg(2)), 10, "stale r1 value used");
        assert_eq!(sim.reg(0, Reg(1)), 100, "load still lands");
    }

    #[test]
    fn branch_with_delay_slot() {
        let m = models::i4c8s4();
        let mut b = ProgramBuilder::new("loop");
        // r1 counts down from 3; r2 accumulates.
        b.word(vec![mov(0, 0, 1, 3), mov(0, 1, 2, 0)]);
        b.label("top");
        b.word(vec![
            add(0, 0, 2, 2, 1), // r2 += r1
            Operation::new(
                0,
                1,
                OpKind::AluBin {
                    op: AluBinOp::Sub,
                    dst: Reg(1),
                    a: Operand::Reg(Reg(1)),
                    b: Operand::Imm(1),
                },
            ),
        ]);
        // cmp in the next word (r1 updated), branch after that.
        b.word(vec![Operation::new(
            0,
            0,
            OpKind::Cmp {
                op: CmpOp::Gt,
                dst: Pred(0),
                a: Operand::Reg(Reg(1)),
                b: Operand::Imm(0),
            },
        )]);
        let (bc, bs) = m.branch_slot();
        let mut w = vsp_isa::Instruction::new();
        w.push(Operation::new(
            bc,
            bs,
            OpKind::Branch {
                pred: Pred(0),
                sense: true,
                target: usize::MAX,
            },
        ));
        b.word_with_fixup(w, "top");
        b.word(vec![]); // delay slot (empty)
        b.word(halt_word(&m));
        let p = b.finish().unwrap();
        let mut sim = Simulator::new(&m, &p).unwrap();
        sim.run(1000).unwrap();
        assert_eq!(sim.reg(0, Reg(2)), 3 + 2 + 1);
        assert_eq!(sim.reg(0, Reg(1)), 0);
    }

    #[test]
    fn predicated_ops_annul() {
        let m = models::i4c8s4();
        let mut p = Program::new("t");
        p.push_word(vec![Operation::new(
            0,
            0,
            OpKind::Cmp {
                op: CmpOp::Lt,
                dst: Pred(1),
                a: Operand::Imm(1),
                b: Operand::Imm(2),
            },
        )]);
        p.push_word(vec![
            Operation::guarded(
                0,
                0,
                PredGuard::if_true(Pred(1)),
                mov(0, 0, 1, 10).kind.clone(),
            )
            .into_slot(0, 0),
            Operation::guarded(
                0,
                1,
                PredGuard::if_false(Pred(1)),
                mov(0, 1, 2, 20).kind.clone(),
            )
            .into_slot(0, 1),
        ]);
        p.push_word(halt_word(&m));
        let mut sim = Simulator::new(&m, &p).unwrap();
        let stats = sim.run(100).unwrap();
        assert_eq!(sim.reg(0, Reg(1)), 10, "true guard commits");
        assert_eq!(sim.reg(0, Reg(2)), 0, "false guard annuls");
        assert_eq!(stats.annulled_ops, 1);
    }

    #[test]
    fn crossbar_transfer_moves_values() {
        let m = models::i4c8s4();
        let mut p = Program::new("t");
        p.push_word(vec![mov(3, 0, 7, 99)]);
        p.push_word(vec![Operation::new(
            0,
            0,
            OpKind::Xfer {
                dst: Reg(1),
                from: 3,
                src: Reg(7),
            },
        )]);
        p.push_word(halt_word(&m));
        let mut sim = Simulator::new(&m, &p).unwrap();
        let stats = sim.run(100).unwrap();
        assert_eq!(sim.reg(0, Reg(1)), 99);
        assert_eq!(stats.transfers, 1);
    }

    #[test]
    fn xfer_latency_respected_on_narrow_machine() {
        let m = models::i2c16s4(); // xfer latency 2
        let mut p = Program::new("t");
        p.push_word(vec![mov(3, 0, 7, 99)]);
        p.push_word(vec![Operation::new(
            0,
            0,
            OpKind::Xfer {
                dst: Reg(1),
                from: 3,
                src: Reg(7),
            },
        )]);
        p.push_word(vec![add(0, 0, 2, 1, 1)]); // one cycle too early
        p.push_word(halt_word(&m));
        let mut sim = Simulator::new(&m, &p).unwrap();
        assert!(matches!(
            sim.run(100).unwrap_err(),
            SimError::PrematureRead { .. }
        ));
    }

    #[test]
    fn store_visible_next_cycle() {
        let m = models::i4c8s4();
        let mut p = Program::new("t");
        let st = Operation::new(
            0,
            2,
            OpKind::Store {
                src: Operand::Imm(55),
                addr: AddrMode::Absolute(4),
                bank: MemBank(0),
            },
        );
        p.push_word(vec![st]);
        let ld = Operation::new(
            0,
            2,
            OpKind::Load {
                dst: Reg(1),
                addr: AddrMode::Absolute(4),
                bank: MemBank(0),
            },
        );
        p.push_word(vec![ld]);
        p.push_word(halt_word(&m));
        let mut sim = Simulator::new(&m, &p).unwrap();
        sim.run(100).unwrap();
        assert_eq!(sim.reg(0, Reg(1)), 55);
    }

    #[test]
    fn buffer_swap_op() {
        let m = models::i4c8s4();
        let mut p = Program::new("t");
        p.push_word(vec![Operation::new(
            0,
            2,
            OpKind::MemCtl {
                op: MemCtlOp::SwapBuffers,
                bank: MemBank(0),
            },
        )]);
        let ld = Operation::new(
            0,
            2,
            OpKind::Load {
                dst: Reg(1),
                addr: AddrMode::Absolute(0),
                bank: MemBank(0),
            },
        );
        p.push_word(vec![ld]);
        p.push_word(halt_word(&m));
        let mut sim = Simulator::new(&m, &p).unwrap();
        sim.mem_mut(0, 0).io_buffer_mut()[0] = 123;
        sim.run(100).unwrap();
        assert_eq!(sim.reg(0, Reg(1)), 123);
    }

    #[test]
    fn mem_range_fault() {
        let m = models::i2c16s4(); // 4096-word banks
        let mut p = Program::new("t");
        let ld = Operation::new(
            0,
            0,
            OpKind::Load {
                dst: Reg(1),
                addr: AddrMode::Absolute(5000),
                bank: MemBank(0),
            },
        );
        p.push_word(vec![ld]);
        p.push_word(halt_word(&m));
        let mut sim = Simulator::new(&m, &p).unwrap();
        assert!(matches!(
            sim.run(100).unwrap_err(),
            SimError::MemOutOfRange { addr: 5000, .. }
        ));
    }

    #[test]
    fn cycle_limit_and_run_off_end() {
        let m = models::i4c8s4();
        let mut b = ProgramBuilder::new("spin");
        b.label("top");
        b.branch_word(vec![], "top", None);
        b.word(vec![]); // delay slot
        let p = b.finish().unwrap();
        // The jump is placed by branch_word on cluster 0 slot 0, which is
        // not the control slot -> validation rejects it; rebuild manually.
        assert!(Simulator::new(&m, &p).is_err());

        let (bc, bs) = m.branch_slot();
        let mut p = Program::new("spin");
        p.push_word(vec![Operation::new(bc, bs, OpKind::Jump { target: 0 })]);
        p.push_word(vec![]);
        let mut sim = Simulator::new(&m, &p).unwrap();
        assert!(matches!(
            sim.run(50).unwrap_err(),
            SimError::CycleLimit { limit: 50 }
        ));

        let mut p2 = Program::new("off-end");
        p2.push_word(vec![mov(0, 0, 1, 1)]);
        let mut sim = Simulator::new(&m, &p2).unwrap();
        assert!(matches!(
            sim.run(10).unwrap_err(),
            SimError::RanOffEnd { .. }
        ));
    }

    #[test]
    fn stats_accounting() {
        let m = models::i4c8s4();
        let mut p = Program::new("t");
        p.push_word(vec![mov(0, 0, 1, 1), mov(1, 0, 1, 2)]);
        p.push_word(halt_word(&m));
        let mut sim = Simulator::new(&m, &p).unwrap();
        let stats = sim.run(100).unwrap();
        assert_eq!(stats.words, 2);
        assert_eq!(stats.total_ops(), 3); // 2 movs + halt
        assert_eq!(stats.issue_capacity, 2 * 33);
        assert!(stats.utilization() > 0.0);
        assert_eq!(stats.icache_misses, 0, "warmed cache");
    }

    #[test]
    fn branch_shadow_bubbles_are_counted() {
        let m = models::i4c8s4();
        let (bc, bs) = m.branch_slot();
        let bds = m.pipeline.branch_delay_slots as usize;
        let mut p = Program::new("t");
        p.push_word(vec![Operation::new(
            bc,
            bs,
            OpKind::Jump { target: 1 + bds },
        )]);
        for _ in 0..bds {
            p.push_word(vec![]); // empty delay slots: pure bubbles
        }
        p.push_word(halt_word(&m));
        let mut sim = Simulator::new(&m, &p).unwrap();
        let stats = sim.run(100).unwrap();
        assert_eq!(stats.branch_bubble_cycles, bds as u64);
        // Bubbles are issued words, not stalls: the coherence invariant
        // between cycles, words, and icache stalls is untouched.
        assert_eq!(stats.cycles, stats.words + stats.icache_stall_cycles);
    }

    #[test]
    fn per_cluster_ops_and_histogram() {
        let m = models::i4c8s4();
        let mut p = Program::new("t");
        p.push_word(vec![mov(0, 0, 1, 1), mov(0, 1, 2, 2), mov(2, 0, 1, 3)]);
        p.push_word(vec![mov(2, 0, 2, 4)]);
        p.push_word(halt_word(&m));
        let mut sim = Simulator::new(&m, &p).unwrap();
        let stats = sim.run(100).unwrap();
        // Cluster 0: two movs plus the halt (branch-class, lives in the
        // control slot on cluster 0).
        assert_eq!(stats.ops_by_cluster[0], 3);
        assert_eq!(stats.ops_by_cluster[2], 2);
        // Cluster 0: one word with 2 ops, one with 1 (halt), one idle.
        assert_eq!(stats.util_histogram[0], vec![1, 1, 1]);
        // Cluster 2: two words with 1 op each.
        assert_eq!(stats.util_histogram[2], vec![1, 2]);
        // Histogram mass equals the word count for every traced cluster.
        for hist in &stats.util_histogram {
            assert_eq!(hist.iter().sum::<u64>(), stats.words);
        }
    }

    #[test]
    fn trace_events_reconcile_with_stats() {
        let m = models::i4c8s4();
        let mut p = Program::new("t");
        p.push_word(vec![Operation::new(
            0,
            0,
            OpKind::Cmp {
                op: CmpOp::Lt,
                dst: Pred(1),
                a: Operand::Imm(5),
                b: Operand::Imm(2),
            },
        )]);
        p.push_word(vec![
            Operation::guarded(
                0,
                0,
                PredGuard::if_true(Pred(1)),
                mov(0, 0, 1, 10).kind.clone(),
            )
            .into_slot(0, 0),
            mov(1, 0, 3, 7),
        ]);
        p.push_word(halt_word(&m));
        let mut sink = vsp_trace::MemorySink::new();
        let mut sim = Simulator::with_sink(&m, &p, &mut sink).unwrap();
        let stats = sim.run(100).unwrap();
        drop(sim);
        assert_eq!(
            sink.count(|e| matches!(e, TraceEvent::Issue { .. })),
            stats.total_ops()
        );
        assert_eq!(
            sink.count(|e| matches!(e, TraceEvent::Annul { .. })),
            stats.annulled_ops
        );
        assert_eq!(sink.count(|e| matches!(e, TraceEvent::Halt { .. })), 1);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn validation_errors_surface_at_construction() {
        let m = models::i4c8s4();
        let mut p = Program::new("bad");
        p.push_word(vec![mov(0, 0, 200, 1)]); // r200 out of range
        assert!(matches!(
            Simulator::new(&m, &p).unwrap_err(),
            SimError::Invalid(_)
        ));
    }

    // Helper so the predicated test above reads naturally.
    trait IntoSlot {
        fn into_slot(self, cluster: ClusterId, slot: u8) -> Operation;
    }
    impl IntoSlot for Operation {
        fn into_slot(mut self, cluster: ClusterId, slot: u8) -> Operation {
            self.cluster = cluster;
            self.slot = slot;
            self
        }
    }
}
