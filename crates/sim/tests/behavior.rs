//! Simulator behavioural tests: determinism, stats coherence, icache
//! thrash costs, and the two hazard policies on the same program.

use vsp_core::models;
use vsp_isa::{
    AddrMode, AluBinOp, AluUnOp, CmpOp, Instruction, MemBank, OpKind, Operand, Operation, Pred,
    Program, Reg,
};
use vsp_sim::{HazardPolicy, Simulator};

fn mov(c: u8, s: u8, dst: u16, v: i16) -> Operation {
    Operation::new(
        c,
        s,
        OpKind::AluUn {
            op: AluUnOp::Mov,
            dst: Reg(dst),
            a: Operand::Imm(v),
        },
    )
}

/// A counted loop touching memory, ALUs and predicates on every cluster.
fn busy_loop_program(machine: &vsp_core::MachineConfig, trips: i16) -> Program {
    let (bc, bs) = machine.branch_slot();
    let mem_slot = machine
        .cluster
        .slots_for(vsp_isa::FuClass::Mem)
        .next()
        .expect("every model has a load/store slot");
    let alu_slot = machine
        .cluster
        .slots_for(vsp_isa::FuClass::Alu)
        .find(|&s| s != mem_slot)
        .expect("every model has a second ALU slot");
    let mut p = Program::new("busy");
    p.push_word(vec![mov(0, 0, 0, trips), mov(0, 1, 1, 0)]);
    let top = p.len();
    // body: r1 += mem[3]; decrement r0.
    let mut w = Instruction::new();
    w.push(Operation::new(
        0,
        mem_slot,
        OpKind::Load {
            dst: Reg(2),
            addr: AddrMode::Absolute(3),
            bank: MemBank(0),
        },
    ));
    w.push(Operation::new(
        0,
        alu_slot,
        OpKind::AluBin {
            op: AluBinOp::Sub,
            dst: Reg(0),
            a: Operand::Reg(Reg(0)),
            b: Operand::Imm(1),
        },
    ));
    p.push(w);
    // Pad for the load-use delay of 5-stage pipelines.
    for _ in 0..machine.pipeline.load_use_delay {
        p.push_word(vec![]);
    }
    p.push_word(vec![
        Operation::new(
            0,
            0,
            OpKind::AluBin {
                op: AluBinOp::Add,
                dst: Reg(1),
                a: Operand::Reg(Reg(1)),
                b: Operand::Reg(Reg(2)),
            },
        ),
        Operation::new(
            0,
            1,
            OpKind::Cmp {
                op: CmpOp::Gt,
                dst: Pred(0),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(0),
            },
        ),
    ]);
    p.push_word(vec![Operation::new(
        bc,
        bs,
        OpKind::Branch {
            pred: Pred(0),
            sense: true,
            target: top,
        },
    )]);
    p.push_word(vec![]); // delay slot
    p.push_word(vec![Operation::new(bc, bs, OpKind::Halt)]);
    p
}

#[test]
fn simulation_is_deterministic() {
    let m = models::i4c8s4();
    let p = busy_loop_program(&m, 50);
    let run = || {
        let mut sim = Simulator::new(&m, &p).unwrap();
        sim.mem_mut(0, 0).write(3, 7);
        let stats = sim.run(1_000_000).unwrap();
        (stats.cycles, stats.total_ops(), sim.reg(0, Reg(1)))
    };
    assert_eq!(run(), run());
}

#[test]
fn loop_accumulates_correctly() {
    let m = models::i4c8s4();
    let p = busy_loop_program(&m, 50);
    let mut sim = Simulator::new(&m, &p).unwrap();
    sim.mem_mut(0, 0).write(3, 7);
    sim.run(1_000_000).unwrap();
    assert_eq!(sim.reg(0, Reg(1)), 50 * 7);
    assert_eq!(sim.reg(0, Reg(0)), 0);
}

#[test]
fn stats_are_coherent() {
    let m = models::i2c16s4();
    let p = busy_loop_program(&m, 20);
    let mut sim = Simulator::new(&m, &p).unwrap();
    let stats = sim.run(1_000_000).unwrap();
    assert_eq!(stats.cycles, stats.words + stats.icache_stall_cycles);
    assert!(stats.total_ops() <= stats.issue_capacity);
    assert_eq!(stats.loads, 20);
    assert_eq!(stats.taken_branches, 19);
    assert!(stats.utilization() > 0.0 && stats.utilization() < 1.0);
    assert!(stats.gops_at(850.0) > 0.0);
}

#[test]
fn icache_thrash_is_expensive() {
    // Two identical machines, one with a tiny icache: the same loop
    // must cost dramatically more when it does not fit — the paper's
    // "all critical loops must fit into the cache".
    let m = models::i4c8s4();
    let mut tiny = m.clone();
    tiny.name = "I4C8S4-tiny-icache".into();
    tiny.icache_words = 2;
    let p = busy_loop_program(&m, 30);
    let run = |machine: &vsp_core::MachineConfig| {
        let mut sim = Simulator::new(machine, &p).unwrap();
        sim.run(10_000_000).unwrap().cycles
    };
    let fits = run(&m);
    let thrash = run(&tiny);
    assert!(
        thrash > fits * 20,
        "refills dominate: {thrash} vs {fits} cycles"
    );
}

#[test]
fn hazard_policies_differ_observably() {
    // A load-use violation on a 5-stage machine: Fault stops, StaleRead
    // produces the architecturally stale value.
    let m = models::i4c8s5();
    let mut p = Program::new("hazard");
    p.push_word(vec![Operation::new(
        0,
        2,
        OpKind::Load {
            dst: Reg(1),
            addr: AddrMode::Absolute(0),
            bank: MemBank(0),
        },
    )]);
    p.push_word(vec![Operation::new(
        0,
        0,
        OpKind::AluUn {
            op: AluUnOp::Mov,
            dst: Reg(2),
            a: Operand::Reg(Reg(1)),
        },
    )]);
    let (bc, bs) = m.branch_slot();
    p.push_word(vec![Operation::new(bc, bs, OpKind::Halt)]);

    let mut sim = Simulator::new(&m, &p).unwrap();
    sim.set_reg(0, Reg(1), -77);
    sim.mem_mut(0, 0).write(0, 42);
    assert!(sim.run(100).is_err(), "fault policy rejects");

    let mut sim = Simulator::new(&m, &p).unwrap();
    sim.set_hazard_policy(HazardPolicy::StaleRead);
    sim.set_reg(0, Reg(1), -77);
    sim.mem_mut(0, 0).write(0, 42);
    sim.run(100).unwrap();
    assert_eq!(sim.reg(0, Reg(2)), -77, "stale value observed");
    assert_eq!(sim.reg(0, Reg(1)), 42, "load still landed");
}

#[test]
fn every_model_executes_the_same_program_identically() {
    // The busy loop uses only universally supported features; cycle
    // counts may differ (load-use delays), results must not.
    let mut results = Vec::new();
    for m in models::all_models() {
        // 5-stage machines need the load-use gap; the busy loop has one
        // word between the load and its use, which exactly satisfies a
        // 1-cycle delay.
        let p = busy_loop_program(&m, 10);
        let mut sim = Simulator::new(&m, &p).unwrap();
        sim.mem_mut(0, 0).write(3, 5);
        sim.run(1_000_000).unwrap();
        results.push((m.name.clone(), sim.reg(0, Reg(1))));
    }
    for (name, v) in &results {
        assert_eq!(*v, 50, "{name}");
    }
}
