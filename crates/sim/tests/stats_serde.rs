//! Serde round-trip for the extended `RunStats`, including the fields
//! added for the stall-cycle breakdown and per-cluster utilization
//! (`branch_bubble_cycles`, `ops_by_cluster`, `util_histogram`).
//!
//! In registry-less environments where only the offline serde stubs are
//! available, serialization reports an error and the assertions are
//! skipped — the round-trip is meaningful exactly when real serde is
//! linked.

use std::collections::BTreeMap;
use vsp_isa::FuClass;
use vsp_sim::RunStats;

fn sample() -> RunStats {
    let mut ops_by_class = BTreeMap::new();
    ops_by_class.insert(FuClass::Alu, 120u64);
    ops_by_class.insert(FuClass::Mem, 40u64);
    ops_by_class.insert(FuClass::Branch, 8u64);
    RunStats {
        cycles: 300,
        words: 290,
        ops_by_class,
        annulled_ops: 3,
        loads: 30,
        stores: 10,
        transfers: 5,
        taken_branches: 8,
        icache_stall_cycles: 10,
        icache_misses: 2,
        issue_capacity: 290 * 33,
        branch_bubble_cycles: 7,
        ops_by_cluster: vec![100, 68, 0, 0],
        util_histogram: vec![vec![190, 60, 40], vec![222, 68]],
        faults_injected: 4,
        faults_detected: 3,
        faults_corrected: 2,
        faults_uncorrectable: 1,
        recovery_cycles: 55,
    }
}

#[test]
fn extended_stats_round_trip() {
    let stats = sample();
    let json = match serde_json::to_string(&stats) {
        Ok(json) => json,
        Err(_) => return, // offline serde stub; nothing to verify
    };
    for field in [
        "branch_bubble_cycles",
        "ops_by_cluster",
        "util_histogram",
        "icache_misses",
        "faults_injected",
        "recovery_cycles",
    ] {
        assert!(json.contains(field), "{field} missing from {json}");
    }
    let back: RunStats = serde_json::from_str(&json).expect("deserialize extended stats");
    assert_eq!(back, stats);
}

#[test]
fn new_fields_default_when_absent() {
    // Stats serialized before the observability extension lack the new
    // fields; they must deserialize to zero/empty.
    let legacy = "{\"cycles\":10,\"words\":10,\"ops_by_class\":{},\"annulled_ops\":0,\
                  \"loads\":0,\"stores\":0,\"transfers\":0,\"taken_branches\":0,\
                  \"icache_stall_cycles\":0,\"icache_misses\":0,\"issue_capacity\":330}";
    let parsed: RunStats = match serde_json::from_str(legacy) {
        Ok(parsed) => parsed,
        Err(_) => return, // offline serde stub
    };
    assert_eq!(parsed.cycles, 10);
    assert_eq!(parsed.branch_bubble_cycles, 0);
    assert!(parsed.ops_by_cluster.is_empty());
    assert!(parsed.util_histogram.is_empty());
    assert_eq!(parsed.faults_injected, 0);
    assert_eq!(parsed.faults_uncorrectable, 0);
    assert_eq!(parsed.recovery_cycles, 0);
}
