//! One test per [`SimError`] variant: each is provoked by a minimal
//! program and proven to serialize/deserialize losslessly.
//!
//! The serde assertions tolerate the offline `serde_json` stub (which
//! returns `Err` for every call) by bailing out early — the variant
//! itself is still proven to be raised.

use vsp_core::models;
use vsp_isa::{AddrMode, AluUnOp, MemBank, OpKind, Operand, Operation, Program, Reg};
use vsp_sim::{SimError, Simulator};

/// Assert the error survives a JSON round trip (no-op under the
/// offline serde_json stub).
fn assert_serializes(err: &SimError) {
    let json = match serde_json::to_string(err) {
        Ok(j) => j,
        Err(_) => return, // offline stub: serialization unavailable
    };
    // Err is tolerated: the offline stub cannot deserialize either.
    if let Ok(back) = serde_json::from_str::<SimError>(&json) {
        assert_eq!(&back, err, "round trip changed the error");
    }
}

fn mov(c: u8, s: u8, dst: u16, v: i16) -> Operation {
    Operation::new(
        c,
        s,
        OpKind::AluUn {
            op: AluUnOp::Mov,
            dst: Reg(dst),
            a: Operand::Imm(v),
        },
    )
}

fn load(c: u8, s: u8, dst: u16, addr: u16) -> Operation {
    Operation::new(
        c,
        s,
        OpKind::Load {
            dst: Reg(dst),
            addr: AddrMode::Absolute(addr),
            bank: MemBank(0),
        },
    )
}

#[test]
fn premature_read_is_raised_and_serializes() {
    // Load-use violation on a 5-stage machine: the consumer reads the
    // destination one cycle before the load's latency has elapsed.
    let m = models::i4c8s5();
    let mut p = Program::new("premature");
    p.push_word(vec![load(0, 2, 1, 0)]);
    p.push_word(vec![Operation::new(
        0,
        0,
        OpKind::AluUn {
            op: AluUnOp::Mov,
            dst: Reg(2),
            a: Operand::Reg(Reg(1)),
        },
    )]);
    let (bc, bs) = m.branch_slot();
    p.push_word(vec![Operation::new(bc, bs, OpKind::Halt)]);

    let mut sim = Simulator::new(&m, &p).unwrap();
    let err = sim.run(100).unwrap_err();
    match &err {
        SimError::PrematureRead {
            reg,
            ready_at,
            cycle,
            ..
        } => {
            assert_eq!(*reg, Reg(1));
            assert!(ready_at > cycle, "value must become ready after the read");
        }
        other => panic!("expected PrematureRead, got {other:?}"),
    }
    assert_serializes(&err);
}

#[test]
fn write_conflict_is_raised_and_serializes() {
    // On a 5-stage machine a load has latency 2 and an ALU op latency 1,
    // so a load in word 0 and a mov in word 1 targeting the same register
    // commit in the same cycle. Nothing reads the register early, so this
    // passes validation and the load-use check — only the writeback port
    // conflicts.
    let m = models::i4c8s5();
    assert!(m.pipeline.load_use_delay >= 1, "needs a 5-stage pipeline");
    let mut p = Program::new("conflict");
    p.push_word(vec![load(0, 2, 1, 0)]);
    p.push_word(vec![mov(0, 0, 1, 9)]);
    let (bc, bs) = m.branch_slot();
    p.push_word(vec![Operation::new(bc, bs, OpKind::Halt)]);

    let mut sim = Simulator::new(&m, &p).unwrap();
    let err = sim.run(100).unwrap_err();
    match &err {
        SimError::WriteConflict { reg, cluster, .. } => {
            assert_eq!(*reg, Reg(1));
            assert_eq!(*cluster, 0);
        }
        other => panic!("expected WriteConflict, got {other:?}"),
    }
    assert_serializes(&err);
}

#[test]
fn mem_out_of_range_is_raised_and_serializes() {
    let m = models::i4c8s4();
    let cap = m.cluster.banks[0].words;
    assert!(cap <= u16::MAX as u32, "bank fits an absolute address");
    let mut p = Program::new("oob");
    p.push_word(vec![load(0, 2, 1, cap as u16)]);
    let (bc, bs) = m.branch_slot();
    p.push_word(vec![Operation::new(bc, bs, OpKind::Halt)]);

    let mut sim = Simulator::new(&m, &p).unwrap();
    let err = sim.run(100).unwrap_err();
    match &err {
        SimError::MemOutOfRange {
            bank, addr, words, ..
        } => {
            assert_eq!(*bank, 0);
            assert_eq!(*addr, cap);
            assert_eq!(*words, cap);
        }
        other => panic!("expected MemOutOfRange, got {other:?}"),
    }
    assert_serializes(&err);
}

#[test]
fn cycle_limit_is_raised_and_serializes() {
    // An unconditional spin never halts, so a small budget trips.
    let m = models::i4c8s4();
    let (bc, bs) = m.branch_slot();
    let mut p = Program::new("spin");
    p.push_word(vec![Operation::new(bc, bs, OpKind::Jump { target: 0 })]);
    p.push_word(vec![]); // delay slot

    let mut sim = Simulator::new(&m, &p).unwrap();
    let err = sim.run(50).unwrap_err();
    assert_eq!(err, SimError::CycleLimit { limit: 50 });
    assert_serializes(&err);
}

#[test]
fn ran_off_end_is_raised_and_serializes() {
    // No halt anywhere: fetch falls off the end of the program.
    let m = models::i4c8s4();
    let mut p = Program::new("no-halt");
    p.push_word(vec![mov(0, 0, 0, 1)]);
    p.push_word(vec![mov(0, 0, 1, 2)]);

    let mut sim = Simulator::new(&m, &p).unwrap();
    let err = sim.run(100).unwrap_err();
    match &err {
        SimError::RanOffEnd { cycle } => assert!(*cycle >= 1),
        other => panic!("expected RanOffEnd, got {other:?}"),
    }
    assert_serializes(&err);
}
