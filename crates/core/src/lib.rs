//! Architectural machine models for the cluster-based VLIW video signal
//! processor — the primary contribution of *"Datapath Design for a VLIW
//! Video Signal Processor"* (HPCA 1997) packaged as a library.
//!
//! A machine is a set of identical functional-unit clusters around a
//! global crossbar (Fig. 1 of the paper). Each cluster has a local
//! multi-ported register file, a small predicate file, one or more
//! double-buffered local data memories, and a mix of functional units
//! (ALUs, a multiplier, a shifter, load/store units) shared across a few
//! issue slots. One extra control slot on cluster 0 issues branches — the
//! paper's "33 operations per cycle".
//!
//! * [`config`] — the parameterizable machine description
//!   ([`MachineConfig`], [`ClusterConfig`], [`PipelineConfig`]);
//! * [`models`] — the seven candidate datapaths of Tables 1–2
//!   (`I4C8S4`, `I4C8S4C`, `I4C8S5`, `I2C16S4`, `I2C16S5`, `I4C8S5M16`,
//!   `I2C16S5M16`) plus the dual-ported-memory ablation of §3.4.1;
//! * [`latency`] — operation latencies as a function of the pipeline;
//! * [`resources`] — per-cycle issue/resource accounting used by the
//!   schedulers;
//! * [`validate`] — structural validation of a program against a machine.
//!
//! # Example
//!
//! ```
//! use vsp_core::models;
//!
//! let machine = models::i4c8s4();
//! assert_eq!(machine.clusters, 8);
//! assert_eq!(machine.peak_ops_per_cycle(), 33);
//! let area = machine.datapath_spec().datapath_area().total_mm2();
//! assert!((area - 181.4).abs() < 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod latency;
pub mod models;
pub mod params;
pub mod resources;
pub mod validate;

pub use config::{
    Addressing, BankBinding, ClusterConfig, FuSet, MachineConfig, MemBankConfig, MulWidth,
    PipelineConfig,
};
pub use latency::LatencyModel;
pub use params::MachineParams;
pub use resources::CycleReservation;
pub use validate::{validate_config, validate_program, ConfigError, ValidationError};
