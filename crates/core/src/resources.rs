//! Per-cycle issue and resource accounting.
//!
//! A [`CycleReservation`] tracks which issue slots, crossbar ports and
//! memory banks one instruction word (equivalently: one cycle, or one
//! modulo-schedule row) has consumed. The schedulers reserve resources
//! through it and the validator replays committed programs against it —
//! "run-time arbitration for resources is never allowed" (§2), so every
//! structural constraint is enforced statically here.

use crate::config::{BankBinding, MachineConfig};
use serde::{Deserialize, Serialize};
use std::fmt;
use vsp_isa::{ClusterId, FuClass, OpKind, Operation, SlotId};

/// Why an operation could not be placed in a cycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReserveError {
    /// The cluster index exceeds the machine.
    NoSuchCluster(ClusterId),
    /// The slot index exceeds the cluster (and is not the control slot).
    NoSuchSlot(ClusterId, SlotId),
    /// The slot cannot issue this class of operation.
    Incapable(ClusterId, SlotId, FuClass),
    /// The slot is already occupied this cycle.
    SlotBusy(ClusterId, SlotId),
    /// Branches may only issue from the control slot of cluster 0.
    NotControlSlot(ClusterId, SlotId),
    /// All crossbar ports of a cluster are in use this cycle.
    XbarPortsExhausted(ClusterId),
    /// The memory bank does not exist.
    NoSuchBank(ClusterId, u8),
    /// Per-slot bank binding violated (slot *i* reaches only bank *i*).
    BankSlotMismatch(ClusterId, SlotId, u8),
    /// The memory bank's single port is already in use this cycle.
    BankBusy(ClusterId, u8),
}

impl fmt::Display for ReserveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReserveError::NoSuchCluster(c) => write!(f, "cluster {c} does not exist"),
            ReserveError::NoSuchSlot(c, s) => write!(f, "slot c{c}.s{s} does not exist"),
            ReserveError::Incapable(c, s, class) => {
                write!(f, "slot c{c}.s{s} cannot issue {class} operations")
            }
            ReserveError::SlotBusy(c, s) => write!(f, "slot c{c}.s{s} already issued this cycle"),
            ReserveError::NotControlSlot(c, s) => {
                write!(
                    f,
                    "c{c}.s{s} is not the control slot; branches issue from it only"
                )
            }
            ReserveError::XbarPortsExhausted(c) => {
                write!(f, "cluster {c} has no free crossbar port this cycle")
            }
            ReserveError::NoSuchBank(c, b) => write!(f, "cluster {c} has no bank m{b}"),
            ReserveError::BankSlotMismatch(c, s, b) => {
                write!(
                    f,
                    "slot c{c}.s{s} cannot reach bank m{b} (per-slot binding)"
                )
            }
            ReserveError::BankBusy(c, b) => {
                write!(f, "bank c{c}.m{b} port already used this cycle")
            }
        }
    }
}

impl std::error::Error for ReserveError {}

/// Resource usage of a single cycle.
#[derive(Debug, Clone)]
pub struct CycleReservation {
    clusters: u32,
    slots_per_cluster: u32,
    /// Occupancy per (cluster, slot); the control slot of cluster 0 is the
    /// extra entry at index `slots_per_cluster`.
    slot_used: Vec<bool>,
    xfer_used: Vec<u32>,
    bank_used: Vec<Vec<u32>>,
}

impl CycleReservation {
    /// Creates an empty reservation for one cycle on `machine`.
    pub fn new(machine: &MachineConfig) -> Self {
        let clusters = machine.clusters;
        let slots = machine.cluster.slot_count();
        CycleReservation {
            clusters,
            slots_per_cluster: slots,
            // +1 row per cluster for the control slot (only cluster 0's is
            // reachable, but uniform indexing keeps the math simple).
            slot_used: vec![false; (clusters * (slots + 1)) as usize],
            xfer_used: vec![0; clusters as usize],
            bank_used: vec![vec![0; machine.cluster.banks.len()]; clusters as usize],
        }
    }

    fn slot_index(&self, cluster: ClusterId, slot: SlotId) -> usize {
        cluster as usize * (self.slots_per_cluster as usize + 1) + slot as usize
    }

    /// Whether a slot is already occupied.
    pub fn slot_busy(&self, cluster: ClusterId, slot: SlotId) -> bool {
        self.slot_used[self.slot_index(cluster, slot)]
    }

    /// Crossbar ports still free on a cluster.
    pub fn xfer_free(&self, machine: &MachineConfig, cluster: ClusterId) -> u32 {
        machine
            .cluster
            .xbar_ports
            .saturating_sub(self.xfer_used[cluster as usize])
    }

    /// Checks whether `op` could be reserved without committing it.
    pub fn can_reserve(&self, machine: &MachineConfig, op: &Operation) -> bool {
        self.clone().try_reserve(machine, op).is_ok()
    }

    /// Attempts to reserve the resources for `op` this cycle.
    ///
    /// # Errors
    ///
    /// Returns a [`ReserveError`] describing the first violated
    /// structural constraint; on error no state is modified for slot and
    /// bank bookkeeping beyond the failed check.
    pub fn try_reserve(
        &mut self,
        machine: &MachineConfig,
        op: &Operation,
    ) -> Result<(), ReserveError> {
        let cluster = op.cluster;
        if u32::from(cluster) >= self.clusters {
            return Err(ReserveError::NoSuchCluster(cluster));
        }
        let class = match op.fu_class() {
            Some(c) => c,
            None => return Ok(()), // explicit nop consumes nothing
        };
        let slot = op.slot;
        let (bc, bs) = machine.branch_slot();

        if class == FuClass::Branch {
            if (cluster, slot) != (bc, bs) {
                return Err(ReserveError::NotControlSlot(cluster, slot));
            }
        } else {
            if u32::from(slot) >= self.slots_per_cluster {
                return Err(ReserveError::NoSuchSlot(cluster, slot));
            }
            let caps = machine.cluster.slots[slot as usize];
            if !caps.contains(class) {
                return Err(ReserveError::Incapable(cluster, slot, class));
            }
        }

        if self.slot_busy(cluster, slot) {
            return Err(ReserveError::SlotBusy(cluster, slot));
        }

        // Class-specific shared resources.
        match &op.kind {
            OpKind::Xfer { from, .. } => {
                if u32::from(*from) >= self.clusters {
                    return Err(ReserveError::NoSuchCluster(*from));
                }
                if self.xfer_free(machine, cluster) == 0 {
                    return Err(ReserveError::XbarPortsExhausted(cluster));
                }
                if *from != cluster && self.xfer_free(machine, *from) == 0 {
                    return Err(ReserveError::XbarPortsExhausted(*from));
                }
                self.xfer_used[cluster as usize] += 1;
                if *from != cluster {
                    self.xfer_used[*from as usize] += 1;
                }
            }
            OpKind::Load { bank, .. }
            | OpKind::Store { bank, .. }
            | OpKind::MemCtl { bank, .. } => {
                let b = bank.index();
                let banks = &mut self.bank_used[cluster as usize];
                if b >= banks.len() {
                    return Err(ReserveError::NoSuchBank(cluster, bank.0));
                }
                if machine.cluster.bank_binding == BankBinding::PerSlot && bank.0 != slot {
                    return Err(ReserveError::BankSlotMismatch(cluster, slot, bank.0));
                }
                if banks[b] >= machine.cluster.banks[b].ports {
                    return Err(ReserveError::BankBusy(cluster, bank.0));
                }
                banks[b] += 1;
            }
            _ => {}
        }

        let idx = self.slot_index(cluster, slot);
        self.slot_used[idx] = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use vsp_isa::{AddrMode, AluBinOp, MemBank, Operand, Pred, Reg};

    fn add(cluster: ClusterId, slot: SlotId) -> Operation {
        Operation::new(
            cluster,
            slot,
            OpKind::AluBin {
                op: AluBinOp::Add,
                dst: Reg(1),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(1),
            },
        )
    }

    fn ld(cluster: ClusterId, slot: SlotId, bank: u8) -> Operation {
        Operation::new(
            cluster,
            slot,
            OpKind::Load {
                dst: Reg(1),
                addr: AddrMode::Register(Reg(0)),
                bank: MemBank(bank),
            },
        )
    }

    #[test]
    fn slot_occupancy() {
        let m = models::i4c8s4();
        let mut r = CycleReservation::new(&m);
        r.try_reserve(&m, &add(0, 0)).unwrap();
        assert_eq!(
            r.try_reserve(&m, &add(0, 0)),
            Err(ReserveError::SlotBusy(0, 0))
        );
        r.try_reserve(&m, &add(0, 1)).unwrap();
    }

    #[test]
    fn capability_enforced() {
        let m = models::i4c8s4();
        let mut r = CycleReservation::new(&m);
        // Slot 3 of the wide cluster has no Mem capability.
        assert_eq!(
            r.try_reserve(&m, &ld(0, 3, 0)),
            Err(ReserveError::Incapable(0, 3, FuClass::Mem))
        );
        r.try_reserve(&m, &ld(0, 2, 0)).unwrap();
    }

    #[test]
    fn one_load_per_cycle_on_wide_clusters() {
        // The Full-Motion-Search bottleneck: "the load/store unit which is
        // limited to one load per cluster per cycle".
        let m = models::i4c8s4();
        let mut r = CycleReservation::new(&m);
        r.try_reserve(&m, &ld(0, 2, 0)).unwrap();
        // No other slot can issue memory ops at all.
        for slot in [0u8, 1, 3] {
            assert!(r.try_reserve(&m, &ld(0, slot, 0)).is_err());
        }
    }

    #[test]
    fn dualport_ablation_allows_two_loads() {
        let m = models::i4c8s4_dualport();
        let mut r = CycleReservation::new(&m);
        r.try_reserve(&m, &ld(0, 2, 0)).unwrap();
        // The §3.4.1 ablation's dual-ported memory takes a second access.
        r.try_reserve(&m, &ld(0, 3, 0)).unwrap();
        // But not a third (no third LSU slot and no third port).
        assert!(r.try_reserve(&m, &ld(0, 0, 0)).is_err());
    }

    #[test]
    fn per_slot_bank_binding() {
        let m = models::i2c16s4();
        let mut r = CycleReservation::new(&m);
        r.try_reserve(&m, &ld(3, 0, 0)).unwrap();
        assert_eq!(
            r.try_reserve(&m, &ld(3, 1, 0)),
            Err(ReserveError::BankSlotMismatch(3, 1, 0))
        );
        r.try_reserve(&m, &ld(3, 1, 1)).unwrap();
    }

    #[test]
    fn crossbar_port_limits() {
        let m = models::i2c16s4(); // 1 port per cluster
        let mut r = CycleReservation::new(&m);
        let x = |dst_cluster: ClusterId, slot: SlotId, from: ClusterId| {
            Operation::new(
                dst_cluster,
                slot,
                OpKind::Xfer {
                    dst: Reg(1),
                    from,
                    src: Reg(2),
                },
            )
        };
        r.try_reserve(&m, &x(0, 0, 1)).unwrap();
        // Cluster 1's single port is now consumed as a source.
        assert_eq!(
            r.try_reserve(&m, &x(2, 0, 1)),
            Err(ReserveError::XbarPortsExhausted(1))
        );
        // Cluster 0's port is consumed as a destination.
        assert_eq!(
            r.try_reserve(&m, &x(0, 1, 3)),
            Err(ReserveError::XbarPortsExhausted(0))
        );
        // Unrelated clusters still transfer freely.
        r.try_reserve(&m, &x(4, 0, 5)).unwrap();
    }

    #[test]
    fn wide_clusters_have_port_per_slot() {
        let m = models::i4c8s4(); // 4 ports per cluster
        let mut r = CycleReservation::new(&m);
        for slot in 0..4u8 {
            let op = Operation::new(
                1,
                slot,
                OpKind::Xfer {
                    dst: Reg(slot as u16),
                    from: 2 + slot,
                    src: Reg(0),
                },
            );
            r.try_reserve(&m, &op).unwrap();
        }
    }

    #[test]
    fn branch_only_in_control_slot() {
        let m = models::i4c8s4();
        let mut r = CycleReservation::new(&m);
        let br = |c: ClusterId, s: SlotId| {
            Operation::new(
                c,
                s,
                OpKind::Branch {
                    pred: Pred(0),
                    sense: true,
                    target: 0,
                },
            )
        };
        assert_eq!(
            r.try_reserve(&m, &br(0, 0)),
            Err(ReserveError::NotControlSlot(0, 0))
        );
        assert_eq!(
            r.try_reserve(&m, &br(1, 4)),
            Err(ReserveError::NotControlSlot(1, 4))
        );
        r.try_reserve(&m, &br(0, 4)).unwrap();
        assert_eq!(
            r.try_reserve(&m, &br(0, 4)),
            Err(ReserveError::SlotBusy(0, 4))
        );
    }

    #[test]
    fn out_of_range_indices() {
        let m = models::i4c8s4();
        let mut r = CycleReservation::new(&m);
        assert_eq!(
            r.try_reserve(&m, &add(8, 0)),
            Err(ReserveError::NoSuchCluster(8))
        );
        assert_eq!(
            r.try_reserve(&m, &add(0, 4)),
            Err(ReserveError::NoSuchSlot(0, 4))
        );
        assert_eq!(
            r.try_reserve(&m, &ld(0, 2, 1)),
            Err(ReserveError::NoSuchBank(0, 1))
        );
    }

    #[test]
    fn nop_consumes_nothing() {
        let m = models::i4c8s4();
        let mut r = CycleReservation::new(&m);
        r.try_reserve(&m, &Operation::new(0, 0, OpKind::Nop))
            .unwrap();
        r.try_reserve(&m, &add(0, 0)).unwrap();
    }
}
