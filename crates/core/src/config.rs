//! The parameterizable machine description.
//!
//! §2 of the paper lists the architectural parameters "to be determined by
//! the results of the VLSI simulations and representative application
//! analysis": the number of clusters, arithmetic and memory units per
//! cluster, registers per cluster, register-file ports, local data memory
//! per cluster, and global crossbar ports per cluster. [`MachineConfig`]
//! captures exactly that parameter space.

use serde::{Deserialize, Serialize};
use std::fmt;
use vsp_isa::{ClusterId, FuClass, SlotId};
use vsp_vlsi::arith::MultiplierDesign;
use vsp_vlsi::crossbar::CrossbarDesign;
use vsp_vlsi::datapath::{DatapathSpec, PipelineDepth};
use vsp_vlsi::regfile::RegFileDesign;
use vsp_vlsi::sram::{SramDesign, SramFamily};
use vsp_vlsi::tech::DriverSize;

/// A small set of functional-unit classes (which operations an issue slot
/// may launch).
///
/// Hand-rolled instead of pulling in the `bitflags` crate: six variants,
/// one byte, no external dependency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FuSet(u8);

impl FuSet {
    /// The empty set.
    pub const EMPTY: FuSet = FuSet(0);

    fn bit(class: FuClass) -> u8 {
        match class {
            FuClass::Alu => 1,
            FuClass::Mul => 2,
            FuClass::Shift => 4,
            FuClass::Mem => 8,
            FuClass::Branch => 16,
            FuClass::Xfer => 32,
        }
    }

    /// Builds a set from a list of classes.
    pub fn of(classes: &[FuClass]) -> FuSet {
        let mut s = FuSet::EMPTY;
        for &c in classes {
            s = s.with(c);
        }
        s
    }

    /// Returns this set with `class` added.
    pub fn with(self, class: FuClass) -> FuSet {
        FuSet(self.0 | Self::bit(class))
    }

    /// Membership test.
    pub fn contains(self, class: FuClass) -> bool {
        self.0 & Self::bit(class) != 0
    }

    /// Iterates over the classes in the set.
    pub fn iter(self) -> impl Iterator<Item = FuClass> {
        FuClass::ALL.into_iter().filter(move |&c| self.contains(c))
    }
}

impl fmt::Display for FuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in self.iter() {
            if !first {
                f.write_str("|")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        if first {
            f.write_str("-")?;
        }
        Ok(())
    }
}

/// Supported addressing modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Addressing {
    /// Only direct and register-indirect addressing (the 4-stage models;
    /// address arithmetic needs explicit ALU operations).
    Simple,
    /// Additionally base+displacement and indexed (register+register).
    Complex,
}

/// Native multiplier width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MulWidth {
    /// 8×8 multiplier; 16×16 products must be decomposed in software.
    Eight,
    /// 16×16 two-stage multiplier (the `M16` machines of Table 2).
    Sixteen,
}

/// How memory banks relate to issue slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BankBinding {
    /// Any memory-capable slot reaches any bank.
    Any,
    /// Slot *i* reaches only bank *i* — the `I2C16S4` arrangement where
    /// "each issue slot can ... support a load/store operation to a
    /// specific one of the local memories".
    PerSlot,
}

/// One local data-memory bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemBankConfig {
    /// Capacity in 16-bit words (the memory is word addressed). Each bank
    /// is double-buffered: the capacity below is per buffer.
    pub words: u32,
    /// Access ports (1 for all paper models; 2 for the dual-ported-memory
    /// ablation of §3.4.1).
    pub ports: u32,
}

impl MemBankConfig {
    /// A single-ported bank of the given word capacity.
    pub fn single_ported(words: u32) -> Self {
        MemBankConfig { words, ports: 1 }
    }

    /// Capacity in bytes.
    pub fn bytes(&self) -> u32 {
        self.words * 2
    }
}

/// Configuration of one cluster (all clusters are identical, §2: "To
/// maintain a consistent programming model, all clusters are identical").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Capability set of each issue slot.
    pub slots: Vec<FuSet>,
    /// General registers per cluster.
    pub registers: u32,
    /// Predicate registers per cluster.
    pub pred_regs: u32,
    /// Local data-memory banks.
    pub banks: Vec<MemBankConfig>,
    /// Bank/slot binding rule.
    pub bank_binding: BankBinding,
    /// Crossbar ports of this cluster (simultaneous transfer involvements
    /// per cycle, as source or destination).
    pub xbar_ports: u32,
    /// Register-file ports per issue slot, when sweeping the port axis
    /// explicitly (§3.2's read/write port study). `None` uses the
    /// paper's standard allocation (3 ports per slot: 2 read + 1
    /// write), which every hand-built model assumes.
    #[serde(default)]
    pub rf_ports_per_slot: Option<u32>,
}

impl ClusterConfig {
    /// Number of issue slots.
    pub fn slot_count(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Slots able to issue operations of the given class, in slot order.
    pub fn slots_for(&self, class: FuClass) -> impl Iterator<Item = SlotId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(move |(_, caps)| caps.contains(class))
            .map(|(i, _)| i as SlotId)
    }

    /// Number of slots able to issue the given class per cycle.
    pub fn capacity(&self, class: FuClass) -> u32 {
        self.slots.iter().filter(|c| c.contains(class)).count() as u32
    }
}

/// Pipeline organization and operation timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Number of stages (4 or 5).
    pub stages: u32,
    /// Extra cycles between a load and a use of its result (0 for the
    /// 4-stage pipelines, 1 for the 5-stage ones).
    pub load_use_delay: u32,
    /// Multiplier result latency in cycles (1 single-stage, 2 pipelined).
    pub mul_latency: u32,
    /// Delay slots after a taken branch.
    pub branch_delay_slots: u32,
    /// Crossbar transfer latency in cycles.
    pub xfer_latency: u32,
}

/// A complete machine description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Model name (e.g. `I4C8S4`).
    pub name: String,
    /// Number of identical clusters.
    pub clusters: u32,
    /// Per-cluster configuration.
    pub cluster: ClusterConfig,
    /// Pipeline organization.
    pub pipeline: PipelineConfig,
    /// Supported addressing modes.
    pub addressing: Addressing,
    /// Native multiplier width.
    pub mul_width: MulWidth,
    /// Whether the specialized absolute-difference ALU operator is fitted.
    pub has_absdiff: bool,
    /// Instruction-cache capacity in VLIW words ("all critical loops must
    /// fit into the cache").
    pub icache_words: u32,
    /// Demand-refill penalty per missed word, in cycles ("likely to be in
    /// excess of 100 cycles").
    pub icache_refill_cycles: u32,
}

impl MachineConfig {
    /// The control slot: cluster 0 carries one extra slot, after its
    /// datapath slots, that only issues branches — the "33rd operation".
    pub fn branch_slot(&self) -> (ClusterId, SlotId) {
        (0, self.cluster.slot_count() as SlotId)
    }

    /// Peak operations per cycle, counting the control slot.
    pub fn peak_ops_per_cycle(&self) -> u32 {
        self.clusters * self.cluster.slot_count() + 1
    }

    /// Total local data memory across the machine, in bytes (per active
    /// buffer; double buffering doubles the physical storage).
    pub fn total_mem_bytes(&self) -> u64 {
        u64::from(self.clusters)
            * self
                .cluster
                .banks
                .iter()
                .map(|b| u64::from(b.bytes()))
                .sum::<u64>()
    }

    /// Whether an addressing mode is legal on this machine.
    pub fn supports_addr(&self, addr: vsp_isa::AddrMode) -> bool {
        self.addressing == Addressing::Complex || !addr.is_complex()
    }

    /// Load/store units per cluster (memory-capable slots).
    pub fn lsus_per_cluster(&self) -> u32 {
        self.cluster.capacity(FuClass::Mem)
    }

    /// Builds the physical-description twin of this machine for the VLSI
    /// area and cycle-time models.
    pub fn datapath_spec(&self) -> DatapathSpec {
        let slots = self.cluster.slot_count();
        let multiplier = match (self.mul_width, self.pipeline.mul_latency) {
            (MulWidth::Eight, 1) => MultiplierDesign::mul8(),
            (MulWidth::Eight, _) => MultiplierDesign::mul8_pipelined(),
            (MulWidth::Sixteen, _) => MultiplierDesign::mul16(),
        };
        let bank_bytes = self.cluster.banks.first().map(|b| b.bytes()).unwrap_or(2);
        let mem_ports = self.cluster.banks.first().map(|b| b.ports).unwrap_or(1);
        let family = if self.clusters > 8 && self.pipeline.stages == 5 && mem_ports == 1 {
            SramFamily::HighDensityFast
        } else {
            SramFamily::HighDensity
        };
        let pipeline = if self.pipeline.stages >= 5 {
            PipelineDepth::Five
        } else {
            PipelineDepth::Four
        };
        DatapathSpec {
            name: self.name.clone(),
            clusters: self.clusters,
            issue_slots: slots,
            alus: self.cluster.capacity(FuClass::Alu),
            absdiff_alu: self.has_absdiff,
            multiplier: Some(multiplier),
            shifter: self.cluster.capacity(FuClass::Shift) > 0,
            lsus: self.lsus_per_cluster(),
            regfile: match self.cluster.rf_ports_per_slot {
                Some(ports) => RegFileDesign::new(self.cluster.registers, ports * slots),
                None => RegFileDesign::for_issue_slots(slots, self.cluster.registers),
            },
            mem_banks: self.cluster.banks.len() as u32,
            mem: SramDesign::new(bank_bytes, mem_ports, family),
            pipeline,
            fused_addr_mem: self.addressing == Addressing::Complex && self.pipeline.stages == 4,
            crossbar: CrossbarDesign::new(
                self.clusters * self.cluster.xbar_ports,
                DriverSize::W5_1,
            ),
            xbar_ports_per_cluster: self.cluster.xbar_ports,
            icache_words: self.icache_words,
        }
    }

    /// Relative clock speed of this machine against a baseline, using the
    /// VLSI cycle-time model (the "Estimated Relative Clock Speed" rows).
    pub fn relative_clock(&self, base: &MachineConfig) -> f64 {
        let model = vsp_vlsi::clock::CycleTimeModel::new();
        let mine = model.estimate(&self.datapath_spec());
        let theirs = model.estimate(&base.datapath_spec());
        mine.relative_to(&theirs)
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} clusters x {} slots, {} regs/cluster, {} banks x {} words, {}-stage",
            self.name,
            self.clusters,
            self.cluster.slot_count(),
            self.cluster.registers,
            self.cluster.banks.len(),
            self.cluster.banks.first().map(|b| b.words).unwrap_or(0),
            self.pipeline.stages,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuset_basics() {
        let s = FuSet::of(&[FuClass::Alu, FuClass::Mem]);
        assert!(s.contains(FuClass::Alu));
        assert!(s.contains(FuClass::Mem));
        assert!(!s.contains(FuClass::Mul));
        assert_eq!(s.iter().count(), 2);
        assert_eq!(s.to_string(), "alu|mem");
        assert_eq!(FuSet::EMPTY.to_string(), "-");
    }

    #[test]
    fn fuset_with_is_idempotent() {
        let s = FuSet::EMPTY.with(FuClass::Alu).with(FuClass::Alu);
        assert_eq!(s.iter().count(), 1);
    }

    #[test]
    fn cluster_capacity_and_slots_for() {
        let c = ClusterConfig {
            slots: vec![
                FuSet::of(&[FuClass::Alu, FuClass::Mul]),
                FuSet::of(&[FuClass::Alu, FuClass::Shift]),
                FuSet::of(&[FuClass::Alu, FuClass::Mem]),
                FuSet::of(&[FuClass::Alu]),
            ],
            registers: 128,
            pred_regs: 8,
            banks: vec![MemBankConfig::single_ported(16384)],
            bank_binding: BankBinding::Any,
            xbar_ports: 4,
            rf_ports_per_slot: None,
        };
        assert_eq!(c.capacity(FuClass::Alu), 4);
        assert_eq!(c.capacity(FuClass::Mem), 1);
        let mem_slots: Vec<SlotId> = c.slots_for(FuClass::Mem).collect();
        assert_eq!(mem_slots, vec![2]);
    }

    #[test]
    fn bank_bytes() {
        assert_eq!(MemBankConfig::single_ported(16384).bytes(), 32768);
    }
}
