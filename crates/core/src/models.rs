//! The candidate datapath models of the paper (§3.2, Tables 1–2).
//!
//! Naming: `I<slots>C<clusters>S<stages>[C][M16]` — issue slots per
//! cluster, cluster count, pipeline stages; `C` marks complex addressing
//! folded into the 4-stage pipeline, `M16` the 16-bit two-stage
//! multiplier.
//!
//! | model        | clusters×slots | regs | memory           | pipeline | addressing | rel. clock |
//! |--------------|----------------|------|------------------|----------|------------|-----------|
//! | `I4C8S4`     | 8×4            | 128  | 32 KB            | 4-stage  | simple     | 1.0       |
//! | `I4C8S4C`    | 8×4            | 128  | 32 KB            | 4-stage  | complex    | 0.6       |
//! | `I4C8S5`     | 8×4            | 128  | 32 KB            | 5-stage  | complex    | 0.95      |
//! | `I2C16S4`    | 16×2           | 64   | 2×8 KB per-slot  | 4-stage  | simple     | 1.3       |
//! | `I2C16S5`    | 16×2           | 64   | 16 KB fast cell  | 5-stage  | complex    | 1.3       |
//! | `I4C8S5M16`  | 8×4            | 128  | 32 KB            | 5-stage  | complex    | 0.95      |
//! | `I2C16S5M16` | 16×2           | 64   | 16 KB fast cell  | 5-stage  | complex    | 1.3       |

use crate::config::{
    Addressing, BankBinding, ClusterConfig, FuSet, MachineConfig, MemBankConfig, MulWidth,
    PipelineConfig,
};
use vsp_isa::FuClass;

/// Instruction-cache refill penalty per word (the paper: "likely to be in
/// excess of 100 cycles for this type of processor").
pub const ICACHE_REFILL_CYCLES: u32 = 120;

fn wide_cluster(registers: u32, mem_words: u32) -> ClusterConfig {
    // Fig. 1 / §3.2: 4 ALUs, one multiplier, one shifter, one load/store
    // unit, "each set of 3 register-file ports supports one ALU and up to
    // one alternate function"; one crossbar port per issue slot.
    let xfer = FuClass::Xfer;
    ClusterConfig {
        slots: vec![
            FuSet::of(&[FuClass::Alu, FuClass::Mul, xfer]),
            FuSet::of(&[FuClass::Alu, FuClass::Shift, xfer]),
            FuSet::of(&[FuClass::Alu, FuClass::Mem, xfer]),
            FuSet::of(&[FuClass::Alu, xfer]),
        ],
        registers,
        pred_regs: 8,
        banks: vec![MemBankConfig::single_ported(mem_words)],
        bank_binding: BankBinding::Any,
        xbar_ports: 4,
        rf_ports_per_slot: None,
    }
}

fn narrow_cluster(banks: Vec<MemBankConfig>, binding: BankBinding) -> ClusterConfig {
    // §3.2: "Each issue slot can now support either an ALU operation or a
    // load/store operation ... One of the issue slots can alternatively
    // perform a multiply and the other can perform a shift." One crossbar
    // port per cluster.
    let xfer = FuClass::Xfer;
    ClusterConfig {
        slots: vec![
            FuSet::of(&[FuClass::Alu, FuClass::Mem, FuClass::Mul, xfer]),
            FuSet::of(&[FuClass::Alu, FuClass::Mem, FuClass::Shift, xfer]),
        ],
        registers: 64,
        pred_regs: 8,
        banks,
        bank_binding: binding,
        xbar_ports: 1,
        rf_ports_per_slot: None,
    }
}

/// The initial design point: 8 clusters of 4 issue slots, 128 registers,
/// 32 KB local RAM, 4-stage pipeline, simple addressing, 650 MHz target.
///
/// ```
/// let m = vsp_core::models::i4c8s4();
/// assert_eq!(m.clusters, 8);
/// assert_eq!(m.cluster.slot_count(), 4);
/// // 8 clusters × 4 slots + the control slot = the paper's 33 ops/cycle.
/// assert_eq!(m.peak_ops_per_cycle(), 33);
/// ```
pub fn i4c8s4() -> MachineConfig {
    MachineConfig {
        name: "I4C8S4".into(),
        clusters: 8,
        cluster: wide_cluster(128, 16384),
        pipeline: PipelineConfig {
            stages: 4,
            load_use_delay: 0,
            mul_latency: 1,
            branch_delay_slots: 1,
            xfer_latency: 1,
        },
        addressing: Addressing::Simple,
        mul_width: MulWidth::Eight,
        has_absdiff: false,
        icache_words: 1024,
        icache_refill_cycles: ICACHE_REFILL_CYCLES,
    }
}

/// `I4C8S4C`: complex addressing folded into the 4-stage pipeline — an
/// address addition and the memory access share a stage, with "a very
/// significant impact on cycle time" (relative clock 0.6).
pub fn i4c8s4c() -> MachineConfig {
    let mut m = i4c8s4();
    m.name = "I4C8S4C".into();
    m.addressing = Addressing::Complex;
    m
}

/// `I4C8S5`: complex addressing the realistic way — a 5-stage pipeline
/// with separate execute and memory stages, a 1-cycle load-use delay and
/// 4 extra bypass paths.
pub fn i4c8s5() -> MachineConfig {
    let mut m = i4c8s4();
    m.name = "I4C8S5".into();
    m.addressing = Addressing::Complex;
    m.pipeline.stages = 5;
    m.pipeline.load_use_delay = 1;
    m
}

/// `I2C16S4`: 16 small clusters of 2 issue slots, 64 registers, two
/// separate 8 KB memories (each bound to its issue slot), two-stage
/// multiplier, 16×16 crossbar with one port per cluster — the ~850 MHz
/// design.
pub fn i2c16s4() -> MachineConfig {
    MachineConfig {
        name: "I2C16S4".into(),
        clusters: 16,
        cluster: narrow_cluster(
            vec![
                MemBankConfig::single_ported(4096),
                MemBankConfig::single_ported(4096),
            ],
            BankBinding::PerSlot,
        ),
        pipeline: PipelineConfig {
            stages: 4,
            load_use_delay: 0,
            mul_latency: 2,
            branch_delay_slots: 1,
            xfer_latency: 2,
        },
        addressing: Addressing::Simple,
        mul_width: MulWidth::Eight,
        has_absdiff: false,
        icache_words: 512,
        icache_refill_cycles: ICACHE_REFILL_CYCLES,
    }
}

/// `I2C16S5`: the 16-cluster machine with a 5-stage pipeline, complex
/// addressing, and a single 16 KB fast-cell memory per cluster (decode
/// moved before the stage boundary, "a significant area penalty").
pub fn i2c16s5() -> MachineConfig {
    let mut m = i2c16s4();
    m.name = "I2C16S5".into();
    m.cluster = narrow_cluster(vec![MemBankConfig::single_ported(8192)], BankBinding::Any);
    m.pipeline.stages = 5;
    m.pipeline.load_use_delay = 1;
    m.addressing = Addressing::Complex;
    m
}

/// `I4C8S5M16`: `I4C8S5` with a 16-bit two-stage multiplier (Table 2);
/// multiply-use delay of 1 cycle, 16 bits of result per operation.
pub fn i4c8s5m16() -> MachineConfig {
    let mut m = i4c8s5();
    m.name = "I4C8S5M16".into();
    m.mul_width = MulWidth::Sixteen;
    m.pipeline.mul_latency = 2;
    m
}

/// `I2C16S5M16`: `I2C16S5` with 16-bit two-stage multipliers (Table 2).
pub fn i2c16s5m16() -> MachineConfig {
    let mut m = i2c16s5();
    m.name = "I2C16S5M16".into();
    m.mul_width = MulWidth::Sixteen;
    m
}

/// §3.4.1 ablation: `I4C8S4` with two load/store units per cluster and a
/// dual-ported 32 KB memory ("we evaluated the benefits of including two
/// load/store units in the I4C8* models using dual-ported memories").
pub fn i4c8s4_dualport() -> MachineConfig {
    let mut m = i4c8s4();
    m.name = "I4C8S4D2".into();
    m.cluster.slots[3] = m.cluster.slots[3].with(FuClass::Mem);
    m.cluster.banks[0].ports = 2;
    m
}

/// Returns `machine` with the specialized absolute-difference operator
/// fitted (the "Add spec. op" rows of Table 1).
pub fn with_absdiff(mut machine: MachineConfig) -> MachineConfig {
    machine.name = format!("{}+AD", machine.name);
    machine.has_absdiff = true;
    machine
}

/// The five datapath models of Table 1, in column order.
pub fn table1_models() -> Vec<MachineConfig> {
    vec![i4c8s4(), i4c8s4c(), i4c8s5(), i2c16s4(), i2c16s5()]
}

/// The five datapath models of Table 2, in column order.
pub fn table2_models() -> Vec<MachineConfig> {
    vec![i4c8s4(), i4c8s5(), i4c8s5m16(), i2c16s5(), i2c16s5m16()]
}

/// All seven named models.
pub fn all_models() -> Vec<MachineConfig> {
    vec![
        i4c8s4(),
        i4c8s4c(),
        i4c8s5(),
        i2c16s4(),
        i2c16s5(),
        i4c8s5m16(),
        i2c16s5m16(),
    ]
}

/// Looks up a model by its paper name (case-insensitive).
///
/// ```
/// use vsp_core::models;
/// assert_eq!(models::by_name("i2c16s5m16").unwrap().name, "I2C16S5M16");
/// assert!(models::by_name("I9C9S9").is_none());
/// ```
pub fn by_name(name: &str) -> Option<MachineConfig> {
    all_models()
        .into_iter()
        .chain(std::iter::once(i4c8s4_dualport()))
        .find(|m| m.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsp_vlsi::clock::CycleTimeModel;

    #[test]
    fn headline_parameters() {
        let m = i4c8s4();
        assert_eq!(m.clusters, 8);
        assert_eq!(m.cluster.slot_count(), 4);
        assert_eq!(m.peak_ops_per_cycle(), 33);
        assert_eq!(m.cluster.registers, 128);
        assert_eq!(m.cluster.banks[0].bytes(), 32768);
        assert_eq!(m.lsus_per_cluster(), 1);

        let n = i2c16s4();
        assert_eq!(n.clusters, 16);
        assert_eq!(n.cluster.slot_count(), 2);
        assert_eq!(n.peak_ops_per_cycle(), 33);
        assert_eq!(n.cluster.registers, 64);
        assert_eq!(n.cluster.banks.len(), 2);
        assert_eq!(n.cluster.banks[0].bytes(), 8192);
        assert_eq!(n.lsus_per_cluster(), 2);
    }

    #[test]
    fn table1_area_estimates_match_paper() {
        // Paper: 181.4, 181.4, 183.5, 180, 217 mm² — allow ~2.5% slack.
        let expect = [181.4, 181.4, 183.5, 180.0, 217.0];
        for (m, e) in table1_models().iter().zip(expect) {
            let a = m.datapath_spec().datapath_area().total_mm2();
            assert!(
                (a - e).abs() / e < 0.025,
                "{}: expected ~{e}, got {a:.1}",
                m.name
            );
        }
    }

    #[test]
    fn table2_area_estimates_match_paper() {
        // Paper: 181.4, 183.5, 199.5, 217, 249 mm².
        let expect = [181.4, 183.5, 199.5, 217.0, 249.0];
        for (m, e) in table2_models().iter().zip(expect) {
            let a = m.datapath_spec().datapath_area().total_mm2();
            assert!(
                (a - e).abs() / e < 0.03,
                "{}: expected ~{e}, got {a:.1}",
                m.name
            );
        }
    }

    #[test]
    fn table1_relative_clocks_match_paper() {
        let base = i4c8s4();
        let expect = [1.0, 0.6, 0.95, 1.3, 1.3];
        for (m, e) in table1_models().iter().zip(expect) {
            let r = m.relative_clock(&base);
            assert!(
                (r - e).abs() < 0.07,
                "{}: expected ~{e}, got {r:.3}",
                m.name
            );
        }
    }

    #[test]
    fn clock_rates_span_650_to_850mhz() {
        // §4: "an extremely fast (650MHz-850MHz) clock rate".
        let model = CycleTimeModel::new();
        let slow = model.estimate(&i4c8s4().datapath_spec()).freq_mhz();
        let fast = model.estimate(&i2c16s4().datapath_spec()).freq_mhz();
        assert!((620.0..690.0).contains(&slow), "got {slow}");
        assert!((800.0..900.0).contains(&fast), "got {fast}");
    }

    #[test]
    fn branch_slot_is_the_extra_control_slot() {
        assert_eq!(i4c8s4().branch_slot(), (0, 4));
        assert_eq!(i2c16s4().branch_slot(), (0, 2));
    }

    #[test]
    fn per_slot_banking_only_on_i2c16s4() {
        assert_eq!(i2c16s4().cluster.bank_binding, BankBinding::PerSlot);
        assert_eq!(i2c16s5().cluster.bank_binding, BankBinding::Any);
        assert_eq!(i4c8s4().cluster.bank_binding, BankBinding::Any);
    }

    #[test]
    fn m16_models_differ_only_in_multiplier() {
        let a = i4c8s5();
        let b = i4c8s5m16();
        assert_eq!(b.mul_width, MulWidth::Sixteen);
        assert_eq!(b.pipeline.mul_latency, 2);
        assert_eq!(a.cluster, b.cluster);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("i2c16s5m16").is_some());
        assert!(by_name("I4C8S4D2").is_some());
        assert!(by_name("bogus").is_none());
    }

    #[test]
    fn dualport_ablation_has_two_lsus() {
        let m = i4c8s4_dualport();
        assert_eq!(m.lsus_per_cluster(), 2);
        // Dual-ported memory costs area vs. the base model.
        let base = i4c8s4().datapath_spec().datapath_area().total_mm2();
        let dual = m.datapath_spec().datapath_area().total_mm2();
        assert!(dual > base);
    }

    #[test]
    fn absdiff_variant_flags() {
        let m = with_absdiff(i2c16s4());
        assert!(m.has_absdiff);
        assert_eq!(m.name, "I2C16S4+AD");
    }

    #[test]
    fn icache_sizes() {
        assert_eq!(i4c8s4().icache_words, 1024);
        assert_eq!(i2c16s4().icache_words, 512);
        assert_eq!(i2c16s5m16().icache_words, 512);
    }
}
