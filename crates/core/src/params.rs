//! Parametric machine generation for design-space search.
//!
//! §2 of the paper names the parameters "to be determined by the
//! results of the VLSI simulations": clusters, issue slots per cluster,
//! registers and register-file ports, local memory banks and capacity,
//! pipeline depth. The seven hand-built models in [`crate::models`]
//! are seven points in that space; [`MachineParams`] names an arbitrary
//! point and [`MachineParams::build`] expands it into a full
//! [`MachineConfig`] using the same slot-capability patterns the paper
//! models use (so generated points are directly comparable to the
//! hand-built ones).
//!
//! Generated configurations are *candidates*, not guaranteed-sane
//! machines: run [`crate::validate::validate_config`] before handing
//! one to the scheduler, and the VLSI feasibility envelope before
//! spending simulation time on it.

use crate::config::{
    Addressing, BankBinding, ClusterConfig, FuSet, MachineConfig, MemBankConfig, MulWidth,
    PipelineConfig,
};
use crate::models::ICACHE_REFILL_CYCLES;
use serde::{Deserialize, Serialize};
use vsp_isa::FuClass;

/// One point in the structural design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MachineParams {
    /// Issue slots per cluster (2, 3 or 4 — the paper's narrow/wide
    /// range; other widths have no slot-capability pattern).
    pub slots: u32,
    /// Number of identical clusters.
    pub clusters: u32,
    /// Pipeline stages (4 or 5).
    pub stages: u32,
    /// General registers per cluster.
    pub registers: u32,
    /// Register-file read ports per issue slot (the paper's standard
    /// allocation is 2).
    pub rf_read_ports_per_slot: u32,
    /// Register-file write ports per issue slot (paper standard: 1).
    pub rf_write_ports_per_slot: u32,
    /// Local data-memory banks per cluster.
    pub banks: u32,
    /// Capacity of each bank in 16-bit words.
    pub bank_words: u32,
    /// Native multiplier width.
    pub mul_width: MulWidth,
    /// Bind bank *i* to memory slot *i* (the `I2C16S4` arrangement)
    /// instead of any-slot-to-any-bank.
    pub per_slot_banking: bool,
}

impl MachineParams {
    /// The paper's standard port allocation ("each set of 3
    /// register-file ports supports one ALU and up to one alternate
    /// function"): 2 read + 1 write per slot.
    pub const STANDARD_RF_READ_PORTS: u32 = 2;
    /// See [`Self::STANDARD_RF_READ_PORTS`].
    pub const STANDARD_RF_WRITE_PORTS: u32 = 1;

    /// A paper-style starting point at the given shape: standard RF
    /// ports, 8-bit multiplier, one shared bank.
    #[must_use]
    pub fn baseline(slots: u32, clusters: u32, stages: u32, registers: u32) -> Self {
        MachineParams {
            slots,
            clusters,
            stages,
            registers,
            rf_read_ports_per_slot: Self::STANDARD_RF_READ_PORTS,
            rf_write_ports_per_slot: Self::STANDARD_RF_WRITE_PORTS,
            banks: 1,
            bank_words: 16384,
            mul_width: MulWidth::Eight,
            per_slot_banking: false,
        }
    }

    /// Total register-file ports per slot.
    #[must_use]
    pub fn rf_ports_per_slot(&self) -> u32 {
        self.rf_read_ports_per_slot + self.rf_write_ports_per_slot
    }

    /// Systematic point name, extending the paper's `I<slots>C<clusters>
    /// S<stages>` scheme with the swept axes: registers, RF ports per
    /// slot, bank layout, and multiplier width.
    #[must_use]
    pub fn name(&self) -> String {
        let mut name = format!(
            "I{}C{}S{}-r{}-p{}-b{}x{}",
            self.slots,
            self.clusters,
            self.stages,
            self.registers,
            self.rf_ports_per_slot(),
            self.banks,
            self.bank_words,
        );
        if self.per_slot_banking {
            name.push_str("-ps");
        }
        if self.mul_width == MulWidth::Sixteen {
            name.push_str("-M16");
        }
        name
    }

    /// Slot capability pattern for this issue width, mirroring the
    /// paper models: 2-slot clusters fold memory access into both
    /// slots (`narrow_cluster`), 4-slot clusters dedicate one memory
    /// slot (`wide_cluster`), 3-slot clusters are the wide pattern
    /// minus its plain-ALU slot.
    fn slot_pattern(&self) -> Vec<FuSet> {
        let x = FuClass::Xfer;
        match self.slots {
            2 => vec![
                FuSet::of(&[FuClass::Alu, FuClass::Mem, FuClass::Mul, x]),
                FuSet::of(&[FuClass::Alu, FuClass::Mem, FuClass::Shift, x]),
            ],
            3 => vec![
                FuSet::of(&[FuClass::Alu, FuClass::Mul, x]),
                FuSet::of(&[FuClass::Alu, FuClass::Shift, x]),
                FuSet::of(&[FuClass::Alu, FuClass::Mem, x]),
            ],
            _ => vec![
                FuSet::of(&[FuClass::Alu, FuClass::Mul, x]),
                FuSet::of(&[FuClass::Alu, FuClass::Shift, x]),
                FuSet::of(&[FuClass::Alu, FuClass::Mem, x]),
                FuSet::of(&[FuClass::Alu, x]),
            ],
        }
    }

    /// Expands the point into a full machine description.
    ///
    /// Derived knobs follow the paper models: small cluster counts get
    /// a slot-wide crossbar interface and 1-cycle transfers, large
    /// counts one port per cluster and 2-cycle transfers (`I2C16S4`);
    /// 5-stage pipelines get complex addressing and the 1-cycle
    /// load-use delay; narrow slots and 16-bit multipliers are
    /// two-stage (`mul_latency` 2); wide machines carry the 1024-word
    /// icache, narrow ones 512.
    #[must_use]
    pub fn build(&self) -> MachineConfig {
        let banks = (0..self.banks)
            .map(|_| MemBankConfig::single_ported(self.bank_words))
            .collect();
        let rf_ports = self.rf_ports_per_slot();
        let cluster = ClusterConfig {
            slots: self.slot_pattern(),
            registers: self.registers,
            pred_regs: 8,
            banks,
            bank_binding: if self.per_slot_banking {
                BankBinding::PerSlot
            } else {
                BankBinding::Any
            },
            xbar_ports: if self.clusters <= 8 { self.slots } else { 1 },
            // The paper's 3-ports-per-slot allocation is the model
            // default; only explicit deviations ride the override.
            rf_ports_per_slot: (rf_ports != 3).then_some(rf_ports),
        };
        MachineConfig {
            name: self.name(),
            clusters: self.clusters,
            cluster,
            pipeline: PipelineConfig {
                stages: self.stages,
                load_use_delay: u32::from(self.stages >= 5),
                mul_latency: if self.mul_width == MulWidth::Sixteen || self.slots == 2 {
                    2
                } else {
                    1
                },
                branch_delay_slots: 1,
                xfer_latency: if self.clusters <= 8 { 1 } else { 2 },
            },
            addressing: if self.stages >= 5 {
                Addressing::Complex
            } else {
                Addressing::Simple
            },
            mul_width: self.mul_width,
            has_absdiff: false,
            icache_words: if self.slots >= 3 { 1024 } else { 512 },
            icache_refill_cycles: ICACHE_REFILL_CYCLES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn baseline_4x8_matches_the_paper_model_structurally() {
        let m = MachineParams::baseline(4, 8, 4, 128).build();
        let paper = models::i4c8s4();
        assert_eq!(m.clusters, paper.clusters);
        assert_eq!(m.cluster.slots, paper.cluster.slots);
        assert_eq!(m.cluster.registers, paper.cluster.registers);
        assert_eq!(m.cluster.xbar_ports, paper.cluster.xbar_ports);
        assert_eq!(m.cluster.banks, paper.cluster.banks);
        assert_eq!(m.pipeline, paper.pipeline);
        assert_eq!(m.addressing, paper.addressing);
        assert_eq!(m.icache_words, paper.icache_words);
        // Same physical twin → same clock and area as the paper model.
        let model = vsp_vlsi::clock::CycleTimeModel::new();
        let mine = model.estimate(&m.datapath_spec());
        let theirs = model.estimate(&paper.datapath_spec());
        assert_eq!(mine.cycle_ns, theirs.cycle_ns);
    }

    #[test]
    fn baseline_2x16_matches_the_narrow_paper_model() {
        let mut p = MachineParams::baseline(2, 16, 4, 64);
        p.banks = 2;
        p.bank_words = 4096;
        p.per_slot_banking = true;
        let m = p.build();
        let paper = models::i2c16s4();
        assert_eq!(m.cluster.slots, paper.cluster.slots);
        assert_eq!(m.cluster.banks, paper.cluster.banks);
        assert_eq!(m.cluster.bank_binding, paper.cluster.bank_binding);
        assert_eq!(m.pipeline, paper.pipeline);
        assert_eq!(m.icache_words, paper.icache_words);
    }

    #[test]
    fn names_encode_every_swept_axis() {
        let mut p = MachineParams::baseline(2, 16, 5, 64);
        p.rf_read_ports_per_slot = 3;
        p.banks = 2;
        p.bank_words = 4096;
        p.per_slot_banking = true;
        p.mul_width = MulWidth::Sixteen;
        assert_eq!(p.name(), "I2C16S5-r64-p4-b2x4096-ps-M16");
        assert_eq!(p.build().name, p.name());
    }

    #[test]
    fn nonstandard_rf_ports_reach_the_physical_model() {
        let mut p = MachineParams::baseline(4, 8, 4, 128);
        let standard = p.build().datapath_spec();
        p.rf_read_ports_per_slot = 3;
        p.rf_write_ports_per_slot = 2;
        let wide = p.build().datapath_spec();
        assert!(wide.regfile.ports > standard.regfile.ports);
        assert!(wide.regfile.area_mm2() > standard.regfile.area_mm2());
    }
}
