//! Structural validation of programs against a machine.
//!
//! A VLIW program is only meaningful for the machine it was scheduled for:
//! every word must respect slot capabilities, register-file and predicate
//! bounds, addressing-mode support, multiplier width, crossbar port
//! limits and memory-bank bindings. This module replays each word through
//! a [`CycleReservation`] and checks all operand encodings.

use crate::config::{BankBinding, MachineConfig};
use crate::resources::{CycleReservation, ReserveError};
use serde::{Deserialize, Serialize};
use std::fmt;
use vsp_isa::{AddrMode, AluBinOp, MulKind, OpKind, Operand, Program};

/// A structural violation found in a program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationError {
    /// Instruction-word index.
    pub word: usize,
    /// Description of the violation.
    pub kind: ViolationKind,
}

/// The kinds of structural violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// Resource/placement violation (slot, crossbar, bank).
    Resource(ReserveError),
    /// Register index out of range for the cluster register file.
    RegOutOfRange(u16),
    /// Predicate index out of range for the cluster predicate file.
    PredOutOfRange(u8),
    /// Addressing mode not supported by this machine.
    UnsupportedAddressing(AddrMode),
    /// Wide multiply on a machine without the 16-bit multiplier.
    WideMulUnsupported(MulKind),
    /// Absolute-difference operation on a machine without the operator.
    AbsDiffUnsupported,
    /// Branch or jump target outside the program.
    BadTarget(usize),
    /// Program exceeds the instruction cache ("all critical loops must
    /// fit into the cache"); reported when `require_icache_fit` is set.
    IcacheOverflow {
        /// Program length in words.
        words: usize,
        /// Cache capacity in words.
        capacity: u32,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "word {}: ", self.word)?;
        match &self.kind {
            ViolationKind::Resource(e) => write!(f, "{e}"),
            ViolationKind::RegOutOfRange(r) => write!(f, "register r{r} out of range"),
            ViolationKind::PredOutOfRange(p) => write!(f, "predicate p{p} out of range"),
            ViolationKind::UnsupportedAddressing(a) => {
                write!(f, "addressing mode {a} not supported")
            }
            ViolationKind::WideMulUnsupported(k) => {
                write!(f, "{k} requires the 16-bit multiplier")
            }
            ViolationKind::AbsDiffUnsupported => {
                write!(f, "absd requires the absolute-difference operator")
            }
            ViolationKind::BadTarget(t) => write!(f, "control target {t} out of range"),
            ViolationKind::IcacheOverflow { words, capacity } => {
                write!(f, "program of {words} words exceeds {capacity}-word icache")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Options for [`validate_program`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ValidateOptions {
    /// Also require the whole program to fit in the instruction cache.
    pub require_icache_fit: bool,
}

/// Validates a program against a machine.
///
/// ```
/// use vsp_core::{models, validate_program};
/// use vsp_isa::{AluUnOp, OpKind, Operand, Operation, Program, Reg};
///
/// let machine = models::i2c16s4(); // 64 registers per cluster
/// let mut p = Program::new("demo");
/// p.push_word(vec![Operation::new(0, 0, OpKind::AluUn {
///     op: AluUnOp::Mov, dst: Reg(99), a: Operand::Imm(1),
/// })]);
/// // Register 99 does not exist on the narrow clusters.
/// let errors = validate_program(&machine, &p).unwrap_err();
/// assert_eq!(errors[0].word, 0);
/// // The wide machine has 128 registers, so the same program is fine.
/// assert!(validate_program(&models::i4c8s4(), &p).is_ok());
/// ```
///
/// # Errors
///
/// Returns every structural violation found (empty `Ok(())` means the
/// program can execute on the machine).
pub fn validate_program(
    machine: &MachineConfig,
    program: &Program,
) -> Result<(), Vec<ValidationError>> {
    validate_program_with(machine, program, ValidateOptions::default())
}

/// Validates a program with explicit options.
///
/// # Errors
///
/// Returns every structural violation found.
pub fn validate_program_with(
    machine: &MachineConfig,
    program: &Program,
    options: ValidateOptions,
) -> Result<(), Vec<ValidationError>> {
    let mut errors = Vec::new();
    let regs = machine.cluster.registers;
    let preds = machine.cluster.pred_regs;

    if options.require_icache_fit && program.len() > machine.icache_words as usize {
        errors.push(ValidationError {
            word: 0,
            kind: ViolationKind::IcacheOverflow {
                words: program.len(),
                capacity: machine.icache_words,
            },
        });
    }

    for (w, word) in program.iter().enumerate() {
        let mut cycle = CycleReservation::new(machine);
        for op in word.iter() {
            let err = |kind: ViolationKind| ValidationError { word: w, kind };

            if let Err(e) = cycle.try_reserve(machine, op) {
                errors.push(err(ViolationKind::Resource(e)));
                continue;
            }

            let check_reg = |r: u16, errors: &mut Vec<ValidationError>| {
                if u32::from(r) >= regs {
                    errors.push(err(ViolationKind::RegOutOfRange(r)));
                }
            };

            if let Some(d) = op.kind.def_reg() {
                check_reg(d.0, &mut errors);
            }
            for u in op.kind.use_regs() {
                check_reg(u.0, &mut errors);
            }
            if let OpKind::Xfer { src, .. } = &op.kind {
                check_reg(src.0, &mut errors);
            }
            if let Some(p) = op.kind.def_pred() {
                if u32::from(p.0) >= preds {
                    errors.push(err(ViolationKind::PredOutOfRange(p.0)));
                }
            }
            if let Some(g) = &op.guard {
                if u32::from(g.pred.0) >= preds {
                    errors.push(err(ViolationKind::PredOutOfRange(g.pred.0)));
                }
            }

            match &op.kind {
                OpKind::Load { addr, .. } | OpKind::Store { addr, .. }
                    if !machine.supports_addr(*addr) =>
                {
                    errors.push(err(ViolationKind::UnsupportedAddressing(*addr)));
                }
                OpKind::Mul { kind, .. }
                    if kind.is_wide() && machine.mul_width == crate::config::MulWidth::Eight =>
                {
                    errors.push(err(ViolationKind::WideMulUnsupported(*kind)));
                }
                OpKind::AluBin {
                    op: AluBinOp::AbsDiff,
                    ..
                } if !machine.has_absdiff => {
                    errors.push(err(ViolationKind::AbsDiffUnsupported));
                }
                OpKind::Branch {
                    pred,
                    sense,
                    target,
                } => {
                    let _ = (pred, sense);
                    if *target >= program.len() {
                        errors.push(err(ViolationKind::BadTarget(*target)));
                    }
                }
                OpKind::Jump { target } if *target >= program.len() => {
                    errors.push(err(ViolationKind::BadTarget(*target)));
                }
                OpKind::Cmp { a, b, .. } => {
                    // operand regs already checked through use_regs
                    let _ = (a, b);
                }
                _ => {}
            }

            // Immediates are always 16-bit; Operand::Imm cannot overflow by
            // construction, but register operands inside composite operands
            // were covered above.
            let _ = Operand::Imm(0);
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// A structural defect in a *machine configuration* — the
/// config-level counterpart of [`ValidationError`], for generated
/// design-space points that must be rejected before they reach the
/// scheduler (whose resource model assumes a sane machine) or the VLSI
/// cost model (whose component constructors assert on out-of-range
/// inputs rather than returning errors).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfigError {
    /// No clusters at all.
    NoClusters,
    /// A cluster with no issue slots.
    NoSlots,
    /// No slot can issue the given class (every runnable machine needs
    /// at least ALU and memory capability).
    MissingCapability(vsp_isa::FuClass),
    /// No general registers.
    NoRegisters,
    /// No predicate registers (if-conversion has nowhere to live).
    NoPredRegs,
    /// No local data-memory banks.
    NoBanks,
    /// A bank with zero capacity.
    EmptyBank,
    /// Bank port count outside the modeled SRAM families (1 or 2;
    /// `SramDesign::new` panics beyond the family limit).
    BankPortsUnsupported(u32),
    /// Per-slot bank binding with a bank count that does not match the
    /// memory-capable slot count.
    PerSlotBindingMismatch {
        /// Banks configured.
        banks: u32,
        /// Memory-capable slots the binding must cover.
        mem_slots: u32,
    },
    /// More than one cluster but no way to exchange data (no crossbar
    /// ports or no transfer-capable slot).
    IsolatedClusters,
    /// Pipeline depth outside the modeled 4/5-stage organizations.
    BadPipelineStages(u32),
    /// Explicit register-file ports-per-slot outside the modeled range
    /// (3–6: the paper's standard allocation up to the Fig. 2 curve's
    /// modeled maximum).
    RfPortsOutOfRange(u32),
    /// No instruction cache ("all critical loops must fit into the
    /// cache" — a zero-word cache fits nothing).
    NoIcache,
}

impl ConfigError {
    /// Stable snake-case label for metrics and prune reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ConfigError::NoClusters => "no_clusters",
            ConfigError::NoSlots => "no_slots",
            ConfigError::MissingCapability(_) => "missing_capability",
            ConfigError::NoRegisters => "no_registers",
            ConfigError::NoPredRegs => "no_pred_regs",
            ConfigError::NoBanks => "no_banks",
            ConfigError::EmptyBank => "empty_bank",
            ConfigError::BankPortsUnsupported(_) => "bank_ports_unsupported",
            ConfigError::PerSlotBindingMismatch { .. } => "per_slot_binding_mismatch",
            ConfigError::IsolatedClusters => "isolated_clusters",
            ConfigError::BadPipelineStages(_) => "bad_pipeline_stages",
            ConfigError::RfPortsOutOfRange(_) => "rf_ports_out_of_range",
            ConfigError::NoIcache => "no_icache",
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoClusters => write!(f, "machine has no clusters"),
            ConfigError::NoSlots => write!(f, "cluster has no issue slots"),
            ConfigError::MissingCapability(c) => {
                write!(f, "no issue slot can launch {c} operations")
            }
            ConfigError::NoRegisters => write!(f, "cluster has no general registers"),
            ConfigError::NoPredRegs => write!(f, "cluster has no predicate registers"),
            ConfigError::NoBanks => write!(f, "cluster has no data-memory banks"),
            ConfigError::EmptyBank => write!(f, "data-memory bank has zero capacity"),
            ConfigError::BankPortsUnsupported(p) => {
                write!(f, "{p} bank ports (modeled SRAM families offer 1 or 2)")
            }
            ConfigError::PerSlotBindingMismatch { banks, mem_slots } => write!(
                f,
                "per-slot binding needs one bank per memory slot ({banks} banks, {mem_slots} memory slots)"
            ),
            ConfigError::IsolatedClusters => {
                write!(f, "multiple clusters with no transfer path between them")
            }
            ConfigError::BadPipelineStages(s) => {
                write!(f, "{s}-stage pipeline (modeled organizations are 4 and 5)")
            }
            ConfigError::RfPortsOutOfRange(p) => {
                write!(f, "{p} register-file ports per slot (modeled range is 3-6)")
            }
            ConfigError::NoIcache => write!(f, "machine has no instruction cache"),
        }
    }
}

/// Validates a machine configuration's structure, rejecting points a
/// design-space sweep can generate but nothing downstream can consume.
///
/// Every defect found is returned, so a prune report can count
/// rejection classes in one pass.
///
/// ```
/// use vsp_core::{models, validate_config};
///
/// assert!(validate_config(&models::i4c8s4()).is_ok());
/// let mut broken = models::i4c8s4();
/// broken.cluster.registers = 0;
/// assert!(validate_config(&broken).is_err());
/// ```
///
/// # Errors
///
/// Returns every [`ConfigError`] found (empty `Ok(())` means the
/// machine can be scheduled for and costed).
pub fn validate_config(machine: &MachineConfig) -> Result<(), Vec<ConfigError>> {
    use vsp_isa::FuClass;
    let mut errors = Vec::new();
    let cluster = &machine.cluster;
    if machine.clusters == 0 {
        errors.push(ConfigError::NoClusters);
    }
    if cluster.slots.is_empty() {
        errors.push(ConfigError::NoSlots);
    } else {
        for class in [FuClass::Alu, FuClass::Mem] {
            if cluster.capacity(class) == 0 {
                errors.push(ConfigError::MissingCapability(class));
            }
        }
    }
    if cluster.registers == 0 {
        errors.push(ConfigError::NoRegisters);
    }
    if cluster.pred_regs == 0 {
        errors.push(ConfigError::NoPredRegs);
    }
    if cluster.banks.is_empty() {
        errors.push(ConfigError::NoBanks);
    }
    for bank in &cluster.banks {
        if bank.words == 0 {
            errors.push(ConfigError::EmptyBank);
            break;
        }
    }
    if let Some(bad) = cluster
        .banks
        .iter()
        .map(|b| b.ports)
        .find(|&p| p == 0 || p > 2)
    {
        errors.push(ConfigError::BankPortsUnsupported(bad));
    }
    let mem_slots = cluster.capacity(FuClass::Mem);
    if cluster.bank_binding == BankBinding::PerSlot && cluster.banks.len() as u32 != mem_slots {
        errors.push(ConfigError::PerSlotBindingMismatch {
            banks: cluster.banks.len() as u32,
            mem_slots,
        });
    }
    if machine.clusters > 1 && (cluster.xbar_ports == 0 || cluster.capacity(FuClass::Xfer) == 0) {
        errors.push(ConfigError::IsolatedClusters);
    }
    if !(4..=5).contains(&machine.pipeline.stages) {
        errors.push(ConfigError::BadPipelineStages(machine.pipeline.stages));
    }
    if let Some(ports) = cluster.rf_ports_per_slot {
        if !(3..=6).contains(&ports) {
            errors.push(ConfigError::RfPortsOutOfRange(ports));
        }
    }
    if machine.icache_words == 0 {
        errors.push(ConfigError::NoIcache);
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use vsp_isa::{AddrMode, AluBinOp, MemBank, Operand, Operation, Pred, Reg};

    fn program_of(ops: Vec<Operation>) -> Program {
        let mut p = Program::new("t");
        p.push_word(ops);
        p
    }

    fn add(dst: u16, a: u16) -> Operation {
        Operation::new(
            0,
            0,
            OpKind::AluBin {
                op: AluBinOp::Add,
                dst: Reg(dst),
                a: Operand::Reg(Reg(a)),
                b: Operand::Imm(1),
            },
        )
    }

    #[test]
    fn valid_program_passes() {
        let m = models::i4c8s4();
        let p = program_of(vec![add(1, 0)]);
        validate_program(&m, &p).unwrap();
    }

    #[test]
    fn register_bounds() {
        let m = models::i2c16s4(); // 64 registers
        let p = program_of(vec![add(64, 0)]);
        let errs = validate_program(&m, &p).unwrap_err();
        assert!(matches!(errs[0].kind, ViolationKind::RegOutOfRange(64)));
        // 128 registers on the wide machine: fine.
        validate_program(&models::i4c8s4(), &p).unwrap();
    }

    #[test]
    fn predicate_bounds() {
        let m = models::i4c8s4();
        let op = Operation::new(
            0,
            0,
            OpKind::Cmp {
                op: vsp_isa::CmpOp::Lt,
                dst: Pred(9),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(0),
            },
        );
        let errs = validate_program(&m, &program_of(vec![op])).unwrap_err();
        assert!(matches!(errs[0].kind, ViolationKind::PredOutOfRange(9)));
    }

    #[test]
    fn addressing_mode_support() {
        let ld = Operation::new(
            0,
            2,
            OpKind::Load {
                dst: Reg(1),
                addr: AddrMode::BaseDisp(Reg(0), 4),
                bank: MemBank(0),
            },
        );
        let p = program_of(vec![ld]);
        // Simple-addressing machine rejects base+displacement...
        let errs = validate_program(&models::i4c8s4(), &p).unwrap_err();
        assert!(matches!(
            errs[0].kind,
            ViolationKind::UnsupportedAddressing(_)
        ));
        // ...complex-addressing machines accept it.
        validate_program(&models::i4c8s4c(), &p).unwrap();
        validate_program(&models::i4c8s5(), &p).unwrap();
    }

    #[test]
    fn wide_multiply_needs_m16() {
        let mul = Operation::new(
            0,
            0,
            OpKind::Mul {
                kind: MulKind::Mul16Lo,
                dst: Reg(1),
                a: Operand::Reg(Reg(2)),
                b: Operand::Reg(Reg(3)),
            },
        );
        let p = program_of(vec![mul]);
        let errs = validate_program(&models::i4c8s5(), &p).unwrap_err();
        assert!(matches!(
            errs[0].kind,
            ViolationKind::WideMulUnsupported(MulKind::Mul16Lo)
        ));
        validate_program(&models::i4c8s5m16(), &p).unwrap();
    }

    #[test]
    fn absdiff_needs_the_operator() {
        let op = Operation::new(
            0,
            0,
            OpKind::AluBin {
                op: AluBinOp::AbsDiff,
                dst: Reg(1),
                a: Operand::Reg(Reg(2)),
                b: Operand::Reg(Reg(3)),
            },
        );
        let p = program_of(vec![op]);
        let errs = validate_program(&models::i4c8s4(), &p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e.kind, ViolationKind::AbsDiffUnsupported)));
        validate_program(&models::with_absdiff(models::i4c8s4()), &p).unwrap();
    }

    #[test]
    fn bad_targets_detected() {
        let m = models::i4c8s4();
        let p = program_of(vec![Operation::new(0, 4, OpKind::Jump { target: 10 })]);
        let errs = validate_program(&m, &p).unwrap_err();
        assert!(matches!(errs[0].kind, ViolationKind::BadTarget(10)));
    }

    #[test]
    fn icache_fit_option() {
        let m = models::i2c16s4(); // 512-word icache
        let mut p = Program::new("big");
        for _ in 0..600 {
            p.push_word(vec![add(1, 0)]);
        }
        validate_program(&m, &p).unwrap();
        let errs = validate_program_with(
            &m,
            &p,
            ValidateOptions {
                require_icache_fit: true,
            },
        )
        .unwrap_err();
        assert!(matches!(
            errs[0].kind,
            ViolationKind::IcacheOverflow { words: 600, .. }
        ));
    }

    #[test]
    fn resource_violations_surface() {
        let m = models::i4c8s4();
        // Two memory operations in one word on a one-LSU cluster.
        let ld0 = Operation::new(
            0,
            2,
            OpKind::Load {
                dst: Reg(1),
                addr: AddrMode::Absolute(0),
                bank: MemBank(0),
            },
        );
        let ld1 = Operation::new(
            0,
            3,
            OpKind::Load {
                dst: Reg(2),
                addr: AddrMode::Absolute(1),
                bank: MemBank(0),
            },
        );
        let errs = validate_program(&m, &program_of(vec![ld0, ld1])).unwrap_err();
        assert!(matches!(errs[0].kind, ViolationKind::Resource(_)));
    }

    #[test]
    fn xfer_remote_register_checked() {
        let m = models::i2c16s4(); // 64 registers
        let op = Operation::new(
            0,
            0,
            OpKind::Xfer {
                dst: Reg(1),
                from: 3,
                src: Reg(200),
            },
        );
        let errs = validate_program(&m, &program_of(vec![op])).unwrap_err();
        assert!(matches!(errs[0].kind, ViolationKind::RegOutOfRange(200)));
    }

    // --- validate_config: one test per rejection class ---

    fn has(errs: &[ConfigError], wanted: &ConfigError) -> bool {
        errs.iter().any(|e| e == wanted)
    }

    #[test]
    fn config_paper_models_all_validate() {
        for m in crate::models::all_models() {
            assert!(validate_config(&m).is_ok(), "{}", m.name);
        }
    }

    #[test]
    fn config_rejects_no_clusters() {
        let mut m = models::i4c8s4();
        m.clusters = 0;
        let errs = validate_config(&m).unwrap_err();
        assert!(has(&errs, &ConfigError::NoClusters));
        assert_eq!(errs[0].label(), "no_clusters");
    }

    #[test]
    fn config_rejects_no_slots() {
        let mut m = models::i4c8s4();
        m.cluster.slots.clear();
        let errs = validate_config(&m).unwrap_err();
        assert!(has(&errs, &ConfigError::NoSlots));
    }

    #[test]
    fn config_rejects_missing_capabilities() {
        let mut m = models::i4c8s4();
        // Strip memory capability from every slot: nothing can load.
        m.cluster.slots = vec![crate::config::FuSet::of(&[
            vsp_isa::FuClass::Alu,
            vsp_isa::FuClass::Xfer,
        ])];
        let errs = validate_config(&m).unwrap_err();
        assert!(has(
            &errs,
            &ConfigError::MissingCapability(vsp_isa::FuClass::Mem)
        ));
    }

    #[test]
    fn config_rejects_zero_registers_and_preds() {
        let mut m = models::i4c8s4();
        m.cluster.registers = 0;
        m.cluster.pred_regs = 0;
        let errs = validate_config(&m).unwrap_err();
        assert!(has(&errs, &ConfigError::NoRegisters));
        assert!(has(&errs, &ConfigError::NoPredRegs));
    }

    #[test]
    fn config_rejects_bankless_and_empty_banks() {
        let mut m = models::i4c8s4();
        m.cluster.banks.clear();
        assert!(has(
            &validate_config(&m).unwrap_err(),
            &ConfigError::NoBanks
        ));
        let mut m = models::i4c8s4();
        m.cluster.banks[0].words = 0;
        assert!(has(
            &validate_config(&m).unwrap_err(),
            &ConfigError::EmptyBank
        ));
    }

    #[test]
    fn config_rejects_unmodeled_bank_ports() {
        let mut m = models::i4c8s4();
        m.cluster.banks[0].ports = 3;
        let errs = validate_config(&m).unwrap_err();
        assert!(has(&errs, &ConfigError::BankPortsUnsupported(3)));
        // The rejection exists precisely because SramDesign::new would
        // panic on this spec; 2 ports (the §3.4.1 ablation) is fine.
        m.cluster.banks[0].ports = 2;
        assert!(validate_config(&m).is_ok());
    }

    #[test]
    fn config_rejects_per_slot_binding_mismatch() {
        let mut m = models::i2c16s4();
        m.cluster.banks.pop(); // 2 memory slots, now 1 bank
        let errs = validate_config(&m).unwrap_err();
        assert!(has(
            &errs,
            &ConfigError::PerSlotBindingMismatch {
                banks: 1,
                mem_slots: 2
            }
        ));
    }

    #[test]
    fn config_rejects_isolated_clusters() {
        let mut m = models::i4c8s4();
        m.cluster.xbar_ports = 0;
        let errs = validate_config(&m).unwrap_err();
        assert!(has(&errs, &ConfigError::IsolatedClusters));
        // A single-cluster machine needs no crossbar at all.
        m.clusters = 1;
        assert!(validate_config(&m).is_ok());
    }

    #[test]
    fn config_rejects_unmodeled_pipeline_depths() {
        let mut m = models::i4c8s4();
        m.pipeline.stages = 7;
        let errs = validate_config(&m).unwrap_err();
        assert!(has(&errs, &ConfigError::BadPipelineStages(7)));
    }

    #[test]
    fn config_rejects_rf_ports_off_the_curve() {
        let mut m = models::i4c8s4();
        m.cluster.rf_ports_per_slot = Some(9);
        let errs = validate_config(&m).unwrap_err();
        assert!(has(&errs, &ConfigError::RfPortsOutOfRange(9)));
        m.cluster.rf_ports_per_slot = Some(4);
        assert!(validate_config(&m).is_ok());
    }

    #[test]
    fn config_rejects_zero_icache() {
        let mut m = models::i4c8s4();
        m.icache_words = 0;
        let errs = validate_config(&m).unwrap_err();
        assert!(has(&errs, &ConfigError::NoIcache));
    }
}
