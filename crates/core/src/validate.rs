//! Structural validation of programs against a machine.
//!
//! A VLIW program is only meaningful for the machine it was scheduled for:
//! every word must respect slot capabilities, register-file and predicate
//! bounds, addressing-mode support, multiplier width, crossbar port
//! limits and memory-bank bindings. This module replays each word through
//! a [`CycleReservation`] and checks all operand encodings.

use crate::config::MachineConfig;
use crate::resources::{CycleReservation, ReserveError};
use serde::{Deserialize, Serialize};
use std::fmt;
use vsp_isa::{AddrMode, AluBinOp, MulKind, OpKind, Operand, Program};

/// A structural violation found in a program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationError {
    /// Instruction-word index.
    pub word: usize,
    /// Description of the violation.
    pub kind: ViolationKind,
}

/// The kinds of structural violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// Resource/placement violation (slot, crossbar, bank).
    Resource(ReserveError),
    /// Register index out of range for the cluster register file.
    RegOutOfRange(u16),
    /// Predicate index out of range for the cluster predicate file.
    PredOutOfRange(u8),
    /// Addressing mode not supported by this machine.
    UnsupportedAddressing(AddrMode),
    /// Wide multiply on a machine without the 16-bit multiplier.
    WideMulUnsupported(MulKind),
    /// Absolute-difference operation on a machine without the operator.
    AbsDiffUnsupported,
    /// Branch or jump target outside the program.
    BadTarget(usize),
    /// Program exceeds the instruction cache ("all critical loops must
    /// fit into the cache"); reported when `require_icache_fit` is set.
    IcacheOverflow {
        /// Program length in words.
        words: usize,
        /// Cache capacity in words.
        capacity: u32,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "word {}: ", self.word)?;
        match &self.kind {
            ViolationKind::Resource(e) => write!(f, "{e}"),
            ViolationKind::RegOutOfRange(r) => write!(f, "register r{r} out of range"),
            ViolationKind::PredOutOfRange(p) => write!(f, "predicate p{p} out of range"),
            ViolationKind::UnsupportedAddressing(a) => {
                write!(f, "addressing mode {a} not supported")
            }
            ViolationKind::WideMulUnsupported(k) => {
                write!(f, "{k} requires the 16-bit multiplier")
            }
            ViolationKind::AbsDiffUnsupported => {
                write!(f, "absd requires the absolute-difference operator")
            }
            ViolationKind::BadTarget(t) => write!(f, "control target {t} out of range"),
            ViolationKind::IcacheOverflow { words, capacity } => {
                write!(f, "program of {words} words exceeds {capacity}-word icache")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Options for [`validate_program`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ValidateOptions {
    /// Also require the whole program to fit in the instruction cache.
    pub require_icache_fit: bool,
}

/// Validates a program against a machine.
///
/// ```
/// use vsp_core::{models, validate_program};
/// use vsp_isa::{AluUnOp, OpKind, Operand, Operation, Program, Reg};
///
/// let machine = models::i2c16s4(); // 64 registers per cluster
/// let mut p = Program::new("demo");
/// p.push_word(vec![Operation::new(0, 0, OpKind::AluUn {
///     op: AluUnOp::Mov, dst: Reg(99), a: Operand::Imm(1),
/// })]);
/// // Register 99 does not exist on the narrow clusters.
/// let errors = validate_program(&machine, &p).unwrap_err();
/// assert_eq!(errors[0].word, 0);
/// // The wide machine has 128 registers, so the same program is fine.
/// assert!(validate_program(&models::i4c8s4(), &p).is_ok());
/// ```
///
/// # Errors
///
/// Returns every structural violation found (empty `Ok(())` means the
/// program can execute on the machine).
pub fn validate_program(
    machine: &MachineConfig,
    program: &Program,
) -> Result<(), Vec<ValidationError>> {
    validate_program_with(machine, program, ValidateOptions::default())
}

/// Validates a program with explicit options.
///
/// # Errors
///
/// Returns every structural violation found.
pub fn validate_program_with(
    machine: &MachineConfig,
    program: &Program,
    options: ValidateOptions,
) -> Result<(), Vec<ValidationError>> {
    let mut errors = Vec::new();
    let regs = machine.cluster.registers;
    let preds = machine.cluster.pred_regs;

    if options.require_icache_fit && program.len() > machine.icache_words as usize {
        errors.push(ValidationError {
            word: 0,
            kind: ViolationKind::IcacheOverflow {
                words: program.len(),
                capacity: machine.icache_words,
            },
        });
    }

    for (w, word) in program.iter().enumerate() {
        let mut cycle = CycleReservation::new(machine);
        for op in word.iter() {
            let err = |kind: ViolationKind| ValidationError { word: w, kind };

            if let Err(e) = cycle.try_reserve(machine, op) {
                errors.push(err(ViolationKind::Resource(e)));
                continue;
            }

            let check_reg = |r: u16, errors: &mut Vec<ValidationError>| {
                if u32::from(r) >= regs {
                    errors.push(err(ViolationKind::RegOutOfRange(r)));
                }
            };

            if let Some(d) = op.kind.def_reg() {
                check_reg(d.0, &mut errors);
            }
            for u in op.kind.use_regs() {
                check_reg(u.0, &mut errors);
            }
            if let OpKind::Xfer { src, .. } = &op.kind {
                check_reg(src.0, &mut errors);
            }
            if let Some(p) = op.kind.def_pred() {
                if u32::from(p.0) >= preds {
                    errors.push(err(ViolationKind::PredOutOfRange(p.0)));
                }
            }
            if let Some(g) = &op.guard {
                if u32::from(g.pred.0) >= preds {
                    errors.push(err(ViolationKind::PredOutOfRange(g.pred.0)));
                }
            }

            match &op.kind {
                OpKind::Load { addr, .. } | OpKind::Store { addr, .. }
                    if !machine.supports_addr(*addr) =>
                {
                    errors.push(err(ViolationKind::UnsupportedAddressing(*addr)));
                }
                OpKind::Mul { kind, .. }
                    if kind.is_wide() && machine.mul_width == crate::config::MulWidth::Eight =>
                {
                    errors.push(err(ViolationKind::WideMulUnsupported(*kind)));
                }
                OpKind::AluBin {
                    op: AluBinOp::AbsDiff,
                    ..
                } if !machine.has_absdiff => {
                    errors.push(err(ViolationKind::AbsDiffUnsupported));
                }
                OpKind::Branch {
                    pred,
                    sense,
                    target,
                } => {
                    let _ = (pred, sense);
                    if *target >= program.len() {
                        errors.push(err(ViolationKind::BadTarget(*target)));
                    }
                }
                OpKind::Jump { target } if *target >= program.len() => {
                    errors.push(err(ViolationKind::BadTarget(*target)));
                }
                OpKind::Cmp { a, b, .. } => {
                    // operand regs already checked through use_regs
                    let _ = (a, b);
                }
                _ => {}
            }

            // Immediates are always 16-bit; Operand::Imm cannot overflow by
            // construction, but register operands inside composite operands
            // were covered above.
            let _ = Operand::Imm(0);
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use vsp_isa::{AddrMode, AluBinOp, MemBank, Operand, Operation, Pred, Reg};

    fn program_of(ops: Vec<Operation>) -> Program {
        let mut p = Program::new("t");
        p.push_word(ops);
        p
    }

    fn add(dst: u16, a: u16) -> Operation {
        Operation::new(
            0,
            0,
            OpKind::AluBin {
                op: AluBinOp::Add,
                dst: Reg(dst),
                a: Operand::Reg(Reg(a)),
                b: Operand::Imm(1),
            },
        )
    }

    #[test]
    fn valid_program_passes() {
        let m = models::i4c8s4();
        let p = program_of(vec![add(1, 0)]);
        validate_program(&m, &p).unwrap();
    }

    #[test]
    fn register_bounds() {
        let m = models::i2c16s4(); // 64 registers
        let p = program_of(vec![add(64, 0)]);
        let errs = validate_program(&m, &p).unwrap_err();
        assert!(matches!(errs[0].kind, ViolationKind::RegOutOfRange(64)));
        // 128 registers on the wide machine: fine.
        validate_program(&models::i4c8s4(), &p).unwrap();
    }

    #[test]
    fn predicate_bounds() {
        let m = models::i4c8s4();
        let op = Operation::new(
            0,
            0,
            OpKind::Cmp {
                op: vsp_isa::CmpOp::Lt,
                dst: Pred(9),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(0),
            },
        );
        let errs = validate_program(&m, &program_of(vec![op])).unwrap_err();
        assert!(matches!(errs[0].kind, ViolationKind::PredOutOfRange(9)));
    }

    #[test]
    fn addressing_mode_support() {
        let ld = Operation::new(
            0,
            2,
            OpKind::Load {
                dst: Reg(1),
                addr: AddrMode::BaseDisp(Reg(0), 4),
                bank: MemBank(0),
            },
        );
        let p = program_of(vec![ld]);
        // Simple-addressing machine rejects base+displacement...
        let errs = validate_program(&models::i4c8s4(), &p).unwrap_err();
        assert!(matches!(
            errs[0].kind,
            ViolationKind::UnsupportedAddressing(_)
        ));
        // ...complex-addressing machines accept it.
        validate_program(&models::i4c8s4c(), &p).unwrap();
        validate_program(&models::i4c8s5(), &p).unwrap();
    }

    #[test]
    fn wide_multiply_needs_m16() {
        let mul = Operation::new(
            0,
            0,
            OpKind::Mul {
                kind: MulKind::Mul16Lo,
                dst: Reg(1),
                a: Operand::Reg(Reg(2)),
                b: Operand::Reg(Reg(3)),
            },
        );
        let p = program_of(vec![mul]);
        let errs = validate_program(&models::i4c8s5(), &p).unwrap_err();
        assert!(matches!(
            errs[0].kind,
            ViolationKind::WideMulUnsupported(MulKind::Mul16Lo)
        ));
        validate_program(&models::i4c8s5m16(), &p).unwrap();
    }

    #[test]
    fn absdiff_needs_the_operator() {
        let op = Operation::new(
            0,
            0,
            OpKind::AluBin {
                op: AluBinOp::AbsDiff,
                dst: Reg(1),
                a: Operand::Reg(Reg(2)),
                b: Operand::Reg(Reg(3)),
            },
        );
        let p = program_of(vec![op]);
        let errs = validate_program(&models::i4c8s4(), &p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e.kind, ViolationKind::AbsDiffUnsupported)));
        validate_program(&models::with_absdiff(models::i4c8s4()), &p).unwrap();
    }

    #[test]
    fn bad_targets_detected() {
        let m = models::i4c8s4();
        let p = program_of(vec![Operation::new(0, 4, OpKind::Jump { target: 10 })]);
        let errs = validate_program(&m, &p).unwrap_err();
        assert!(matches!(errs[0].kind, ViolationKind::BadTarget(10)));
    }

    #[test]
    fn icache_fit_option() {
        let m = models::i2c16s4(); // 512-word icache
        let mut p = Program::new("big");
        for _ in 0..600 {
            p.push_word(vec![add(1, 0)]);
        }
        validate_program(&m, &p).unwrap();
        let errs = validate_program_with(
            &m,
            &p,
            ValidateOptions {
                require_icache_fit: true,
            },
        )
        .unwrap_err();
        assert!(matches!(
            errs[0].kind,
            ViolationKind::IcacheOverflow { words: 600, .. }
        ));
    }

    #[test]
    fn resource_violations_surface() {
        let m = models::i4c8s4();
        // Two memory operations in one word on a one-LSU cluster.
        let ld0 = Operation::new(
            0,
            2,
            OpKind::Load {
                dst: Reg(1),
                addr: AddrMode::Absolute(0),
                bank: MemBank(0),
            },
        );
        let ld1 = Operation::new(
            0,
            3,
            OpKind::Load {
                dst: Reg(2),
                addr: AddrMode::Absolute(1),
                bank: MemBank(0),
            },
        );
        let errs = validate_program(&m, &program_of(vec![ld0, ld1])).unwrap_err();
        assert!(matches!(errs[0].kind, ViolationKind::Resource(_)));
    }

    #[test]
    fn xfer_remote_register_checked() {
        let m = models::i2c16s4(); // 64 registers
        let op = Operation::new(
            0,
            0,
            OpKind::Xfer {
                dst: Reg(1),
                from: 3,
                src: Reg(200),
            },
        );
        let errs = validate_program(&m, &program_of(vec![op])).unwrap_err();
        assert!(matches!(errs[0].kind, ViolationKind::RegOutOfRange(200)));
    }
}
