//! Operation latencies as a function of the machine's pipeline.
//!
//! Latency is the number of cycles between issuing an operation and the
//! first cycle a dependent operation may issue. All machines are fully
//! bypassed, so single-cycle operations have latency 1; the 5-stage
//! pipelines add a 1-cycle load-use delay, pipelined multipliers have a
//! 1-cycle multiply-use delay, and crossbar transfers take the configured
//! transfer latency.

use crate::config::MachineConfig;
use vsp_isa::OpKind;

/// Computes operation latencies for a machine.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel<'m> {
    machine: &'m MachineConfig,
}

impl<'m> LatencyModel<'m> {
    /// Creates the latency model for a machine.
    pub fn new(machine: &'m MachineConfig) -> Self {
        LatencyModel { machine }
    }

    /// Result latency of an operation in cycles.
    ///
    /// Stores, branches and control operations have no register result;
    /// their "latency" is 1 (they occupy their slot for one cycle).
    pub fn latency(&self, kind: &OpKind) -> u32 {
        let p = &self.machine.pipeline;
        match kind {
            OpKind::Load { .. } => 1 + p.load_use_delay,
            OpKind::Mul { .. } => p.mul_latency,
            OpKind::Xfer { .. } => p.xfer_latency,
            OpKind::AluBin { .. }
            | OpKind::AluUn { .. }
            | OpKind::Shift { .. }
            | OpKind::Cmp { .. }
            | OpKind::Store { .. }
            | OpKind::Branch { .. }
            | OpKind::Jump { .. }
            | OpKind::Halt
            | OpKind::MemCtl { .. }
            | OpKind::Nop => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use vsp_isa::{AddrMode, AluBinOp, MemBank, MulKind, Operand, Reg};

    fn load() -> OpKind {
        OpKind::Load {
            dst: Reg(1),
            addr: AddrMode::Register(Reg(0)),
            bank: MemBank(0),
        }
    }

    fn mul() -> OpKind {
        OpKind::Mul {
            kind: MulKind::Mul8SS,
            dst: Reg(1),
            a: Operand::Reg(Reg(0)),
            b: Operand::Reg(Reg(2)),
        }
    }

    fn add() -> OpKind {
        OpKind::AluBin {
            op: AluBinOp::Add,
            dst: Reg(1),
            a: Operand::Reg(Reg(0)),
            b: Operand::Imm(1),
        }
    }

    #[test]
    fn four_stage_has_no_load_use_delay() {
        let m = models::i4c8s4();
        let lat = LatencyModel::new(&m);
        assert_eq!(lat.latency(&load()), 1);
        assert_eq!(lat.latency(&add()), 1);
        assert_eq!(lat.latency(&mul()), 1);
    }

    #[test]
    fn five_stage_load_use_delay() {
        let m = models::i4c8s5();
        let lat = LatencyModel::new(&m);
        assert_eq!(lat.latency(&load()), 2);
        assert_eq!(lat.latency(&add()), 1);
    }

    #[test]
    fn pipelined_multiplier_latency() {
        let m = models::i2c16s4();
        assert_eq!(LatencyModel::new(&m).latency(&mul()), 2);
        let m16 = models::i4c8s5m16();
        assert_eq!(LatencyModel::new(&m16).latency(&mul()), 2);
    }

    #[test]
    fn xfer_latency_is_configured() {
        let wide = models::i4c8s4();
        let narrow = models::i2c16s4();
        let xfer = OpKind::Xfer {
            dst: Reg(0),
            from: 1,
            src: Reg(0),
        };
        assert_eq!(LatencyModel::new(&wide).latency(&xfer), 1);
        assert_eq!(LatencyModel::new(&narrow).latency(&xfer), 2);
    }
}
