//! Machine configurations serialize and round-trip — the bench harness
//! persists experiment setups as JSON.

use vsp_core::{models, MachineConfig};

#[test]
fn all_models_round_trip_through_json() {
    for m in models::all_models() {
        let json = serde_json::to_string_pretty(&m).unwrap();
        let back: MachineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m, "{}", m.name);
        // The physical twin derived from the deserialized config is
        // identical too.
        assert_eq!(
            back.datapath_spec().datapath_area().total_mm2(),
            m.datapath_spec().datapath_area().total_mm2()
        );
    }
}

#[test]
fn programs_round_trip_through_json() {
    use vsp_isa::{AluUnOp, OpKind, Operand, Operation, Program, Reg};
    let mut p = Program::new("roundtrip");
    p.push_word(vec![Operation::new(
        0,
        0,
        OpKind::AluUn {
            op: AluUnOp::Mov,
            dst: Reg(1),
            a: Operand::Imm(42),
        },
    )]);
    p.set_label("entry", 0);
    let json = serde_json::to_string(&p).unwrap();
    let back: Program = serde_json::from_str(&json).unwrap();
    assert_eq!(back, p);
    assert_eq!(back.label("entry"), Some(0));
}

#[test]
fn variant_rows_serialize_for_the_harness() {
    // Row borrows its variant names ('static), so it serializes but is
    // inspected generically on the consumer side.
    let rows = vsp_kernels::variants::color_rows(&models::i4c8s4());
    let json = serde_json::to_string(&rows).unwrap();
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    let arr = value.as_array().unwrap();
    assert_eq!(arr.len(), rows.len());
    assert!(arr[0]["variant"].is_string());
    assert!(arr[0]["cycles"].is_u64());
}
