//! Ergonomic construction of kernels.
//!
//! [`KernelBuilder`] keeps a statement stack so loops and conditionals can
//! be written with closures, reading much like the original C kernels.

use crate::kernel::{
    ArrayDecl, ArrayId, Expr, Guard, IndexExpr, Kernel, Loop, Rvalue, Stmt, VarId,
};
use vsp_isa::{AluBinOp, AluUnOp, CmpOp, ShiftOp};

/// Builder for [`Kernel`]s.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    arrays: Vec<ArrayDecl>,
    var_names: Vec<String>,
    /// Statement stack: the innermost open body is last.
    frames: Vec<Vec<Stmt>>,
}

impl KernelBuilder {
    /// Starts a kernel.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            arrays: Vec::new(),
            var_names: Vec::new(),
            frames: vec![Vec::new()],
        }
    }

    /// Declares an array of `len` 16-bit words.
    pub fn array(&mut self, name: impl Into<String>, len: u32) -> ArrayId {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            len,
        });
        ArrayId(self.arrays.len() as u32 - 1)
    }

    /// Declares a scalar variable.
    pub fn var(&mut self, name: impl Into<String>) -> VarId {
        self.var_names.push(name.into());
        VarId(self.var_names.len() as u32 - 1)
    }

    fn push(&mut self, stmt: Stmt) {
        self.frames
            .last_mut()
            .expect("builder always has an open frame")
            .push(stmt);
    }

    /// Emits `dst = expr`.
    pub fn assign(&mut self, dst: VarId, expr: Expr) {
        self.push(Stmt::Assign {
            dst,
            expr,
            guard: None,
        });
    }

    /// Emits a guarded `dst = expr`.
    pub fn assign_if(&mut self, guard: Guard, dst: VarId, expr: Expr) {
        self.push(Stmt::Assign {
            dst,
            expr,
            guard: Some(guard),
        });
    }

    /// Emits `dst = constant`.
    pub fn set(&mut self, dst: VarId, value: i16) {
        self.assign(dst, Expr::Un(AluUnOp::Mov, Rvalue::Const(value)));
    }

    /// Emits `dst = src`.
    pub fn copy(&mut self, dst: VarId, src: impl Into<Rvalue>) {
        self.assign(dst, Expr::Un(AluUnOp::Mov, src.into()));
    }

    /// Emits `dst = a <op> b` and returns `dst` for chaining.
    pub fn bin(
        &mut self,
        dst: VarId,
        op: AluBinOp,
        a: impl Into<Rvalue>,
        b: impl Into<Rvalue>,
    ) -> VarId {
        self.assign(dst, Expr::Bin(op, a.into(), b.into()));
        dst
    }

    /// Declares a fresh variable and assigns `a <op> b` to it.
    pub fn bin_new(
        &mut self,
        name: &str,
        op: AluBinOp,
        a: impl Into<Rvalue>,
        b: impl Into<Rvalue>,
    ) -> VarId {
        let v = self.var(name);
        self.bin(v, op, a, b)
    }

    /// Declares a fresh variable and assigns a unary op to it.
    pub fn un_new(&mut self, name: &str, op: AluUnOp, a: impl Into<Rvalue>) -> VarId {
        let v = self.var(name);
        self.assign(v, Expr::Un(op, a.into()));
        v
    }

    /// Declares a fresh variable and assigns a shift to it.
    pub fn shift_new(
        &mut self,
        name: &str,
        op: ShiftOp,
        a: impl Into<Rvalue>,
        b: impl Into<Rvalue>,
    ) -> VarId {
        let v = self.var(name);
        self.assign(v, Expr::Shift(op, a.into(), b.into()));
        v
    }

    /// Declares a fresh variable and assigns a full 16×16 multiply to it.
    pub fn mul_new(&mut self, name: &str, a: impl Into<Rvalue>, b: impl Into<Rvalue>) -> VarId {
        let v = self.var(name);
        self.assign(v, Expr::MulWide(a.into(), b.into()));
        v
    }

    /// Declares a fresh predicate variable and assigns a comparison to it.
    pub fn cmp_new(
        &mut self,
        name: &str,
        op: CmpOp,
        a: impl Into<Rvalue>,
        b: impl Into<Rvalue>,
    ) -> VarId {
        let v = self.var(name);
        self.assign(v, Expr::Cmp(op, a.into(), b.into()));
        v
    }

    /// Declares a fresh variable loaded from `array[index]`.
    pub fn load(&mut self, name: &str, array: ArrayId, index: impl Into<IndexExprArg>) -> VarId {
        let v = self.var(name);
        self.assign(v, Expr::Load(array, index.into().0));
        v
    }

    /// Emits `array[index] = value`.
    pub fn store(
        &mut self,
        array: ArrayId,
        index: impl Into<IndexExprArg>,
        value: impl Into<Rvalue>,
    ) {
        self.push(Stmt::Store {
            array,
            index: index.into().0,
            value: value.into(),
            guard: None,
        });
    }

    /// Emits a guarded store.
    pub fn store_if(
        &mut self,
        guard: Guard,
        array: ArrayId,
        index: impl Into<IndexExprArg>,
        value: impl Into<Rvalue>,
    ) {
        self.push(Stmt::Store {
            array,
            index: index.into().0,
            value: value.into(),
            guard: Some(guard),
        });
    }

    /// Opens a counted loop; the closure receives the builder and the
    /// induction variable.
    pub fn count_loop(
        &mut self,
        var_name: &str,
        start: i16,
        step: i16,
        trip: u32,
        f: impl FnOnce(&mut Self, VarId),
    ) {
        let var = self.var(var_name);
        self.frames.push(Vec::new());
        f(self, var);
        let body = self.frames.pop().expect("frame pushed above");
        self.push(Stmt::Loop(Loop {
            var,
            start,
            step,
            trip,
            body,
        }));
    }

    /// Opens an `if cond { ... } else { ... }` conditional.
    pub fn if_else(
        &mut self,
        cond: VarId,
        then_f: impl FnOnce(&mut Self),
        else_f: impl FnOnce(&mut Self),
    ) {
        self.frames.push(Vec::new());
        then_f(self);
        let then_body = self.frames.pop().expect("frame pushed above");
        self.frames.push(Vec::new());
        else_f(self);
        let else_body = self.frames.pop().expect("frame pushed above");
        self.push(Stmt::If {
            cond,
            then_body,
            else_body,
        });
    }

    /// Finishes the kernel.
    ///
    /// # Panics
    ///
    /// Panics if a loop or conditional body is still open (programming
    /// error in the builder's user).
    pub fn finish(mut self) -> Kernel {
        assert_eq!(self.frames.len(), 1, "unclosed loop or conditional body");
        Kernel {
            name: self.name,
            arrays: self.arrays,
            var_count: self.var_names.len() as u32,
            var_names: self.var_names,
            body: self.frames.pop().expect("single frame checked above"),
        }
    }
}

/// Argument adapter so index positions accept [`IndexExpr`], [`VarId`]
/// (variable index), or `u16` (constant index) directly.
#[derive(Debug, Clone, Copy)]
pub struct IndexExprArg(pub IndexExpr);

impl From<IndexExpr> for IndexExprArg {
    fn from(i: IndexExpr) -> Self {
        IndexExprArg(i)
    }
}

impl From<VarId> for IndexExprArg {
    fn from(v: VarId) -> Self {
        IndexExprArg(IndexExpr::Var(v))
    }
}

impl From<u16> for IndexExprArg {
    fn from(c: u16) -> Self {
        IndexExprArg(IndexExpr::Const(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_structure() {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 16);
        let acc = b.var("acc");
        b.set(acc, 0);
        b.count_loop("i", 0, 1, 16, |b, i| {
            let x = b.load("x", a, i);
            b.bin(acc, AluBinOp::Add, acc, x);
        });
        let k = b.finish();
        assert_eq!(k.body.len(), 2);
        assert!(matches!(&k.body[1], Stmt::Loop(l) if l.trip == 16 && l.body.len() == 2));
        assert_eq!(k.stmt_count(), 3);
        assert_eq!(k.working_set_words(), 16);
    }

    #[test]
    fn if_else_bodies() {
        let mut b = KernelBuilder::new("t");
        let x = b.var("x");
        let p = b.cmp_new("p", CmpOp::Lt, x, 0i16);
        b.if_else(p, |b| b.set(x, 1), |b| b.set(x, 2));
        let k = b.finish();
        match &k.body[1] {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                assert_eq!(then_body.len(), 1);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn index_adapters() {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 8);
        let i = b.var("i");
        let _x = b.load("x", a, 3u16);
        let _y = b.load("y", a, i);
        let _z = b.load("z", a, IndexExpr::Offset(i, 1));
        let k = b.finish();
        assert_eq!(k.stmt_count(), 3);
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unclosed_frame_panics() {
        let mut b = KernelBuilder::new("t");
        b.frames.push(Vec::new());
        let _ = b.finish();
    }
}
