//! Dependence analysis of flat loop bodies.
//!
//! After if-conversion and unrolling, a schedulable loop body is a flat
//! sequence of (possibly guarded) scalar statements. [`DepGraph::build`]
//! computes the data-dependence graph the list and modulo schedulers
//! consume:
//!
//! * **flow** (`def → use`) — distance 0 within an iteration; distance 1
//!   when the first use in body order precedes every definition (the value
//!   flows in from the previous iteration, e.g. an accumulator);
//! * **anti** (`use → def`) and **output** (`def → def`) — registers are
//!   mutable, so the schedulers must preserve these unless a renaming
//!   transform removed them;
//! * **memory** — conservative: any two accesses to the same array
//!   dependence-order a store with respect to other accesses, except
//!   provably distinct indices (distinct constants, or the same variable
//!   with distinct constant offsets).

use crate::kernel::{Expr, IndexExpr, Stmt};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The kind of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepKind {
    /// True (read-after-write) dependence.
    Flow,
    /// Anti (write-after-read) dependence.
    Anti,
    /// Output (write-after-write) dependence.
    Output,
    /// Memory ordering dependence.
    Mem,
}

/// One dependence edge between statements of a flat body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DepEdge {
    /// Source statement index.
    pub from: usize,
    /// Destination statement index (must not start before `from`
    /// completes, adjusted by `distance` iterations).
    pub to: usize,
    /// Kind of dependence.
    pub kind: DepKind,
    /// Iteration distance: 0 = same iteration, 1 = carried from the
    /// previous iteration.
    pub distance: u32,
}

/// Data-dependence graph of a flat body.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DepGraph {
    /// Number of statements.
    pub len: usize,
    /// All dependence edges.
    pub edges: Vec<DepEdge>,
}

impl DepGraph {
    /// Builds the dependence graph of a flat body.
    ///
    /// # Panics
    ///
    /// Panics if the body contains structured control flow (loops or
    /// conditionals) — flatten with the unroll/if-convert transforms
    /// first.
    pub fn build(body: &[Stmt]) -> DepGraph {
        for s in body {
            assert!(
                matches!(s, Stmt::Assign { .. } | Stmt::Store { .. }),
                "dependence analysis requires a flat body; found {s:?}"
            );
        }
        let mut edges = Vec::new();

        // Scalar dependences.
        let mut defs: HashMap<u32, Vec<usize>> = HashMap::new();
        let mut uses: HashMap<u32, Vec<usize>> = HashMap::new();
        for (i, s) in body.iter().enumerate() {
            for u in s.uses() {
                // Flow from the most recent prior def.
                if let Some(ds) = defs.get(&u.0) {
                    if let Some(&d) = ds.last() {
                        edges.push(DepEdge {
                            from: d,
                            to: i,
                            kind: DepKind::Flow,
                            distance: 0,
                        });
                    }
                }
                uses.entry(u.0).or_default().push(i);
            }
            if let Some(d) = s.def() {
                // Anti: all prior uses with no intervening def.
                if let Some(us) = uses.get(&d.0) {
                    let since = defs.get(&d.0).and_then(|v| v.last().copied());
                    for &u in us {
                        if since.is_none_or(|last_def| u > last_def) && u != i {
                            edges.push(DepEdge {
                                from: u,
                                to: i,
                                kind: DepKind::Anti,
                                distance: 0,
                            });
                        }
                    }
                }
                // Output: previous def of the same var.
                if let Some(ds) = defs.get(&d.0) {
                    if let Some(&prev) = ds.last() {
                        edges.push(DepEdge {
                            from: prev,
                            to: i,
                            kind: DepKind::Output,
                            distance: 0,
                        });
                    }
                }
                defs.entry(d.0).or_default().push(i);
            }
        }

        // Loop-carried flow: a use at i with no def before it in body
        // order reads the value produced by the *last* def in the body
        // (previous iteration).
        for (var, us) in &uses {
            if let Some(ds) = defs.get(var) {
                let first_def = ds[0];
                let last_def = *ds.last().expect("defs nonempty");
                for &u in us {
                    if u <= first_def {
                        edges.push(DepEdge {
                            from: last_def,
                            to: u,
                            kind: DepKind::Flow,
                            distance: 1,
                        });
                        // And the matching carried anti edge: the next
                        // iteration's def must wait for this read only
                        // within the register model; the scheduler uses
                        // the in-iteration anti edges already emitted.
                    }
                }
            }
        }

        // Memory dependences.
        let accesses: Vec<(usize, MemAccess)> = body
            .iter()
            .enumerate()
            .filter_map(|(i, s)| mem_access(s).map(|a| (i, a)))
            .collect();
        for (ai, (i, a)) in accesses.iter().enumerate() {
            for (j, b) in accesses.iter().skip(ai + 1) {
                if a.array != b.array {
                    continue;
                }
                if !(a.is_store || b.is_store) {
                    continue;
                }
                if provably_distinct(a.index, b.index) {
                    continue;
                }
                edges.push(DepEdge {
                    from: *i,
                    to: *j,
                    kind: DepKind::Mem,
                    distance: 0,
                });
            }
        }

        DepGraph {
            len: body.len(),
            edges,
        }
    }

    /// Edges entering statement `i`.
    pub fn preds(&self, i: usize) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(move |e| e.to == i)
    }

    /// Edges leaving statement `i`.
    pub fn succs(&self, i: usize) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(move |e| e.from == i)
    }

    /// Statements with no incoming distance-0 edges (schedulable first).
    pub fn roots(&self) -> Vec<usize> {
        (0..self.len)
            .filter(|&i| !self.edges.iter().any(|e| e.to == i && e.distance == 0))
            .collect()
    }
}

#[derive(Debug, Clone, Copy)]
struct MemAccess {
    array: u32,
    index: IndexExpr,
    is_store: bool,
}

fn mem_access(stmt: &Stmt) -> Option<MemAccess> {
    match stmt {
        Stmt::Assign {
            expr: Expr::Load(a, idx),
            ..
        } => Some(MemAccess {
            array: a.0,
            index: *idx,
            is_store: false,
        }),
        Stmt::Store { array, index, .. } => Some(MemAccess {
            array: array.0,
            index: *index,
            is_store: true,
        }),
        _ => None,
    }
}

/// Conservative disambiguation: true only when the two indices can never
/// be equal.
fn provably_distinct(a: IndexExpr, b: IndexExpr) -> bool {
    match (a, b) {
        (IndexExpr::Const(x), IndexExpr::Const(y)) => x != y,
        (IndexExpr::Offset(v, x), IndexExpr::Offset(w, y)) => v == w && x != y,
        (IndexExpr::Var(v), IndexExpr::Offset(w, y))
        | (IndexExpr::Offset(w, y), IndexExpr::Var(v)) => v == w && y != 0,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ArrayId, Rvalue, VarId};
    use vsp_isa::{AluBinOp, AluUnOp};

    fn assign(dst: u32, uses: &[u32]) -> Stmt {
        let expr = match uses {
            [] => Expr::Un(AluUnOp::Mov, Rvalue::Const(0)),
            [a] => Expr::Un(AluUnOp::Mov, Rvalue::Var(VarId(*a))),
            [a, b, ..] => Expr::Bin(
                AluBinOp::Add,
                Rvalue::Var(VarId(*a)),
                Rvalue::Var(VarId(*b)),
            ),
        };
        Stmt::Assign {
            dst: VarId(dst),
            expr,
            guard: None,
        }
    }

    #[test]
    fn flow_dependence() {
        // v1 = 0 ; v2 = v1
        let body = vec![assign(1, &[]), assign(2, &[1])];
        let g = DepGraph::build(&body);
        assert!(g.edges.contains(&DepEdge {
            from: 0,
            to: 1,
            kind: DepKind::Flow,
            distance: 0
        }));
        assert_eq!(g.roots(), vec![0]);
    }

    #[test]
    fn accumulator_is_carried() {
        // acc = acc + x: use of acc precedes its only def -> carried flow.
        let body = vec![assign(1, &[1, 2])];
        let g = DepGraph::build(&body);
        assert!(g.edges.contains(&DepEdge {
            from: 0,
            to: 0,
            kind: DepKind::Flow,
            distance: 1
        }));
    }

    #[test]
    fn anti_and_output_dependences() {
        // v2 = v1 ; v1 = 0 (anti), then v1 = 0 again (output).
        let body = vec![assign(2, &[1]), assign(1, &[]), assign(1, &[])];
        let g = DepGraph::build(&body);
        assert!(g.edges.contains(&DepEdge {
            from: 0,
            to: 1,
            kind: DepKind::Anti,
            distance: 0
        }));
        assert!(g.edges.contains(&DepEdge {
            from: 1,
            to: 2,
            kind: DepKind::Output,
            distance: 0
        }));
    }

    #[test]
    fn memory_dependences_conservative() {
        let a = ArrayId(0);
        let idx = VarId(9);
        let body = vec![
            Stmt::Store {
                array: a,
                index: IndexExpr::Var(idx),
                value: Rvalue::Const(1),
                guard: None,
            },
            Stmt::Assign {
                dst: VarId(1),
                expr: Expr::Load(a, IndexExpr::Var(idx)),
                guard: None,
            },
        ];
        let g = DepGraph::build(&body);
        assert!(g
            .edges
            .iter()
            .any(|e| e.kind == DepKind::Mem && e.from == 0 && e.to == 1));
    }

    #[test]
    fn distinct_offsets_disambiguated() {
        let a = ArrayId(0);
        let v = VarId(9);
        let body = vec![
            Stmt::Store {
                array: a,
                index: IndexExpr::Offset(v, 0),
                value: Rvalue::Const(1),
                guard: None,
            },
            Stmt::Assign {
                dst: VarId(1),
                expr: Expr::Load(a, IndexExpr::Offset(v, 4)),
                guard: None,
            },
        ];
        let g = DepGraph::build(&body);
        assert!(!g.edges.iter().any(|e| e.kind == DepKind::Mem));
    }

    #[test]
    fn loads_do_not_order_loads() {
        let a = ArrayId(0);
        let body = vec![
            Stmt::Assign {
                dst: VarId(1),
                expr: Expr::Load(a, IndexExpr::Const(0)),
                guard: None,
            },
            Stmt::Assign {
                dst: VarId(2),
                expr: Expr::Load(a, IndexExpr::Const(0)),
                guard: None,
            },
        ];
        let g = DepGraph::build(&body);
        assert!(!g.edges.iter().any(|e| e.kind == DepKind::Mem));
    }

    #[test]
    fn guard_reads_create_flow() {
        // p = 0 ; (p) v1 = 0
        let body = vec![
            assign(3, &[]),
            Stmt::Assign {
                dst: VarId(1),
                expr: Expr::Un(AluUnOp::Mov, Rvalue::Const(1)),
                guard: Some(crate::kernel::Guard {
                    var: VarId(3),
                    sense: true,
                }),
            },
        ];
        let g = DepGraph::build(&body);
        assert!(g.edges.contains(&DepEdge {
            from: 0,
            to: 1,
            kind: DepKind::Flow,
            distance: 0
        }));
    }

    #[test]
    #[should_panic(expected = "flat body")]
    fn rejects_structured_bodies() {
        let body = vec![Stmt::Loop(crate::kernel::Loop {
            var: VarId(0),
            start: 0,
            step: 1,
            trip: 1,
            body: vec![],
        })];
        DepGraph::build(&body);
    }
}
