//! Reference interpreter — the definition of kernel semantics.
//!
//! Every transform in [`crate::transform`] must preserve what this
//! interpreter computes (final array contents and variable values). The
//! arithmetic delegates to [`vsp_isa::semantics`], so the interpreter, the
//! cycle-accurate simulator and the scheduled code all share one
//! definition of each operation.

use crate::kernel::{ArrayId, Expr, Guard, IndexExpr, Kernel, Rvalue, Stmt, VarId};
use std::fmt;
use vsp_isa::semantics;
use vsp_isa::AluUnOp;

/// Interpreter errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Array access out of bounds.
    OutOfBounds {
        /// The array.
        array: ArrayId,
        /// The offending index.
        index: i32,
        /// Array length.
        len: u32,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::OutOfBounds { array, index, len } => {
                write!(f, "index {index} out of bounds for {array} (len {len})")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// Interpreter state for one kernel.
#[derive(Debug, Clone)]
pub struct Interpreter {
    kernel: Kernel,
    vars: Vec<i16>,
    arrays: Vec<Vec<i16>>,
}

impl Interpreter {
    /// Creates an interpreter with zeroed variables and arrays.
    pub fn new(kernel: &Kernel) -> Self {
        Interpreter {
            vars: vec![0; kernel.var_count as usize],
            arrays: kernel
                .arrays
                .iter()
                .map(|a| vec![0; a.len as usize])
                .collect(),
            kernel: kernel.clone(),
        }
    }

    /// Sets an array's initial contents (shorter data is zero-extended).
    ///
    /// # Panics
    ///
    /// Panics if `data` is longer than the declared array.
    pub fn set_array(&mut self, array: ArrayId, data: Vec<i16>) {
        let slot = &mut self.arrays[array.0 as usize];
        assert!(data.len() <= slot.len(), "data longer than array");
        slot[..data.len()].copy_from_slice(&data);
    }

    /// Sets a variable's initial value (kernel parameter).
    pub fn set_var(&mut self, var: VarId, value: i16) {
        self.vars[var.0 as usize] = value;
    }

    /// Current value of a variable.
    pub fn var_value(&self, var: VarId) -> i16 {
        self.vars[var.0 as usize]
    }

    /// Current contents of an array.
    pub fn array(&self, array: ArrayId) -> &[i16] {
        &self.arrays[array.0 as usize]
    }

    /// Runs the kernel to completion.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::OutOfBounds`] on any out-of-range array
    /// access.
    pub fn run(&mut self) -> Result<(), InterpError> {
        let body = self.kernel.body.clone();
        self.exec_block(&body)
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<(), InterpError> {
        for s in stmts {
            self.exec_stmt(s)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> Result<(), InterpError> {
        match stmt {
            Stmt::Assign { dst, expr, guard } => {
                if self.guard_passes(guard) {
                    let v = self.eval(expr)?;
                    self.vars[dst.0 as usize] = v;
                }
            }
            Stmt::Store {
                array,
                index,
                value,
                guard,
            } => {
                if self.guard_passes(guard) {
                    let idx = self.eval_index(*index);
                    let v = self.rvalue(*value);
                    let arr = &mut self.arrays[array.0 as usize];
                    let len = arr.len() as u32;
                    if idx < 0 || idx as usize >= arr.len() {
                        return Err(InterpError::OutOfBounds {
                            array: *array,
                            index: idx,
                            len,
                        });
                    }
                    arr[idx as usize] = v;
                }
            }
            Stmt::Loop(l) => {
                let mut iv = l.start;
                for _ in 0..l.trip {
                    self.vars[l.var.0 as usize] = iv;
                    self.exec_block(&l.body)?;
                    iv = iv.wrapping_add(l.step);
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if self.vars[cond.0 as usize] != 0 {
                    self.exec_block(then_body)?;
                } else {
                    self.exec_block(else_body)?;
                }
            }
        }
        Ok(())
    }

    fn guard_passes(&self, guard: &Option<Guard>) -> bool {
        match guard {
            None => true,
            Some(g) => (self.vars[g.var.0 as usize] != 0) == g.sense,
        }
    }

    fn rvalue(&self, r: Rvalue) -> i16 {
        match r {
            Rvalue::Var(v) => self.vars[v.0 as usize],
            Rvalue::Const(c) => c,
        }
    }

    fn eval_index(&self, index: IndexExpr) -> i32 {
        match index {
            IndexExpr::Const(c) => i32::from(c),
            IndexExpr::Var(v) => i32::from(self.vars[v.0 as usize]),
            IndexExpr::Sum(v, w) => {
                i32::from(self.vars[v.0 as usize].wrapping_add(self.vars[w.0 as usize]))
            }
            IndexExpr::Offset(v, c) => i32::from(self.vars[v.0 as usize].wrapping_add(c)),
        }
    }

    fn eval(&self, expr: &Expr) -> Result<i16, InterpError> {
        Ok(match expr {
            Expr::Bin(op, a, b) => semantics::alu_bin(*op, self.rvalue(*a), self.rvalue(*b)),
            Expr::Un(op, a) => semantics::alu_un(*op, self.rvalue(*a)),
            Expr::Shift(op, a, b) => semantics::shift(*op, self.rvalue(*a), self.rvalue(*b)),
            Expr::MulWide(a, b) => {
                ((i32::from(self.rvalue(*a)) * i32::from(self.rvalue(*b))) & 0xffff) as u16 as i16
            }
            Expr::Mul8(kind, a, b) => semantics::mul(*kind, self.rvalue(*a), self.rvalue(*b)),
            Expr::Cmp(op, a, b) => i16::from(semantics::cmp(*op, self.rvalue(*a), self.rvalue(*b))),
            Expr::Load(array, index) => {
                let idx = self.eval_index(*index);
                let arr = &self.arrays[array.0 as usize];
                if idx < 0 || idx as usize >= arr.len() {
                    return Err(InterpError::OutOfBounds {
                        array: *array,
                        index: idx,
                        len: arr.len() as u32,
                    });
                }
                arr[idx as usize]
            }
        })
    }
}

/// Convenience: runs `kernel` with given array inputs and parameter
/// values; returns final array states.
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn run_kernel(
    kernel: &Kernel,
    arrays: &[(ArrayId, Vec<i16>)],
    params: &[(VarId, i16)],
) -> Result<Vec<Vec<i16>>, InterpError> {
    let mut interp = Interpreter::new(kernel);
    for (a, data) in arrays {
        interp.set_array(*a, data.clone());
    }
    for (v, val) in params {
        interp.set_var(*v, *val);
    }
    interp.run()?;
    Ok(interp.arrays)
}

/// Marker re-export so builder docs can reference `Mov` semantics.
#[doc(hidden)]
pub fn mov(v: i16) -> i16 {
    semantics::alu_un(AluUnOp::Mov, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use vsp_isa::{AluBinOp, CmpOp};

    #[test]
    fn sum_loop() {
        let mut b = KernelBuilder::new("sum");
        let a = b.array("a", 8);
        let acc = b.var("acc");
        b.set(acc, 0);
        b.count_loop("i", 0, 1, 8, |b, i| {
            let x = b.load("x", a, i);
            b.bin(acc, AluBinOp::Add, acc, x);
        });
        let k = b.finish();
        let mut interp = Interpreter::new(&k);
        interp.set_array(a, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        interp.run().unwrap();
        assert_eq!(interp.var_value(acc), 36);
    }

    #[test]
    fn nested_loops_and_stores() {
        // b[i] = sum over j of a[i*4 + j]
        let mut bld = KernelBuilder::new("rowsum");
        let a = bld.array("a", 16);
        let out = bld.array("out", 4);
        let base = bld.var("base");
        let acc = bld.var("acc");
        bld.count_loop("i", 0, 1, 4, |bld, i| {
            bld.assign(
                base,
                Expr::Shift(vsp_isa::ShiftOp::Shl, Rvalue::Var(i), Rvalue::Const(2)),
            );
            bld.set(acc, 0);
            bld.count_loop("j", 0, 1, 4, |bld, j| {
                let addr = bld.bin_new("addr", AluBinOp::Add, base, j);
                let x = bld.load("x", a, addr);
                bld.bin(acc, AluBinOp::Add, acc, x);
            });
            bld.store(out, i, acc);
        });
        let k = bld.finish();
        let data: Vec<i16> = (0..16).collect();
        let arrays = run_kernel(&k, &[(a, data)], &[]).unwrap();
        assert_eq!(arrays[out.0 as usize], vec![6, 22, 38, 54]);
    }

    #[test]
    fn conditionals_and_guards() {
        let mut b = KernelBuilder::new("clip");
        let x = b.var("x");
        let y = b.var("y");
        let p = b.cmp_new("p", CmpOp::Lt, x, 0i16);
        b.if_else(p, |b| b.set(y, -1), |b| b.set(y, 1));
        let g = Guard {
            var: p,
            sense: true,
        };
        let z = b.var("z");
        b.set(z, 0);
        b.assign_if(g, z, Expr::Un(vsp_isa::AluUnOp::Mov, Rvalue::Const(7)));
        let k = b.finish();

        let mut interp = Interpreter::new(&k);
        interp.set_var(x, -5);
        interp.run().unwrap();
        assert_eq!(interp.var_value(y), -1);
        assert_eq!(interp.var_value(z), 7);

        let mut interp = Interpreter::new(&k);
        interp.set_var(x, 5);
        interp.run().unwrap();
        assert_eq!(interp.var_value(y), 1);
        assert_eq!(interp.var_value(z), 0);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut b = KernelBuilder::new("oob");
        let a = b.array("a", 4);
        let _x = b.load("x", a, 9u16);
        let k = b.finish();
        let err = Interpreter::new(&k).run().unwrap_err();
        assert!(matches!(
            err,
            InterpError::OutOfBounds {
                index: 9,
                len: 4,
                ..
            }
        ));
    }

    #[test]
    fn mulwide_truncates_like_hardware() {
        let mut b = KernelBuilder::new("mul");
        let x = b.var("x");
        let y = b.var("y");
        let z = b.mul_new("z", x, y);
        let k = b.finish();
        let mut interp = Interpreter::new(&k);
        interp.set_var(x, 1234);
        interp.set_var(y, -567);
        interp.run().unwrap();
        assert_eq!(
            interp.var_value(z),
            ((1234i32 * -567i32) & 0xffff) as u16 as i16
        );
    }

    #[test]
    fn loop_with_negative_step() {
        let mut b = KernelBuilder::new("down");
        let acc = b.var("acc");
        b.set(acc, 0);
        b.count_loop("i", 5, -1, 5, |b, i| {
            b.bin(acc, AluBinOp::Add, acc, i);
        });
        let k = b.finish();
        let mut interp = Interpreter::new(&k);
        interp.run().unwrap();
        assert_eq!(interp.var_value(acc), 5 + 4 + 3 + 2 + 1);
    }
}
