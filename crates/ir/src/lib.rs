//! Loop-nest intermediate representation for the VSP scheduling study.
//!
//! The paper (§3.3) hand-schedules six MPEG kernels, restricting itself to
//! "techniques that could practically be used by a compiler": loop
//! unrolling, if-conversion/predication, common-subexpression
//! elimination, loop-invariant code motion, strength reduction, list
//! scheduling and software pipelining. This crate provides the program
//! representation those techniques operate on:
//!
//! * [`kernel`] — counted loop nests over 16-bit scalar statements and
//!   word-addressed local arrays ([`Kernel`], [`Stmt`], [`Expr`]);
//! * [`builder`] — an ergonomic way to write kernels
//!   ([`KernelBuilder`]);
//! * [`interp`] — a reference interpreter defining kernel semantics,
//!   used to check that every transform is behaviour-preserving;
//! * [`deps`] — def-use and dependence analysis of flat (straight-line,
//!   possibly predicated) loop bodies, producing the dependence graph the
//!   schedulers consume;
//! * [`transform`] — the compiler transforms themselves.
//!
//! # Example
//!
//! ```
//! use vsp_ir::builder::KernelBuilder;
//! use vsp_ir::interp::Interpreter;
//! use vsp_isa::AluBinOp;
//!
//! // acc = sum of a[i] for i in 0..8
//! let mut b = KernelBuilder::new("sum");
//! let a = b.array("a", 8);
//! let acc = b.var("acc");
//! b.set(acc, 0);
//! b.count_loop("i", 0, 1, 8, |b, i| {
//!     let x = b.load("x", a, i);
//!     b.bin(acc, AluBinOp::Add, acc, x);
//! });
//! let kernel = b.finish();
//!
//! let mut interp = Interpreter::new(&kernel);
//! interp.set_array(a, (1..=8).collect());
//! interp.run().unwrap();
//! assert_eq!(interp.var_value(acc), 36);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod deps;
pub mod interp;
pub mod kernel;
pub mod transform;

pub use builder::KernelBuilder;
pub use deps::{DepEdge, DepGraph, DepKind};
pub use interp::Interpreter;
pub use kernel::{ArrayId, Expr, Guard, IndexExpr, Kernel, Loop, Rvalue, Stmt, VarId};
