//! The kernel program representation.
//!
//! A [`Kernel`] is a list of statements over mutable 16-bit scalar
//! variables ([`VarId`]) and word-addressed arrays ([`ArrayId`]) that live
//! in cluster-local memory. Control flow is structured: counted loops
//! with compile-time trip counts (signal-processing kernels are dominated
//! by such loops) and two-armed conditionals. Predication is explicit —
//! any scalar statement may carry a [`Guard`].
//!
//! Arithmetic reuses the ISA's operation vocabulary so that lowering to
//! machine operations is one-to-one, with two deliberate exceptions:
//! [`Expr::MulWide`] is a *16×16* multiply that the lowering pass expands
//! into 8×8 partial products on machines without the wide multiplier, and
//! [`IndexExpr`] keeps address arithmetic symbolic so the lowering can
//! fold it into complex addressing modes where the machine has them.

use serde::{Deserialize, Serialize};
use std::fmt;
use vsp_isa::{AluBinOp, AluUnOp, CmpOp, MulKind, ShiftOp};

/// A mutable 16-bit scalar variable (virtual register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A kernel-local array in cluster memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ArrayId(pub u32);

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A scalar operand: variable or constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rvalue {
    /// Read a variable.
    Var(VarId),
    /// A 16-bit constant.
    Const(i16),
}

impl Rvalue {
    /// The variable read, if any.
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Rvalue::Var(v) => Some(v),
            Rvalue::Const(_) => None,
        }
    }
}

impl From<VarId> for Rvalue {
    fn from(v: VarId) -> Self {
        Rvalue::Var(v)
    }
}

impl From<i16> for Rvalue {
    fn from(c: i16) -> Self {
        Rvalue::Const(c)
    }
}

impl fmt::Display for Rvalue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rvalue::Var(v) => write!(f, "{v}"),
            Rvalue::Const(c) => write!(f, "{c}"),
        }
    }
}

/// Symbolic array-index expression.
///
/// Kept symbolic (rather than forced through a scalar variable) so that
/// lowering can either emit an explicit address addition (simple-
/// addressing machines) or fold it into the memory operation (complex
/// addressing) — the exact tradeoff the `I4C8S4C`/`I4C8S5` models probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexExpr {
    /// A constant word address.
    Const(u16),
    /// The value of a variable.
    Var(VarId),
    /// Sum of two variables (maps to indexed addressing).
    Sum(VarId, VarId),
    /// Variable plus constant (maps to base+displacement addressing).
    Offset(VarId, i16),
}

impl IndexExpr {
    /// Variables read by the index computation.
    pub fn vars(self) -> impl Iterator<Item = VarId> {
        let (a, b) = match self {
            IndexExpr::Const(_) => (None, None),
            IndexExpr::Var(v) | IndexExpr::Offset(v, _) => (Some(v), None),
            IndexExpr::Sum(v, w) => (Some(v), Some(w)),
        };
        a.into_iter().chain(b)
    }

    /// Whether lowering needs an address addition on simple-addressing
    /// machines.
    pub fn needs_addition(self) -> bool {
        matches!(self, IndexExpr::Sum(..) | IndexExpr::Offset(..))
    }
}

impl fmt::Display for IndexExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexExpr::Const(c) => write!(f, "{c}"),
            IndexExpr::Var(v) => write!(f, "{v}"),
            IndexExpr::Sum(v, w) => write!(f, "{v}+{w}"),
            IndexExpr::Offset(v, c) => write!(f, "{v}{c:+}"),
        }
    }
}

/// Right-hand side of an assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// Two-operand ALU operation.
    Bin(AluBinOp, Rvalue, Rvalue),
    /// One-operand ALU operation (also moves/constants via `Mov`).
    Un(AluUnOp, Rvalue),
    /// Shift.
    Shift(ShiftOp, Rvalue, Rvalue),
    /// Full 16×16 multiply, truncating to 16 bits. Lowered to the wide
    /// multiplier on `M16` machines, decomposed into 8×8 partial products
    /// elsewhere (§3.4.3's "as many as 21 issue slots and at least 8
    /// cycles").
    MulWide(Rvalue, Rvalue),
    /// A primitive 8×8 multiply (for kernels written directly against the
    /// narrow multiplier, e.g. pixel arithmetic that fits in 8 bits).
    Mul8(MulKind, Rvalue, Rvalue),
    /// Comparison producing a predicate value (0/1) in the destination.
    Cmp(CmpOp, Rvalue, Rvalue),
    /// Load from an array.
    Load(ArrayId, IndexExpr),
}

impl Expr {
    /// Variables read by this expression.
    pub fn uses(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        let mut push = |r: &Rvalue| {
            if let Rvalue::Var(v) = r {
                out.push(*v);
            }
        };
        match self {
            Expr::Bin(_, a, b)
            | Expr::Shift(_, a, b)
            | Expr::MulWide(a, b)
            | Expr::Mul8(_, a, b)
            | Expr::Cmp(_, a, b) => {
                push(a);
                push(b);
            }
            Expr::Un(_, a) => push(a),
            Expr::Load(_, idx) => out.extend(idx.vars()),
        }
        out
    }

    /// Whether the expression has no side effects and depends only on its
    /// operands (not memory).
    pub fn is_pure_scalar(&self) -> bool {
        !matches!(self, Expr::Load(..))
    }
}

/// A predicate guard on a statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Guard {
    /// Guarding variable (holds a predicate value).
    pub var: VarId,
    /// Statement executes when the variable's truth equals this.
    pub sense: bool,
}

/// A counted loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Loop {
    /// Induction variable; takes `start`, `start+step`, ... over `trip`
    /// iterations.
    pub var: VarId,
    /// Initial induction value.
    pub start: i16,
    /// Induction step.
    pub step: i16,
    /// Trip count (compile-time constant; data-dependent loop bounds are
    /// modeled by the kernel recipes with measured average trip counts).
    pub trip: u32,
    /// Loop body.
    pub body: Vec<Stmt>,
}

/// A kernel statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `dst = expr`, optionally guarded.
    Assign {
        /// Destination variable.
        dst: VarId,
        /// Right-hand side.
        expr: Expr,
        /// Optional predicate guard.
        guard: Option<Guard>,
    },
    /// `array[index] = value`, optionally guarded.
    Store {
        /// Target array.
        array: ArrayId,
        /// Index expression.
        index: IndexExpr,
        /// Stored value.
        value: Rvalue,
        /// Optional predicate guard.
        guard: Option<Guard>,
    },
    /// A counted loop.
    Loop(Loop),
    /// Two-armed conditional on a predicate variable.
    If {
        /// Condition variable (predicate value).
        cond: VarId,
        /// Statements executed when true.
        then_body: Vec<Stmt>,
        /// Statements executed when false.
        else_body: Vec<Stmt>,
    },
}

impl Stmt {
    /// Variable defined by this statement, for scalar statements.
    pub fn def(&self) -> Option<VarId> {
        match self {
            Stmt::Assign { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// Variables read by this statement (scalar statements only; loops
    /// and ifs aggregate their bodies via [`Stmt::uses_recursive`]).
    pub fn uses(&self) -> Vec<VarId> {
        match self {
            Stmt::Assign { expr, guard, .. } => {
                let mut u = expr.uses();
                if let Some(g) = guard {
                    u.push(g.var);
                }
                u
            }
            Stmt::Store {
                index,
                value,
                guard,
                ..
            } => {
                let mut u: Vec<VarId> = index.vars().collect();
                if let Rvalue::Var(v) = value {
                    u.push(*v);
                }
                if let Some(g) = guard {
                    u.push(g.var);
                }
                u
            }
            Stmt::Loop(_) | Stmt::If { .. } => Vec::new(),
        }
    }

    /// All variables read anywhere inside this statement, including loop
    /// and conditional bodies.
    pub fn uses_recursive(&self) -> Vec<VarId> {
        match self {
            Stmt::Loop(l) => l.body.iter().flat_map(Stmt::uses_recursive).collect(),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let mut u = vec![*cond];
                u.extend(then_body.iter().flat_map(Stmt::uses_recursive));
                u.extend(else_body.iter().flat_map(Stmt::uses_recursive));
                u
            }
            _ => self.uses(),
        }
    }

    /// Whether this statement tree contains any loop.
    pub fn has_loop(&self) -> bool {
        match self {
            Stmt::Loop(_) => true,
            Stmt::If {
                then_body,
                else_body,
                ..
            } => then_body.iter().any(Stmt::has_loop) || else_body.iter().any(Stmt::has_loop),
            _ => false,
        }
    }
}

/// Declaration of a kernel array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayDecl {
    /// Human-readable name.
    pub name: String,
    /// Length in 16-bit words.
    pub len: u32,
}

/// A complete kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Kernel name.
    pub name: String,
    /// Array declarations, indexed by [`ArrayId`].
    pub arrays: Vec<ArrayDecl>,
    /// Number of scalar variables (all [`VarId`]s are below this).
    pub var_count: u32,
    /// Variable names for diagnostics, indexed by [`VarId`].
    pub var_names: Vec<String>,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

impl Kernel {
    /// Total words of local memory the kernel's arrays require — the
    /// "working set" §4 discusses (never over 4 KB/cluster for these
    /// kernels).
    pub fn working_set_words(&self) -> u32 {
        self.arrays.iter().map(|a| a.len).sum()
    }

    /// Allocates a fresh variable (used by transforms that need
    /// temporaries).
    pub fn fresh_var(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId(self.var_count);
        self.var_count += 1;
        self.var_names.push(name.into());
        id
    }

    /// Count of scalar statements (assigns and stores), recursively.
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Loop(l) => count(&l.body),
                    Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } => 1 + count(then_body) + count(else_body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.body)
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel {} ({} stmts)", self.name, self.stmt_count())?;
        fn write_stmts(f: &mut fmt::Formatter<'_>, stmts: &[Stmt], indent: usize) -> fmt::Result {
            let pad = "  ".repeat(indent);
            for s in stmts {
                match s {
                    Stmt::Assign { dst, expr, guard } => {
                        write!(f, "{pad}")?;
                        if let Some(g) = guard {
                            write!(f, "({}{}) ", if g.sense { "" } else { "!" }, g.var)?;
                        }
                        writeln!(f, "{dst} = {expr:?}")?;
                    }
                    Stmt::Store {
                        array,
                        index,
                        value,
                        guard,
                    } => {
                        write!(f, "{pad}")?;
                        if let Some(g) = guard {
                            write!(f, "({}{}) ", if g.sense { "" } else { "!" }, g.var)?;
                        }
                        writeln!(f, "{array}[{index}] = {value}")?;
                    }
                    Stmt::Loop(l) => {
                        writeln!(
                            f,
                            "{pad}for {} = {}, step {}, {} times:",
                            l.var, l.start, l.step, l.trip
                        )?;
                        write_stmts(f, &l.body, indent + 1)?;
                    }
                    Stmt::If {
                        cond,
                        then_body,
                        else_body,
                    } => {
                        writeln!(f, "{pad}if {cond}:")?;
                        write_stmts(f, then_body, indent + 1)?;
                        if !else_body.is_empty() {
                            writeln!(f, "{pad}else:")?;
                            write_stmts(f, else_body, indent + 1)?;
                        }
                    }
                }
            }
            Ok(())
        }
        write_stmts(f, &self.body, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_uses() {
        let e = Expr::Bin(AluBinOp::Add, Rvalue::Var(VarId(1)), Rvalue::Const(3));
        assert_eq!(e.uses(), vec![VarId(1)]);
        let e = Expr::Load(ArrayId(0), IndexExpr::Sum(VarId(2), VarId(3)));
        assert_eq!(e.uses(), vec![VarId(2), VarId(3)]);
        assert!(!e.is_pure_scalar());
    }

    #[test]
    fn stmt_uses_include_guards() {
        let s = Stmt::Assign {
            dst: VarId(0),
            expr: Expr::Un(AluUnOp::Mov, Rvalue::Var(VarId(1))),
            guard: Some(Guard {
                var: VarId(2),
                sense: false,
            }),
        };
        assert_eq!(s.uses(), vec![VarId(1), VarId(2)]);
        assert_eq!(s.def(), Some(VarId(0)));
    }

    #[test]
    fn index_expr_classification() {
        assert!(!IndexExpr::Const(4).needs_addition());
        assert!(!IndexExpr::Var(VarId(0)).needs_addition());
        assert!(IndexExpr::Sum(VarId(0), VarId(1)).needs_addition());
        assert!(IndexExpr::Offset(VarId(0), -4).needs_addition());
    }

    #[test]
    fn working_set_accounting() {
        let k = Kernel {
            name: "t".into(),
            arrays: vec![
                ArrayDecl {
                    name: "a".into(),
                    len: 256,
                },
                ArrayDecl {
                    name: "b".into(),
                    len: 64,
                },
            ],
            var_count: 0,
            var_names: vec![],
            body: vec![],
        };
        assert_eq!(k.working_set_words(), 320);
    }

    #[test]
    fn has_loop_recurses_into_ifs() {
        let inner = Stmt::Loop(Loop {
            var: VarId(0),
            start: 0,
            step: 1,
            trip: 4,
            body: vec![],
        });
        let s = Stmt::If {
            cond: VarId(1),
            then_body: vec![inner],
            else_body: vec![],
        };
        assert!(s.has_loop());
    }
}
