//! Strength reduction and algebraic simplification.
//!
//! §3.3: "scalar optimizations such as common subexpression elimination
//! and strength reduction". This pass rewrites:
//!
//! * `x * 2^k` (wide multiply by a power-of-two constant) → `x << k`,
//!   freeing the scarce multiplier — on the base machines a 16×16
//!   multiply costs many issue slots, so this matters even more than
//!   usual;
//! * `x * 1` → `x`; `x * 0` → `0`;
//! * `x + 0`, `x - 0`, `x << 0` → `x`.

use crate::kernel::{Expr, Kernel, Rvalue, Stmt};
use vsp_isa::{AluBinOp, AluUnOp, ShiftOp};

/// Applies strength reduction everywhere. Returns the number of
/// expressions rewritten.
pub fn reduce_strength(kernel: &mut Kernel) -> usize {
    fn walk(stmts: &mut [Stmt]) -> usize {
        let mut n = 0;
        for s in stmts {
            match s {
                Stmt::Assign { expr, .. } => {
                    if let Some(better) = rewrite(expr) {
                        *expr = better;
                        n += 1;
                    }
                }
                Stmt::Loop(l) => n += walk(&mut l.body),
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    n += walk(then_body);
                    n += walk(else_body);
                }
                Stmt::Store { .. } => {}
            }
        }
        n
    }
    let mut body = std::mem::take(&mut kernel.body);
    let n = walk(&mut body);
    kernel.body = body;
    n
}

fn rewrite(expr: &Expr) -> Option<Expr> {
    match expr {
        Expr::MulWide(a, b) => {
            let (value, konst) = match (a, b) {
                (x, Rvalue::Const(c)) => (*x, *c),
                (Rvalue::Const(c), x) => (*x, *c),
                _ => return None,
            };
            match konst {
                0 => Some(Expr::Un(AluUnOp::Mov, Rvalue::Const(0))),
                1 => Some(Expr::Un(AluUnOp::Mov, value)),
                c if c > 0 && (c as u16).is_power_of_two() => {
                    let k = (c as u16).trailing_zeros() as i16;
                    Some(Expr::Shift(ShiftOp::Shl, value, Rvalue::Const(k)))
                }
                _ => None,
            }
        }
        Expr::Bin(AluBinOp::Add, x, Rvalue::Const(0))
        | Expr::Bin(AluBinOp::Add, Rvalue::Const(0), x)
        | Expr::Bin(AluBinOp::Sub, x, Rvalue::Const(0))
        | Expr::Shift(ShiftOp::Shl, x, Rvalue::Const(0))
        | Expr::Shift(ShiftOp::ShrL, x, Rvalue::Const(0))
        | Expr::Shift(ShiftOp::ShrA, x, Rvalue::Const(0)) => Some(Expr::Un(AluUnOp::Mov, *x)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::interp::Interpreter;
    use crate::kernel::VarId;

    fn check_equivalent(k0: &Kernel, k1: &Kernel, x: VarId, out: VarId, inputs: &[i16]) {
        for &v in inputs {
            let mut a = Interpreter::new(k0);
            a.set_var(x, v);
            a.run().unwrap();
            let mut b = Interpreter::new(k1);
            b.set_var(x, v);
            b.run().unwrap();
            assert_eq!(a.var_value(out), b.var_value(out), "input {v}");
        }
    }

    #[test]
    fn power_of_two_multiplies_become_shifts() {
        let mut b = KernelBuilder::new("t");
        let x = b.var("x");
        let y = b.mul_new("y", x, 8i16);
        let k0 = b.finish();
        let mut k1 = k0.clone();
        assert_eq!(reduce_strength(&mut k1), 1);
        assert!(matches!(
            &k1.body[0],
            Stmt::Assign {
                expr: Expr::Shift(ShiftOp::Shl, _, Rvalue::Const(3)),
                ..
            }
        ));
        check_equivalent(&k0, &k1, x, y, &[-100, -1, 0, 1, 77, 4095, i16::MAX]);
    }

    #[test]
    fn multiply_by_zero_and_one() {
        let mut b = KernelBuilder::new("t");
        let x = b.var("x");
        let y0 = b.mul_new("y0", x, 0i16);
        let y1 = b.mul_new("y1", 1i16, x);
        let mut k = b.finish();
        assert_eq!(reduce_strength(&mut k), 2);
        let mut interp = Interpreter::new(&k);
        interp.set_var(x, -37);
        interp.run().unwrap();
        assert_eq!(interp.var_value(y0), 0);
        assert_eq!(interp.var_value(y1), -37);
    }

    #[test]
    fn additive_identities() {
        let mut b = KernelBuilder::new("t");
        let x = b.var("x");
        let y = b.bin_new("y", AluBinOp::Add, x, 0i16);
        let z = b.shift_new("z", ShiftOp::Shl, y, 0i16);
        let k0 = b.finish();
        let mut k1 = k0.clone();
        assert_eq!(reduce_strength(&mut k1), 2);
        check_equivalent(&k0, &k1, x, z, &[-5, 0, 5]);
    }

    #[test]
    fn negative_and_non_power_constants_untouched() {
        let mut b = KernelBuilder::new("t");
        let x = b.var("x");
        let _y = b.mul_new("y", x, 6i16);
        let _z = b.mul_new("z", x, -4i16);
        let mut k = b.finish();
        assert_eq!(reduce_strength(&mut k), 0);
    }

    #[test]
    fn rewrites_inside_loops() {
        let mut b = KernelBuilder::new("t");
        let acc = b.var("acc");
        b.set(acc, 0);
        b.count_loop("i", 0, 1, 4, |b, i| {
            let t = b.mul_new("t", i, 4i16);
            b.bin(acc, AluBinOp::Add, acc, t);
        });
        let mut k = b.finish();
        assert_eq!(reduce_strength(&mut k), 1);
        let mut interp = Interpreter::new(&k);
        interp.run().unwrap();
        assert_eq!(interp.var_value(acc), (4 + 8 + 12));
    }
}
