//! If-conversion (predication).
//!
//! All of the paper's machines support predicated execution; the
//! schedules marked "predicated" in Table 1 run conditionals as guarded
//! straight-line code, "increasing basic block size and exposing more
//! opportunities for scheduling" (§3.4.5).
//!
//! Conversion is bottom-up: a conditional whose arms contain no loops
//! becomes its arms' statements guarded by the condition (then-arm) and
//! its negation (else-arm). Statements that already carry a guard get a
//! fresh combined predicate computed with explicit ALU operations, since
//! the hardware supports only a single guard per operation.

use crate::kernel::{Expr, Guard, Kernel, Rvalue, Stmt};
use vsp_isa::{AluBinOp, AluUnOp};

/// If-converts every conditional whose arms are loop-free. Returns the
/// number of conditionals converted.
pub fn if_convert(kernel: &mut Kernel) -> usize {
    let mut body = std::mem::take(&mut kernel.body);
    let n = walk(&mut body, kernel);
    kernel.body = body;
    n
}

fn walk(stmts: &mut Vec<Stmt>, kernel: &mut Kernel) -> usize {
    let mut count = 0;
    let mut i = 0;
    while i < stmts.len() {
        match &mut stmts[i] {
            Stmt::Loop(l) => {
                count += walk(&mut l.body, kernel);
                i += 1;
            }
            Stmt::If { .. } => {
                // Convert arms first (innermost-out).
                if let Stmt::If {
                    then_body,
                    else_body,
                    ..
                } = &mut stmts[i]
                {
                    count += walk(then_body, kernel);
                    count += walk(else_body, kernel);
                }
                let converted = {
                    let Stmt::If {
                        cond,
                        then_body,
                        else_body,
                    } = &stmts[i]
                    else {
                        unreachable!()
                    };
                    let arms_flat = !then_body.iter().any(Stmt::has_loop)
                        && !else_body.iter().any(Stmt::has_loop);
                    if arms_flat {
                        Some(convert_one(
                            *cond,
                            then_body.clone(),
                            else_body.clone(),
                            kernel,
                        ))
                    } else {
                        None
                    }
                };
                match converted {
                    Some(flat) => {
                        let len = flat.len();
                        stmts.splice(i..=i, flat);
                        count += 1;
                        i += len;
                    }
                    None => i += 1,
                }
            }
            _ => i += 1,
        }
    }
    count
}

fn convert_one(
    cond: crate::kernel::VarId,
    then_body: Vec<Stmt>,
    else_body: Vec<Stmt>,
    kernel: &mut Kernel,
) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(then_body.len() + else_body.len());
    for (body, sense) in [(then_body, true), (else_body, false)] {
        for mut s in body {
            let guard = guard_slot(&mut s);
            if let Some(slot) = guard {
                match *slot {
                    None => *slot = Some(Guard { var: cond, sense }),
                    Some(existing) => {
                        // Combine: fresh pred = adj(cond) AND adj(existing),
                        // where adj flips a false-sense predicate with XOR 1
                        // (predicate values are 0/1).
                        let combined = kernel.fresh_var("pand");
                        let mut pre = Vec::new();
                        let lhs = adjusted(cond, sense, kernel, &mut pre);
                        let rhs = adjusted(existing.var, existing.sense, kernel, &mut pre);
                        pre.push(Stmt::Assign {
                            dst: combined,
                            expr: Expr::Bin(AluBinOp::And, Rvalue::Var(lhs), Rvalue::Var(rhs)),
                            guard: None,
                        });
                        *slot = Some(Guard {
                            var: combined,
                            sense: true,
                        });
                        out.extend(pre);
                    }
                }
            }
            out.push(s);
        }
    }
    out
}

/// Returns a variable holding the sense-adjusted predicate value,
/// emitting a NOT (XOR 1) when the sense is false.
fn adjusted(
    var: crate::kernel::VarId,
    sense: bool,
    kernel: &mut Kernel,
    pre: &mut Vec<Stmt>,
) -> crate::kernel::VarId {
    if sense {
        var
    } else {
        let inv = kernel.fresh_var("pnot");
        pre.push(Stmt::Assign {
            dst: inv,
            expr: Expr::Bin(AluBinOp::Xor, Rvalue::Var(var), Rvalue::Const(1)),
            guard: None,
        });
        pre.push(Stmt::Assign {
            dst: inv,
            expr: Expr::Un(AluUnOp::Mov, Rvalue::Var(inv)),
            guard: None,
        });
        // The Mov keeps the pattern simple for CSE; it is removed by the
        // scheduler's copy propagation when trivial.
        inv
    }
}

fn guard_slot(stmt: &mut Stmt) -> Option<&mut Option<Guard>> {
    match stmt {
        Stmt::Assign { guard, .. } | Stmt::Store { guard, .. } => Some(guard),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::interp::Interpreter;
    use vsp_isa::CmpOp;

    #[test]
    fn simple_if_becomes_guards() {
        let mut b = KernelBuilder::new("t");
        let x = b.var("x");
        let y = b.var("y");
        let p = b.cmp_new("p", CmpOp::Lt, x, 0i16);
        b.if_else(p, |b| b.set(y, -1), |b| b.set(y, 1));
        let mut k = b.finish();
        assert_eq!(if_convert(&mut k), 1);
        assert!(!k.body.iter().any(|s| matches!(s, Stmt::If { .. })));

        for (input, expect) in [(-3, -1), (3, 1)] {
            let mut interp = Interpreter::new(&k);
            interp.set_var(x, input);
            interp.run().unwrap();
            assert_eq!(interp.var_value(y), expect, "x={input}");
        }
    }

    #[test]
    fn nested_ifs_combine_guards() {
        let mut b = KernelBuilder::new("t");
        let x = b.var("x");
        let y = b.var("y");
        b.set(y, 0);
        let p = b.cmp_new("p", CmpOp::Gt, x, 0i16);
        let q = b.cmp_new("q", CmpOp::Lt, x, 10i16);
        b.if_else(
            p,
            |b| {
                b.if_else(q, |b| b.set(y, 1), |b| b.set(y, 2));
            },
            |b| b.set(y, 3),
        );
        let mut k = b.finish();
        assert_eq!(if_convert(&mut k), 2);
        assert!(!k.body.iter().any(|s| matches!(s, Stmt::If { .. })));

        for (input, expect) in [(5i16, 1i16), (20, 2), (-1, 3)] {
            let mut interp = Interpreter::new(&k);
            interp.set_var(x, input);
            interp.run().unwrap();
            assert_eq!(interp.var_value(y), expect, "x={input}");
        }
    }

    #[test]
    fn loops_in_arms_block_conversion() {
        let mut b = KernelBuilder::new("t");
        let x = b.var("x");
        let p = b.cmp_new("p", CmpOp::Gt, x, 0i16);
        b.if_else(
            p,
            |b| {
                b.count_loop("i", 0, 1, 4, |b, _| {
                    b.set(x, 1);
                });
            },
            |_| {},
        );
        let mut k = b.finish();
        assert_eq!(if_convert(&mut k), 0);
        assert!(k.body.iter().any(|s| matches!(s, Stmt::If { .. })));
    }

    #[test]
    fn conversion_inside_loops() {
        let mut b = KernelBuilder::new("t");
        let acc = b.var("acc");
        b.set(acc, 0);
        b.count_loop("i", 0, 1, 10, |b, i| {
            let p = b.cmp_new("p", CmpOp::Ge, i, 5i16);
            b.if_else(
                p,
                |b| {
                    b.bin(acc, vsp_isa::AluBinOp::Add, acc, 1i16);
                },
                |_| {},
            );
        });
        let mut k = b.finish();
        assert_eq!(if_convert(&mut k), 1);
        let mut interp = Interpreter::new(&k);
        interp.run().unwrap();
        assert_eq!(interp.var_value(acc), 5);
    }

    #[test]
    fn guarded_stores_convert() {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 4);
        let x = b.var("x");
        let p = b.cmp_new("p", CmpOp::Eq, x, 0i16);
        b.if_else(p, |b| b.store(a, 0u16, 11i16), |b| b.store(a, 0u16, 22i16));
        let mut k = b.finish();
        if_convert(&mut k);
        let mut interp = Interpreter::new(&k);
        interp.set_var(x, 0);
        interp.run().unwrap();
        assert_eq!(interp.array(a)[0], 11);
    }
}
