//! Local common-subexpression elimination.
//!
//! §3.3: "we also aggressively applied scalar optimizations such as
//! common subexpression elimination". This pass value-numbers each
//! straight-line run of unguarded scalar statements: a pure expression
//! whose operands carry the same value numbers as an earlier computation
//! is replaced by a copy of the earlier result. Loads participate too, as
//! long as no store to the same array intervenes.

use crate::kernel::{Expr, IndexExpr, Kernel, Rvalue, Stmt, VarId};
use std::collections::HashMap;
use vsp_isa::AluUnOp;

/// Value-numbered operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Vn {
    Const(i16),
    Num(u32),
}

/// Value-numbered expression key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Bin(vsp_isa::AluBinOp, Vn, Vn),
    Un(AluUnOp, Vn),
    Shift(vsp_isa::ShiftOp, Vn, Vn),
    MulWide(Vn, Vn),
    Mul8(vsp_isa::MulKind, Vn, Vn),
    Cmp(vsp_isa::CmpOp, Vn, Vn),
    Load(u32, IndexVn),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum IndexVn {
    Const(u16),
    Var(Vn),
    Sum(Vn, Vn),
    Offset(Vn, i16),
}

/// Runs CSE over every straight-line region of the kernel. Returns the
/// number of expressions replaced by copies.
pub fn eliminate_common_subexpressions(kernel: &mut Kernel) -> usize {
    let mut body = std::mem::take(&mut kernel.body);
    let n = walk(&mut body);
    kernel.body = body;
    n
}

fn walk(stmts: &mut Vec<Stmt>) -> usize {
    let mut count = run_block(stmts);
    for s in stmts {
        match s {
            Stmt::Loop(l) => count += walk(&mut l.body),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                count += walk(then_body);
                count += walk(else_body);
            }
            _ => {}
        }
    }
    count
}

/// Value numbering over the top level of one block; structured statements
/// and guarded statements reset the state (guarded writes make value
/// tracking path-dependent — keep it simple and sound).
fn run_block(stmts: &mut [Stmt]) -> usize {
    let mut replaced = 0;
    let mut next_num: u32 = 0;
    let mut var_vn: HashMap<VarId, Vn> = HashMap::new();
    let mut table: HashMap<Key, VarId> = HashMap::new();
    let mut load_epoch: HashMap<u32, u32> = HashMap::new();

    let fresh = |var_vn: &mut HashMap<VarId, Vn>, v: VarId, next_num: &mut u32| {
        *next_num += 1;
        var_vn.insert(v, Vn::Num(*next_num));
    };

    for s in stmts.iter_mut() {
        match s {
            Stmt::Assign {
                dst,
                expr,
                guard: None,
            } => {
                let vn_of = |r: &Rvalue, var_vn: &mut HashMap<VarId, Vn>, next: &mut u32| match r {
                    Rvalue::Const(c) => Vn::Const(*c),
                    Rvalue::Var(v) => *var_vn.entry(*v).or_insert_with(|| {
                        *next += 1;
                        Vn::Num(*next)
                    }),
                };
                let idx_vn = |i: &IndexExpr, var_vn: &mut HashMap<VarId, Vn>, next: &mut u32| {
                    let vv = |v: &VarId, var_vn: &mut HashMap<VarId, Vn>, next: &mut u32| {
                        *var_vn.entry(*v).or_insert_with(|| {
                            *next += 1;
                            Vn::Num(*next)
                        })
                    };
                    match i {
                        IndexExpr::Const(c) => IndexVn::Const(*c),
                        IndexExpr::Var(v) => IndexVn::Var(vv(v, var_vn, next)),
                        IndexExpr::Sum(v, w) => {
                            IndexVn::Sum(vv(v, var_vn, next), vv(w, var_vn, next))
                        }
                        IndexExpr::Offset(v, c) => IndexVn::Offset(vv(v, var_vn, next), *c),
                    }
                };
                let key = match expr {
                    Expr::Bin(op, a, b) => Some(Key::Bin(
                        *op,
                        vn_of(a, &mut var_vn, &mut next_num),
                        vn_of(b, &mut var_vn, &mut next_num),
                    )),
                    Expr::Shift(op, a, b) => Some(Key::Shift(
                        *op,
                        vn_of(a, &mut var_vn, &mut next_num),
                        vn_of(b, &mut var_vn, &mut next_num),
                    )),
                    Expr::MulWide(a, b) => Some(Key::MulWide(
                        vn_of(a, &mut var_vn, &mut next_num),
                        vn_of(b, &mut var_vn, &mut next_num),
                    )),
                    Expr::Mul8(k, a, b) => Some(Key::Mul8(
                        *k,
                        vn_of(a, &mut var_vn, &mut next_num),
                        vn_of(b, &mut var_vn, &mut next_num),
                    )),
                    Expr::Cmp(op, a, b) => Some(Key::Cmp(
                        *op,
                        vn_of(a, &mut var_vn, &mut next_num),
                        vn_of(b, &mut var_vn, &mut next_num),
                    )),
                    Expr::Un(op, a) if *op != AluUnOp::Mov => {
                        Some(Key::Un(*op, vn_of(a, &mut var_vn, &mut next_num)))
                    }
                    Expr::Un(AluUnOp::Mov, a) => {
                        // Copies propagate value numbers.
                        let vn = vn_of(a, &mut var_vn, &mut next_num);
                        var_vn.insert(*dst, vn);
                        continue;
                    }
                    Expr::Un(..) => None,
                    Expr::Load(arr, idx) => {
                        let epoch = *load_epoch.entry(arr.0).or_insert(0);
                        let ivn = idx_vn(idx, &mut var_vn, &mut next_num);
                        // Epoch folds into the array id for the key.
                        Some(Key::Load(arr.0 ^ (epoch << 16), ivn))
                    }
                };
                match key {
                    Some(key) => match table.get(&key) {
                        Some(&prev) if prev != *dst => {
                            *expr = Expr::Un(AluUnOp::Mov, Rvalue::Var(prev));
                            let vn = var_vn.get(&prev).copied().unwrap_or_else(|| {
                                next_num += 1;
                                Vn::Num(next_num)
                            });
                            var_vn.insert(*dst, vn);
                            replaced += 1;
                        }
                        _ => {
                            fresh(&mut var_vn, *dst, &mut next_num);
                            table.insert(key, *dst);
                        }
                    },
                    None => fresh(&mut var_vn, *dst, &mut next_num),
                }
            }
            Stmt::Store {
                array, guard: None, ..
            } => {
                *load_epoch.entry(array.0).or_insert(0) += 1;
            }
            _ => {
                // Guarded statements or structured control: conservatively
                // reset all state.
                var_vn.clear();
                table.clear();
                load_epoch.clear();
            }
        }
    }
    replaced
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::interp::Interpreter;
    use vsp_isa::AluBinOp;

    #[test]
    fn duplicate_adds_collapse() {
        let mut b = KernelBuilder::new("t");
        let x = b.var("x");
        let y = b.var("y");
        let s1 = b.bin_new("s1", AluBinOp::Add, x, y);
        let s2 = b.bin_new("s2", AluBinOp::Add, x, y);
        let z = b.bin_new("z", AluBinOp::Add, s1, s2);
        let mut k = b.finish();
        assert_eq!(eliminate_common_subexpressions(&mut k), 1);
        // s2 is now a copy of s1.
        match &k.body[1] {
            Stmt::Assign {
                expr: Expr::Un(AluUnOp::Mov, Rvalue::Var(v)),
                ..
            } => assert_eq!(*v, s1),
            other => panic!("{other:?}"),
        }
        let mut interp = Interpreter::new(&k);
        interp.set_var(x, 3);
        interp.set_var(y, 4);
        interp.run().unwrap();
        assert_eq!(interp.var_value(z), 14);
    }

    #[test]
    fn redefinition_blocks_reuse() {
        let mut b = KernelBuilder::new("t");
        let x = b.var("x");
        let s1 = b.bin_new("s1", AluBinOp::Add, x, 1i16);
        b.set(x, 9); // x changes
        let s2 = b.bin_new("s2", AluBinOp::Add, x, 1i16);
        let mut k = b.finish();
        assert_eq!(eliminate_common_subexpressions(&mut k), 0);
        let mut interp = Interpreter::new(&k);
        interp.set_var(x, 1);
        interp.run().unwrap();
        assert_eq!(interp.var_value(s1), 2);
        assert_eq!(interp.var_value(s2), 10);
    }

    #[test]
    fn loads_cse_until_store() {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 4);
        let l1 = b.load("l1", a, 0u16);
        let l2 = b.load("l2", a, 0u16); // same -> CSE
        b.store(a, 0u16, 99i16);
        let l3 = b.load("l3", a, 0u16); // after store -> reload
        let mut k = b.finish();
        assert_eq!(eliminate_common_subexpressions(&mut k), 1);
        let mut interp = Interpreter::new(&k);
        interp.set_array(a, vec![7, 0, 0, 0]);
        interp.run().unwrap();
        assert_eq!(interp.var_value(l1), 7);
        assert_eq!(interp.var_value(l2), 7);
        assert_eq!(interp.var_value(l3), 99);
    }

    #[test]
    fn copies_propagate_value_numbers() {
        let mut b = KernelBuilder::new("t");
        let x = b.var("x");
        let y = b.var("y");
        b.copy(y, x);
        let s1 = b.bin_new("s1", AluBinOp::Add, x, 1i16);
        let s2 = b.bin_new("s2", AluBinOp::Add, y, 1i16); // same value as s1
        let mut k = b.finish();
        assert_eq!(eliminate_common_subexpressions(&mut k), 1);
        let mut interp = Interpreter::new(&k);
        interp.set_var(x, 5);
        interp.run().unwrap();
        assert_eq!(interp.var_value(s1), 6);
        assert_eq!(interp.var_value(s2), 6);
    }

    #[test]
    fn cse_inside_loop_bodies() {
        let mut b = KernelBuilder::new("t");
        let acc = b.var("acc");
        b.set(acc, 0);
        b.count_loop("i", 0, 1, 4, |b, i| {
            let t1 = b.bin_new("t1", AluBinOp::Add, i, 1i16);
            let t2 = b.bin_new("t2", AluBinOp::Add, i, 1i16);
            let s = b.bin_new("s", AluBinOp::Add, t1, t2);
            b.bin(acc, AluBinOp::Add, acc, s);
        });
        let mut k = b.finish();
        let gold = {
            let mut i = Interpreter::new(&k);
            i.run().unwrap();
            i.var_value(acc)
        };
        assert!(eliminate_common_subexpressions(&mut k) >= 1);
        let mut interp = Interpreter::new(&k);
        interp.run().unwrap();
        assert_eq!(interp.var_value(acc), gold);
    }
}
