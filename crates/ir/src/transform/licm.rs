//! Loop-invariant code motion.
//!
//! §3.3's baseline already moves loop-invariant code: "code is not moved
//! between basic blocks other than loop invariant code". A pure,
//! unguarded scalar assignment inside a loop is hoisted before the loop
//! when all its operands are defined outside the loop body, the
//! destination is written exactly once in the body, and the destination
//! is not live-in to the body (hoisting must not clobber a value the
//! first iteration would have read).

use crate::kernel::{Kernel, Stmt, VarId};
use crate::transform::subst::{live_in_vars, written_vars};
use std::collections::HashSet;

/// Hoists invariant assignments out of every loop. Returns the number of
/// statements moved.
pub fn hoist_invariants(kernel: &mut Kernel) -> usize {
    let mut body = std::mem::take(&mut kernel.body);
    let n = walk(&mut body);
    kernel.body = body;
    n
}

fn walk(stmts: &mut Vec<Stmt>) -> usize {
    let mut moved = 0;
    let mut i = 0;
    while i < stmts.len() {
        // First recurse so inner loops hoist into outer bodies, giving
        // outer passes a chance to hoist further.
        match &mut stmts[i] {
            Stmt::Loop(l) => moved += walk(&mut l.body),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                moved += walk(then_body);
                moved += walk(else_body);
            }
            _ => {}
        }
        if let Stmt::Loop(l) = &mut stmts[i] {
            let hoisted = hoist_from(l);
            if !hoisted.is_empty() {
                moved += hoisted.len();
                let at = i;
                for (k, s) in hoisted.into_iter().enumerate() {
                    stmts.insert(at + k, s);
                    i += 1;
                }
            }
        }
        i += 1;
    }
    moved
}

fn hoist_from(l: &mut crate::kernel::Loop) -> Vec<Stmt> {
    let mut hoisted = Vec::new();
    loop {
        let written = written_vars(&l.body);
        let live_in: HashSet<VarId> = live_in_vars(&l.body).into_iter().collect();
        let write_counts = |v: VarId| {
            fn count(stmts: &[Stmt], v: VarId) -> usize {
                stmts
                    .iter()
                    .map(|s| match s {
                        Stmt::Assign { dst, .. } if *dst == v => 1,
                        Stmt::Loop(inner) => count(&inner.body, v),
                        Stmt::If {
                            then_body,
                            else_body,
                            ..
                        } => count(then_body, v) + count(else_body, v),
                        _ => 0,
                    })
                    .sum()
            }
            count(&l.body, v)
        };
        let mut candidate = None;
        for (idx, s) in l.body.iter().enumerate() {
            let Stmt::Assign {
                dst,
                expr,
                guard: None,
            } = s
            else {
                continue;
            };
            if !expr.is_pure_scalar() {
                continue;
            }
            if *dst == l.var || live_in.contains(dst) || write_counts(*dst) != 1 {
                continue;
            }
            let invariant = expr
                .uses()
                .iter()
                .all(|u| *u != l.var && !written.contains(u));
            if invariant {
                candidate = Some(idx);
                break;
            }
        }
        match candidate {
            Some(idx) => hoisted.push(l.body.remove(idx)),
            None => break,
        }
    }
    hoisted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::interp::Interpreter;
    use vsp_isa::AluBinOp;

    #[test]
    fn invariant_hoisted() {
        let mut b = KernelBuilder::new("t");
        let base = b.var("base");
        let acc = b.var("acc");
        b.set(acc, 0);
        b.count_loop("i", 0, 1, 4, |b, i| {
            let t = b.bin_new("t", AluBinOp::Add, base, 16i16); // invariant
            let u = b.bin_new("u", AluBinOp::Add, t, i); // not invariant
            b.bin(acc, AluBinOp::Add, acc, u);
        });
        let mut k = b.finish();
        let gold = {
            let mut interp = Interpreter::new(&k);
            interp.set_var(base, 100);
            interp.run().unwrap();
            interp.var_value(acc)
        };
        assert_eq!(hoist_invariants(&mut k), 1);
        match &k.body[1] {
            Stmt::Assign { .. } => {} // hoisted `t` now precedes the loop
            other => panic!("expected hoisted assign, got {other:?}"),
        }
        match &k.body[2] {
            Stmt::Loop(l) => assert_eq!(l.body.len(), 2),
            other => panic!("{other:?}"),
        }
        let mut interp = Interpreter::new(&k);
        interp.set_var(base, 100);
        interp.run().unwrap();
        assert_eq!(interp.var_value(acc), gold);
    }

    #[test]
    fn chains_hoist_together() {
        let mut b = KernelBuilder::new("t");
        let base = b.var("base");
        let sink = b.var("sink");
        b.count_loop("i", 0, 1, 4, |b, _| {
            let t = b.bin_new("t", AluBinOp::Add, base, 1i16);
            let u = b.bin_new("u", AluBinOp::Add, t, 2i16); // invariant once t is
            b.copy(sink, u);
        });
        let mut k = b.finish();
        // t, u, and finally the copy into sink all become invariant.
        assert!(hoist_invariants(&mut k) >= 2);
    }

    #[test]
    fn accumulators_stay() {
        let mut b = KernelBuilder::new("t");
        let acc = b.var("acc");
        b.set(acc, 0);
        b.count_loop("i", 0, 1, 4, |b, _| {
            b.bin(acc, AluBinOp::Add, acc, 1i16);
        });
        let mut k = b.finish();
        assert_eq!(hoist_invariants(&mut k), 0);
        let mut interp = Interpreter::new(&k);
        interp.run().unwrap();
        assert_eq!(interp.var_value(acc), 4);
    }

    #[test]
    fn loads_never_hoisted() {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 4);
        let sink = b.var("sink");
        b.count_loop("i", 0, 1, 4, |b, _| {
            let x = b.load("x", a, 0u16);
            b.copy(sink, x);
        });
        let mut k = b.finish();
        assert_eq!(hoist_invariants(&mut k), 0);
    }

    #[test]
    fn guarded_statements_never_hoisted() {
        let mut b = KernelBuilder::new("t");
        let base = b.var("base");
        let p = b.var("p");
        let t = b.var("t");
        b.count_loop("i", 0, 1, 4, |b, _| {
            b.assign_if(
                crate::kernel::Guard {
                    var: p,
                    sense: true,
                },
                t,
                crate::kernel::Expr::Bin(
                    AluBinOp::Add,
                    crate::kernel::Rvalue::Var(base),
                    crate::kernel::Rvalue::Const(1),
                ),
            );
        });
        let mut k = b.finish();
        assert_eq!(hoist_invariants(&mut k), 0);
    }

    #[test]
    fn hoisting_from_inner_to_outside_outer() {
        let mut b = KernelBuilder::new("t");
        let base = b.var("base");
        let sink = b.var("sink");
        b.count_loop("i", 0, 1, 2, |b, _| {
            b.count_loop("j", 0, 1, 2, |b, _| {
                let t = b.bin_new("t", AluBinOp::Add, base, 7i16);
                b.copy(sink, t);
            });
        });
        let mut k = b.finish();
        // Hoisted out of the inner loop, then again out of the outer one.
        assert!(hoist_invariants(&mut k) >= 2);
        assert!(matches!(&k.body[0], Stmt::Assign { .. }));
    }
}
