//! Compiler transforms over kernels.
//!
//! These are the techniques §3.3 of the paper allows itself when hand
//! scheduling ("we tried to use techniques that could practically be used
//! by a compiler ... loop unrolling, list scheduling and software
//! pipelining ... common subexpression elimination and strength
//! reduction"):
//!
//! * [`unroll`] — partial and full unrolling of innermost loops, with
//!   per-copy renaming of temporaries;
//! * [`ifconvert`] — predication: conditionals become guarded straight-
//!   line code;
//! * [`cse`] — local common-subexpression elimination (value numbering);
//! * [`licm`] — loop-invariant code motion;
//! * [`strength`] — strength reduction (multiplies by powers of two
//!   become shifts) and algebraic simplification;
//! * [`subst`] — the variable/constant substitution machinery shared by
//!   the transforms.
//!
//! Every transform preserves the semantics defined by
//! [`crate::interp::Interpreter`]; the test suites check this on concrete
//! kernels and the property tests in the crate's `tests/` directory check
//! it on randomized inputs.

pub mod cse;
pub mod ifconvert;
pub mod licm;
pub mod strength;
pub mod subst;
pub mod unroll;

pub use cse::eliminate_common_subexpressions;
pub use ifconvert::if_convert;
pub use licm::hoist_invariants;
pub use strength::reduce_strength;
pub use unroll::{fully_unroll_innermost, try_unroll_innermost, unroll_innermost, UnrollError};
