//! Variable and constant substitution over statement trees.

use crate::kernel::{Expr, IndexExpr, Rvalue, Stmt, VarId};
use std::collections::HashMap;

/// Replaces variable reads *and* writes according to `map` (variables not
/// in the map are unchanged).
pub fn rename_vars(stmts: &mut [Stmt], map: &HashMap<VarId, VarId>) {
    for s in stmts {
        match s {
            Stmt::Assign { dst, expr, guard } => {
                if let Some(n) = map.get(dst) {
                    *dst = *n;
                }
                rename_expr(expr, map);
                if let Some(g) = guard {
                    if let Some(n) = map.get(&g.var) {
                        g.var = *n;
                    }
                }
            }
            Stmt::Store {
                index,
                value,
                guard,
                ..
            } => {
                rename_index(index, map);
                rename_rvalue(value, map);
                if let Some(g) = guard {
                    if let Some(n) = map.get(&g.var) {
                        g.var = *n;
                    }
                }
            }
            Stmt::Loop(l) => {
                if let Some(n) = map.get(&l.var) {
                    l.var = *n;
                }
                rename_vars(&mut l.body, map);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if let Some(n) = map.get(cond) {
                    *cond = *n;
                }
                rename_vars(then_body, map);
                rename_vars(else_body, map);
            }
        }
    }
}

fn rename_rvalue(r: &mut Rvalue, map: &HashMap<VarId, VarId>) {
    if let Rvalue::Var(v) = r {
        if let Some(n) = map.get(v) {
            *v = *n;
        }
    }
}

fn rename_index(i: &mut IndexExpr, map: &HashMap<VarId, VarId>) {
    match i {
        IndexExpr::Const(_) => {}
        IndexExpr::Var(v) | IndexExpr::Offset(v, _) => {
            if let Some(n) = map.get(v) {
                *v = *n;
            }
        }
        IndexExpr::Sum(v, w) => {
            if let Some(n) = map.get(v) {
                *v = *n;
            }
            if let Some(n) = map.get(w) {
                *w = *n;
            }
        }
    }
}

fn rename_expr(e: &mut Expr, map: &HashMap<VarId, VarId>) {
    match e {
        Expr::Bin(_, a, b)
        | Expr::Shift(_, a, b)
        | Expr::MulWide(a, b)
        | Expr::Mul8(_, a, b)
        | Expr::Cmp(_, a, b) => {
            rename_rvalue(a, map);
            rename_rvalue(b, map);
        }
        Expr::Un(_, a) => rename_rvalue(a, map),
        Expr::Load(_, idx) => rename_index(idx, map),
    }
}

/// Replaces reads of `var` with the constant `value`, folding index
/// expressions where possible. Writes to `var` are untouched (callers
/// substitute loop variables, which have no in-body writes).
pub fn substitute_const(stmts: &mut [Stmt], var: VarId, value: i16) {
    for s in stmts {
        match s {
            Stmt::Assign { expr, guard, .. } => {
                subst_expr(expr, var, value);
                debug_assert!(
                    guard.is_none_or(|g| g.var != var),
                    "loop variables are not predicates"
                );
            }
            Stmt::Store {
                index, value: v, ..
            } => {
                subst_index(index, var, value);
                subst_rvalue(v, var, value);
            }
            Stmt::Loop(l) => substitute_const(&mut l.body, var, value),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                substitute_const(then_body, var, value);
                substitute_const(else_body, var, value);
            }
        }
    }
}

fn subst_rvalue(r: &mut Rvalue, var: VarId, value: i16) {
    if *r == Rvalue::Var(var) {
        *r = Rvalue::Const(value);
    }
}

fn subst_index(i: &mut IndexExpr, var: VarId, value: i16) {
    *i = match *i {
        IndexExpr::Var(v) if v == var => IndexExpr::Const(value as u16),
        IndexExpr::Offset(v, c) if v == var => IndexExpr::Const(value.wrapping_add(c) as u16),
        IndexExpr::Sum(v, w) if v == var && w == var => {
            IndexExpr::Const(value.wrapping_add(value) as u16)
        }
        IndexExpr::Sum(v, w) if v == var => IndexExpr::Offset(w, value),
        IndexExpr::Sum(v, w) if w == var => IndexExpr::Offset(v, value),
        other => other,
    };
}

fn subst_expr(e: &mut Expr, var: VarId, value: i16) {
    match e {
        Expr::Bin(_, a, b)
        | Expr::Shift(_, a, b)
        | Expr::MulWide(a, b)
        | Expr::Mul8(_, a, b)
        | Expr::Cmp(_, a, b) => {
            subst_rvalue(a, var, value);
            subst_rvalue(b, var, value);
        }
        Expr::Un(_, a) => subst_rvalue(a, var, value),
        Expr::Load(_, idx) => subst_index(idx, var, value),
    }
}

/// Variables written anywhere in the statement list (including loop
/// induction variables).
pub fn written_vars(stmts: &[Stmt]) -> Vec<VarId> {
    let mut out = Vec::new();
    fn walk(stmts: &[Stmt], out: &mut Vec<VarId>) {
        for s in stmts {
            match s {
                Stmt::Assign { dst, .. } => out.push(*dst),
                Stmt::Store { .. } => {}
                Stmt::Loop(l) => {
                    out.push(l.var);
                    walk(&l.body, out);
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    walk(then_body, out);
                    walk(else_body, out);
                }
            }
        }
    }
    walk(stmts, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

/// Variables read in the statement list before any write within it —
/// live-in values such as accumulators, bases and parameters.
pub fn live_in_vars(stmts: &[Stmt]) -> Vec<VarId> {
    let mut written = std::collections::HashSet::new();
    let mut live = Vec::new();
    fn walk(stmts: &[Stmt], written: &mut std::collections::HashSet<VarId>, live: &mut Vec<VarId>) {
        for s in stmts {
            match s {
                Stmt::Loop(l) => {
                    written.insert(l.var);
                    walk(&l.body, written, live);
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    if !written.contains(cond) {
                        live.push(*cond);
                    }
                    // Conservative: branches may or may not write.
                    walk(then_body, written, live);
                    walk(else_body, written, live);
                }
                _ => {
                    for u in s.uses() {
                        if !written.contains(&u) {
                            live.push(u);
                        }
                    }
                    if let Some(d) = s.def() {
                        written.insert(d);
                    }
                }
            }
        }
    }
    walk(stmts, &mut written, &mut live);
    live.sort_unstable();
    live.dedup();
    live
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use vsp_isa::AluBinOp;

    #[test]
    fn rename_covers_all_positions() {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 8);
        let x = b.var("x");
        let y = b.var("y");
        b.bin(y, AluBinOp::Add, x, x);
        b.store(a, IndexExpr::Offset(x, 1), y);
        let mut k = b.finish();
        let z = k.fresh_var("z");
        let map: HashMap<VarId, VarId> = [(x, z)].into_iter().collect();
        rename_vars(&mut k.body, &map);
        assert_eq!(k.body[0].uses(), vec![z, z]);
        assert_eq!(k.body[1].uses(), vec![z, y]);
    }

    #[test]
    fn const_substitution_folds_indices() {
        let mut b = KernelBuilder::new("t");
        let a = b.array("a", 64);
        let i = b.var("i");
        let base = b.var("base");
        let _x = b.load("x", a, IndexExpr::Offset(i, 3));
        let _y = b.load("y", a, IndexExpr::Sum(base, i));
        let mut k = b.finish();
        substitute_const(&mut k.body, i, 5);
        match &k.body[0] {
            Stmt::Assign {
                expr: Expr::Load(_, idx),
                ..
            } => assert_eq!(*idx, IndexExpr::Const(8)),
            other => panic!("{other:?}"),
        }
        match &k.body[1] {
            Stmt::Assign {
                expr: Expr::Load(_, idx),
                ..
            } => assert_eq!(*idx, IndexExpr::Offset(base, 5)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn live_in_detects_accumulators() {
        let mut b = KernelBuilder::new("t");
        let acc = b.var("acc");
        let t = b.var("t");
        b.set(t, 1);
        b.bin(acc, AluBinOp::Add, acc, t);
        let k = b.finish();
        assert_eq!(live_in_vars(&k.body), vec![acc]);
        assert_eq!(written_vars(&k.body), vec![acc, t]);
    }
}
