//! Loop unrolling.
//!
//! §3.3: "unrolling the inner loop ... eliminating many branch operations
//! and some loop-index and address arithmetic. This represents a fairer
//! starting point for comparing sequential and parallel code since this
//! type of unrolling is implicit in the parallel scheduling algorithms we
//! have used."
//!
//! Partial unrolling by a factor `f` replicates the body `f` times within
//! a loop of `trip/f` iterations; copies `1..f` see the induction value
//! `var + j·step`, which stays symbolic (folded into `Offset`/`Sum` index
//! expressions) so complex-addressing machines can absorb it. Full
//! unrolling substitutes the induction value as a constant, letting the
//! index arithmetic fold away entirely. Temporaries (variables written
//! before any read) are renamed per copy to keep copies independent;
//! live-in variables (accumulators, bases) are shared.

use crate::kernel::{Kernel, Loop, Stmt};
use crate::transform::subst::{live_in_vars, rename_vars, substitute_const, written_vars};
use std::collections::HashMap;
use std::fmt;

/// A partial-unroll request that cannot be applied as asked.
///
/// [`unroll_innermost`] historically *skips* loops it cannot unroll
/// (and panics on factor 0); pipeline drivers want the skip to be a
/// typed, reportable condition instead of silent fallthrough — that is
/// what [`try_unroll_innermost`] returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnrollError {
    /// The requested factor was `0`, which has no meaning.
    ZeroFactor,
    /// An innermost loop's trip count is shorter than, or not a
    /// multiple of, the requested factor.
    NonDivisible {
        /// Trip count of the offending loop.
        trip: u32,
        /// The requested unroll factor.
        factor: u32,
    },
}

impl fmt::Display for UnrollError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnrollError::ZeroFactor => f.write_str("unroll factor must be positive"),
            UnrollError::NonDivisible { trip, factor } => write!(
                f,
                "trip count {trip} is not a positive multiple of unroll factor {factor}"
            ),
        }
    }
}

impl std::error::Error for UnrollError {}

/// Unrolls every innermost loop by `factor`. Loops whose trip count is
/// not a multiple of `factor` (or shorter than it) are left alone.
/// Returns the number of loops unrolled.
///
/// # Panics
///
/// Panics when `factor == 0`. Use [`try_unroll_innermost`] for a typed
/// error and a strict (no-silent-skip) divisibility check.
pub fn unroll_innermost(kernel: &mut Kernel, factor: u32) -> usize {
    assert!(factor >= 1, "unroll factor must be positive");
    if factor == 1 {
        return 0;
    }
    let mut body = std::mem::take(&mut kernel.body);
    let n = walk(&mut body, kernel, Some(factor));
    kernel.body = body;
    n
}

/// Strict variant of [`unroll_innermost`]: every innermost loop must be
/// unrollable by `factor`, or the kernel is left untouched and a typed
/// error says why.
///
/// A factor of `1` is the identity (returns `Ok(0)` without touching the
/// kernel); a factor of `0` is [`UnrollError::ZeroFactor`]; an innermost
/// loop whose trip count is shorter than or not a multiple of the factor
/// is [`UnrollError::NonDivisible`] — reported *before* any loop is
/// rewritten, so an `Err` means the kernel is exactly as it was.
///
/// # Errors
///
/// See above: `ZeroFactor` and `NonDivisible` are the two failure modes.
pub fn try_unroll_innermost(kernel: &mut Kernel, factor: u32) -> Result<usize, UnrollError> {
    if factor == 0 {
        return Err(UnrollError::ZeroFactor);
    }
    if factor == 1 {
        return Ok(0);
    }
    if let Some(trip) = find_non_divisible(&kernel.body, factor) {
        return Err(UnrollError::NonDivisible { trip, factor });
    }
    Ok(unroll_innermost(kernel, factor))
}

/// Trip count of the first innermost loop that cannot be unrolled by
/// `factor`, scanning recursively.
fn find_non_divisible(stmts: &[Stmt], factor: u32) -> Option<u32> {
    for s in stmts {
        match s {
            Stmt::Loop(l) => {
                if l.body.iter().any(Stmt::has_loop) {
                    if let Some(t) = find_non_divisible(&l.body, factor) {
                        return Some(t);
                    }
                } else if l.trip < factor || l.trip % factor != 0 {
                    return Some(l.trip);
                }
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                if let Some(t) = find_non_divisible(then_body, factor)
                    .or_else(|| find_non_divisible(else_body, factor))
                {
                    return Some(t);
                }
            }
            _ => {}
        }
    }
    None
}

/// Fully unrolls every innermost loop (regardless of trip count).
/// Returns the number of loops unrolled.
pub fn fully_unroll_innermost(kernel: &mut Kernel) -> usize {
    let mut body = std::mem::take(&mut kernel.body);
    let n = walk(&mut body, kernel, None);
    kernel.body = body;
    n
}

/// Recursively finds innermost loops; `factor` of `None` means full
/// unroll.
fn walk(stmts: &mut Vec<Stmt>, kernel: &mut Kernel, factor: Option<u32>) -> usize {
    let mut count = 0;
    let mut i = 0;
    while i < stmts.len() {
        let is_innermost_loop = matches!(
            &stmts[i],
            Stmt::Loop(l) if !l.body.iter().any(Stmt::has_loop)
        );
        if is_innermost_loop {
            match factor {
                None => {
                    // Take the loop out, splice its expansion in.
                    let placeholder = Stmt::Store {
                        array: crate::kernel::ArrayId(u32::MAX),
                        index: crate::kernel::IndexExpr::Const(0),
                        value: crate::kernel::Rvalue::Const(0),
                        guard: None,
                    };
                    let Stmt::Loop(l) = std::mem::replace(&mut stmts[i], placeholder) else {
                        unreachable!("checked to be a loop above");
                    };
                    let expanded = full_unroll(l, kernel);
                    let len = expanded.len();
                    stmts.splice(i..=i, expanded);
                    count += 1;
                    i += len;
                    continue;
                }
                Some(f) => {
                    let Stmt::Loop(l) = &stmts[i] else {
                        unreachable!("checked to be a loop above");
                    };
                    if l.trip >= f && l.trip % f == 0 {
                        let unrolled = partial_unroll(l.clone(), f, kernel);
                        stmts[i] = Stmt::Loop(unrolled);
                        count += 1;
                    }
                }
            }
            i += 1;
            continue;
        }
        match &mut stmts[i] {
            Stmt::Loop(l) => {
                count += walk(&mut l.body, kernel, factor);
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                count += walk(then_body, kernel, factor);
                count += walk(else_body, kernel, factor);
            }
            _ => {}
        }
        i += 1;
    }
    count
}

/// Renames per-copy temporaries: variables written in the body that are
/// not live-in (not accumulators) get fresh names in copies ≥ 1.
fn rename_temporaries(body: &mut [Stmt], kernel: &mut Kernel, copy: usize) {
    if copy == 0 {
        return;
    }
    let live_in = live_in_vars(body);
    let mut map = HashMap::new();
    for w in written_vars(body) {
        if !live_in.contains(&w) {
            let name = format!("{}_u{}", kernel.var_names[w.0 as usize], copy);
            map.insert(w, kernel.fresh_var(name));
        }
    }
    rename_vars(body, &map);
}

fn partial_unroll(l: Loop, factor: u32, kernel: &mut Kernel) -> Loop {
    let mut new_body = Vec::with_capacity(l.body.len() * factor as usize);
    for j in 0..factor {
        let mut copy = l.body.clone();
        rename_temporaries(&mut copy, kernel, j as usize);
        if j > 0 {
            // Copy j sees var + j*step: introduce a shifted induction
            // variable assigned once at the top of the copy.
            let shifted =
                kernel.fresh_var(format!("{}_p{}", kernel.var_names[l.var.0 as usize], j));
            let offset = (l.step as i32 * j as i32) as i16;
            let map: HashMap<_, _> = [(l.var, shifted)].into_iter().collect();
            rename_vars(&mut copy, &map);
            new_body.push(Stmt::Assign {
                dst: shifted,
                expr: crate::kernel::Expr::Bin(
                    vsp_isa::AluBinOp::Add,
                    crate::kernel::Rvalue::Var(l.var),
                    crate::kernel::Rvalue::Const(offset),
                ),
                guard: None,
            });
        }
        new_body.extend(copy);
    }
    Loop {
        var: l.var,
        start: l.start,
        step: l.step.wrapping_mul(factor as i16),
        trip: l.trip / factor,
        body: new_body,
    }
}

fn full_unroll(l: Loop, kernel: &mut Kernel) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(l.body.len() * l.trip as usize);
    let mut iv = l.start;
    for j in 0..l.trip {
        let mut copy = l.body.clone();
        rename_temporaries(&mut copy, kernel, j as usize);
        substitute_const(&mut copy, l.var, iv);
        out.extend(copy);
        iv = iv.wrapping_add(l.step);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::interp::Interpreter;
    use crate::kernel::VarId;
    use vsp_isa::AluBinOp;

    /// acc = sum(a[0..16]) with explicit address arithmetic.
    fn sum_kernel() -> (Kernel, crate::kernel::ArrayId, VarId) {
        let mut b = KernelBuilder::new("sum");
        let a = b.array("a", 16);
        let acc = b.var("acc");
        b.set(acc, 0);
        b.count_loop("i", 0, 1, 16, |b, i| {
            let x = b.load("x", a, i);
            b.bin(acc, AluBinOp::Add, acc, x);
        });
        (b.finish(), a, acc)
    }

    fn run_sum(k: &Kernel, a: crate::kernel::ArrayId, acc: VarId) -> i16 {
        let mut interp = Interpreter::new(k);
        interp.set_array(a, (1..=16).collect());
        interp.run().unwrap();
        interp.var_value(acc)
    }

    #[test]
    fn partial_unroll_preserves_semantics() {
        let (mut k, a, acc) = sum_kernel();
        let before = run_sum(&k, a, acc);
        assert_eq!(unroll_innermost(&mut k, 4), 1);
        match &k.body[1] {
            Stmt::Loop(l) => {
                assert_eq!(l.trip, 4);
                assert_eq!(l.step, 4);
                assert!(l.body.len() > 2 * 4, "copies plus shift assigns");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(run_sum(&k, a, acc), before);
    }

    #[test]
    fn full_unroll_eliminates_loop() {
        let (mut k, a, acc) = sum_kernel();
        let before = run_sum(&k, a, acc);
        assert_eq!(fully_unroll_innermost(&mut k), 1);
        assert!(!k.body.iter().any(Stmt::has_loop));
        assert_eq!(run_sum(&k, a, acc), before);
    }

    #[test]
    fn non_dividing_factor_skipped() {
        let (mut k, _, _) = sum_kernel();
        assert_eq!(unroll_innermost(&mut k, 5), 0);
        assert_eq!(unroll_innermost(&mut k, 32), 0);
    }

    #[test]
    fn try_unroll_zero_factor_is_typed_error() {
        let (mut k, _, _) = sum_kernel();
        let before = k.clone();
        assert_eq!(
            try_unroll_innermost(&mut k, 0),
            Err(UnrollError::ZeroFactor)
        );
        assert_eq!(k, before, "kernel untouched on error");
    }

    #[test]
    fn try_unroll_factor_one_is_identity_ok() {
        let (mut k, a, acc) = sum_kernel();
        let before = run_sum(&k, a, acc);
        assert_eq!(try_unroll_innermost(&mut k, 1), Ok(0));
        assert_eq!(run_sum(&k, a, acc), before);
    }

    #[test]
    fn try_unroll_non_divisible_is_typed_error_and_no_op() {
        let (mut k, _, _) = sum_kernel();
        let before = k.clone();
        assert_eq!(
            try_unroll_innermost(&mut k, 5),
            Err(UnrollError::NonDivisible {
                trip: 16,
                factor: 5
            })
        );
        assert_eq!(
            try_unroll_innermost(&mut k, 32),
            Err(UnrollError::NonDivisible {
                trip: 16,
                factor: 32
            })
        );
        assert_eq!(k, before, "kernel untouched on error");
    }

    #[test]
    fn try_unroll_valid_factor_matches_unroll_innermost() {
        let (mut k, a, acc) = sum_kernel();
        let (mut k2, _, _) = sum_kernel();
        let before = run_sum(&k, a, acc);
        assert_eq!(try_unroll_innermost(&mut k, 4), Ok(1));
        assert_eq!(unroll_innermost(&mut k2, 4), 1);
        assert_eq!(k, k2, "strict path rewrites identically");
        assert_eq!(run_sum(&k, a, acc), before);
    }

    #[test]
    fn unroll_error_display_is_actionable() {
        assert!(UnrollError::ZeroFactor.to_string().contains("positive"));
        let e = UnrollError::NonDivisible {
            trip: 16,
            factor: 5,
        }
        .to_string();
        assert!(e.contains("16") && e.contains('5'), "{e}");
    }

    #[test]
    fn factor_one_is_identity() {
        let (mut k, a, acc) = sum_kernel();
        let before = run_sum(&k, a, acc);
        assert_eq!(unroll_innermost(&mut k, 1), 0);
        assert_eq!(run_sum(&k, a, acc), before);
    }

    #[test]
    fn nested_loops_unroll_only_innermost() {
        let mut b = KernelBuilder::new("nest");
        let a = b.array("a", 64);
        let acc = b.var("acc");
        b.set(acc, 0);
        b.count_loop("i", 0, 8, 8, |b, i| {
            b.count_loop("j", 0, 1, 8, |b, j| {
                let x = b.load("x", a, crate::kernel::IndexExpr::Sum(i, j));
                b.bin(acc, AluBinOp::Add, acc, x);
            });
        });
        let mut k = b.finish();
        let gold = {
            let mut interp = Interpreter::new(&k);
            interp.set_array(a, (0..64).collect());
            interp.run().unwrap();
            interp.var_value(acc)
        };
        assert_eq!(unroll_innermost(&mut k, 8), 1);
        // Outer loop intact, inner fully replicated within one iteration.
        match &k.body[1] {
            Stmt::Loop(outer) => {
                assert_eq!(outer.trip, 8);
                match &outer.body[0] {
                    Stmt::Loop(inner) => assert_eq!(inner.trip, 1),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
        let mut interp = Interpreter::new(&k);
        interp.set_array(a, (0..64).collect());
        interp.run().unwrap();
        assert_eq!(interp.var_value(acc), gold);
    }

    #[test]
    fn two_level_unroll_via_repeated_calls() {
        // The paper's "unroll 2 levels": fully unroll the innermost, then
        // the now-innermost second level.
        let mut b = KernelBuilder::new("nest");
        let a = b.array("a", 16);
        let acc = b.var("acc");
        b.set(acc, 0);
        b.count_loop("i", 0, 4, 4, |b, i| {
            b.count_loop("j", 0, 1, 4, |b, j| {
                let x = b.load("x", a, crate::kernel::IndexExpr::Sum(i, j));
                b.bin(acc, AluBinOp::Add, acc, x);
            });
        });
        let mut k = b.finish();
        assert_eq!(fully_unroll_innermost(&mut k), 1);
        assert_eq!(fully_unroll_innermost(&mut k), 1);
        assert!(!k.body.iter().any(Stmt::has_loop));
        let mut interp = Interpreter::new(&k);
        interp.set_array(a, (0..16).collect());
        interp.run().unwrap();
        assert_eq!(interp.var_value(acc), (0..16).sum::<i16>());
    }
}
