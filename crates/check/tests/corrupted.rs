//! Negative fixtures: the validity checker must reject deliberately
//! corrupted schedules with structured violations, and accept the
//! schedulers' genuine output unchanged.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vsp_check::gen::{gen_kernel, KernelGenConfig};
use vsp_check::validity::{check_list_schedule, check_modulo_schedule, Violation};
use vsp_core::models;
use vsp_ir::Stmt;
use vsp_sched::{
    list_schedule, lower_body, modulo_schedule, ArrayLayout, ListSchedule, LoweredBody,
    ModuloSchedule, VopDeps,
};

/// Lowers a deterministic generated kernel for `machine` and returns
/// the pieces every fixture needs.
fn lowered(machine: &vsp_core::MachineConfig) -> (LoweredBody, VopDeps) {
    let mut rng = SmallRng::seed_from_u64(7);
    let gk = gen_kernel(&mut rng, &KernelGenConfig::default());
    let mut k = gk.kernel.clone();
    vsp_ir::transform::if_convert(&mut k);
    vsp_ir::transform::eliminate_common_subexpressions(&mut k);
    let layout = ArrayLayout::contiguous(&k, machine).unwrap();
    let Some(Stmt::Loop(l)) = k.body.iter().find(|s| matches!(s, Stmt::Loop(_))) else {
        unreachable!("generated kernels keep their loop")
    };
    let body = lower_body(machine, &k, &l.body, &layout).unwrap();
    let deps = VopDeps::build(machine, &body);
    (body, deps)
}

#[test]
fn genuine_list_schedules_pass_the_checker() {
    for machine in models::all_models() {
        let (body, deps) = lowered(&machine);
        let sched = list_schedule(&machine, &body, &deps, 1).expect("schedulable");
        let violations = check_list_schedule(&machine, &body, &deps, &sched);
        assert!(violations.is_empty(), "{}: {violations:?}", machine.name);
    }
}

#[test]
fn genuine_modulo_schedules_pass_the_checker() {
    for machine in models::all_models() {
        let (body, deps) = lowered(&machine);
        let sched = modulo_schedule(&machine, &body, &deps, 1, 64).expect("schedulable");
        let violations = check_modulo_schedule(&machine, &body, &deps, &sched);
        assert!(violations.is_empty(), "{}: {violations:?}", machine.name);
    }
}

/// Compressing a dependence edge must surface as a `Dependence`
/// violation: move a consumer to its producer's issue cycle.
#[test]
fn corrupted_list_schedule_dependence_is_rejected() {
    let machine = models::i4c8s4();
    let (body, deps) = lowered(&machine);
    let sched = list_schedule(&machine, &body, &deps, 1).expect("schedulable");

    let edge = deps
        .edges
        .iter()
        .find(|e| e.distance == 0 && e.min_delay > 0)
        .expect("a flow dependence exists");
    let mut corrupt = ListSchedule {
        times: sched.times.clone(),
        placements: sched.placements.clone(),
        length: sched.length,
    };
    corrupt.times[edge.to] = corrupt.times[edge.from];

    let violations = check_list_schedule(&machine, &body, &deps, &corrupt);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::Dependence { .. })),
        "{violations:?}"
    );
}

/// Piling every operation into one cycle must surface as `Resource`
/// violations (and usually dependence ones too).
#[test]
fn corrupted_list_schedule_resources_are_rejected() {
    let machine = models::i2c16s4(); // 2 slots per cluster: easiest to overflow
    let (body, deps) = lowered(&machine);
    let sched = list_schedule(&machine, &body, &deps, 1).expect("schedulable");
    assert!(body.ops.len() > 2, "fixture too small to overflow a word");

    let corrupt = ListSchedule {
        times: vec![0; sched.times.len()],
        placements: sched.placements.clone(),
        length: 1,
    };
    let violations = check_list_schedule(&machine, &body, &deps, &corrupt);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::Resource { .. })),
        "{violations:?}"
    );
}

/// Claiming a shorter length than the last issue time must surface as
/// `Overrun`.
#[test]
fn corrupted_list_schedule_length_is_rejected() {
    let machine = models::i4c8s4();
    let (body, deps) = lowered(&machine);
    let sched = list_schedule(&machine, &body, &deps, 1).expect("schedulable");
    assert!(sched.length > 1);

    let corrupt = ListSchedule {
        times: sched.times.clone(),
        placements: sched.placements.clone(),
        length: sched.length - 1,
    };
    let violations = check_list_schedule(&machine, &body, &deps, &corrupt);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::Overrun { .. })),
        "{violations:?}"
    );
}

/// Halving the II under the schedule's feet must break either the
/// modulo dependence rule, the modulo resource rows, or the stage
/// count — the checker has to notice one of them.
#[test]
fn corrupted_modulo_ii_is_rejected() {
    let machine = models::i2c16s4();
    let (body, deps) = lowered(&machine);
    let sched = modulo_schedule(&machine, &body, &deps, 1, 64).expect("schedulable");
    assert!(sched.ii > 1, "fixture needs a multi-cycle II");

    let corrupt = ModuloSchedule {
        ii: sched.ii / 2,
        times: sched.times.clone(),
        placements: sched.placements.clone(),
        length: sched.length,
        stages: sched.stages,
    };
    let violations = check_modulo_schedule(&machine, &body, &deps, &corrupt);
    assert!(!violations.is_empty());
}

/// An inconsistent stage count must surface even when times and
/// placements are untouched.
#[test]
fn corrupted_modulo_stage_count_is_rejected() {
    let machine = models::i4c8s4();
    let (body, deps) = lowered(&machine);
    let sched = modulo_schedule(&machine, &body, &deps, 1, 64).expect("schedulable");

    let corrupt = ModuloSchedule {
        ii: sched.ii,
        times: sched.times.clone(),
        placements: sched.placements.clone(),
        length: sched.length,
        stages: sched.stages + 1,
    };
    let violations = check_modulo_schedule(&machine, &body, &deps, &corrupt);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, Violation::Inconsistent { .. })),
        "{violations:?}"
    );
}

/// Violations serialize to JSON so the fuzz driver can report them.
#[test]
fn violations_serialize_to_json() {
    let machine = models::i4c8s4();
    let (body, deps) = lowered(&machine);
    let sched = list_schedule(&machine, &body, &deps, 1).expect("schedulable");
    let corrupt = ListSchedule {
        times: vec![0; sched.times.len()],
        placements: sched.placements.clone(),
        length: 1,
    };
    let violations = check_list_schedule(&machine, &body, &deps, &corrupt);
    assert!(!violations.is_empty());
    // Serializability is a compile-time property of this call; content is
    // asserted only where a real serde_json backend is present (offline
    // builds may stub it out).
    if let Ok(json) = serde_json::to_string(&violations) {
        assert!(json.contains("\"op\""), "{json}");
    }
}
