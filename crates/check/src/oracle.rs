//! The differential oracle: one program, multiple executions, required
//! agreement.
//!
//! Two comparison levels, matching the two generators in [`crate::gen`]:
//!
//! * [`diff_program`] — runs a VLIW program through the simulator's
//!   pre-decoded fast path ([`Simulator::run`]) and its interpretive
//!   path ([`Simulator::run_interp`]) and demands exact [`RunStats`]
//!   equality, bit-identical architectural state ([`ArchState`]: every
//!   register, predicate and both halves of every memory bank on every
//!   cluster), and the cycle-accounting invariant
//!   `cycles == words + icache_stall_cycles`;
//! * [`diff_kernel`] — additionally brings in the IR interpreter
//!   ([`vsp_ir::Interpreter`]) as a *semantic* reference: a generated
//!   kernel is compiled with the standard recipe (if-convert, CSE,
//!   lower, list-schedule, codegen across all clusters), its input array
//!   is staged into every cluster replica's local memory, and after both
//!   simulator paths run, every replica's output region must equal the
//!   interpreter's output array element for element.
//!
//! A third comparison, [`diff_functional`], brings in the functional
//! execution tier ([`vsp_exec::Functional`]): when that tier accepts a
//! program, its [`ArchState`] must be bit-identical to the fast path's;
//! when it refuses (typed [`vsp_exec::Unsupported`] reasons), the case
//! reports [`FunctionalOutcome::Refused`] rather than failing.
//!
//! Failures come back as a serializable [`DiffFailure`] so the fuzz
//! driver can emit machine-readable reports carrying the reproducer
//! seed.

use serde::Serialize;
use std::fmt;
use vsp_core::validate::{validate_program, ValidationError};
use vsp_core::MachineConfig;
use vsp_exec::{ExecRequest, Functional, StageSpec};
use vsp_ir::{Interpreter, Stmt};
use vsp_isa::Program;
use vsp_sched::{codegen_loop, list_schedule, lower_body, ArrayLayout, LoopControl, VopDeps};
use vsp_sim::{ArchState, BatchSimulator, DecodedProgram, RunSpec, RunStats, Simulator};

use crate::gen::GeneratedKernel;

/// Why a differential case failed.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum DiffFailure {
    /// The program is structurally illegal for the machine — a generator
    /// (or compiler) bug, reported before any execution.
    Structural(Vec<ValidationError>),
    /// One execution path faulted or exceeded the cycle budget.
    Sim {
        /// Which path (`"fast"` or `"interp"`).
        path: &'static str,
        /// The simulator error, rendered.
        error: String,
    },
    /// The IR interpreter (semantic reference) failed.
    Interp {
        /// The interpreter error, rendered.
        error: String,
    },
    /// The standard compilation recipe failed on a generated kernel.
    Compile {
        /// Which stage (`"layout"`, `"lower"`, `"schedule"`, `"codegen"`).
        stage: &'static str,
        /// The error, rendered.
        error: String,
    },
    /// The two simulator paths disagree on run statistics.
    StatsDiverged {
        /// Rendered summary of the first differing fields.
        detail: String,
    },
    /// The two simulator paths disagree on architectural state.
    StateDiverged {
        /// Rendered summary of the divergence.
        detail: String,
    },
    /// `cycles == words + icache_stall_cycles` does not hold.
    CycleInvariant {
        /// Total cycles reported.
        cycles: u64,
        /// Instruction words executed.
        words: u64,
        /// Instruction-cache stall cycles.
        stalls: u64,
    },
    /// A cluster replica's output array differs from the IR
    /// interpreter's result.
    OutputDiverged {
        /// Cluster whose memory diverged.
        cluster: u8,
        /// Element index within the output array.
        index: usize,
        /// Value the IR interpreter computed.
        expected: i16,
        /// Value found in the replica's local memory.
        actual: i16,
    },
}

impl fmt::Display for DiffFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffFailure::Structural(errors) => {
                write!(f, "structurally illegal program ({} errors):", errors.len())?;
                for e in errors {
                    write!(f, " {e};")?;
                }
                Ok(())
            }
            DiffFailure::Sim { path, error } => write!(f, "{path} path failed: {error}"),
            DiffFailure::Interp { error } => write!(f, "IR interpreter failed: {error}"),
            DiffFailure::Compile { stage, error } => {
                write!(f, "compilation failed at {stage}: {error}")
            }
            DiffFailure::StatsDiverged { detail } => {
                write!(f, "run statistics diverged: {detail}")
            }
            DiffFailure::StateDiverged { detail } => {
                write!(f, "architectural state diverged: {detail}")
            }
            DiffFailure::CycleInvariant {
                cycles,
                words,
                stalls,
            } => write!(
                f,
                "cycle invariant broken: cycles {cycles} != words {words} + stalls {stalls}"
            ),
            DiffFailure::OutputDiverged {
                cluster,
                index,
                expected,
                actual,
            } => write!(
                f,
                "cluster {cluster} out[{index}] = {actual}, interpreter says {expected}"
            ),
        }
    }
}

impl std::error::Error for DiffFailure {}

/// Runs `program` through both simulator paths and checks agreement.
///
/// Returns the (identical) run statistics on success.
///
/// # Errors
///
/// Any structural illegality, execution fault, statistic or
/// architectural-state divergence, or cycle-invariant breakage.
pub fn diff_program(
    machine: &MachineConfig,
    program: &Program,
    max_cycles: u64,
) -> Result<RunStats, DiffFailure> {
    if let Err(errors) = validate_program(machine, program) {
        return Err(DiffFailure::Structural(errors));
    }
    let (stats_fast, state_fast) = run_path(machine, program, max_cycles, true, &[])?;
    let (stats_interp, state_interp) = run_path(machine, program, max_cycles, false, &[])?;
    compare_paths(&stats_fast, &state_fast, &stats_interp, &state_interp)?;
    Ok(stats_fast)
}

/// Runs `program` once through the scalar fast path and `lanes` times
/// through the SoA lockstep batch engine, demanding every lane agree
/// with the scalar run bit-for-bit — identical [`RunStats`] and
/// identical [`ArchState`].
///
/// Returns the (identical) run statistics on success.
///
/// # Errors
///
/// Any structural illegality, execution fault on either engine, or a
/// lane whose statistics or architectural state diverge.
pub fn diff_batch(
    machine: &MachineConfig,
    program: &Program,
    max_cycles: u64,
    lanes: usize,
) -> Result<RunStats, DiffFailure> {
    if let Err(errors) = validate_program(machine, program) {
        return Err(DiffFailure::Structural(errors));
    }
    let (stats_fast, state_fast) = run_path(machine, program, max_cycles, true, &[])?;
    let decoded = DecodedProgram::prepare(machine, program).map_err(|e| DiffFailure::Sim {
        path: "batch",
        error: e.to_string(),
    })?;
    let mut sim = BatchSimulator::new(machine);
    let specs = (0..lanes).map(|_| RunSpec::new(max_cycles)).collect();
    for (lane, outcome) in sim.run_batch(&decoded, specs).into_iter().enumerate() {
        if let Some(e) = outcome.error {
            return Err(DiffFailure::Sim {
                path: "batch",
                error: format!("lane {lane}: {e}"),
            });
        }
        if outcome.stats != stats_fast {
            return Err(DiffFailure::StatsDiverged {
                detail: format!(
                    "lane {lane}: {}",
                    stats_divergence("fast vs batch", &stats_fast, &outcome.stats)
                ),
            });
        }
        if outcome.state != state_fast {
            return Err(DiffFailure::StateDiverged {
                detail: format!(
                    "lane {lane}: {}",
                    state_divergence(&state_fast, &outcome.state)
                ),
            });
        }
    }
    Ok(stats_fast)
}

/// Compiles a generated kernel, runs both simulator paths on every
/// cluster replica, and checks both against the IR interpreter.
///
/// `data` supplies the input array (must be `kernel.len` elements).
///
/// Returns the fast path's run statistics on success.
///
/// # Errors
///
/// Compilation failures, execution faults, path divergence, or any
/// replica output element differing from the interpreter's.
///
/// # Panics
///
/// Panics if `data.len() != kernel.len as usize`.
pub fn diff_kernel(
    machine: &MachineConfig,
    kernel: &GeneratedKernel,
    data: &[i16],
    max_cycles: u64,
) -> Result<RunStats, DiffFailure> {
    assert_eq!(data.len(), kernel.len as usize, "input data length");

    // Semantic reference: the IR interpreter on the *untransformed*
    // kernel.
    let mut ir = Interpreter::new(&kernel.kernel);
    ir.set_array(kernel.input, data.to_vec());
    ir.run().map_err(|e| DiffFailure::Interp {
        error: e.to_string(),
    })?;
    let expected = ir.array(kernel.output).to_vec();

    let (program, layout) = compile(machine, kernel)?;
    if let Err(errors) = validate_program(machine, &program) {
        return Err(DiffFailure::Structural(errors));
    }

    let (ibank, ibase) = layout.entries[kernel.input.0 as usize];
    let (obank, obase) = layout.entries[kernel.output.0 as usize];
    let stage = [(ibank.0, ibase, data)];

    let (stats_fast, state_fast) = run_path(machine, &program, max_cycles, true, &stage)?;
    let (stats_interp, state_interp) = run_path(machine, &program, max_cycles, false, &stage)?;
    compare_paths(&stats_fast, &state_fast, &stats_interp, &state_interp)?;

    // Every cluster replica computed the same loop on its own memory.
    for cluster in 0..machine.clusters as usize {
        let mem = &state_fast.mems[cluster][obank.0 as usize].0;
        let region = &mem[obase as usize..obase as usize + expected.len()];
        for (index, (&want, &got)) in expected.iter().zip(region).enumerate() {
            if want != got {
                return Err(DiffFailure::OutputDiverged {
                    cluster: cluster as u8,
                    index,
                    expected: want,
                    actual: got,
                });
            }
        }
    }
    Ok(stats_fast)
}

/// How the functional tier fared on one differential case.
///
/// A refusal is *not* a failure: the tier is sound by refusal, and
/// declining a program it cannot lower (data-dependent control, timing
/// hazards, icache overflow — see [`vsp_exec::Unsupported`]) is correct
/// behavior. Only a program the tier *accepted* and then answered
/// differently from the fast path is a divergence.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum FunctionalOutcome {
    /// The functional tier accepted the program and its final
    /// [`ArchState`] is bit-identical to the fast path's.
    Agreed {
        /// The (shared) cycle count of the run.
        cycles: u64,
    },
    /// The functional tier refused the program with a typed reason.
    Refused {
        /// The rendered [`vsp_exec::Unsupported`] reason.
        reason: String,
    },
}

/// Runs `program` through the simulator fast path and the functional
/// tier ([`vsp_exec::Functional`]) and demands bit-identical
/// [`ArchState`] whenever the functional tier accepts the program.
///
/// `stage` regions are broadcast into every cluster's processing
/// buffer on both paths, mirroring [`diff_kernel`]'s convention.
///
/// # Errors
///
/// Structural illegality, a fast-path fault, a functional-tier *run*
/// failure on an accepted program, or architectural-state divergence.
/// Refusals are reported as [`FunctionalOutcome::Refused`], not errors.
///
/// ```
/// use vsp_check::oracle::{diff_functional, FunctionalOutcome};
/// use vsp_core::models;
/// use vsp_isa::{AluBinOp, OpKind, Operand, Operation, Program, Reg};
///
/// let machine = models::i4c8s4();
/// let mut p = Program::new("add");
/// p.push_word(vec![Operation::new(0, 0, OpKind::AluBin {
///     op: AluBinOp::Add, dst: Reg(1), a: Operand::Imm(40), b: Operand::Imm(2),
/// })]);
/// p.push_word(vec![Operation::new(0, 4, OpKind::Halt)]);
///
/// let outcome = diff_functional(&machine, &p, 100, &[]).unwrap();
/// assert_eq!(outcome, FunctionalOutcome::Agreed { cycles: 2 });
/// ```
pub fn diff_functional(
    machine: &MachineConfig,
    program: &Program,
    max_cycles: u64,
    stage: &[(u8, u16, &[i16])],
) -> Result<FunctionalOutcome, DiffFailure> {
    if let Err(errors) = validate_program(machine, program) {
        return Err(DiffFailure::Structural(errors));
    }
    let compiled = match Functional::prepare(machine, program) {
        Ok(c) => c,
        Err(e) if e.is_refusal() => {
            return Ok(FunctionalOutcome::Refused {
                reason: e.to_string(),
            })
        }
        Err(e) => {
            return Err(DiffFailure::Sim {
                path: "functional",
                error: e.to_string(),
            })
        }
    };
    let (_, state_fast) = run_path(machine, program, max_cycles, true, stage)?;
    let mut req = ExecRequest::new(max_cycles);
    for &(bank, base, data) in stage {
        req = req.with_stage(StageSpec::broadcast(bank, base, data.to_vec()));
    }
    let out = match compiled.run(&req) {
        Ok(out) => out,
        Err(e) if e.is_refusal() => {
            return Ok(FunctionalOutcome::Refused {
                reason: e.to_string(),
            })
        }
        Err(e) => {
            return Err(DiffFailure::Sim {
                path: "functional",
                error: e.to_string(),
            })
        }
    };
    if out.state != state_fast {
        return Err(DiffFailure::StateDiverged {
            detail: format!(
                "fast vs functional: {}",
                state_divergence(&state_fast, &out.state)
            ),
        });
    }
    Ok(FunctionalOutcome::Agreed { cycles: out.cycles })
}

/// The standard compilation recipe for generated kernels (mirrors the
/// repo's differential tests): if-convert, CSE, contiguous array
/// layout, lower the counted loop's body, list-schedule, replicate
/// across all clusters.
fn compile(
    machine: &MachineConfig,
    kernel: &GeneratedKernel,
) -> Result<(Program, ArrayLayout), DiffFailure> {
    let mut k = kernel.kernel.clone();
    vsp_ir::transform::if_convert(&mut k);
    vsp_ir::transform::eliminate_common_subexpressions(&mut k);
    let layout = ArrayLayout::contiguous(&k, machine).map_err(|e| DiffFailure::Compile {
        stage: "layout",
        error: format!("{e:?}"),
    })?;
    let Some(Stmt::Loop(l)) = k.body.iter().find(|s| matches!(s, Stmt::Loop(_))) else {
        return Err(DiffFailure::Compile {
            stage: "lower",
            error: "generated kernel lost its loop".into(),
        });
    };
    let ctl = Some(LoopControl {
        trip: l.trip,
        index: Some((0, l.start, l.step)),
    });
    let body = lower_body(machine, &k, &l.body, &layout).map_err(|e| DiffFailure::Compile {
        stage: "lower",
        error: format!("{e:?}"),
    })?;
    let deps = VopDeps::build(machine, &body);
    let sched = list_schedule(machine, &body, &deps, 1).ok_or(DiffFailure::Compile {
        stage: "schedule",
        error: "list scheduler found no schedule".into(),
    })?;
    let generated = codegen_loop(machine, &body, &sched, ctl, machine.clusters, "fuzzkern")
        .map_err(|e| DiffFailure::Compile {
            stage: "codegen",
            error: format!("{e:?}"),
        })?;
    Ok((generated.program, layout))
}

/// Runs one simulator path, staging `(bank, base, data)` regions into
/// every cluster's processing buffer first.
fn run_path(
    machine: &MachineConfig,
    program: &Program,
    max_cycles: u64,
    fast: bool,
    stage: &[(u8, u16, &[i16])],
) -> Result<(RunStats, ArchState), DiffFailure> {
    let mut sim = Simulator::new(machine, program).map_err(|e| DiffFailure::Sim {
        path: if fast { "fast" } else { "interp" },
        error: e.to_string(),
    })?;
    for &(bank, base, data) in stage {
        for cluster in 0..machine.clusters as u8 {
            let buf = sim.mem_mut(cluster, bank).active_buffer_mut();
            buf[base as usize..base as usize + data.len()].copy_from_slice(data);
        }
    }
    let stats = if fast {
        sim.run(max_cycles)
    } else {
        sim.run_interp(max_cycles)
    }
    .map_err(|e| DiffFailure::Sim {
        path: if fast { "fast" } else { "interp" },
        error: e.to_string(),
    })?;
    Ok((stats, sim.arch_state()))
}

/// Exact-agreement comparison of the two simulator paths, plus the
/// cycle-accounting invariant.
fn compare_paths(
    stats_fast: &RunStats,
    state_fast: &ArchState,
    stats_interp: &RunStats,
    state_interp: &ArchState,
) -> Result<(), DiffFailure> {
    if stats_fast != stats_interp {
        return Err(DiffFailure::StatsDiverged {
            detail: stats_divergence("fast vs interp", stats_fast, stats_interp),
        });
    }
    if state_fast != state_interp {
        return Err(DiffFailure::StateDiverged {
            detail: state_divergence(state_fast, state_interp),
        });
    }
    if stats_fast.cycles != stats_fast.words + stats_fast.icache_stall_cycles {
        return Err(DiffFailure::CycleInvariant {
            cycles: stats_fast.cycles,
            words: stats_fast.words,
            stalls: stats_fast.icache_stall_cycles,
        });
    }
    Ok(())
}

fn stats_divergence(label: &str, a: &RunStats, b: &RunStats) -> String {
    let mut parts = Vec::new();
    if a.cycles != b.cycles {
        parts.push(format!("cycles {} vs {}", a.cycles, b.cycles));
    }
    if a.words != b.words {
        parts.push(format!("words {} vs {}", a.words, b.words));
    }
    if a.ops_by_class != b.ops_by_class {
        parts.push(format!(
            "ops_by_class {:?} vs {:?}",
            a.ops_by_class, b.ops_by_class
        ));
    }
    if a.annulled_ops != b.annulled_ops {
        parts.push(format!("annulled {} vs {}", a.annulled_ops, b.annulled_ops));
    }
    if a.taken_branches != b.taken_branches {
        parts.push(format!(
            "taken_branches {} vs {}",
            a.taken_branches, b.taken_branches
        ));
    }
    if parts.is_empty() {
        parts.push("fields beyond the headline counters differ".into());
    }
    format!("{label}: {}", parts.join(", "))
}

fn state_divergence(a: &ArchState, b: &ArchState) -> String {
    if a.cycle != b.cycle {
        return format!("cycle {} vs {}", a.cycle, b.cycle);
    }
    if a.halted != b.halted {
        return format!("halted {} vs {}", a.halted, b.halted);
    }
    for (c, (ra, rb)) in a.regs.iter().zip(&b.regs).enumerate() {
        for (r, (va, vb)) in ra.iter().zip(rb).enumerate() {
            if va != vb {
                return format!("c{c} r{r}: {va} vs {vb}");
            }
        }
    }
    for (c, (pa, pb)) in a.preds.iter().zip(&b.preds).enumerate() {
        for (p, (va, vb)) in pa.iter().zip(pb).enumerate() {
            if va != vb {
                return format!("c{c} p{p}: {va} vs {vb}");
            }
        }
    }
    for (c, (ma, mb)) in a.mems.iter().zip(&b.mems).enumerate() {
        for (bank, (ba, bb)) in ma.iter().zip(mb).enumerate() {
            if ba != bb {
                let side = if ba.0 != bb.0 { "processing" } else { "I/O" };
                return format!("c{c} bank {bank}: {side} buffer differs");
            }
        }
    }
    "structural difference (shapes)".into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_kernel, gen_program, KernelGenConfig, ProgramGenConfig};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use vsp_core::models;

    #[test]
    fn generated_programs_agree_on_every_model() {
        for machine in models::all_models() {
            for seed in 0..4u64 {
                let mut rng = SmallRng::seed_from_u64(seed);
                let p = gen_program(&machine, &mut rng, &ProgramGenConfig::default());
                diff_program(&machine, &p, 100_000)
                    .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", machine.name));
            }
        }
    }

    #[test]
    fn generated_programs_agree_with_batch_lanes() {
        for machine in models::all_models() {
            let mut rng = SmallRng::seed_from_u64(17);
            let p = gen_program(&machine, &mut rng, &ProgramGenConfig::default());
            diff_batch(&machine, &p, 100_000, 5)
                .unwrap_or_else(|e| panic!("{}: {e}", machine.name));
        }
    }

    #[test]
    fn generated_programs_agree_or_refuse_on_functional_tier() {
        let mut agreed = 0u32;
        for machine in models::all_models() {
            for seed in 0..4u64 {
                let mut rng = SmallRng::seed_from_u64(seed);
                let p = gen_program(&machine, &mut rng, &ProgramGenConfig::default());
                match diff_functional(&machine, &p, 100_000, &[])
                    .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", machine.name))
                {
                    FunctionalOutcome::Agreed { .. } => agreed += 1,
                    FunctionalOutcome::Refused { .. } => {}
                }
            }
        }
        // The generator emits linear control flow, so most cases must
        // actually exercise the agreement path, not just refuse.
        assert!(agreed > 0, "functional tier refused every generated case");
    }

    #[test]
    fn generated_kernels_agree_with_the_interpreter() {
        for machine in models::all_models() {
            let mut rng = SmallRng::seed_from_u64(99);
            let k = gen_kernel(&mut rng, &KernelGenConfig::default());
            let data: Vec<i16> = (0..k.len).map(|_| rng.gen_range(-100i16..=100)).collect();
            diff_kernel(&machine, &k, &data, 1_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", machine.name));
        }
    }
}
