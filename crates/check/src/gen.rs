//! Seeded random generators for well-formed VLIW programs and
//! compilable IR kernels.
//!
//! Both generators take an explicit [`SmallRng`] so every emitted
//! artifact is reproducible from a single `u64` seed — the fuzz driver
//! prints the seed of a failing case and `--cases 1 --seed <n>` replays
//! it exactly.
//!
//! # Program generation
//!
//! [`gen_program`] emits straight-line-equivalent VLIW programs that a
//! correct simulator must execute without faulting, on the machine they
//! were generated for:
//!
//! * **structural legality** — every candidate operation is replayed
//!   through a [`CycleReservation`] before being accepted, so slot
//!   capabilities, crossbar ports and bank bindings are respected by
//!   construction;
//! * **hazard freedom** — a per-(cluster, register) ready-cycle table
//!   mirrors the machine's bypass latencies ([`LatencyModel`]); an
//!   operation may read *or* overwrite a register only once the
//!   producing operation's result has entered the bypass network. Since
//!   the generator never races the pipeline, [`HazardPolicy::Fault`]
//!   must never fire;
//! * **linear control flow** — branches and jumps only ever target the
//!   fall-through word after the machine's delay slots, so the executed
//!   word sequence equals the program order and
//!   `cycles == words + icache_stall_cycles` holds exactly (programs are
//!   much shorter than the instruction cache, so the only stalls are the
//!   cold-miss-free warm start).
//!
//! [`HazardPolicy::Fault`]: vsp_sim::HazardPolicy
//!
//! # Kernel generation
//!
//! [`gen_kernel`] builds a counted-loop IR kernel — load from an input
//! array, a short random dataflow chain (ALU, shifts, wide multiplies,
//! optional compare + `if`/`else`), store to an output array — that the
//! standard compilation recipe (if-convert, CSE, lower, list-schedule,
//! codegen) can compile for **every** machine model, giving the oracle a
//! semantic reference independent of the scheduler: the IR interpreter.

use rand::rngs::SmallRng;
use rand::Rng;
use vsp_core::{CycleReservation, LatencyModel, MachineConfig, MulWidth};
use vsp_ir::{ArrayId, Kernel, KernelBuilder};
use vsp_isa::{
    AddrMode, AluBinOp, AluUnOp, CmpOp, MemBank, MulKind, OpKind, Operand, Operation, Pred,
    PredGuard, Program, Reg, ShiftOp,
};

/// Tunables for [`gen_program`].
#[derive(Debug, Clone)]
pub struct ProgramGenConfig {
    /// Number of instruction words before the final halt word.
    pub words: usize,
    /// Maximum operation candidates attempted per word.
    pub ops_per_word: u32,
    /// Probability that a word carries a control-slot branch or jump.
    pub branch_prob: f64,
    /// Probability that an eligible operation carries a predicate guard.
    pub guard_prob: f64,
}

impl Default for ProgramGenConfig {
    fn default() -> Self {
        ProgramGenConfig {
            words: 24,
            ops_per_word: 8,
            branch_prob: 0.15,
            guard_prob: 0.15,
        }
    }
}

/// Registers per cluster the generator draws from (capped for
/// dependence density — a 128-entry file would rarely collide).
const REG_UNIVERSE: u16 = 24;
/// Predicates per cluster the generator draws from.
const PRED_UNIVERSE: u8 = 6;
/// Address range used within each bank (capped so distinct memory
/// operations collide often enough to exercise store-to-load paths).
const ADDR_UNIVERSE: u16 = 48;

/// Per-machine generation state: the first cycle at which each register
/// and predicate may be read or overwritten again.
struct BusyTable {
    regs: Vec<Vec<u64>>,
    preds: Vec<Vec<u64>>,
    reg_cap: u16,
    pred_cap: u8,
}

impl BusyTable {
    fn new(machine: &MachineConfig) -> Self {
        let clusters = machine.clusters as usize;
        let reg_cap = (machine.cluster.registers as u16).min(REG_UNIVERSE);
        let pred_cap = (machine.cluster.pred_regs as u8).min(PRED_UNIVERSE);
        BusyTable {
            regs: vec![vec![0; reg_cap as usize]; clusters],
            preds: vec![vec![0; pred_cap as usize]; clusters],
            reg_cap,
            pred_cap,
        }
    }

    /// A register on `cluster` ready at `cycle`, chosen uniformly.
    fn ready_reg(&self, rng: &mut SmallRng, cluster: u8, cycle: u64) -> Option<Reg> {
        let ready: Vec<u16> = (0..self.reg_cap)
            .filter(|&r| self.regs[cluster as usize][r as usize] <= cycle)
            .collect();
        if ready.is_empty() {
            return None;
        }
        Some(Reg(ready[rng.gen_range(0..ready.len())]))
    }

    /// A predicate on `cluster` ready at `cycle`, chosen uniformly.
    fn ready_pred(&self, rng: &mut SmallRng, cluster: u8, cycle: u64) -> Option<Pred> {
        let ready: Vec<u8> = (0..self.pred_cap)
            .filter(|&p| self.preds[cluster as usize][p as usize] <= cycle)
            .collect();
        if ready.is_empty() {
            return None;
        }
        Some(Pred(ready[rng.gen_range(0..ready.len())]))
    }
}

/// A register source or a small immediate, biased half/half.
fn rand_operand(rng: &mut SmallRng, busy: &BusyTable, cluster: u8, cycle: u64) -> Operand {
    if rng.gen_bool(0.5) {
        if let Some(r) = busy.ready_reg(rng, cluster, cycle) {
            return Operand::Reg(r);
        }
    }
    Operand::Imm(rng.gen_range(-100i16..=100))
}

/// Generates a hazard-free, structurally legal program for `machine`.
///
/// The returned program always ends in a halt word and fits the
/// instruction cache by a wide margin, so a correct simulator runs it to
/// completion with `cycles == words + icache_stall_cycles`.
pub fn gen_program(machine: &MachineConfig, rng: &mut SmallRng, cfg: &ProgramGenConfig) -> Program {
    let lat = LatencyModel::new(machine);
    let mut busy = BusyTable::new(machine);
    let mut program = Program::new("fuzz");
    let clusters = machine.clusters as u8;
    let bds = machine.pipeline.branch_delay_slots as usize;
    let (bcluster, bslot) = machine.branch_slot();
    let program_len = cfg.words + 1; // body + halt word

    for w in 0..cfg.words {
        let cycle = w as u64;
        let mut reservation = CycleReservation::new(machine);
        let mut word: Vec<Operation> = Vec::new();
        // Registers/predicates already written this word (same-word
        // double writes would commit in program order — legal, but it
        // makes differential triage noisier than it is worth).
        let mut wrote_regs: Vec<(u8, u16)> = Vec::new();
        let mut wrote_preds: Vec<(u8, u8)> = Vec::new();

        // Control slot first: at most one branch or jump per word, only
        // to the fall-through point after the delay slots.
        let fall_through = w + 1 + bds;
        if fall_through < program_len && rng.gen_bool(cfg.branch_prob) {
            let kind = if rng.gen_bool(0.5) {
                busy.ready_pred(rng, bcluster, cycle)
                    .map(|pred| OpKind::Branch {
                        pred,
                        sense: rng.gen_bool(0.5),
                        target: fall_through,
                    })
            } else {
                Some(OpKind::Jump {
                    target: fall_through,
                })
            };
            if let Some(kind) = kind {
                let op = Operation::new(bcluster, bslot, kind);
                if reservation.try_reserve(machine, &op).is_ok() {
                    word.push(op);
                }
            }
        }

        let attempts = rng.gen_range(1..=cfg.ops_per_word);
        for _ in 0..attempts {
            let cluster = rng.gen_range(0..clusters);
            let Some(kind) = rand_op_kind(machine, rng, &busy, cluster, cycle) else {
                continue;
            };

            // Destination discipline: never overwrite a value still in
            // flight, never write one destination twice in a word.
            if let Some(d) = kind.def_reg() {
                if wrote_regs.contains(&(cluster, d.0)) {
                    continue;
                }
            }
            if let Some(p) = kind.def_pred() {
                if wrote_preds.contains(&(cluster, p.0)) {
                    continue;
                }
            }

            // Optional guard on guardable operations.
            let guard = if kind.def_reg().is_some() && rng.gen_bool(cfg.guard_prob) {
                busy.ready_pred(rng, cluster, cycle).map(|p| {
                    if rng.gen_bool(0.5) {
                        PredGuard::if_true(p)
                    } else {
                        PredGuard::if_false(p)
                    }
                })
            } else {
                None
            };

            // Place on a free capable slot; replay through the
            // reservation to keep the word structurally legal.
            let class = kind.fu_class().expect("generator never emits no-ops");
            let free: Vec<u8> = machine
                .cluster
                .slots_for(class)
                .filter(|&s| !reservation.slot_busy(cluster, s))
                .collect();
            if free.is_empty() {
                continue;
            }
            let slot = free[rng.gen_range(0..free.len())];
            let op = match guard {
                Some(g) => Operation::guarded(cluster, slot, g, kind),
                None => Operation::new(cluster, slot, kind),
            };
            if reservation.try_reserve(machine, &op).is_err() {
                continue;
            }

            // Commit latency bookkeeping only for accepted operations.
            let latency = u64::from(lat.latency(&op.kind));
            if let Some(d) = op.kind.def_reg() {
                busy.regs[cluster as usize][d.index()] = cycle + latency;
                wrote_regs.push((cluster, d.0));
            }
            if let Some(p) = op.kind.def_pred() {
                busy.preds[cluster as usize][p.index()] = cycle + latency;
                wrote_preds.push((cluster, p.0));
            }
            word.push(op);
        }

        program.push_word(word);
    }

    let (hc, hs) = machine.branch_slot();
    program.push_word(vec![Operation::new(hc, hs, OpKind::Halt)]);
    program
}

/// Draws one operation kind whose sources are all ready on `cluster` at
/// `cycle`. Returns `None` when the roll demands a register none is
/// ready for (the caller simply skips the attempt).
fn rand_op_kind(
    machine: &MachineConfig,
    rng: &mut SmallRng,
    busy: &BusyTable,
    cluster: u8,
    cycle: u64,
) -> Option<OpKind> {
    let dst = busy.ready_reg(rng, cluster, cycle);
    let roll = rng.gen_range(0u32..100);
    match roll {
        0..=29 => {
            let mut ops = vec![
                AluBinOp::Add,
                AluBinOp::Sub,
                AluBinOp::And,
                AluBinOp::Or,
                AluBinOp::Xor,
                AluBinOp::Min,
                AluBinOp::Max,
            ];
            if machine.has_absdiff {
                ops.push(AluBinOp::AbsDiff);
            }
            Some(OpKind::AluBin {
                op: ops[rng.gen_range(0..ops.len())],
                dst: dst?,
                a: rand_operand(rng, busy, cluster, cycle),
                b: rand_operand(rng, busy, cluster, cycle),
            })
        }
        30..=44 => {
            let ops = [
                AluUnOp::Mov,
                AluUnOp::Abs,
                AluUnOp::Neg,
                AluUnOp::Not,
                AluUnOp::SextB,
                AluUnOp::ZextB,
            ];
            Some(OpKind::AluUn {
                op: ops[rng.gen_range(0..ops.len())],
                dst: dst?,
                a: rand_operand(rng, busy, cluster, cycle),
            })
        }
        45..=54 => {
            let ops = [ShiftOp::Shl, ShiftOp::ShrL, ShiftOp::ShrA];
            Some(OpKind::Shift {
                op: ops[rng.gen_range(0..ops.len())],
                dst: dst?,
                a: rand_operand(rng, busy, cluster, cycle),
                b: Operand::Imm(rng.gen_range(0i16..16)),
            })
        }
        55..=64 => {
            let mut kinds = vec![MulKind::Mul8SS, MulKind::Mul8UU, MulKind::Mul8SU];
            if machine.mul_width == MulWidth::Sixteen {
                kinds.push(MulKind::Mul16Lo);
                kinds.push(MulKind::Mul16Hi);
            }
            Some(OpKind::Mul {
                kind: kinds[rng.gen_range(0..kinds.len())],
                dst: dst?,
                a: rand_operand(rng, busy, cluster, cycle),
                b: rand_operand(rng, busy, cluster, cycle),
            })
        }
        65..=74 => {
            let ops = [
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ];
            // Any predicate destination that is not in flight works; the
            // ready_pred sampler enforces exactly that.
            let dstp = busy.ready_pred(rng, cluster, cycle)?;
            Some(OpKind::Cmp {
                op: ops[rng.gen_range(0..ops.len())],
                dst: dstp,
                a: rand_operand(rng, busy, cluster, cycle),
                b: rand_operand(rng, busy, cluster, cycle),
            })
        }
        75..=84 => {
            let (bank, addr) = rand_addr(machine, rng);
            Some(OpKind::Load {
                dst: dst?,
                addr,
                bank,
            })
        }
        85..=92 => {
            let (bank, addr) = rand_addr(machine, rng);
            Some(OpKind::Store {
                src: rand_operand(rng, busy, cluster, cycle),
                addr,
                bank,
            })
        }
        93..=97 if machine.clusters > 1 => {
            let mut from = rng.gen_range(0..machine.clusters as u8);
            if from == cluster {
                from = (from + 1) % machine.clusters as u8;
            }
            Some(OpKind::Xfer {
                dst: dst?,
                from,
                src: busy.ready_reg(rng, from, cycle)?,
            })
        }
        _ => None,
    }
}

/// A random (bank, absolute address) pair valid on `machine`.
fn rand_addr(machine: &MachineConfig, rng: &mut SmallRng) -> (MemBank, AddrMode) {
    let banks = machine.cluster.banks.len().max(1);
    let bank = rng.gen_range(0..banks) as u8;
    let cap = machine.cluster.banks[bank as usize]
        .words
        .min(u32::from(ADDR_UNIVERSE));
    (
        MemBank(bank),
        AddrMode::Absolute(rng.gen_range(0..cap) as u16),
    )
}

/// Tunables for [`gen_kernel`].
#[derive(Debug, Clone)]
pub struct KernelGenConfig {
    /// Minimum array length (and loop trip count).
    pub min_len: u32,
    /// Maximum array length (and loop trip count).
    pub max_len: u32,
    /// Maximum dataflow-chain depth between the load and the store.
    pub max_chain: u32,
    /// Probability that the chain contains a compare + `if`/`else`.
    pub if_prob: f64,
}

impl Default for KernelGenConfig {
    fn default() -> Self {
        KernelGenConfig {
            min_len: 8,
            max_len: 32,
            max_chain: 4,
            if_prob: 0.4,
        }
    }
}

/// A generated kernel plus the handles the oracle needs to stage inputs
/// and read back results.
#[derive(Debug, Clone)]
pub struct GeneratedKernel {
    /// The IR kernel (one counted loop, flat body).
    pub kernel: Kernel,
    /// Input array, to be filled with test data.
    pub input: ArrayId,
    /// Output array, written once per iteration.
    pub output: ArrayId,
    /// Element count of both arrays (= the trip count).
    pub len: u32,
}

/// Generates a compilable counted-loop kernel: `out[i] = f(in[i])` for a
/// random dataflow chain `f`.
///
/// The chain draws from ALU binaries (including `AbsDiff`, which
/// lowering expands on machines without the special operator), unary
/// ops, shifts, wide multiplies by small constants (expanded to partial
/// products on 8-bit-multiplier machines) and an optional compare +
/// `if`/`else` (if-converted to guards by the standard recipe), so the
/// same kernel is compilable — and must agree with the IR interpreter —
/// on every model.
pub fn gen_kernel(rng: &mut SmallRng, cfg: &KernelGenConfig) -> GeneratedKernel {
    let len = rng.gen_range(cfg.min_len..=cfg.max_len);
    let mut b = KernelBuilder::new("fuzzkern");
    let input = b.array("in", len);
    let output = b.array("out", len);
    let chain = rng.gen_range(1..=cfg.max_chain);
    let with_if = rng.gen_bool(cfg.if_prob);
    // Pre-roll the chain so the closure below stays deterministic.
    let steps: Vec<(u32, i16)> = (0..chain)
        .map(|_| (rng.gen_range(0u32..4), rng.gen_range(-11i16..=11)))
        .collect();
    let cmp_ops = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];
    let cmp_op = cmp_ops[rng.gen_range(0..cmp_ops.len())];
    let bin_ops = [
        AluBinOp::Add,
        AluBinOp::Sub,
        AluBinOp::And,
        AluBinOp::Or,
        AluBinOp::Xor,
        AluBinOp::Min,
        AluBinOp::Max,
        AluBinOp::AbsDiff,
    ];
    let bin_rolls: Vec<usize> = (0..chain as usize)
        .map(|_| rng.gen_range(0..bin_ops.len()))
        .collect();
    let shift_amt = rng.gen_range(0i16..8);

    b.count_loop("i", 0, 1, len, |b, i| {
        let x = b.load("x", input, i);
        let mut cur = x;
        for (step, &(kind, konst)) in steps.iter().enumerate() {
            cur = match kind {
                0 => b.bin_new("t", bin_ops[bin_rolls[step]], cur, konst),
                1 => b.un_new("u", AluUnOp::Abs, cur),
                2 => b.shift_new("s", ShiftOp::ShrA, cur, shift_amt),
                _ => b.mul_new("m", cur, konst),
            };
        }
        if with_if {
            let p = b.cmp_new("p", cmp_op, cur, 0i16);
            let sel = b.var("sel");
            b.if_else(
                p,
                |bb| {
                    bb.bin(sel, AluBinOp::Add, cur, 1i16);
                },
                |bb| {
                    bb.bin(sel, AluBinOp::Sub, cur, 1i16);
                },
            );
            b.store(output, i, sel);
        } else {
            b.store(output, i, cur);
        }
    });

    GeneratedKernel {
        kernel: b.finish(),
        input,
        output,
        len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vsp_core::models;

    #[test]
    fn generated_programs_validate_on_their_machine() {
        for machine in models::all_models() {
            for seed in 0..8u64 {
                let mut rng = SmallRng::seed_from_u64(seed);
                let p = gen_program(&machine, &mut rng, &ProgramGenConfig::default());
                vsp_core::validate_program(&machine, &p)
                    .unwrap_or_else(|e| panic!("{} seed {seed}: {e:?}", machine.name));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let machine = models::i4c8s4();
        let cfg = ProgramGenConfig::default();
        let a = gen_program(&machine, &mut SmallRng::seed_from_u64(7), &cfg);
        let b = gen_program(&machine, &mut SmallRng::seed_from_u64(7), &cfg);
        assert_eq!(a.len(), b.len());
        for w in 0..a.len() {
            assert_eq!(a.word(w), b.word(w));
        }
        let c = gen_program(&machine, &mut SmallRng::seed_from_u64(8), &cfg);
        assert!((0..a.len().min(c.len())).any(|w| a.word(w) != c.word(w)));
    }

    #[test]
    fn generated_kernels_interpret() {
        for seed in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let k = gen_kernel(&mut rng, &KernelGenConfig::default());
            let mut interp = vsp_ir::Interpreter::new(&k.kernel);
            interp.set_array(k.input, (0..k.len as i16).map(|v| v - 5).collect());
            interp.run().unwrap();
            assert_eq!(interp.array(k.output).len(), k.len as usize);
        }
    }
}
