//! Independent schedule-validity checking.
//!
//! The schedulers in `vsp-sched` *construct* schedules that should obey
//! the machine's constraints; this module *re-derives* those constraints
//! from scratch and checks a finished artifact against them, so a bug in
//! the scheduler's bookkeeping cannot hide itself. Three entry points:
//!
//! * [`check_program`] — a scheduled [`Program`]: structural legality
//!   (via [`vsp_core::validate_program`]) plus a linear read-before-ready
//!   scan that mirrors the simulator's bypass timing;
//! * [`check_list_schedule`] — a [`ListSchedule`] against its dependence
//!   graph: every same-iteration edge must respect the producer latency
//!   (plus the crossbar transfer penalty when the edge spans clusters),
//!   every cycle's placements must fit a fresh [`CycleReservation`], and
//!   no operation may issue at or beyond the claimed length;
//! * [`check_modulo_schedule`] — a [`ModuloSchedule`]: the classic
//!   modulo constraint `time(to) ≥ time(from) + delay − II·distance` for
//!   **all** edges (including loop-carried ones), resource replay of the
//!   `II` modulo rows at `time mod II`, and length/stage-count
//!   consistency.
//!
//! All findings come back as structured [`Violation`]s (serializable, so
//! the fuzz driver can emit machine-readable failure reports) rather
//! than panics — callers decide what is fatal.

use serde::Serialize;
use std::fmt;
use vsp_core::resources::ReserveError;
use vsp_core::validate::{validate_program_with, ValidateOptions, ValidationError};
use vsp_core::{CycleReservation, LatencyModel, MachineConfig};
use vsp_isa::{OpKind, Operation, Program};
use vsp_sched::{ListSchedule, LoweredBody, ModuloSchedule, VopDeps};

/// One violation found by a checker.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Violation {
    /// Structural illegality reported by the core validator.
    Structural(ValidationError),
    /// A register is read (or overwritten) before its producer's result
    /// enters the bypass network.
    ReadBeforeReady {
        /// Word index of the offending read.
        word: usize,
        /// Cluster of the register file.
        cluster: u8,
        /// Register index.
        reg: u16,
        /// First word index at which the value is readable.
        ready_at: usize,
    },
    /// A predicate is read (as a guard, branch condition or compare
    /// overwrite) before its producing compare completes.
    PredBeforeReady {
        /// Word index of the offending read.
        word: usize,
        /// Cluster of the predicate file.
        cluster: u8,
        /// Predicate index.
        pred: u8,
        /// First word index at which the value is readable.
        ready_at: usize,
    },
    /// A dependence edge is violated by the schedule.
    Dependence {
        /// Producer operation index.
        from: usize,
        /// Consumer operation index.
        to: usize,
        /// Earliest legal issue time of the consumer.
        required: i64,
        /// Actual issue time of the consumer.
        actual: i64,
        /// Iteration distance of the edge.
        distance: u32,
    },
    /// A placement does not fit the machine's per-cycle resources.
    Resource {
        /// Operation index within the body.
        op: usize,
        /// Issue time (for modulo schedules, the absolute time; the
        /// replay row is `time mod II`).
        time: u32,
        /// The reservation failure.
        error: ReserveError,
    },
    /// An operation issues at or beyond the schedule's claimed length.
    Overrun {
        /// Operation index within the body.
        op: usize,
        /// Issue time of the operation.
        time: u32,
        /// Claimed schedule length.
        length: u32,
    },
    /// The schedule's derived fields disagree with its contents.
    Inconsistent {
        /// What disagreed (human-readable).
        detail: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Structural(e) => write!(f, "structural: {e}"),
            Violation::ReadBeforeReady {
                word,
                cluster,
                reg,
                ready_at,
            } => write!(
                f,
                "word {word}: c{cluster} r{reg} read before ready (ready at word {ready_at})"
            ),
            Violation::PredBeforeReady {
                word,
                cluster,
                pred,
                ready_at,
            } => write!(
                f,
                "word {word}: c{cluster} p{pred} read before ready (ready at word {ready_at})"
            ),
            Violation::Dependence {
                from,
                to,
                required,
                actual,
                distance,
            } => write!(
                f,
                "dependence {from} -> {to} (distance {distance}): issues at {actual}, legal from {required}"
            ),
            Violation::Resource { op, time, error } => {
                write!(f, "op {op} at time {time}: {error}")
            }
            Violation::Overrun { op, time, length } => {
                write!(f, "op {op} issues at {time} beyond schedule length {length}")
            }
            Violation::Inconsistent { detail } => write!(f, "inconsistent schedule: {detail}"),
        }
    }
}

/// Checks a scheduled program against `machine`: structural legality
/// plus a read-before-ready scan of the linear (fall-through) execution.
///
/// The hazard scan mirrors the simulator's bypass model: a result is
/// readable `latency` words after issue, words execute one per cycle.
/// The scan follows fall-through order; at a branch or jump whose target
/// is *not* the natural fall-through point the ready state is reset
/// (the checker under-approximates across non-linear control flow rather
/// than report false positives), and it stops at the first halt.
pub fn check_program(machine: &MachineConfig, program: &Program) -> Vec<Violation> {
    let mut out: Vec<Violation> = Vec::new();
    if let Err(errors) = validate_program_with(machine, program, ValidateOptions::default()) {
        out.extend(errors.into_iter().map(Violation::Structural));
        // Hazard timing over a structurally broken program is noise.
        return out;
    }

    let lat = LatencyModel::new(machine);
    let clusters = machine.clusters as usize;
    let regs = machine.cluster.registers as usize;
    let preds = machine.cluster.pred_regs as usize;
    let bds = machine.pipeline.branch_delay_slots as usize;
    let mut reg_ready = vec![vec![0usize; regs]; clusters];
    let mut pred_ready = vec![vec![0usize; preds]; clusters];
    // Word index at which the ready tables stop describing execution
    // because a non-linear redirect takes effect there.
    let mut reset_at: Option<usize> = None;

    'words: for (w, word) in program.iter().enumerate() {
        if reset_at == Some(w) {
            reg_ready
                .iter_mut()
                .for_each(|v| v.iter_mut().for_each(|x| *x = 0));
            pred_ready
                .iter_mut()
                .for_each(|v| v.iter_mut().for_each(|x| *x = 0));
            reset_at = None;
        }

        let check_reg = |out: &mut Vec<Violation>, c: u8, r: u16| {
            let ready = reg_ready[c as usize][r as usize];
            if ready > w {
                out.push(Violation::ReadBeforeReady {
                    word: w,
                    cluster: c,
                    reg: r,
                    ready_at: ready,
                });
            }
        };
        for op in word.iter() {
            for r in op.kind.use_regs() {
                check_reg(&mut out, op.cluster, r.0);
            }
            if let OpKind::Xfer { from, src, .. } = &op.kind {
                check_reg(&mut out, *from, src.0);
            }
            // Writes also wait: an in-flight result must not be clobbered
            // out of order.
            if let Some(d) = op.kind.def_reg() {
                check_reg(&mut out, op.cluster, d.0);
            }
        }
        let check_pred = |out: &mut Vec<Violation>, c: u8, p: u8| {
            let ready = pred_ready[c as usize][p as usize];
            if ready > w {
                out.push(Violation::PredBeforeReady {
                    word: w,
                    cluster: c,
                    pred: p,
                    ready_at: ready,
                });
            }
        };
        for op in word.iter() {
            if let Some(g) = &op.guard {
                check_pred(&mut out, op.cluster, g.pred.0);
            }
            match &op.kind {
                OpKind::Branch { pred, .. } => check_pred(&mut out, op.cluster, pred.0),
                OpKind::Cmp { dst, .. } => check_pred(&mut out, op.cluster, dst.0),
                _ => {}
            }
        }

        // Commit this word's writes and control effects.
        for op in word.iter() {
            let latency = lat.latency(&op.kind) as usize;
            if let Some(d) = op.kind.def_reg() {
                reg_ready[op.cluster as usize][d.index()] = w + latency;
            }
            if let Some(p) = op.kind.def_pred() {
                pred_ready[op.cluster as usize][p.index()] = w + latency;
            }
            match &op.kind {
                OpKind::Halt => break 'words,
                OpKind::Branch { target, .. } | OpKind::Jump { target }
                    if *target != w + 1 + bds =>
                {
                    reset_at = Some(w + 1 + bds);
                }
                _ => {}
            }
        }
    }
    out
}

/// Checks a list schedule against its body, dependence graph and
/// machine.
pub fn check_list_schedule(
    machine: &MachineConfig,
    body: &LoweredBody,
    deps: &VopDeps,
    sched: &ListSchedule,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if sched.times.len() != body.ops.len() || sched.placements.len() != body.ops.len() {
        out.push(Violation::Inconsistent {
            detail: format!(
                "schedule covers {} times / {} placements for {} ops",
                sched.times.len(),
                sched.placements.len(),
                body.ops.len()
            ),
        });
        return out;
    }

    let xfer = machine.pipeline.xfer_latency;
    for e in &deps.edges {
        if e.distance != 0 {
            continue; // a single list-scheduled iteration has no carried edges to satisfy
        }
        let mut delay = e.min_delay;
        if e.min_delay > 0 && sched.placements[e.from].0 != sched.placements[e.to].0 {
            delay += xfer;
        }
        let required = i64::from(sched.times[e.from]) + i64::from(delay);
        let actual = i64::from(sched.times[e.to]);
        if actual < required {
            out.push(Violation::Dependence {
                from: e.from,
                to: e.to,
                required,
                actual,
                distance: 0,
            });
        }
    }

    replay_resources(
        machine,
        body,
        &sched.times,
        &sched.placements,
        None,
        &mut out,
    );

    for (i, &t) in sched.times.iter().enumerate() {
        if t >= sched.length {
            out.push(Violation::Overrun {
                op: i,
                time: t,
                length: sched.length,
            });
        }
    }
    out
}

/// Checks a modulo schedule: all-edge modulo dependence constraints,
/// modulo-row resource replay, and length/stage consistency.
pub fn check_modulo_schedule(
    machine: &MachineConfig,
    body: &LoweredBody,
    deps: &VopDeps,
    sched: &ModuloSchedule,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if sched.times.len() != body.ops.len() || sched.placements.len() != body.ops.len() {
        out.push(Violation::Inconsistent {
            detail: format!(
                "schedule covers {} times / {} placements for {} ops",
                sched.times.len(),
                sched.placements.len(),
                body.ops.len()
            ),
        });
        return out;
    }
    if sched.ii == 0 {
        out.push(Violation::Inconsistent {
            detail: "initiation interval is zero".into(),
        });
        return out;
    }

    let xfer = machine.pipeline.xfer_latency;
    for e in &deps.edges {
        let mut delay = i64::from(e.min_delay);
        if e.min_delay > 0 && sched.placements[e.from].0 != sched.placements[e.to].0 {
            delay += i64::from(xfer);
        }
        let required =
            i64::from(sched.times[e.from]) + delay - i64::from(sched.ii) * i64::from(e.distance);
        let actual = i64::from(sched.times[e.to]);
        if actual < required {
            out.push(Violation::Dependence {
                from: e.from,
                to: e.to,
                required,
                actual,
                distance: e.distance,
            });
        }
    }

    replay_resources(
        machine,
        body,
        &sched.times,
        &sched.placements,
        Some(sched.ii),
        &mut out,
    );

    let span = sched.times.iter().map(|&t| t + 1).max().unwrap_or(0);
    if sched.length != span {
        out.push(Violation::Inconsistent {
            detail: format!("length {} but last issue ends at {span}", sched.length),
        });
    }
    let stages = sched.length.div_ceil(sched.ii);
    if sched.stages != stages {
        out.push(Violation::Inconsistent {
            detail: format!("stages {} but ceil(length / II) = {stages}", sched.stages),
        });
    }
    out
}

/// Replays every placement through per-cycle reservations. With
/// `ii = Some(n)`, ops sharing `time mod n` share a row (modulo
/// reservation); otherwise each distinct time gets its own row.
fn replay_resources(
    machine: &MachineConfig,
    body: &LoweredBody,
    times: &[u32],
    placements: &[(u8, u8)],
    ii: Option<u32>,
    out: &mut Vec<Violation>,
) {
    let rows = match ii {
        Some(n) => n,
        None => times.iter().map(|&t| t + 1).max().unwrap_or(0),
    };
    let mut reservations: Vec<CycleReservation> =
        (0..rows).map(|_| CycleReservation::new(machine)).collect();
    for (i, op) in body.ops.iter().enumerate() {
        let (c, s) = placements[i];
        let row = match ii {
            Some(n) => (times[i] % n) as usize,
            None => times[i] as usize,
        };
        let concrete = Operation {
            cluster: c,
            slot: s,
            guard: op.guard,
            kind: op.kind.clone(),
        };
        if let Err(error) = reservations[row].try_reserve(machine, &concrete) {
            out.push(Violation::Resource {
                op: i,
                time: times[i],
                error,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsp_core::models;
    use vsp_isa::{AluBinOp, Operand, Program, Reg};

    fn add_word(dst: u16, a: u16) -> Vec<Operation> {
        vec![Operation::new(
            0,
            0,
            OpKind::AluBin {
                op: AluBinOp::Add,
                dst: Reg(dst),
                a: Operand::Reg(Reg(a)),
                b: Operand::Imm(1),
            },
        )]
    }

    #[test]
    fn clean_program_has_no_violations() {
        let machine = models::i4c8s4();
        let mut p = Program::new("ok");
        p.push_word(add_word(1, 0));
        p.push_word(add_word(2, 1)); // ALU latency 1: ready next word
        p.push_word(vec![Operation::new(0, 4, OpKind::Halt)]);
        assert!(check_program(&machine, &p).is_empty());
    }

    #[test]
    fn load_use_hazard_is_detected() {
        let machine = models::i4c8s5(); // load_use_delay = 1
        let mut p = Program::new("hazard");
        p.push_word(vec![Operation::new(
            0,
            2,
            OpKind::Load {
                dst: Reg(1),
                addr: vsp_isa::AddrMode::Absolute(0),
                bank: vsp_isa::MemBank(0),
            },
        )]);
        p.push_word(add_word(2, 1)); // reads r1 one word early
        let (hc, hs) = machine.branch_slot();
        p.push_word(vec![Operation::new(hc, hs, OpKind::Halt)]);
        let violations = check_program(&machine, &p);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::ReadBeforeReady { reg: 1, .. })),
            "{violations:?}"
        );
        // The same sequence is fine with zero load-use delay.
        assert!(check_program(&models::i4c8s4(), &p).is_empty());
    }

    #[test]
    fn structural_errors_pass_through() {
        let machine = models::i2c16s4(); // 64 registers
        let mut p = Program::new("bad");
        p.push_word(add_word(99, 0));
        let violations = check_program(&machine, &p);
        assert!(matches!(violations[0], Violation::Structural(_)));
    }
}
