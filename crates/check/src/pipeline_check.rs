//! The compilation pipeline's validation hook, backed by the
//! independent schedule checker.
//!
//! [`vsp_sched::pipeline`] defines the [`PipelineValidator`] trait
//! (this crate depends on `vsp-sched`, so the trait lives there);
//! [`ScheduleValidator`] implements it by re-deriving every schedule
//! constraint with [`crate::validity`] after each pass. Wire it in via
//! [`vsp_sched::CompileOptions`]:
//!
//! ```
//! use vsp_check::ScheduleValidator;
//! use vsp_core::models;
//! use vsp_sched::pipeline::{ScheduleScope, SchedulerChoice, Strategy};
//! use vsp_sched::CompileOptions;
//!
//! # use vsp_ir::KernelBuilder;
//! # use vsp_isa::AluBinOp;
//! # let mut b = KernelBuilder::new("sum");
//! # let a = b.array("a", 16);
//! # let acc = b.var("acc");
//! # b.set(acc, 0);
//! # b.count_loop("i", 0, 1, 16, |b, i| {
//! #     let x = b.load("x", a, i);
//! #     b.bin(acc, AluBinOp::Add, acc, x);
//! # });
//! # let kernel = b.finish();
//! let strategy = Strategy::new(
//!     "swp",
//!     ScheduleScope::FirstLoop,
//!     SchedulerChoice::Modulo { clusters_used: 1, ii_search: 64 },
//! );
//! let validator = ScheduleValidator;
//! let mut options = CompileOptions::default();
//! options.validator = Some(&validator);
//! let result =
//!     vsp_sched::compile_with(&kernel, &models::i4c8s4(), &strategy, &mut options).unwrap();
//! assert!(result.ii().is_some());
//! ```

use crate::validity::{check_list_schedule, check_modulo_schedule};
use vsp_sched::pipeline::{CompilationUnit, PipelineValidator, ScheduleArtifact};

/// Validates pipeline output with the independent schedule checker:
/// after the scheduling pass it replays dependence delays, per-cycle
/// resource usage, and modulo-row reservations against the machine
/// description and fails the compile on any violation.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScheduleValidator;

impl PipelineValidator for ScheduleValidator {
    fn validate(&self, unit: &CompilationUnit, _pass: &str) -> Vec<String> {
        let (Some(lowered), Some(deps)) = (&unit.lowered, &unit.deps) else {
            // IR-level passes: nothing lowered yet to check.
            return Vec::new();
        };
        match &unit.schedule {
            Some(ScheduleArtifact::List(ls)) => {
                check_list_schedule(&unit.machine, lowered, deps, ls)
                    .iter()
                    .map(|v| v.to_string())
                    .collect()
            }
            Some(ScheduleArtifact::Modulo(ms)) => {
                check_modulo_schedule(&unit.machine, lowered, deps, ms)
                    .iter()
                    .map(|v| v.to_string())
                    .collect()
            }
            Some(ScheduleArtifact::Sequential { .. }) | None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsp_core::models;
    use vsp_ir::KernelBuilder;
    use vsp_isa::AluBinOp;
    use vsp_sched::pipeline::{ScheduleScope, SchedulerChoice, Strategy};
    use vsp_sched::CompileOptions;

    fn sum_kernel() -> vsp_ir::Kernel {
        let mut b = KernelBuilder::new("sum");
        let a = b.array("a", 64);
        let acc = b.var("acc");
        b.set(acc, 0);
        b.count_loop("i", 0, 1, 64, |b, i| {
            let x = b.load("x", a, i);
            b.bin(acc, AluBinOp::Add, acc, x);
        });
        b.finish()
    }

    #[test]
    fn validator_accepts_real_schedules() {
        let kernel = sum_kernel();
        let validator = ScheduleValidator;
        for scheduler in [
            SchedulerChoice::List { clusters_used: 1 },
            SchedulerChoice::Modulo {
                clusters_used: 1,
                ii_search: 64,
            },
        ] {
            let strategy = Strategy::new("v", ScheduleScope::FirstLoop, scheduler);
            let mut options = CompileOptions {
                validator: Some(&validator),
                ..Default::default()
            };
            let result =
                vsp_sched::compile_with(&kernel, &models::i4c8s4(), &strategy, &mut options)
                    .expect("checker passes real schedules");
            assert!(result.length().is_some());
        }
    }

    #[test]
    fn validator_is_silent_before_lowering() {
        let unit = CompilationUnit::new(sum_kernel(), models::i4c8s4());
        assert!(ScheduleValidator.validate(&unit, "cse").is_empty());
    }
}
