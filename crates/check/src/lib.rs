//! Generative differential fuzzing and schedule-validity checking for
//! the VSP toolkit.
//!
//! Three pillars, each usable on its own:
//!
//! * [`gen`] — seeded random generators producing well-formed VLIW
//!   [`vsp_isa::Program`]s and compilable IR kernels, parameterized by
//!   any [`vsp_core::MachineConfig`]. Programs are hazard-free by
//!   construction (every read and write waits for the producing
//!   operation's latency), structurally legal (each candidate operation
//!   is replayed through a [`vsp_core::CycleReservation`] before being
//!   accepted), and control-flow linear (branch targets equal the
//!   fall-through point after the delay slots), so a correct simulator
//!   must execute them without faulting.
//! * [`validity`] — an *independent* schedule checker: given a machine,
//!   a lowered body, its dependence graph and a list or modulo schedule,
//!   it re-derives every constraint the schedulers claim to satisfy
//!   (dependence delays with crossbar adjustment, per-cycle resource
//!   replay, modulo-row reservation at `time mod II`, length/stage
//!   consistency) and returns structured [`validity::Violation`]s.
//! * [`pipeline_check`] — the [`vsp_sched::pipeline`] validation hook:
//!   a [`vsp_sched::PipelineValidator`] that replays the validity
//!   checker after every pass of a strategy-driven compile.
//! * [`oracle`] — a differential runner executing the same program
//!   through the pre-decoded fast path ([`vsp_sim::Simulator::run`]) and
//!   the interpretive path ([`vsp_sim::Simulator::run_interp`]), and —
//!   for generated kernels — through the IR interpreter
//!   ([`vsp_ir::Interpreter`]) as the semantic reference. Architectural
//!   state must be bit-identical and [`vsp_sim::RunStats`] must satisfy
//!   `cycles == words + icache_stall_cycles`. The functional execution
//!   tier ([`vsp_exec::Functional`]) joins via
//!   [`oracle::diff_functional`]: bit-identical state when it accepts,
//!   a counted refusal when it cannot soundly lower the program.
//!
//! # Example
//!
//! ```
//! use rand::{rngs::SmallRng, SeedableRng};
//! use vsp_check::{gen, oracle};
//! use vsp_core::models;
//!
//! let machine = models::i4c8s4();
//! let mut rng = SmallRng::seed_from_u64(42);
//! let program = gen::gen_program(&machine, &mut rng, &gen::ProgramGenConfig::default());
//! oracle::diff_program(&machine, &program, 100_000).expect("paths agree");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod oracle;
pub mod pipeline_check;
pub mod validity;

pub use gen::{gen_kernel, gen_program, GeneratedKernel, KernelGenConfig, ProgramGenConfig};
pub use oracle::{diff_functional, diff_kernel, diff_program, DiffFailure, FunctionalOutcome};
pub use pipeline_check::ScheduleValidator;
pub use validity::{check_list_schedule, check_modulo_schedule, check_program, Violation};
