//! Property tests: the assembly printer and parser round-trip arbitrary
//! well-formed programs over the full operation vocabulary.

use proptest::prelude::*;
use vsp_isa::{
    asm, AddrMode, AluBinOp, AluUnOp, CmpOp, MemBank, MulKind, OpKind, Operand, Operation, Pred,
    PredGuard, Program, Reg, ShiftOp,
};

fn operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        (0u16..64).prop_map(|r| Operand::Reg(Reg(r))),
        (-500i16..500).prop_map(Operand::Imm),
    ]
}

fn addr_mode() -> impl Strategy<Value = AddrMode> {
    prop_oneof![
        (0u16..2048).prop_map(AddrMode::Absolute),
        (0u16..64).prop_map(|r| AddrMode::Register(Reg(r))),
        ((0u16..64), -64i16..64).prop_map(|(r, d)| AddrMode::BaseDisp(Reg(r), d)),
        ((0u16..64), (0u16..64)).prop_map(|(r, s)| AddrMode::Indexed(Reg(r), Reg(s))),
    ]
}

fn op_kind() -> impl Strategy<Value = OpKind> {
    let bin = prop_oneof![
        Just(AluBinOp::Add),
        Just(AluBinOp::Sub),
        Just(AluBinOp::And),
        Just(AluBinOp::Or),
        Just(AluBinOp::Xor),
        Just(AluBinOp::Min),
        Just(AluBinOp::Max),
        Just(AluBinOp::AbsDiff),
    ];
    let un = prop_oneof![
        Just(AluUnOp::Mov),
        Just(AluUnOp::Abs),
        Just(AluUnOp::Neg),
        Just(AluUnOp::Not),
        Just(AluUnOp::SextB),
        Just(AluUnOp::ZextB),
    ];
    let sh = prop_oneof![Just(ShiftOp::Shl), Just(ShiftOp::ShrL), Just(ShiftOp::ShrA)];
    let mul = prop_oneof![
        Just(MulKind::Mul8SS),
        Just(MulKind::Mul8UU),
        Just(MulKind::Mul8SU),
        Just(MulKind::Mul16Lo),
        Just(MulKind::Mul16Hi),
    ];
    let cmp = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ];
    prop_oneof![
        (bin, 0u16..64, operand(), operand()).prop_map(|(op, d, a, b)| OpKind::AluBin {
            op,
            dst: Reg(d),
            a,
            b
        }),
        (un, 0u16..64, operand()).prop_map(|(op, d, a)| OpKind::AluUn { op, dst: Reg(d), a }),
        (sh, 0u16..64, operand(), operand()).prop_map(|(op, d, a, b)| OpKind::Shift {
            op,
            dst: Reg(d),
            a,
            b
        }),
        (mul, 0u16..64, operand(), operand()).prop_map(|(kind, d, a, b)| OpKind::Mul {
            kind,
            dst: Reg(d),
            a,
            b
        }),
        (cmp, 0u8..8, operand(), operand()).prop_map(|(op, d, a, b)| OpKind::Cmp {
            op,
            dst: Pred(d),
            a,
            b
        }),
        (0u16..64, addr_mode(), 0u8..2).prop_map(|(d, addr, bk)| OpKind::Load {
            dst: Reg(d),
            addr,
            bank: MemBank(bk)
        }),
        (operand(), addr_mode(), 0u8..2).prop_map(|(src, addr, bk)| OpKind::Store {
            src,
            addr,
            bank: MemBank(bk)
        }),
        ((0u16..64), 0u8..16, 0u16..64).prop_map(|(d, c, s)| OpKind::Xfer {
            dst: Reg(d),
            from: c,
            src: Reg(s)
        }),
        Just(OpKind::Halt),
    ]
}

fn guard() -> impl Strategy<Value = Option<PredGuard>> {
    prop_oneof![
        Just(None),
        ((0u8..8), any::<bool>()).prop_map(|(p, sense)| Some(PredGuard {
            pred: Pred(p),
            sense
        })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_parse_round_trip(
        words in proptest::collection::vec(
            proptest::collection::vec((op_kind(), guard(), 0u8..4, 0u8..5), 1..5),
            1..12,
        ),
        with_branch in any::<bool>(),
    ) {
        let mut p = Program::new("prop");
        for word in &words {
            let mut ops = Vec::new();
            let mut used = std::collections::HashSet::new();
            for (kind, g, cluster, slot) in word {
                if !used.insert((*cluster, *slot)) {
                    continue;
                }
                // Branches carry targets; guard-on-halt etc. are all legal
                // text-wise.
                ops.push(Operation {
                    cluster: *cluster,
                    slot: *slot,
                    guard: *g,
                    kind: kind.clone(),
                });
            }
            p.push_word(ops);
        }
        if with_branch && p.len() > 1 {
            let target = p.len() - 1;
            p.push_word(vec![Operation::new(0, 7, OpKind::Branch {
                pred: Pred(0),
                sense: false,
                target,
            })]);
            p.set_label("tail", target);
        }

        let text = asm::print(&p);
        let parsed = asm::parse(&text).unwrap();
        prop_assert_eq!(parsed.len(), p.len());
        for i in 0..p.len() {
            prop_assert_eq!(parsed.word(i), p.word(i), "word {}", i);
        }
    }
}
