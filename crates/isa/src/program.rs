//! Programs: sequences of VLIW instruction words with labels.

use crate::instr::Instruction;
use crate::op::{OpKind, Operation};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A complete VLIW program.
///
/// Instruction words are addressed by index (the machine's instruction
/// cache counts words, not bytes). Branch targets inside operations are
/// stored as resolved word indices; `labels` retains the symbolic names
/// for display and assembly round-trips.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Human-readable program name.
    pub name: String,
    instrs: Vec<Instruction>,
    labels: BTreeMap<String, usize>,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            instrs: Vec::new(),
            labels: BTreeMap::new(),
        }
    }

    /// Appends an instruction word and returns its index.
    pub fn push(&mut self, word: Instruction) -> usize {
        self.instrs.push(word);
        self.instrs.len() - 1
    }

    /// Appends an instruction word built from a list of operations.
    ///
    /// # Panics
    ///
    /// Panics if two operations occupy the same (cluster, slot).
    pub fn push_word(&mut self, ops: Vec<Operation>) -> usize {
        self.push(Instruction::from_ops(ops))
    }

    /// Defines a label at the given word index.
    pub fn set_label(&mut self, name: impl Into<String>, index: usize) {
        self.labels.insert(name.into(), index);
    }

    /// Looks up a label.
    pub fn label(&self, name: &str) -> Option<usize> {
        self.labels.get(name).copied()
    }

    /// All labels, sorted by name.
    pub fn labels(&self) -> impl Iterator<Item = (&str, usize)> {
        self.labels.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The instruction word at `index`.
    pub fn word(&self, index: usize) -> Option<&Instruction> {
        self.instrs.get(index)
    }

    /// Iterates over the instruction words in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instrs.iter()
    }

    /// Number of instruction words (this is what must fit in the
    /// instruction cache — 1024 words on the 8-cluster models, 512 on the
    /// 16-cluster models).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the program contains no instruction words.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Total number of non-no-op operations across all words.
    pub fn op_count(&self) -> usize {
        self.instrs.iter().map(Instruction::op_count).sum()
    }

    /// Verifies that every branch or jump target is a valid word index.
    ///
    /// # Errors
    ///
    /// Returns the offending (word, target) pair of the first out-of-range
    /// target.
    pub fn check_targets(&self) -> Result<(), TargetError> {
        for (i, w) in self.instrs.iter().enumerate() {
            for op in w.iter() {
                let target = match op.kind {
                    OpKind::Branch { target, .. } | OpKind::Jump { target } => target,
                    _ => continue,
                };
                if target >= self.instrs.len() {
                    return Err(TargetError { word: i, target });
                }
            }
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instrs.iter()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; program {} ({} words)", self.name, self.len())?;
        let mut by_index: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
        for (name, idx) in self.labels.iter() {
            by_index.entry(*idx).or_default().push(name);
        }
        for (i, w) in self.instrs.iter().enumerate() {
            if let Some(names) = by_index.get(&i) {
                for n in names {
                    writeln!(f, "{n}:")?;
                }
            }
            writeln!(f, "  {w}")?;
        }
        Ok(())
    }
}

/// Error returned by [`Program::check_targets`]: a control transfer points
/// outside the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetError {
    /// Word containing the offending control operation.
    pub word: usize,
    /// The out-of-range target.
    pub target: usize,
}

impl fmt::Display for TargetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "word {} branches to {} which is outside the program",
            self.word, self.target
        )
    }
}

impl std::error::Error for TargetError {}

/// Incremental builder for [`Program`]s with forward label references.
///
/// Branch operations may name labels that are defined later; targets are
/// patched when [`ProgramBuilder::finish`] is called.
///
/// ```
/// use vsp_isa::{ProgramBuilder, Operation, OpKind, Pred};
///
/// let mut b = ProgramBuilder::new("loop");
/// b.label("top");
/// b.word(vec![]); // an empty (nop) body word
/// b.branch_word(vec![], "top", Some((Pred(0), true)));
/// b.word(vec![Operation::new(0, 0, OpKind::Halt)]);
/// let program = b.finish().unwrap();
/// assert_eq!(program.label("top"), Some(0));
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
    fixups: Vec<Fixup>,
}

#[derive(Debug)]
struct Fixup {
    word: usize,
    label: String,
}

impl ProgramBuilder {
    /// Creates a builder for a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            program: Program::new(name),
            fixups: Vec::new(),
        }
    }

    /// Defines a label at the current position (the index of the next word
    /// to be appended).
    pub fn label(&mut self, name: impl Into<String>) {
        let at = self.program.len();
        self.program.set_label(name, at);
    }

    /// Appends a word from a list of operations and returns its index.
    pub fn word(&mut self, ops: Vec<Operation>) -> usize {
        self.program.push_word(ops)
    }

    /// Appends a word containing `ops` plus a control transfer to `label`:
    /// a conditional branch when `pred` is provided (on cluster 0, using
    /// the machine's branch slot conventions of the caller), otherwise an
    /// unconditional jump.
    ///
    /// The branch operation is placed on cluster 0, slot 0 unless that
    /// slot is taken, in which case the first free slot index up to 15 is
    /// used; schedulers that care about precise placement should build the
    /// operation themselves and use [`ProgramBuilder::word_with_fixup`].
    pub fn branch_word(
        &mut self,
        ops: Vec<Operation>,
        label: impl Into<String>,
        pred: Option<(crate::reg::Pred, bool)>,
    ) -> usize {
        let mut word = Instruction::from_ops(ops);
        let mut slot = 0u8;
        while word.at(0, slot).is_some() && slot < 15 {
            slot += 1;
        }
        let kind = match pred {
            Some((p, sense)) => OpKind::Branch {
                pred: p,
                sense,
                target: usize::MAX,
            },
            None => OpKind::Jump { target: usize::MAX },
        };
        word.push(Operation::new(0, slot, kind));
        let idx = self.program.push(word);
        self.fixups.push(Fixup {
            word: idx,
            label: label.into(),
        });
        idx
    }

    /// Appends a fully formed word whose control operation targets `label`
    /// (its `target` field is patched at [`ProgramBuilder::finish`]).
    pub fn word_with_fixup(&mut self, word: Instruction, label: impl Into<String>) -> usize {
        let idx = self.program.push(word);
        self.fixups.push(Fixup {
            word: idx,
            label: label.into(),
        });
        idx
    }

    /// Number of words appended so far.
    pub fn len(&self) -> usize {
        self.program.len()
    }

    /// Returns `true` if no words have been appended.
    pub fn is_empty(&self) -> bool {
        self.program.is_empty()
    }

    /// Resolves all label fixups and returns the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnknownLabel`] if a fixup names an undefined
    /// label, or [`BuildError::NoControlOp`] if a fixed-up word contains no
    /// control operation to patch.
    pub fn finish(mut self) -> Result<Program, BuildError> {
        for fixup in &self.fixups {
            let target = self
                .program
                .label(&fixup.label)
                .ok_or_else(|| BuildError::UnknownLabel(fixup.label.clone()))?;
            let word = self.program.instrs[fixup.word].clone();
            let mut ops: Vec<Operation> = Vec::with_capacity(word.op_count());
            let mut patched = false;
            for op in word.iter() {
                let mut op = op.clone();
                match &mut op.kind {
                    OpKind::Branch { target: t, .. } | OpKind::Jump { target: t } => {
                        *t = target;
                        patched = true;
                    }
                    _ => {}
                }
                ops.push(op);
            }
            if !patched {
                return Err(BuildError::NoControlOp(fixup.word));
            }
            self.program.instrs[fixup.word] = Instruction::from_ops(ops);
        }
        Ok(self.program)
    }
}

/// Errors from [`ProgramBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A control transfer referenced a label that was never defined.
    UnknownLabel(String),
    /// A word registered for fixup contains no branch or jump.
    NoControlOp(usize),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownLabel(l) => write!(f, "undefined label `{l}`"),
            BuildError::NoControlOp(w) => write!(f, "word {w} has no control operation to patch"),
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::AluBinOp;
    use crate::operand::Operand;
    use crate::reg::{Pred, Reg};

    fn add(dst: u16) -> Operation {
        Operation::new(
            0,
            1,
            OpKind::AluBin {
                op: AluBinOp::Add,
                dst: Reg(dst),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(1),
            },
        )
    }

    #[test]
    fn builder_resolves_backward_labels() {
        let mut b = ProgramBuilder::new("t");
        b.label("top");
        b.word(vec![add(1)]);
        b.branch_word(vec![add(2)], "top", Some((Pred(0), true)));
        let p = b.finish().unwrap();
        assert_eq!(p.len(), 2);
        let br = p.word(1).unwrap().at(0, 0).unwrap();
        assert!(matches!(br.kind, OpKind::Branch { target: 0, .. }));
        p.check_targets().unwrap();
    }

    #[test]
    fn builder_resolves_forward_labels() {
        let mut b = ProgramBuilder::new("t");
        b.branch_word(vec![], "done", None);
        b.word(vec![add(1)]);
        b.label("done");
        b.word(vec![Operation::new(0, 0, OpKind::Halt)]);
        let p = b.finish().unwrap();
        let jmp = p.word(0).unwrap().at(0, 0).unwrap();
        assert!(matches!(jmp.kind, OpKind::Jump { target: 2 }));
    }

    #[test]
    fn unknown_label_is_an_error() {
        let mut b = ProgramBuilder::new("t");
        b.branch_word(vec![], "nowhere", None);
        assert_eq!(
            b.finish().unwrap_err(),
            BuildError::UnknownLabel("nowhere".into())
        );
    }

    #[test]
    fn out_of_range_target_detected() {
        let mut p = Program::new("t");
        p.push_word(vec![Operation::new(0, 0, OpKind::Jump { target: 5 })]);
        let err = p.check_targets().unwrap_err();
        assert_eq!(err.word, 0);
        assert_eq!(err.target, 5);
    }

    #[test]
    fn op_count_sums_words() {
        let mut p = Program::new("t");
        p.push_word(vec![add(1)]);
        p.push_word(vec![add(2), Operation::new(1, 0, OpKind::Halt)]);
        assert_eq!(p.op_count(), 3);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn branch_word_avoids_occupied_slot_zero() {
        let mut b = ProgramBuilder::new("t");
        b.label("top");
        let branch_op = Operation::new(0, 0, OpKind::Halt);
        // slot 0 of cluster 0 occupied: branch must land elsewhere.
        b.branch_word(vec![branch_op], "top", None);
        let p = b.finish().unwrap();
        let w = p.word(0).unwrap();
        assert!(matches!(w.at(0, 0).unwrap().kind, OpKind::Halt));
        assert!(matches!(w.at(0, 1).unwrap().kind, OpKind::Jump { .. }));
    }

    #[test]
    fn display_includes_labels() {
        let mut b = ProgramBuilder::new("t");
        b.label("entry");
        b.word(vec![add(1)]);
        let p = b.finish().unwrap();
        let text = p.to_string();
        assert!(text.contains("entry:"));
        assert!(text.contains("add r1, r0, #1"));
    }
}
