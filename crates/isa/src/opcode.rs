//! Opcode families and functional-unit classification.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Two-operand ALU operations (single-cycle, executed on an ALU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluBinOp {
    /// Wrapping 16-bit addition.
    Add,
    /// Wrapping 16-bit subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Saturating-free absolute difference `|a - b|` (wrapping subtract,
    /// then absolute value).
    ///
    /// This is the specialized motion-estimation operator of §3.3: it
    /// replaces a subtract + absolute-value pair at the cost of doubling
    /// one ALU's area and lengthening its critical path. Only available on
    /// machines configured with the operator.
    AbsDiff,
}

impl fmt::Display for AluBinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluBinOp::Add => "add",
            AluBinOp::Sub => "sub",
            AluBinOp::And => "and",
            AluBinOp::Or => "or",
            AluBinOp::Xor => "xor",
            AluBinOp::Min => "min",
            AluBinOp::Max => "max",
            AluBinOp::AbsDiff => "absd",
        };
        f.write_str(s)
    }
}

/// One-operand ALU operations (single-cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluUnOp {
    /// Copy the operand to the destination (also serves as load-immediate).
    Mov,
    /// Absolute value (wrapping: `abs(i16::MIN) == i16::MIN`).
    Abs,
    /// Two's-complement negation (wrapping).
    Neg,
    /// Bitwise NOT.
    Not,
    /// Sign-extend the low byte.
    SextB,
    /// Zero-extend the low byte.
    ZextB,
}

impl fmt::Display for AluUnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluUnOp::Mov => "mov",
            AluUnOp::Abs => "abs",
            AluUnOp::Neg => "neg",
            AluUnOp::Not => "not",
            AluUnOp::SextB => "sextb",
            AluUnOp::ZextB => "zextb",
        };
        f.write_str(s)
    }
}

/// Shift operations, executed on the cluster's shifter unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShiftOp {
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    ShrL,
    /// Arithmetic shift right.
    ShrA,
}

impl fmt::Display for ShiftOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ShiftOp::Shl => "shl",
            ShiftOp::ShrL => "shrl",
            ShiftOp::ShrA => "shra",
        };
        f.write_str(s)
    }
}

/// Multiply operation variants, executed on the cluster's multiplier.
///
/// The base machines carry only an 8×8 multiplier (§3.2); 16×16 products
/// must be decomposed into partial products, which is exactly the DCT
/// bottleneck Table 2 quantifies. The `M16` machines provide a two-stage
/// pipelined 16×16 multiplier producing 16 result bits per operation
/// ([`MulKind::Mul16Lo`] / [`MulKind::Mul16Hi`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MulKind {
    /// Signed 8-bit × signed 8-bit → 16-bit (low bytes of the operands).
    Mul8SS,
    /// Unsigned 8-bit × unsigned 8-bit → 16-bit (low bytes).
    Mul8UU,
    /// Signed 8-bit × unsigned 8-bit → 16-bit (low byte of `a` signed,
    /// low byte of `b` unsigned). Needed for exact 16×16 decomposition.
    Mul8SU,
    /// Low 16 bits of the signed 16×16 product (`M16` machines only).
    Mul16Lo,
    /// High 16 bits of the signed 16×16 product (`M16` machines only).
    Mul16Hi,
}

impl MulKind {
    /// Returns `true` for the 16×16 variants that require the wide
    /// multiplier of the `M16` machines.
    pub fn is_wide(self) -> bool {
        matches!(self, MulKind::Mul16Lo | MulKind::Mul16Hi)
    }
}

impl fmt::Display for MulKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MulKind::Mul8SS => "mul8ss",
            MulKind::Mul8UU => "mul8uu",
            MulKind::Mul8SU => "mul8su",
            MulKind::Mul16Lo => "mul16lo",
            MulKind::Mul16Hi => "mul16hi",
        };
        f.write_str(s)
    }
}

/// Comparison operations; they execute on an ALU and write a predicate
/// register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpOp {
    /// The comparison with operands swapped (`a op b == b op.swapped() a`).
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation of the comparison.
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Memory-subsystem control operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemCtlOp {
    /// Swap the double buffers of a local memory bank: the processing
    /// buffer becomes the I/O buffer and vice versa (§3.2 footnote 1).
    SwapBuffers,
}

impl fmt::Display for MemCtlOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemCtlOp::SwapBuffers => f.write_str("swapbuf"),
        }
    }
}

/// Functional-unit class an operation occupies for one issue slot.
///
/// The machine description maps each (cluster, slot) pair to the set of
/// classes it can issue; a slot issues at most one operation per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FuClass {
    /// Arithmetic-logic unit (also executes compares and moves).
    Alu,
    /// Multiplier.
    Mul,
    /// Shifter.
    Shift,
    /// Load/store unit (local data memory access).
    Mem,
    /// Branch unit.
    Branch,
    /// Crossbar port (inter-cluster transfer).
    Xfer,
}

impl FuClass {
    /// All functional-unit classes, in a fixed order.
    pub const ALL: [FuClass; 6] = [
        FuClass::Alu,
        FuClass::Mul,
        FuClass::Shift,
        FuClass::Mem,
        FuClass::Branch,
        FuClass::Xfer,
    ];
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::Alu => "alu",
            FuClass::Mul => "mul",
            FuClass::Shift => "shift",
            FuClass::Mem => "mem",
            FuClass::Branch => "branch",
            FuClass::Xfer => "xfer",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_negation_is_involutive() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.negated().negated(), op);
            assert_eq!(op.swapped().swapped(), op);
        }
    }

    #[test]
    fn wide_multiplies_flagged() {
        assert!(MulKind::Mul16Lo.is_wide());
        assert!(MulKind::Mul16Hi.is_wide());
        assert!(!MulKind::Mul8SS.is_wide());
        assert!(!MulKind::Mul8UU.is_wide());
        assert!(!MulKind::Mul8SU.is_wide());
    }

    #[test]
    fn display_is_lowercase_mnemonic() {
        assert_eq!(AluBinOp::AbsDiff.to_string(), "absd");
        assert_eq!(ShiftOp::ShrA.to_string(), "shra");
        assert_eq!(MulKind::Mul16Hi.to_string(), "mul16hi");
        assert_eq!(FuClass::Mem.to_string(), "mem");
        assert_eq!(MemCtlOp::SwapBuffers.to_string(), "swapbuf");
    }

    #[test]
    fn fu_class_all_is_exhaustive_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in FuClass::ALL {
            assert!(seen.insert(c));
        }
        assert_eq!(seen.len(), 6);
    }
}
