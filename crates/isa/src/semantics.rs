//! Pure arithmetic semantics of the VSP operation set.
//!
//! These functions define the bit-exact behaviour of every data operation
//! on the machine's 16-bit datapath. They are shared by the cycle-accurate
//! simulator and by tests that check scheduled code against golden kernel
//! implementations, so that "what the hardware computes" is defined in
//! exactly one place.
//!
//! All arithmetic wraps (two's complement); there is no saturation on this
//! machine.

use crate::opcode::{AluBinOp, AluUnOp, CmpOp, MulKind, ShiftOp};

/// Evaluates a two-operand ALU operation.
///
/// ```
/// use vsp_isa::semantics::alu_bin;
/// use vsp_isa::AluBinOp;
/// assert_eq!(alu_bin(AluBinOp::Add, i16::MAX, 1), i16::MIN); // wraps
/// assert_eq!(alu_bin(AluBinOp::AbsDiff, 3, 10), 7);
/// ```
pub fn alu_bin(op: AluBinOp, a: i16, b: i16) -> i16 {
    match op {
        AluBinOp::Add => a.wrapping_add(b),
        AluBinOp::Sub => a.wrapping_sub(b),
        AluBinOp::And => a & b,
        AluBinOp::Or => a | b,
        AluBinOp::Xor => a ^ b,
        AluBinOp::Min => a.min(b),
        AluBinOp::Max => a.max(b),
        AluBinOp::AbsDiff => a.wrapping_sub(b).wrapping_abs(),
    }
}

/// Evaluates a one-operand ALU operation.
pub fn alu_un(op: AluUnOp, a: i16) -> i16 {
    match op {
        AluUnOp::Mov => a,
        AluUnOp::Abs => a.wrapping_abs(),
        AluUnOp::Neg => a.wrapping_neg(),
        AluUnOp::Not => !a,
        AluUnOp::SextB => a as i8 as i16,
        AluUnOp::ZextB => (a as u16 & 0xff) as i16,
    }
}

/// Evaluates a shift. Only the low 4 bits of the shift amount are used
/// (the datapath is 16 bits wide).
pub fn shift(op: ShiftOp, a: i16, amount: i16) -> i16 {
    let sh = (amount as u16 & 0xf) as u32;
    match op {
        ShiftOp::Shl => ((a as u16) << sh) as i16,
        ShiftOp::ShrL => ((a as u16) >> sh) as i16,
        ShiftOp::ShrA => a >> sh,
    }
}

/// Evaluates a multiply variant.
///
/// The 8-bit forms use only the low byte of each operand, interpreting it
/// as signed or unsigned according to the variant; the 16-bit forms
/// compute the full 32-bit signed product and return its low or high half.
///
/// ```
/// use vsp_isa::semantics::mul;
/// use vsp_isa::MulKind;
/// assert_eq!(mul(MulKind::Mul8SS, -3, 5), -15);
/// assert_eq!(mul(MulKind::Mul8UU, 0xff_u16 as i16, 2), 510);
/// let a = 1234i16;
/// let b = -567i16;
/// let p = (a as i32) * (b as i32);
/// assert_eq!(mul(MulKind::Mul16Lo, a, b), p as i16);
/// assert_eq!(mul(MulKind::Mul16Hi, a, b), (p >> 16) as i16);
/// ```
pub fn mul(kind: MulKind, a: i16, b: i16) -> i16 {
    match kind {
        MulKind::Mul8SS => {
            let x = a as i8 as i32;
            let y = b as i8 as i32;
            (x * y) as i16
        }
        MulKind::Mul8UU => {
            let x = (a as u16 & 0xff) as u32;
            let y = (b as u16 & 0xff) as u32;
            (x * y) as u16 as i16
        }
        MulKind::Mul8SU => {
            let x = a as i8 as i32;
            let y = (b as u16 & 0xff) as i32;
            (x * y) as i16
        }
        MulKind::Mul16Lo => ((a as i32) * (b as i32)) as i16,
        MulKind::Mul16Hi => (((a as i32) * (b as i32)) >> 16) as i16,
    }
}

/// Evaluates a signed comparison, producing a predicate value.
pub fn cmp(op: CmpOp, a: i16, b: i16) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

/// Computes a full signed 16×16 product using only 8×8 multiply
/// primitives, adds and shifts — the decomposition the paper charges
/// "as many as 21 issue slots and at least 8 cycles" for on the base
/// machines.
///
/// Returns the low 16 bits of the product (what a `Mul16Lo` would give).
/// This function documents and tests the algebra the lowering pass in
/// `vsp-sched` emits as real operations.
///
/// ```
/// use vsp_isa::semantics::mul16_via_mul8;
/// for (a, b) in [(1234i16, -567i16), (-32768, 32767), (255, 255)] {
///     assert_eq!(mul16_via_mul8(a, b), ((a as i32 * b as i32) as i16));
/// }
/// ```
pub fn mul16_via_mul8(a: i16, b: i16) -> i16 {
    // a = ah*256 + al,  b = bh*256 + bl  (al, bl unsigned bytes; ah, bh
    // signed bytes). Low 16 bits of the product:
    //   al*bl + ((ah*bl + al*bh) << 8)
    let al = (a as u16 & 0xff) as i16;
    let bl = (b as u16 & 0xff) as i16;
    let ah = ((a as u16) >> 8) as i16; // bit pattern; interpreted signed by Mul8S*
    let bh = ((b as u16) >> 8) as i16;

    let low = mul(MulKind::Mul8UU, al, bl);
    let cross1 = mul(MulKind::Mul8SU, ah, bl);
    let cross2 = mul(MulKind::Mul8SU, bh, al);
    let cross = alu_bin(AluBinOp::Add, cross1, cross2);
    let cross_shifted = shift(ShiftOp::Shl, cross, 8);
    alu_bin(AluBinOp::Add, low, cross_shifted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_bin_wrapping() {
        assert_eq!(alu_bin(AluBinOp::Add, i16::MAX, 1), i16::MIN);
        assert_eq!(alu_bin(AluBinOp::Sub, i16::MIN, 1), i16::MAX);
        assert_eq!(alu_bin(AluBinOp::Min, -5, 5), -5);
        assert_eq!(alu_bin(AluBinOp::Max, -5, 5), 5);
        assert_eq!(alu_bin(AluBinOp::Xor, 0x0f0f, 0x00ff), 0x0ff0);
    }

    #[test]
    fn absdiff_equals_sub_then_abs() {
        for (a, b) in [(0i16, 0i16), (5, 9), (9, 5), (-300, 300), (i16::MIN, 0)] {
            assert_eq!(
                alu_bin(AluBinOp::AbsDiff, a, b),
                alu_un(AluUnOp::Abs, alu_bin(AluBinOp::Sub, a, b))
            );
        }
    }

    #[test]
    fn unary_ops() {
        assert_eq!(alu_un(AluUnOp::Neg, 5), -5);
        assert_eq!(alu_un(AluUnOp::Neg, i16::MIN), i16::MIN);
        assert_eq!(alu_un(AluUnOp::Not, 0), -1);
        assert_eq!(alu_un(AluUnOp::SextB, 0x00ff), -1);
        assert_eq!(alu_un(AluUnOp::ZextB, -1), 0x00ff);
        assert_eq!(alu_un(AluUnOp::Mov, 1234), 1234);
    }

    #[test]
    fn shifts_mask_amount_to_four_bits() {
        assert_eq!(shift(ShiftOp::Shl, 1, 16), 1); // 16 & 0xf == 0
        assert_eq!(shift(ShiftOp::Shl, 1, 4), 16);
        assert_eq!(shift(ShiftOp::ShrL, -1, 1), 0x7fff);
        assert_eq!(shift(ShiftOp::ShrA, -2, 1), -1);
    }

    #[test]
    fn mul8_variants() {
        assert_eq!(mul(MulKind::Mul8SS, -128, -128), 16384);
        assert_eq!(mul(MulKind::Mul8UU, -1, -1), (255u32 * 255) as u16 as i16);
        assert_eq!(mul(MulKind::Mul8SU, -1i16, 255), (-255i32) as i16);
    }

    #[test]
    fn mul16_decomposition_exhaustive_corners() {
        let samples = [
            i16::MIN,
            i16::MIN + 1,
            -256,
            -255,
            -1,
            0,
            1,
            127,
            128,
            255,
            256,
            i16::MAX - 1,
            i16::MAX,
        ];
        for &a in &samples {
            for &b in &samples {
                let expect = ((a as i32) * (b as i32)) as i16;
                assert_eq!(mul16_via_mul8(a, b), expect, "a={a} b={b}");
                assert_eq!(mul(MulKind::Mul16Lo, a, b), expect);
            }
        }
    }

    #[test]
    fn mul16_hi_matches_wide_product() {
        for (a, b) in [(1000i16, 1000i16), (-1000, 1000), (i16::MAX, i16::MAX)] {
            let p = (a as i32) * (b as i32);
            assert_eq!(mul(MulKind::Mul16Hi, a, b), (p >> 16) as i16);
        }
    }

    #[test]
    fn comparisons() {
        assert!(cmp(CmpOp::Lt, -1, 0));
        assert!(!cmp(CmpOp::Lt, 0, 0));
        assert!(cmp(CmpOp::Le, 0, 0));
        assert!(cmp(CmpOp::Ge, 0, 0));
        assert!(cmp(CmpOp::Ne, 1, 2));
        assert!(cmp(CmpOp::Eq, 7, 7));
        assert!(cmp(CmpOp::Gt, 3, 2));
    }
}
