//! Operands, addressing modes and memory-bank selectors.

use crate::reg::Reg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A source operand: either a cluster-local register or a 16-bit signed
/// immediate.
///
/// ```
/// use vsp_isa::{Operand, Reg};
/// assert_eq!(Operand::Reg(Reg(1)).to_string(), "r1");
/// assert_eq!(Operand::Imm(-4).to_string(), "#-4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A register in the executing cluster's register file.
    Reg(Reg),
    /// A signed 16-bit immediate encoded in the operation.
    Imm(i16),
}

impl Operand {
    /// Returns the register if this operand reads one.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// Returns `true` if this operand is an immediate.
    pub fn is_imm(self) -> bool {
        matches!(self, Operand::Imm(_))
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i16> for Operand {
    fn from(v: i16) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// Addressing mode of a load or store.
///
/// The 4-stage models (`I4C8S4`, `I2C16S4`) support only the *simple*
/// modes — [`AddrMode::Absolute`] and [`AddrMode::Register`]; address
/// arithmetic must be done with explicit ALU operations. The complex-
/// addressing models (`I4C8S4C` and all 5-stage models) additionally allow
/// [`AddrMode::BaseDisp`] and [`AddrMode::Indexed`], folding an address
/// addition into the memory operation, exactly as §3.2 of the paper
/// describes.
///
/// Addresses are in 16-bit *words* ("the memory is word addressed").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddrMode {
    /// Direct addressing: a constant word address.
    Absolute(u16),
    /// Register-indirect addressing: the word address is in a register.
    Register(Reg),
    /// Base + displacement (complex): `base` register plus a signed word
    /// offset.
    BaseDisp(Reg, i16),
    /// Indexed (complex): sum of two registers.
    Indexed(Reg, Reg),
}

impl AddrMode {
    /// Returns `true` for the modes that require an address addition
    /// folded into the memory pipeline stage (the "complex" modes).
    pub fn is_complex(self) -> bool {
        matches!(self, AddrMode::BaseDisp(..) | AddrMode::Indexed(..))
    }

    /// Registers read to form the address.
    pub fn regs(self) -> impl Iterator<Item = Reg> {
        let (a, b) = match self {
            AddrMode::Absolute(_) => (None, None),
            AddrMode::Register(r) => (Some(r), None),
            AddrMode::BaseDisp(r, _) => (Some(r), None),
            AddrMode::Indexed(r, s) => (Some(r), Some(s)),
        };
        a.into_iter().chain(b)
    }
}

impl fmt::Display for AddrMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrMode::Absolute(a) => write!(f, "[{a}]"),
            AddrMode::Register(r) => write!(f, "[{r}]"),
            AddrMode::BaseDisp(r, d) => write!(f, "[{r}{d:+}]"),
            AddrMode::Indexed(r, s) => write!(f, "[{r}+{s}]"),
        }
    }
}

/// Selects one of a cluster's local data-memory banks.
///
/// Most models have a single bank (`MemBank(0)`). `I2C16S4` provides two
/// separate 8 KB memories per cluster, each reachable only from its own
/// issue slot; the bank is therefore explicit in every memory operation.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct MemBank(pub u8);

impl MemBank {
    /// Numeric index of this bank.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MemBank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_conversions() {
        let r: Operand = Reg(7).into();
        assert_eq!(r.as_reg(), Some(Reg(7)));
        let i: Operand = 42i16.into();
        assert!(i.is_imm());
        assert_eq!(i.as_reg(), None);
    }

    #[test]
    fn addr_mode_complexity() {
        assert!(!AddrMode::Absolute(3).is_complex());
        assert!(!AddrMode::Register(Reg(1)).is_complex());
        assert!(AddrMode::BaseDisp(Reg(1), -2).is_complex());
        assert!(AddrMode::Indexed(Reg(1), Reg(2)).is_complex());
    }

    #[test]
    fn addr_mode_regs() {
        let regs: Vec<Reg> = AddrMode::Indexed(Reg(1), Reg(2)).regs().collect();
        assert_eq!(regs, vec![Reg(1), Reg(2)]);
        assert_eq!(AddrMode::Absolute(0).regs().count(), 0);
        assert_eq!(AddrMode::BaseDisp(Reg(9), 4).regs().count(), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(AddrMode::Absolute(16).to_string(), "[16]");
        assert_eq!(AddrMode::Register(Reg(2)).to_string(), "[r2]");
        assert_eq!(AddrMode::BaseDisp(Reg(2), 8).to_string(), "[r2+8]");
        assert_eq!(AddrMode::BaseDisp(Reg(2), -8).to_string(), "[r2-8]");
        assert_eq!(AddrMode::Indexed(Reg(2), Reg(3)).to_string(), "[r2+r3]");
        assert_eq!(MemBank(1).to_string(), "m1");
    }
}
