//! VLIW instruction words.

use crate::op::{OpKind, Operation};
use crate::reg::{ClusterId, SlotId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One very long instruction word: the set of operations that issue
/// together in a single cycle, at most one per (cluster, slot) pair.
///
/// Slots not mentioned are implicit no-ops, matching the paper's
/// horizontally microcoded encoding where every issue slot is always
/// specified but idle slots perform no work.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Instruction {
    ops: Vec<Operation>,
}

impl PartialEq for Instruction {
    /// Slot order within a word is not semantically meaningful (all
    /// operations issue together), so equality compares canonical
    /// (cluster, slot)-sorted operation lists.
    fn eq(&self, other: &Self) -> bool {
        fn key(i: &Instruction) -> Vec<&Operation> {
            let mut v: Vec<&Operation> = i.ops.iter().collect();
            v.sort_by_key(|o| (o.cluster, o.slot));
            v
        }
        key(self) == key(other)
    }
}

impl Eq for Instruction {}

impl Instruction {
    /// Creates an empty instruction word (all slots no-op).
    pub fn new() -> Self {
        Instruction::default()
    }

    /// Creates an instruction word from a list of operations.
    ///
    /// # Panics
    ///
    /// Panics if two operations occupy the same (cluster, slot) pair.
    pub fn from_ops(ops: Vec<Operation>) -> Self {
        let mut w = Instruction::new();
        for op in ops {
            w.push(op);
        }
        w
    }

    /// Adds an operation to the word.
    ///
    /// # Panics
    ///
    /// Panics if the (cluster, slot) pair is already occupied by a
    /// non-no-op operation.
    pub fn push(&mut self, op: Operation) {
        if matches!(op.kind, OpKind::Nop) {
            return;
        }
        assert!(
            self.at(op.cluster, op.slot).is_none(),
            "slot c{}.s{} already occupied",
            op.cluster,
            op.slot
        );
        self.ops.push(op);
    }

    /// The operation in the given slot, if any.
    pub fn at(&self, cluster: ClusterId, slot: SlotId) -> Option<&Operation> {
        self.ops
            .iter()
            .find(|o| o.cluster == cluster && o.slot == slot)
    }

    /// Iterates over the non-no-op operations of this word.
    pub fn iter(&self) -> impl Iterator<Item = &Operation> {
        self.ops.iter()
    }

    /// Number of non-no-op operations in this word.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if no slot performs work.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Returns `true` if any operation in the word can redirect control
    /// flow.
    pub fn has_control(&self) -> bool {
        self.ops.iter().any(|o| o.kind.is_control())
    }
}

impl FromIterator<Operation> for Instruction {
    fn from_iter<T: IntoIterator<Item = Operation>>(iter: T) -> Self {
        Instruction::from_ops(iter.into_iter().collect())
    }
}

impl Extend<Operation> for Instruction {
    fn extend<T: IntoIterator<Item = Operation>>(&mut self, iter: T) {
        for op in iter {
            self.push(op);
        }
    }
}

impl<'a> IntoIterator for &'a Instruction {
    type Item = &'a Operation;
    type IntoIter = std::slice::Iter<'a, Operation>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ops.is_empty() {
            return f.write_str("nop");
        }
        let mut sorted: Vec<&Operation> = self.ops.iter().collect();
        sorted.sort_by_key(|o| (o.cluster, o.slot));
        for (i, op) in sorted.iter().enumerate() {
            if i > 0 {
                f.write_str(" | ")?;
            }
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::AluBinOp;
    use crate::operand::Operand;
    use crate::reg::Reg;

    fn add(cluster: ClusterId, slot: SlotId, dst: u16) -> Operation {
        Operation::new(
            cluster,
            slot,
            OpKind::AluBin {
                op: AluBinOp::Add,
                dst: Reg(dst),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(1),
            },
        )
    }

    #[test]
    fn push_and_lookup() {
        let mut w = Instruction::new();
        assert!(w.is_empty());
        w.push(add(0, 0, 1));
        w.push(add(1, 3, 2));
        assert_eq!(w.op_count(), 2);
        assert!(w.at(0, 0).is_some());
        assert!(w.at(1, 3).is_some());
        assert!(w.at(0, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn duplicate_slot_panics() {
        let mut w = Instruction::new();
        w.push(add(0, 0, 1));
        w.push(add(0, 0, 2));
    }

    #[test]
    fn nops_are_dropped() {
        let mut w = Instruction::new();
        w.push(Operation::new(0, 0, OpKind::Nop));
        assert!(w.is_empty());
        assert_eq!(w.to_string(), "nop");
    }

    #[test]
    fn collect_from_iterator() {
        let w: Instruction = vec![add(0, 0, 1), add(0, 1, 2)].into_iter().collect();
        assert_eq!(w.op_count(), 2);
    }

    #[test]
    fn control_detection() {
        let mut w = Instruction::new();
        w.push(add(0, 0, 1));
        assert!(!w.has_control());
        w.push(Operation::new(0, 3, OpKind::Jump { target: 7 }));
        assert!(w.has_control());
    }

    #[test]
    fn display_sorts_by_cluster_then_slot() {
        let mut w = Instruction::new();
        w.push(add(1, 0, 2));
        w.push(add(0, 1, 1));
        let s = w.to_string();
        let c0 = s.find("c0.s1").unwrap();
        let c1 = s.find("c1.s0").unwrap();
        assert!(c0 < c1);
    }
}
