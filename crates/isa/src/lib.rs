//! Instruction-set architecture for the cluster-based VLIW video signal
//! processor (VSP) studied in *"Datapath Design for a VLIW Video Signal
//! Processor"* (HPCA 1997).
//!
//! The machine executes one *very long instruction word* per cycle. Each
//! word contains one [`Operation`] per issue slot of every cluster; all
//! operations in a word issue together. Operations work on 16-bit signed
//! integers (the only native data type of the paper's machine), may be
//! guarded by a predicate register, and access cluster-local register
//! files, predicate files and local data memories. Values move between
//! clusters only through explicit crossbar transfer operations.
//!
//! This crate defines:
//!
//! * operand and register types ([`Reg`], [`Pred`], [`Operand`],
//!   [`AddrMode`]) — see [`reg`] and [`operand`],
//! * the operation set ([`OpKind`], [`Operation`]) and its functional-unit
//!   classification ([`FuClass`]) — see [`op`] and [`opcode`],
//! * VLIW instruction words and whole programs ([`Instruction`],
//!   [`Program`]) — see [`instr`] and [`program`],
//! * pure arithmetic semantics shared by the simulator and golden models —
//!   see [`semantics`],
//! * a human-readable assembly format with parser and printer — see
//!   [`asm`].
//!
//! # Example
//!
//! ```
//! use vsp_isa::{Program, Operation, OpKind, AluBinOp, Reg, Operand};
//!
//! let mut program = Program::new("axpy");
//! let add = Operation::new(
//!     0, // cluster
//!     0, // issue slot
//!     OpKind::AluBin { op: AluBinOp::Add, dst: Reg(2), a: Operand::Reg(Reg(0)), b: Operand::Reg(Reg(1)) },
//! );
//! program.push_word(vec![add]);
//! assert_eq!(program.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod instr;
pub mod op;
pub mod opcode;
pub mod operand;
pub mod program;
pub mod reg;
pub mod semantics;

pub use instr::Instruction;
pub use op::{OpKind, Operation, PredGuard};
pub use opcode::{AluBinOp, AluUnOp, CmpOp, FuClass, MemCtlOp, MulKind, ShiftOp};
pub use operand::{AddrMode, MemBank, Operand};
pub use program::{Program, ProgramBuilder};
pub use reg::{ClusterId, Pred, Reg, SlotId};
