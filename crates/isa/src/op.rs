//! Operations: the atomic units that fill VLIW issue slots.

use crate::opcode::{AluBinOp, AluUnOp, CmpOp, FuClass, MemCtlOp, MulKind, ShiftOp};
use crate::operand::{AddrMode, MemBank, Operand};
use crate::reg::{ClusterId, Pred, Reg, SlotId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A predicate guard: the operation commits only when the named predicate
/// register holds `sense`.
///
/// All of the paper's machines support predicated execution; it is used
/// heavily by the if-converted kernel schedules (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PredGuard {
    /// Guarding predicate register (cluster-local).
    pub pred: Pred,
    /// Required value of the predicate for the operation to commit.
    pub sense: bool,
}

impl PredGuard {
    /// Guard that commits when `pred` is true.
    pub fn if_true(pred: Pred) -> Self {
        PredGuard { pred, sense: true }
    }

    /// Guard that commits when `pred` is false.
    pub fn if_false(pred: Pred) -> Self {
        PredGuard { pred, sense: false }
    }
}

impl fmt::Display for PredGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sense {
            write!(f, "({})", self.pred)
        } else {
            write!(f, "(!{})", self.pred)
        }
    }
}

/// The semantic payload of an operation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Two-operand ALU operation.
    AluBin {
        /// Which ALU operation.
        op: AluBinOp,
        /// Destination register.
        dst: Reg,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
    },
    /// One-operand ALU operation (including register/immediate moves).
    AluUn {
        /// Which unary operation.
        op: AluUnOp,
        /// Destination register.
        dst: Reg,
        /// Source operand.
        a: Operand,
    },
    /// Shift operation on the cluster's shifter.
    Shift {
        /// Which shift.
        op: ShiftOp,
        /// Destination register.
        dst: Reg,
        /// Value to shift.
        a: Operand,
        /// Shift amount (low 4 bits used).
        b: Operand,
    },
    /// Multiply on the cluster's multiplier.
    Mul {
        /// Which multiply variant.
        kind: MulKind,
        /// Destination register.
        dst: Reg,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
    },
    /// Comparison writing a predicate register (executes on an ALU).
    Cmp {
        /// Which comparison.
        op: CmpOp,
        /// Destination predicate register.
        dst: Pred,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
    },
    /// Load a 16-bit word from the cluster's local data memory.
    Load {
        /// Destination register.
        dst: Reg,
        /// Effective-address computation.
        addr: AddrMode,
        /// Which local memory bank.
        bank: MemBank,
    },
    /// Store a 16-bit word to the cluster's local data memory.
    Store {
        /// Value to store.
        src: Operand,
        /// Effective-address computation.
        addr: AddrMode,
        /// Which local memory bank.
        bank: MemBank,
    },
    /// Inter-cluster transfer through the global crossbar: read `src` in
    /// cluster `from` and write it to `dst` in the executing cluster.
    Xfer {
        /// Destination register in the executing cluster.
        dst: Reg,
        /// Source cluster.
        from: ClusterId,
        /// Source register in cluster `from`.
        src: Reg,
    },
    /// Conditional branch on a predicate register in the executing
    /// cluster. Taken branches redirect fetch after the machine's branch
    /// delay slots.
    Branch {
        /// Tested predicate register.
        pred: Pred,
        /// Branch is taken when the predicate equals this value.
        sense: bool,
        /// Target instruction-word index.
        target: usize,
    },
    /// Unconditional jump.
    Jump {
        /// Target instruction-word index.
        target: usize,
    },
    /// Stop the machine; simulation ends when a halt commits.
    Halt,
    /// Memory-subsystem control.
    MemCtl {
        /// Which control action.
        op: MemCtlOp,
        /// Affected bank.
        bank: MemBank,
    },
    /// Explicit no-operation (an empty issue slot).
    Nop,
}

impl OpKind {
    /// The functional-unit class this operation occupies, or `None` for a
    /// no-op.
    pub fn fu_class(&self) -> Option<FuClass> {
        match self {
            OpKind::AluBin { .. } | OpKind::AluUn { .. } | OpKind::Cmp { .. } => Some(FuClass::Alu),
            OpKind::Shift { .. } => Some(FuClass::Shift),
            OpKind::Mul { .. } => Some(FuClass::Mul),
            OpKind::Load { .. } | OpKind::Store { .. } | OpKind::MemCtl { .. } => {
                Some(FuClass::Mem)
            }
            OpKind::Xfer { .. } => Some(FuClass::Xfer),
            OpKind::Branch { .. } | OpKind::Jump { .. } | OpKind::Halt => Some(FuClass::Branch),
            OpKind::Nop => None,
        }
    }

    /// The general register written by this operation, if any.
    pub fn def_reg(&self) -> Option<Reg> {
        match self {
            OpKind::AluBin { dst, .. }
            | OpKind::AluUn { dst, .. }
            | OpKind::Shift { dst, .. }
            | OpKind::Mul { dst, .. }
            | OpKind::Load { dst, .. }
            | OpKind::Xfer { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// The predicate register written by this operation, if any.
    pub fn def_pred(&self) -> Option<Pred> {
        match self {
            OpKind::Cmp { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// General registers read by this operation, in the executing cluster
    /// (excludes the remote source of an [`OpKind::Xfer`]).
    pub fn use_regs(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        let mut push = |o: &Operand| {
            if let Operand::Reg(r) = o {
                out.push(*r);
            }
        };
        match self {
            OpKind::AluBin { a, b, .. }
            | OpKind::Shift { a, b, .. }
            | OpKind::Mul { a, b, .. }
            | OpKind::Cmp { a, b, .. } => {
                push(a);
                push(b);
            }
            OpKind::AluUn { a, .. } => push(a),
            OpKind::Load { addr, .. } => out.extend(addr.regs()),
            OpKind::Store { src, addr, .. } => {
                push(src);
                out.extend(addr.regs());
            }
            OpKind::Xfer { .. }
            | OpKind::Branch { .. }
            | OpKind::Jump { .. }
            | OpKind::Halt
            | OpKind::MemCtl { .. }
            | OpKind::Nop => {}
        }
        out
    }

    /// Returns `true` if the operation accesses data memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, OpKind::Load { .. } | OpKind::Store { .. })
    }

    /// Returns `true` if the operation can redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            OpKind::Branch { .. } | OpKind::Jump { .. } | OpKind::Halt
        )
    }
}

/// An operation placed in a specific issue slot of a specific cluster
/// within one VLIW instruction word.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Operation {
    /// Cluster the operation executes in.
    pub cluster: ClusterId,
    /// Issue slot within the cluster.
    pub slot: SlotId,
    /// Optional predicate guard.
    pub guard: Option<PredGuard>,
    /// Semantic payload.
    pub kind: OpKind,
}

impl Operation {
    /// Creates an unguarded operation for the given cluster and slot.
    pub fn new(cluster: ClusterId, slot: SlotId, kind: OpKind) -> Self {
        Operation {
            cluster,
            slot,
            guard: None,
            kind,
        }
    }

    /// Creates a predicated operation.
    pub fn guarded(cluster: ClusterId, slot: SlotId, guard: PredGuard, kind: OpKind) -> Self {
        Operation {
            cluster,
            slot,
            guard: Some(guard),
            kind,
        }
    }

    /// The functional-unit class occupied (see [`OpKind::fu_class`]).
    pub fn fu_class(&self) -> Option<FuClass> {
        self.kind.fu_class()
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}.s{}:", self.cluster, self.slot)?;
        if let Some(g) = &self.guard {
            write!(f, " {g}")?;
        }
        match &self.kind {
            OpKind::AluBin { op, dst, a, b } => write!(f, " {op} {dst}, {a}, {b}"),
            OpKind::AluUn { op, dst, a } => write!(f, " {op} {dst}, {a}"),
            OpKind::Shift { op, dst, a, b } => write!(f, " {op} {dst}, {a}, {b}"),
            OpKind::Mul { kind, dst, a, b } => write!(f, " {kind} {dst}, {a}, {b}"),
            OpKind::Cmp { op, dst, a, b } => write!(f, " cmp.{op} {dst}, {a}, {b}"),
            OpKind::Load { dst, addr, bank } => write!(f, " ld.{bank} {dst}, {addr}"),
            OpKind::Store { src, addr, bank } => write!(f, " st.{bank} {src}, {addr}"),
            OpKind::Xfer { dst, from, src } => write!(f, " xfer {dst}, c{from}.{src}"),
            OpKind::Branch {
                pred,
                sense,
                target,
            } => {
                if *sense {
                    write!(f, " br {pred}, @{target}")
                } else {
                    write!(f, " br !{pred}, @{target}")
                }
            }
            OpKind::Jump { target } => write!(f, " jmp @{target}"),
            OpKind::Halt => write!(f, " halt"),
            OpKind::MemCtl { op, bank } => write!(f, " {op}.{bank}"),
            OpKind::Nop => write!(f, " nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_op() -> OpKind {
        OpKind::AluBin {
            op: AluBinOp::Add,
            dst: Reg(3),
            a: Operand::Reg(Reg(1)),
            b: Operand::Imm(7),
        }
    }

    #[test]
    fn def_and_use_sets() {
        let k = add_op();
        assert_eq!(k.def_reg(), Some(Reg(3)));
        assert_eq!(k.def_pred(), None);
        assert_eq!(k.use_regs(), vec![Reg(1)]);
    }

    #[test]
    fn store_uses_value_and_address_regs() {
        let k = OpKind::Store {
            src: Operand::Reg(Reg(2)),
            addr: AddrMode::Indexed(Reg(4), Reg(5)),
            bank: MemBank(0),
        };
        assert_eq!(k.def_reg(), None);
        assert_eq!(k.use_regs(), vec![Reg(2), Reg(4), Reg(5)]);
        assert!(k.is_mem());
    }

    #[test]
    fn cmp_defines_predicate() {
        let k = OpKind::Cmp {
            op: CmpOp::Lt,
            dst: Pred(1),
            a: Operand::Reg(Reg(0)),
            b: Operand::Imm(10),
        };
        assert_eq!(k.def_pred(), Some(Pred(1)));
        assert_eq!(k.def_reg(), None);
        assert_eq!(k.fu_class(), Some(FuClass::Alu));
    }

    #[test]
    fn fu_classes() {
        assert_eq!(add_op().fu_class(), Some(FuClass::Alu));
        assert_eq!(OpKind::Nop.fu_class(), None);
        assert_eq!(OpKind::Halt.fu_class(), Some(FuClass::Branch));
        let x = OpKind::Xfer {
            dst: Reg(0),
            from: 3,
            src: Reg(9),
        };
        assert_eq!(x.fu_class(), Some(FuClass::Xfer));
        assert_eq!(x.def_reg(), Some(Reg(0)));
        assert!(x.use_regs().is_empty(), "remote source is not a local use");
    }

    #[test]
    fn display_round_readable() {
        let op = Operation::guarded(
            2,
            1,
            PredGuard::if_false(Pred(0)),
            OpKind::AluBin {
                op: AluBinOp::Sub,
                dst: Reg(9),
                a: Operand::Reg(Reg(1)),
                b: Operand::Reg(Reg(2)),
            },
        );
        assert_eq!(op.to_string(), "c2.s1: (!p0) sub r9, r1, r2");
    }

    #[test]
    fn control_ops_flagged() {
        assert!(OpKind::Jump { target: 0 }.is_control());
        assert!(OpKind::Halt.is_control());
        assert!(!add_op().is_control());
    }
}
