//! A human-readable assembly format for VSP programs.
//!
//! The format is line-oriented: one VLIW instruction word per line, with
//! the operations of the word separated by `|`. Each operation names its
//! cluster and slot explicitly, mirroring the horizontally microcoded
//! instruction word:
//!
//! ```text
//! ; sum r1 += mem[r2] twice per word on two clusters
//! top:
//!   c0.s2: ld.m0 r3, [r2] | c1.s2: ld.m0 r3, [r2]
//!   c0.s0: add r1, r1, r3 | c1.s0: add r1, r1, r3 | c0.s3: br p0, @top
//!   c0.s0: halt
//! ```
//!
//! Branch targets may be written `@label` or `@123` (a literal word
//! index). [`print()`] always emits labels when the program defines them.
//!
//! The printer and parser round-trip: `parse(&print(p))` reproduces `p`
//! up to label naming of numeric targets.

use crate::instr::Instruction;
use crate::op::{OpKind, Operation, PredGuard};
use crate::opcode::{AluBinOp, AluUnOp, CmpOp, MemCtlOp, MulKind, ShiftOp};
use crate::operand::{AddrMode, MemBank, Operand};
use crate::program::Program;
use crate::reg::{Pred, Reg};
use std::collections::BTreeMap;
use std::fmt;

/// Error produced while parsing assembly text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl AsmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        AsmError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Prints a program in the assembly format accepted by [`parse`].
pub fn print(program: &Program) -> String {
    let mut by_index: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
    for (name, idx) in program.labels() {
        by_index.entry(idx).or_default().push(name);
    }
    // Synthesize labels for branch targets that have none, so the output
    // is stable under parse/print round trips.
    let mut text = String::new();
    text.push_str(&format!("; program {}\n", program.name));
    for (i, word) in program.iter().enumerate() {
        if let Some(names) = by_index.get(&i) {
            for n in names {
                text.push_str(n);
                text.push_str(":\n");
            }
        }
        text.push_str("  ");
        if word.is_empty() {
            text.push_str("nop");
        } else {
            let mut ops: Vec<&Operation> = word.iter().collect();
            ops.sort_by_key(|o| (o.cluster, o.slot));
            for (j, op) in ops.iter().enumerate() {
                if j > 0 {
                    text.push_str(" | ");
                }
                text.push_str(&op.to_string());
            }
        }
        text.push('\n');
    }
    text
}

/// Parses assembly text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] locating the first malformed line, unknown
/// mnemonic, bad operand, or undefined label.
pub fn parse(text: &str) -> Result<Program, AsmError> {
    let mut name = String::from("asm");
    let mut words: Vec<(usize, Vec<RawOp>)> = Vec::new();
    let mut labels: BTreeMap<String, usize> = BTreeMap::new();

    for (lineno, raw_line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("; program ") {
            name = rest.trim().to_string();
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(AsmError::new(lineno, "malformed label"));
            }
            labels.insert(label.to_string(), words.len());
            continue;
        }
        if line == "nop" {
            words.push((lineno, Vec::new()));
            continue;
        }
        let mut ops = Vec::new();
        for piece in line.split('|') {
            ops.push(parse_op(piece.trim(), lineno)?);
        }
        words.push((lineno, ops));
    }

    let mut program = Program::new(name);
    let word_count = words.len();
    for (lineno, raw_ops) in words {
        let mut ops = Vec::with_capacity(raw_ops.len());
        for raw in raw_ops {
            let op = raw.resolve(&labels, word_count, lineno)?;
            ops.push(op);
        }
        program.push(Instruction::from_ops(ops));
    }
    for (label, idx) in labels {
        program.set_label(label, idx);
    }
    Ok(program)
}

fn strip_comment(line: &str) -> &str {
    // `; program` headers are handled by the caller before stripping.
    if line.trim_start().starts_with("; program ") {
        return line;
    }
    match line.find(';') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// An operation whose branch target may still be symbolic.
#[derive(Debug)]
struct RawOp {
    op: Operation,
    target_label: Option<String>,
}

impl RawOp {
    fn resolve(
        self,
        labels: &BTreeMap<String, usize>,
        word_count: usize,
        lineno: usize,
    ) -> Result<Operation, AsmError> {
        let mut op = self.op;
        if let Some(label) = self.target_label {
            let target = match label.parse::<usize>() {
                Ok(i) => i,
                Err(_) => *labels
                    .get(&label)
                    .ok_or_else(|| AsmError::new(lineno, format!("undefined label `{label}`")))?,
            };
            if target > word_count {
                return Err(AsmError::new(
                    lineno,
                    format!("target {target} out of range"),
                ));
            }
            match &mut op.kind {
                OpKind::Branch { target: t, .. } | OpKind::Jump { target: t } => *t = target,
                _ => unreachable!("only control ops carry targets"),
            }
        }
        Ok(op)
    }
}

fn parse_op(text: &str, lineno: usize) -> Result<RawOp, AsmError> {
    let err = |m: &str| AsmError::new(lineno, format!("{m} in `{text}`"));

    // "cN.sM:" prefix
    let (place, rest) = text
        .split_once(':')
        .ok_or_else(|| err("missing `cN.sM:` placement"))?;
    let place = place.trim();
    let (c, s) = place
        .strip_prefix('c')
        .and_then(|p| p.split_once(".s"))
        .ok_or_else(|| err("malformed placement"))?;
    let cluster: u8 = c.parse().map_err(|_| err("bad cluster index"))?;
    let slot: u8 = s.parse().map_err(|_| err("bad slot index"))?;

    let mut rest = rest.trim();

    // optional guard "(pN)" or "(!pN)"
    let mut guard = None;
    if rest.starts_with('(') {
        let close = rest.find(')').ok_or_else(|| err("unterminated guard"))?;
        let inner = &rest[1..close];
        let (sense, preg) = match inner.strip_prefix('!') {
            Some(p) => (false, p),
            None => (true, inner),
        };
        let idx: u8 = preg
            .strip_prefix('p')
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| err("bad guard predicate"))?;
        guard = Some(PredGuard {
            pred: Pred(idx),
            sense,
        });
        rest = rest[close + 1..].trim();
    }

    let (mnemonic, args_text) = match rest.split_once(' ') {
        Some((m, a)) => (m.trim(), a.trim()),
        None => (rest, ""),
    };
    let args: Vec<&str> = if args_text.is_empty() {
        Vec::new()
    } else {
        args_text.split(',').map(str::trim).collect()
    };

    let mut target_label = None;
    let kind = parse_kind(mnemonic, &args, &mut target_label)
        .ok_or_else(|| err("unknown mnemonic or bad operands"))?;

    Ok(RawOp {
        op: Operation {
            cluster,
            slot,
            guard,
            kind,
        },
        target_label,
    })
}

fn parse_reg(s: &str) -> Option<Reg> {
    s.strip_prefix('r').and_then(|n| n.parse().ok()).map(Reg)
}

fn parse_pred(s: &str) -> Option<Pred> {
    s.strip_prefix('p').and_then(|n| n.parse().ok()).map(Pred)
}

fn parse_operand(s: &str) -> Option<Operand> {
    if let Some(imm) = s.strip_prefix('#') {
        return imm.parse::<i16>().ok().map(Operand::Imm);
    }
    parse_reg(s).map(Operand::Reg)
}

fn parse_addr(s: &str) -> Option<AddrMode> {
    let inner = s.strip_prefix('[')?.strip_suffix(']')?;
    if let Ok(abs) = inner.parse::<u16>() {
        return Some(AddrMode::Absolute(abs));
    }
    if let Some(plus) = inner.find('+') {
        let (base, rhs) = (&inner[..plus], &inner[plus + 1..]);
        let base = parse_reg(base)?;
        if let Some(idx) = parse_reg(rhs) {
            return Some(AddrMode::Indexed(base, idx));
        }
        return rhs.parse::<i16>().ok().map(|d| AddrMode::BaseDisp(base, d));
    }
    if let Some(minus) = inner[1..].find('-') {
        let (base, rhs) = (&inner[..minus + 1], &inner[minus + 1..]);
        let base = parse_reg(base)?;
        return rhs.parse::<i16>().ok().map(|d| AddrMode::BaseDisp(base, d));
    }
    parse_reg(inner).map(AddrMode::Register)
}

fn parse_bank(s: &str) -> Option<MemBank> {
    s.strip_prefix('m')
        .and_then(|n| n.parse().ok())
        .map(MemBank)
}

fn parse_kind(mnemonic: &str, args: &[&str], target_label: &mut Option<String>) -> Option<OpKind> {
    let bin = |op: AluBinOp, args: &[&str]| -> Option<OpKind> {
        Some(OpKind::AluBin {
            op,
            dst: parse_reg(args.first()?)?,
            a: parse_operand(args.get(1)?)?,
            b: parse_operand(args.get(2)?)?,
        })
    };
    let un = |op: AluUnOp, args: &[&str]| -> Option<OpKind> {
        Some(OpKind::AluUn {
            op,
            dst: parse_reg(args.first()?)?,
            a: parse_operand(args.get(1)?)?,
        })
    };
    let sh = |op: ShiftOp, args: &[&str]| -> Option<OpKind> {
        Some(OpKind::Shift {
            op,
            dst: parse_reg(args.first()?)?,
            a: parse_operand(args.get(1)?)?,
            b: parse_operand(args.get(2)?)?,
        })
    };
    let ml = |kind: MulKind, args: &[&str]| -> Option<OpKind> {
        Some(OpKind::Mul {
            kind,
            dst: parse_reg(args.first()?)?,
            a: parse_operand(args.get(1)?)?,
            b: parse_operand(args.get(2)?)?,
        })
    };

    match mnemonic {
        "add" => bin(AluBinOp::Add, args),
        "sub" => bin(AluBinOp::Sub, args),
        "and" => bin(AluBinOp::And, args),
        "or" => bin(AluBinOp::Or, args),
        "xor" => bin(AluBinOp::Xor, args),
        "min" => bin(AluBinOp::Min, args),
        "max" => bin(AluBinOp::Max, args),
        "absd" => bin(AluBinOp::AbsDiff, args),
        "mov" => un(AluUnOp::Mov, args),
        "abs" => un(AluUnOp::Abs, args),
        "neg" => un(AluUnOp::Neg, args),
        "not" => un(AluUnOp::Not, args),
        "sextb" => un(AluUnOp::SextB, args),
        "zextb" => un(AluUnOp::ZextB, args),
        "shl" => sh(ShiftOp::Shl, args),
        "shrl" => sh(ShiftOp::ShrL, args),
        "shra" => sh(ShiftOp::ShrA, args),
        "mul8ss" => ml(MulKind::Mul8SS, args),
        "mul8uu" => ml(MulKind::Mul8UU, args),
        "mul8su" => ml(MulKind::Mul8SU, args),
        "mul16lo" => ml(MulKind::Mul16Lo, args),
        "mul16hi" => ml(MulKind::Mul16Hi, args),
        "halt" => Some(OpKind::Halt),
        "jmp" => {
            let t = args.first()?.strip_prefix('@')?;
            *target_label = Some(t.to_string());
            Some(OpKind::Jump { target: 0 })
        }
        "br" => {
            let (sense, preg) = match args.first()?.strip_prefix('!') {
                Some(p) => (false, p),
                None => (true, *args.first()?),
            };
            let pred = parse_pred(preg)?;
            let t = args.get(1)?.strip_prefix('@')?;
            *target_label = Some(t.to_string());
            Some(OpKind::Branch {
                pred,
                sense,
                target: 0,
            })
        }
        "xfer" => {
            let dst = parse_reg(args.first()?)?;
            let (c, r) = args.get(1)?.split_once('.')?;
            let from: u8 = c.strip_prefix('c')?.parse().ok()?;
            let src = parse_reg(r)?;
            Some(OpKind::Xfer { dst, from, src })
        }
        _ => {
            if let Some(cop) = mnemonic.strip_prefix("cmp.") {
                let op = match cop {
                    "eq" => CmpOp::Eq,
                    "ne" => CmpOp::Ne,
                    "lt" => CmpOp::Lt,
                    "le" => CmpOp::Le,
                    "gt" => CmpOp::Gt,
                    "ge" => CmpOp::Ge,
                    _ => return None,
                };
                return Some(OpKind::Cmp {
                    op,
                    dst: parse_pred(args.first()?)?,
                    a: parse_operand(args.get(1)?)?,
                    b: parse_operand(args.get(2)?)?,
                });
            }
            if let Some(bank) = mnemonic.strip_prefix("ld.") {
                return Some(OpKind::Load {
                    dst: parse_reg(args.first()?)?,
                    addr: parse_addr(args.get(1)?)?,
                    bank: parse_bank(bank)?,
                });
            }
            if let Some(bank) = mnemonic.strip_prefix("st.") {
                return Some(OpKind::Store {
                    src: parse_operand(args.first()?)?,
                    addr: parse_addr(args.get(1)?)?,
                    bank: parse_bank(bank)?,
                });
            }
            if let Some(bank) = mnemonic.strip_prefix("swapbuf.") {
                return Some(OpKind::MemCtl {
                    op: MemCtlOp::SwapBuffers,
                    bank: parse_bank(bank)?,
                });
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; program sample
top:
  c0.s2: ld.m0 r3, [r2] | c1.s2: ld.m1 r4, [r5+8]
  c0.s0: (p1) add r1, r1, r3 | c0.s1: shl r6, r1, #2
  c0.s0: cmp.lt p0, r1, #100 | c1.s0: absd r7, r3, r4
  c0.s3: br p0, @top
  c0.s0: xfer r9, c1.r7
  c0.s0: halt
";

    #[test]
    fn parse_sample() {
        let p = parse(SAMPLE).unwrap();
        assert_eq!(p.name, "sample");
        assert_eq!(p.len(), 6);
        assert_eq!(p.label("top"), Some(0));
        let br = p.word(3).unwrap().at(0, 3).unwrap();
        assert!(matches!(
            br.kind,
            OpKind::Branch {
                target: 0,
                sense: true,
                ..
            }
        ));
        let guarded = p.word(1).unwrap().at(0, 0).unwrap();
        assert_eq!(guarded.guard, Some(PredGuard::if_true(Pred(1))));
    }

    #[test]
    fn round_trip_print_parse() {
        let p = parse(SAMPLE).unwrap();
        let printed = print(&p);
        let p2 = parse(&printed).unwrap();
        // Compare instruction words; label set must also survive.
        assert_eq!(p.len(), p2.len());
        for i in 0..p.len() {
            assert_eq!(p.word(i), p2.word(i), "word {i}");
        }
        assert_eq!(p2.label("top"), Some(0));
    }

    #[test]
    fn addressing_modes_parse() {
        let p = parse(
            "  c0.s2: ld.m0 r1, [12]\n  c0.s2: ld.m0 r1, [r2]\n  c0.s2: ld.m0 r1, [r2-4]\n  c0.s2: ld.m0 r1, [r2+r3]\n",
        )
        .unwrap();
        let modes: Vec<AddrMode> = (0..4)
            .map(|i| match p.word(i).unwrap().at(0, 2).unwrap().kind {
                OpKind::Load { addr, .. } => addr,
                _ => panic!(),
            })
            .collect();
        assert_eq!(
            modes,
            vec![
                AddrMode::Absolute(12),
                AddrMode::Register(Reg(2)),
                AddrMode::BaseDisp(Reg(2), -4),
                AddrMode::Indexed(Reg(2), Reg(3)),
            ]
        );
    }

    #[test]
    fn numeric_targets_accepted() {
        let p = parse("  c0.s0: jmp @1\n  c0.s0: halt\n").unwrap();
        assert!(matches!(
            p.word(0).unwrap().at(0, 0).unwrap().kind,
            OpKind::Jump { target: 1 }
        ));
    }

    #[test]
    fn undefined_label_is_error() {
        let err = parse("  c0.s0: jmp @nowhere\n").unwrap_err();
        assert!(err.message.contains("undefined label"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn unknown_mnemonic_is_error() {
        let err = parse("  c0.s0: frob r1, r2\n").unwrap_err();
        assert!(err.message.contains("unknown mnemonic"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let p = parse("\n; hello\n  c0.s0: halt ; trailing\n\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn negated_branch_and_guard() {
        let p = parse("top:\n  c0.s1: (!p2) mov r1, #3 | c0.s0: br !p0, @top\n").unwrap();
        let w = p.word(0).unwrap();
        assert_eq!(
            w.at(0, 1).unwrap().guard,
            Some(PredGuard::if_false(Pred(2)))
        );
        assert!(matches!(
            w.at(0, 0).unwrap().kind,
            OpKind::Branch { sense: false, .. }
        ));
    }

    #[test]
    fn nop_line_is_empty_word() {
        let p = parse("  nop\n  c0.s0: halt\n").unwrap();
        assert!(p.word(0).unwrap().is_empty());
        assert_eq!(p.len(), 2);
    }
}
