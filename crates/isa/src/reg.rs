//! Register, predicate, cluster and issue-slot identifiers.
//!
//! All storage on the VSP is cluster-local: a [`Reg`] or [`Pred`] index is
//! meaningful only relative to the cluster an operation executes in.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a 16-bit general-purpose register within a cluster's local
/// register file.
///
/// The paper's machines provide 64–256 registers per cluster; the index is
/// therefore comfortably represented by a `u16`.
///
/// ```
/// use vsp_isa::Reg;
/// let r = Reg(5);
/// assert_eq!(r.to_string(), "r5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u16);

impl Reg {
    /// Numeric index of this register.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Index of a 1-bit predicate register within a cluster's predicate file.
///
/// ```
/// use vsp_isa::Pred;
/// assert_eq!(Pred(3).to_string(), "p3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pred(pub u8);

impl Pred {
    /// Numeric index of this predicate register.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a functional-unit cluster (0-based).
///
/// The paper's datapaths use 8 or 16 identical clusters.
pub type ClusterId = u8;

/// Identifier of an issue slot within a cluster (0-based).
///
/// The paper's datapaths provide 2 or 4 issue slots per cluster.
pub type SlotId = u8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_display_and_index() {
        assert_eq!(Reg(0).to_string(), "r0");
        assert_eq!(Reg(127).to_string(), "r127");
        assert_eq!(Reg(12).index(), 12);
    }

    #[test]
    fn pred_display_and_index() {
        assert_eq!(Pred(0).to_string(), "p0");
        assert_eq!(Pred(7).index(), 7);
    }

    #[test]
    fn reg_ordering_follows_index() {
        assert!(Reg(3) < Reg(4));
        assert!(Pred(0) < Pred(1));
    }
}
