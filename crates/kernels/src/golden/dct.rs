//! Two-dimensional 8×8 discrete cosine transform, in the two forms the
//! paper evaluates (§3.3): the *traditional* direct computation of each
//! coefficient from the whole block, and the *row/column* separable
//! algorithm.
//!
//! Arithmetic is 16-bit fixed point, mirroring the machine: cosine
//! coefficients are Q6 (scaled by 64, so every coefficient fits in a
//! signed byte — the property the first row/column pass exploits on the
//! 8×8 multipliers), intermediate sums are kept in 16 bits with rounding
//! shifts between stages.

/// Q6 cosine table: `C[u][x] = round(64 · c(u) · cos((2x+1)uπ/16) / 2)`,
/// with `c(0)=1/√2`, `c(u)=1` otherwise and the extra ÷2 folding the DCT's
/// 1/2 normalization in. Every entry fits in a signed byte.
pub const COS_Q6: [[i16; 8]; 8] = build_cos_table();

const fn build_cos_table() -> [[i16; 8]; 8] {
    // const-fn friendly: precomputed from the closed form (values match
    // round(32*sqrt(2)) etc.); checked against a float recomputation in
    // tests.
    [
        [23, 23, 23, 23, 23, 23, 23, 23],
        [31, 27, 18, 6, -6, -18, -27, -31],
        [30, 12, -12, -30, -30, -12, 12, 30],
        [27, -6, -31, -18, 18, 31, 6, -27],
        [23, -23, -23, 23, 23, -23, -23, 23],
        [18, -31, 6, 27, -27, -6, 31, -18],
        [12, -30, 30, -12, -12, 30, -30, 12],
        [6, -18, 27, -31, 31, -27, 18, -6],
    ]
}

/// 1-D 8-point DCT of a row/column, Q6 coefficients, result scaled back
/// by a rounding ÷64.
fn dct_1d(input: &[i16; 8]) -> [i16; 8] {
    let mut out = [0i16; 8];
    for (u, o) in out.iter_mut().enumerate() {
        let mut acc = 0i32;
        for (x, &v) in input.iter().enumerate() {
            acc += i32::from(COS_Q6[u][x]) * i32::from(v);
        }
        *o = ((acc + 32) >> 6) as i16;
    }
    out
}

/// Row/column 2-D DCT: 1-D transform of each row, then of each column —
/// 16 one-dimensional transforms per block.
pub fn dct8x8_rowcol(block: &[i16; 64]) -> [i16; 64] {
    let mut tmp = [0i16; 64];
    for r in 0..8 {
        let row: [i16; 8] = core::array::from_fn(|c| block[r * 8 + c]);
        let t = dct_1d(&row);
        tmp[r * 8..r * 8 + 8].copy_from_slice(&t);
    }
    let mut out = [0i16; 64];
    for c in 0..8 {
        let col: [i16; 8] = core::array::from_fn(|r| tmp[r * 8 + c]);
        let t = dct_1d(&col);
        for r in 0..8 {
            out[r * 8 + c] = t[r];
        }
    }
    out
}

/// Traditional direct 2-D DCT: every output coefficient computed as the
/// full 64-term double sum with combined Q12 coefficients — the
/// "traditional implementation \[that\] computes each element of the
/// transform on an 8x8 block of pixels directly".
pub fn dct8x8_direct(block: &[i16; 64]) -> [i16; 64] {
    let mut out = [0i16; 64];
    for u in 0..8 {
        for v in 0..8 {
            let mut acc = 0i64;
            for x in 0..8 {
                for y in 0..8 {
                    // Combined coefficient in Q12.
                    let c = i64::from(COS_Q6[u][y]) * i64::from(COS_Q6[v][x]);
                    acc += c * i64::from(block[y * 8 + x]);
                }
            }
            out[u * 8 + v] = ((acc + (1 << 11)) >> 12) as i16;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::synthetic_luma_frame;

    fn float_dct(block: &[i16; 64]) -> [f64; 64] {
        let mut out = [0f64; 64];
        for u in 0..8 {
            for v in 0..8 {
                let cu = if u == 0 { (0.5f64).sqrt() } else { 1.0 };
                let cv = if v == 0 { (0.5f64).sqrt() } else { 1.0 };
                let mut acc = 0.0;
                for x in 0..8 {
                    for y in 0..8 {
                        acc += f64::from(block[y * 8 + x])
                            * ((2 * y + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos()
                            * ((2 * x + 1) as f64 * v as f64 * std::f64::consts::PI / 16.0).cos();
                    }
                }
                out[u * 8 + v] = 0.25 * cu * cv * acc;
            }
        }
        out
    }

    fn sample_block(seed: u64) -> [i16; 64] {
        let f = synthetic_luma_frame(8, 8, seed);
        core::array::from_fn(|i| f[i] - 128)
    }

    #[test]
    fn cosine_table_matches_float_recomputation() {
        for (u, row) in COS_Q6.iter().enumerate() {
            for (x, &c) in row.iter().enumerate() {
                let cu = if u == 0 { (0.5f64).sqrt() } else { 1.0 };
                let exact =
                    32.0 * cu * ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos();
                assert!(
                    (f64::from(c) - exact).abs() <= 0.51,
                    "C[{u}][{x}] = {c} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn dc_of_flat_block() {
        let block = [64i16; 64];
        let out = dct8x8_rowcol(&block);
        // DC of a flat block ~ 8 * value / ... with this normalization:
        // float DCT gives 0.25*0.5*sqrt(2)^2... just compare to float.
        let f = float_dct(&block);
        // The Q6 table rounds 22.627 to 23, a 1.6% per-pass gain.
        assert!(
            (f64::from(out[0]) - f[0]).abs() < 4.0 + 0.04 * f[0].abs(),
            "{} vs {}",
            out[0],
            f[0]
        );
        for (i, &v) in out.iter().enumerate().skip(1) {
            assert!(v.abs() <= 1, "AC leakage at {i}: {v}");
        }
    }

    #[test]
    fn rowcol_tracks_float_dct() {
        for seed in 0..5 {
            let block = sample_block(seed);
            let got = dct8x8_rowcol(&block);
            let expect = float_dct(&block);
            for i in 0..64 {
                let tol = 4.0 + 0.04 * expect[i].abs();
                assert!(
                    (f64::from(got[i]) - expect[i]).abs() <= tol,
                    "seed {seed} coeff {i}: {} vs {}",
                    got[i],
                    expect[i]
                );
            }
        }
    }

    #[test]
    fn direct_tracks_float_dct() {
        for seed in 0..5 {
            let block = sample_block(seed);
            let got = dct8x8_direct(&block);
            let expect = float_dct(&block);
            for i in 0..64 {
                let tol = 4.0 + 0.05 * expect[i].abs();
                assert!(
                    (f64::from(got[i]) - expect[i]).abs() <= tol,
                    "seed {seed} coeff {i}: {} vs {}",
                    got[i],
                    expect[i]
                );
            }
        }
    }

    #[test]
    fn direct_and_rowcol_agree() {
        // The two algorithms compute the same transform up to their
        // different intermediate rounding.
        for seed in 5..10 {
            let block = sample_block(seed);
            let a = dct8x8_direct(&block);
            let b = dct8x8_rowcol(&block);
            for i in 0..64 {
                assert!((a[i] - b[i]).abs() <= 4, "coeff {i}: {} vs {}", a[i], b[i]);
            }
        }
    }
}
