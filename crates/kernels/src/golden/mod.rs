//! Golden scalar implementations — the semantic references every IR form
//! and every scheduled program is checked against.

pub mod color;
pub mod dct;
pub mod motion;
pub mod vbr;
