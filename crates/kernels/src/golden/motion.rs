//! Motion estimation: full search and three-step search.
//!
//! Both algorithms compare a 16×16 macroblock of the current frame
//! against candidate blocks of the reference frame, scoring each with the
//! sum of absolute differences (SAD); "this is generally believed to be
//! the most time-consuming step in video compression" (§3.3). Their
//! inner loops are identical; only the search strategy differs.

/// A motion vector and its SAD score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotionResult {
    /// Horizontal displacement of the best match.
    pub dx: i32,
    /// Vertical displacement of the best match.
    pub dy: i32,
    /// SAD of the best match.
    pub sad: u32,
}

/// Sum of absolute differences between the 16×16 block at `(cx, cy)` in
/// `cur` and the block at `(cx+dx, cy+dy)` in `reference`.
///
/// # Panics
///
/// Panics if either block extends outside its frame.
pub fn sad_16x16(
    cur: &[i16],
    reference: &[i16],
    width: usize,
    cx: usize,
    cy: usize,
    dx: i32,
    dy: i32,
) -> u32 {
    let rx = (cx as i32 + dx) as usize;
    let ry = (cy as i32 + dy) as usize;
    let mut sum = 0u32;
    for row in 0..16 {
        let c = (cy + row) * width + cx;
        let r = (ry + row) * width + rx;
        for col in 0..16 {
            let d = i32::from(cur[c + col]) - i32::from(reference[r + col]);
            sum += d.unsigned_abs();
        }
    }
    sum
}

/// Exhaustive full search over a ±`range` window (clipped to the frame).
pub fn full_search(
    cur: &[i16],
    reference: &[i16],
    width: usize,
    height: usize,
    cx: usize,
    cy: usize,
    range: i32,
) -> MotionResult {
    let mut best = MotionResult {
        dx: 0,
        dy: 0,
        sad: u32::MAX,
    };
    for dy in -range..=range {
        for dx in -range..=range {
            if !displacement_valid(width, height, cx, cy, dx, dy) {
                continue;
            }
            let sad = sad_16x16(cur, reference, width, cx, cy, dx, dy);
            if sad < best.sad {
                best = MotionResult { dx, dy, sad };
            }
        }
    }
    best
}

/// Three-step search: examine the 3×3 neighborhood at step sizes
/// `range/2`, `range/4`, 1 (classic logarithmic refinement; 25 SAD
/// evaluations for a ±8 window).
pub fn three_step_search(
    cur: &[i16],
    reference: &[i16],
    width: usize,
    height: usize,
    cx: usize,
    cy: usize,
    range: i32,
) -> MotionResult {
    let mut center = MotionResult {
        dx: 0,
        dy: 0,
        sad: if displacement_valid(width, height, cx, cy, 0, 0) {
            sad_16x16(cur, reference, width, cx, cy, 0, 0)
        } else {
            u32::MAX
        },
    };
    let mut step = (range / 2).max(1);
    loop {
        let mut best = center;
        for sy in [-step, 0, step] {
            for sx in [-step, 0, step] {
                if sx == 0 && sy == 0 {
                    continue;
                }
                let (dx, dy) = (center.dx + sx, center.dy + sy);
                if !displacement_valid(width, height, cx, cy, dx, dy) {
                    continue;
                }
                let sad = sad_16x16(cur, reference, width, cx, cy, dx, dy);
                if sad < best.sad {
                    best = MotionResult { dx, dy, sad };
                }
            }
        }
        center = best;
        if step == 1 {
            return center;
        }
        step = (step / 2).max(1);
    }
}

fn displacement_valid(width: usize, height: usize, cx: usize, cy: usize, dx: i32, dy: i32) -> bool {
    let rx = cx as i32 + dx;
    let ry = cy as i32 + dy;
    rx >= 0 && ry >= 0 && rx + 16 <= width as i32 && ry + 16 <= height as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{shifted_frame_pair, synthetic_luma_frame};

    #[test]
    fn sad_of_identical_blocks_is_zero() {
        let f = synthetic_luma_frame(64, 48, 1);
        assert_eq!(sad_16x16(&f, &f, 64, 16, 16, 0, 0), 0);
    }

    #[test]
    fn full_search_recovers_known_shift() {
        let (cur, reference) = shifted_frame_pair(64, 48, 3, -2, 7);
        let r = full_search(&cur, &reference, 64, 48, 32, 16, 8);
        assert_eq!((r.dx, r.dy), (3, -2));
        assert_eq!(r.sad, 0);
    }

    #[test]
    fn three_step_finds_same_shift_on_smooth_content() {
        let (cur, reference) = shifted_frame_pair(64, 48, 4, 2, 9);
        let full = full_search(&cur, &reference, 64, 48, 32, 16, 8);
        let tss = three_step_search(&cur, &reference, 64, 48, 32, 16, 8);
        assert_eq!((full.dx, full.dy), (4, 2));
        // Three-step is a heuristic; on an exact-shift pair it must still
        // find the zero-SAD match.
        assert_eq!(tss.sad, 0);
        assert_eq!((tss.dx, tss.dy), (4, 2));
    }

    #[test]
    fn three_step_never_beats_full_search() {
        let (cur, reference) = shifted_frame_pair(96, 64, 1, 5, 11);
        for (cx, cy) in [(16, 16), (48, 32), (64, 32)] {
            let full = full_search(&cur, &reference, 96, 64, cx, cy, 8);
            let tss = three_step_search(&cur, &reference, 96, 64, cx, cy, 8);
            assert!(tss.sad >= full.sad);
        }
    }

    #[test]
    fn window_clipping_at_frame_edges() {
        let f = synthetic_luma_frame(32, 32, 2);
        let r = full_search(&f, &f, 32, 32, 0, 0, 8);
        assert_eq!((r.dx, r.dy, r.sad), (0, 0, 0));
    }

    #[test]
    fn full_search_examines_289_positions_in_interior() {
        // Count positions explicitly for an interior macroblock.
        let mut count = 0;
        for dy in -8i32..=8 {
            for dx in -8i32..=8 {
                if displacement_valid(720, 480, 360, 240, dx, dy) {
                    count += 1;
                }
            }
        }
        assert_eq!(count, crate::frame::FULL_SEARCH_POSITIONS);
    }
}
