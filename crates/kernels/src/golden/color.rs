//! RGB→YCbCr color-space conversion with 4:4:4 → 4:2:0 chroma
//! subsampling — "typical of the first stage in compression" (§3.3).
//!
//! Uses the standard ITU-R BT.601 integer approximation with 8-bit
//! coefficients and a rounding shift, the form whose multiplies fit the
//! machines' 8×8 multipliers.

/// Planar 4:2:0 output of the converter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ycbcr420 {
    /// Luma plane, full resolution.
    pub y: Vec<i16>,
    /// Blue-difference chroma, quarter resolution.
    pub cb: Vec<i16>,
    /// Red-difference chroma, quarter resolution.
    pub cr: Vec<i16>,
}

/// Converts an interleaved RGB frame (values 0..=255) to planar YCbCr
/// 4:2:0. Chroma is averaged over each 2×2 pixel quad before conversion.
///
/// # Panics
///
/// Panics if `rgb.len() != width * height * 3` or the dimensions are odd.
pub fn rgb_to_ycbcr_420(rgb: &[i16], width: usize, height: usize) -> Ycbcr420 {
    assert_eq!(rgb.len(), width * height * 3, "interleaved RGB expected");
    assert!(
        width.is_multiple_of(2) && height.is_multiple_of(2),
        "4:2:0 needs even dims"
    );

    let mut y = vec![0i16; width * height];
    for p in 0..width * height {
        let (r, g, b) = (
            i32::from(rgb[3 * p]),
            i32::from(rgb[3 * p + 1]),
            i32::from(rgb[3 * p + 2]),
        );
        y[p] = (((66 * r + 129 * g + 25 * b + 128) >> 8) + 16) as i16;
    }

    let (cw, ch) = (width / 2, height / 2);
    let mut cb = vec![0i16; cw * ch];
    let mut cr = vec![0i16; cw * ch];
    for cy in 0..ch {
        for cx in 0..cw {
            let mut rs = 0i32;
            let mut gs = 0i32;
            let mut bs = 0i32;
            for dy in 0..2 {
                for dx in 0..2 {
                    let p = (2 * cy + dy) * width + 2 * cx + dx;
                    rs += i32::from(rgb[3 * p]);
                    gs += i32::from(rgb[3 * p + 1]);
                    bs += i32::from(rgb[3 * p + 2]);
                }
            }
            let (r, g, b) = ((rs + 2) >> 2, (gs + 2) >> 2, (bs + 2) >> 2);
            cb[cy * cw + cx] = (((-38 * r - 74 * g + 112 * b + 128) >> 8) + 128) as i16;
            cr[cy * cw + cx] = (((112 * r - 94 * g - 18 * b + 128) >> 8) + 128) as i16;
        }
    }
    Ycbcr420 { y, cb, cr }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::synthetic_rgb_frame;

    fn gray(value: i16, width: usize, height: usize) -> Vec<i16> {
        std::iter::repeat_n([value, value, value], width * height)
            .flatten()
            .collect()
    }

    #[test]
    fn gray_maps_to_neutral_chroma() {
        let out = rgb_to_ycbcr_420(&gray(128, 16, 16), 16, 16);
        for &cb in &out.cb {
            assert_eq!(cb, 128);
        }
        for &cr in &out.cr {
            assert_eq!(cr, 128);
        }
        // Y of mid-gray 128: (220*128 + 128)>>8 + 16 = 126.
        assert!(out.y.iter().all(|&v| (125..=127).contains(&v)));
    }

    #[test]
    fn black_and_white_luma_range() {
        let out = rgb_to_ycbcr_420(&gray(0, 4, 4), 4, 4);
        assert!(out.y.iter().all(|&v| v == 16), "BT.601 black is Y=16");
        let out = rgb_to_ycbcr_420(&gray(255, 4, 4), 4, 4);
        assert!(
            out.y.iter().all(|&v| (234..=236).contains(&v)),
            "white ~235"
        );
    }

    #[test]
    fn pure_red_has_high_cr() {
        let rgb: Vec<i16> = std::iter::repeat_n([255i16, 0, 0], 16).flatten().collect();
        let out = rgb_to_ycbcr_420(&rgb, 4, 4);
        assert!(
            out.cr.iter().all(|&v| v > 200),
            "red pushes Cr up: {:?}",
            out.cr
        );
        assert!(out.cb.iter().all(|&v| v < 128));
    }

    #[test]
    fn plane_sizes_are_420() {
        let rgb = synthetic_rgb_frame(32, 24, 7);
        let out = rgb_to_ycbcr_420(&rgb, 32, 24);
        assert_eq!(out.y.len(), 32 * 24);
        assert_eq!(out.cb.len(), 16 * 12);
        assert_eq!(out.cr.len(), 16 * 12);
    }

    #[test]
    fn outputs_stay_in_video_range() {
        let rgb = synthetic_rgb_frame(64, 32, 9);
        let out = rgb_to_ycbcr_420(&rgb, 64, 32);
        assert!(out.y.iter().all(|&v| (16..=235).contains(&v)));
        assert!(out.cb.iter().all(|&v| (16..=240).contains(&v)));
        assert!(out.cr.iter().all(|&v| (16..=240).contains(&v)));
    }
}
