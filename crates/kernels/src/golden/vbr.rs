//! Variable-bit-rate coder: the lossless run-length + variable-length
//! coding stage of MPEG-style compression (§3.3).
//!
//! "Typically it is considered a minor stage in the compression
//! procedure, but it contains numerous long dependency chains and has
//! very limited parallelism" — each emitted code's bit position depends
//! on every previous code's length, and run lengths depend on the data.
//!
//! The entropy code here is a concrete prefix code (unary run length +
//! Elias-gamma level magnitude + sign, with an out-of-range run as the
//! end-of-block symbol); it is fully decodable, which the round-trip
//! tests exercise.

/// Bit-granular output buffer (MSB-first within each 16-bit word, the
//  machine's natural store width).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitWriter {
    words: Vec<u16>,
    bit_len: usize,
}

impl BitWriter {
    /// Creates an empty bit stream.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends the low `count` bits of `bits`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn put(&mut self, bits: u32, count: u32) {
        assert!(count <= 32);
        for i in (0..count).rev() {
            let bit = (bits >> i) & 1;
            let word = self.bit_len / 16;
            if word == self.words.len() {
                self.words.push(0);
            }
            if bit != 0 {
                self.words[word] |= 1 << (15 - (self.bit_len % 16));
            }
            self.bit_len += 1;
        }
    }

    /// Total bits written.
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// The packed words.
    pub fn words(&self) -> &[u16] {
        &self.words
    }
}

/// Bit-granular reader over a packed stream.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    words: &'a [u16],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over packed words.
    pub fn new(words: &'a [u16]) -> Self {
        BitReader { words, pos: 0 }
    }

    /// Reads one bit; `None` at end of stream.
    pub fn bit(&mut self) -> Option<u32> {
        let word = self.words.get(self.pos / 16)?;
        let bit = (word >> (15 - (self.pos % 16))) & 1;
        self.pos += 1;
        Some(u32::from(bit))
    }

    /// Reads `count` bits MSB-first.
    pub fn bits(&mut self, count: u32) -> Option<u32> {
        let mut v = 0;
        for _ in 0..count {
            v = (v << 1) | self.bit()?;
        }
        Some(v)
    }
}

/// End-of-block run symbol (no legal run reaches 64).
const EOB_RUN: u32 = 64;

fn put_unary(w: &mut BitWriter, n: u32) {
    for _ in 0..n {
        w.put(1, 1);
    }
    w.put(0, 1);
}

fn get_unary(r: &mut BitReader<'_>) -> Option<u32> {
    let mut n = 0;
    while r.bit()? == 1 {
        n += 1;
    }
    Some(n)
}

fn put_gamma(w: &mut BitWriter, v: u32) {
    debug_assert!(v >= 1);
    let bits = 32 - v.leading_zeros();
    for _ in 0..bits - 1 {
        w.put(0, 1);
    }
    w.put(v, bits);
}

fn get_gamma(r: &mut BitReader<'_>) -> Option<u32> {
    let mut zeros = 0;
    while r.bit()? == 0 {
        zeros += 1;
    }
    let rest = r.bits(zeros)?;
    Some((1 << zeros) | rest)
}

/// Encodes one zigzag-ordered quantized block, appending to `out`.
/// Returns the number of (run, level) events emitted (excluding EOB).
pub fn encode_block(block: &[i16; 64], out: &mut BitWriter) -> usize {
    let mut run = 0u32;
    let mut events = 0;
    for &c in block.iter() {
        if c == 0 {
            run += 1;
        } else {
            put_unary(out, run);
            put_gamma(out, c.unsigned_abs() as u32);
            out.put(u32::from(c < 0), 1);
            run = 0;
            events += 1;
        }
    }
    put_unary(out, EOB_RUN);
    events
}

/// Decodes one block from the reader.
pub fn decode_block(r: &mut BitReader<'_>) -> Option<[i16; 64]> {
    let mut block = [0i16; 64];
    let mut pos = 0usize;
    loop {
        let run = get_unary(r)?;
        if run >= EOB_RUN {
            return Some(block);
        }
        pos += run as usize;
        let mag = get_gamma(r)? as i16;
        let neg = r.bit()? == 1;
        if pos >= 64 {
            return None; // corrupt stream
        }
        block[pos] = if neg { -mag } else { mag };
        pos += 1;
    }
}

/// Encodes a stream of blocks; returns the bit stream and total events.
pub fn encode_blocks(blocks: &[[i16; 64]]) -> (BitWriter, usize) {
    let mut w = BitWriter::new();
    let mut events = 0;
    for b in blocks {
        events += encode_block(b, &mut w);
    }
    (w, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::quantized_blocks;

    #[test]
    fn bitwriter_packs_msb_first() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0b1, 1);
        assert_eq!(w.bit_len(), 4);
        assert_eq!(w.words()[0], 0b1011_0000_0000_0000);
    }

    #[test]
    fn gamma_round_trip() {
        let mut w = BitWriter::new();
        for v in 1..=200u32 {
            put_gamma(&mut w, v);
        }
        let mut r = BitReader::new(w.words());
        for v in 1..=200u32 {
            assert_eq!(get_gamma(&mut r), Some(v));
        }
    }

    #[test]
    fn unary_round_trip() {
        let mut w = BitWriter::new();
        for v in [0u32, 1, 5, 63, 64] {
            put_unary(&mut w, v);
        }
        let mut r = BitReader::new(w.words());
        for v in [0u32, 1, 5, 63, 64] {
            assert_eq!(get_unary(&mut r), Some(v));
        }
    }

    #[test]
    fn block_round_trip() {
        for seed in 0..20 {
            let block = crate::workload::quantized_block(seed);
            let mut w = BitWriter::new();
            encode_block(&block, &mut w);
            let mut r = BitReader::new(w.words());
            assert_eq!(decode_block(&mut r), Some(block), "seed {seed}");
        }
    }

    #[test]
    fn stream_round_trip() {
        let blocks = quantized_blocks(50, 99);
        let (w, events) = encode_blocks(&blocks);
        assert!(events > 0);
        let mut r = BitReader::new(w.words());
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(decode_block(&mut r).as_ref(), Some(b), "block {i}");
        }
    }

    #[test]
    fn sparse_blocks_compress() {
        let blocks = quantized_blocks(100, 7);
        let (w, _) = encode_blocks(&blocks);
        let raw_bits = 100 * 64 * 16;
        assert!(
            w.bit_len() < raw_bits / 4,
            "VLC beats raw PCM: {} vs {raw_bits}",
            w.bit_len()
        );
    }

    #[test]
    fn all_zero_block_is_just_eob() {
        let mut w = BitWriter::new();
        let events = encode_block(&[0i16; 64], &mut w);
        assert_eq!(events, 0);
        assert_eq!(w.bit_len(), 65); // 64 ones + terminating zero
    }
}
