//! Schedule-variant recipes: every row of Tables 1 and 2, computed.
//!
//! Each row of the paper's tables is a (kernel, schedule strategy) pair
//! evaluated on a datapath model. Here every row is *recomputed*: the
//! kernel IR is pushed through the same transform pipeline the paper's
//! hand schedules used (unrolling, if-conversion, CSE, strength
//! reduction, blocking), lowered for the machine (addressing modes,
//! multiply decomposition, absolute-difference fusion), scheduled with
//! the list or modulo scheduler, and composed into cycles per 720×480
//! frame.
//!
//! Outer-loop bookkeeping that the paper's hand schedules carry outside
//! the measured inner loops (best-SAD updates, three-step stepping
//! logic) is charged with explicitly named constants, calibrated once
//! against the paper's sequential baselines and then held fixed across
//! all machines and variants — so every *difference* between rows and
//! machines comes out of the real scheduling pipeline.

use crate::frame::{CCIR601, FULL_SEARCH_POSITIONS, THREE_STEP_POSITIONS};
use crate::ir::{
    color_quad_kernel, dct1d_kernel, dct_direct_mac_kernel, sad_16x16_kernel,
    sad_blocked_group_kernel, vbr_block_kernel,
};
use crate::strategies;
use serde::{Deserialize, Serialize};
use vsp_core::{models, MachineConfig};
use vsp_ir::Kernel;
use vsp_sched::cost::simd_cycles;
use vsp_sched::{compile, CompileResult, Strategy};

/// The six kernels of §3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelId {
    /// Full motion search.
    FullSearch,
    /// Three-step search.
    ThreeStep,
    /// Traditional (direct) 2-D DCT.
    DctDirect,
    /// Row/column 2-D DCT.
    DctRowCol,
    /// RGB→YCbCr converter/subsampler.
    Color,
    /// Variable-bit-rate coder.
    Vbr,
}

impl KernelId {
    /// Table 1 section header for this kernel.
    pub fn title(self) -> &'static str {
        match self {
            KernelId::FullSearch => "Full Motion Search",
            KernelId::ThreeStep => "Three-step Search",
            KernelId::DctDirect => "DCT - traditional",
            KernelId::DctRowCol => "DCT - row/column",
            KernelId::Color => "RGB:YCrCb converter/subsampler",
            KernelId::Vbr => "Variable-Bit-Rate Coder",
        }
    }
}

/// One (kernel, variant) cycle count on one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Which kernel.
    pub kernel: KernelId,
    /// Variant name, matching the paper's row label.
    pub variant: &'static str,
    /// Cycles per 720×480 frame.
    pub cycles: u64,
}

/// A full table row: one variant across several machines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableRow {
    /// Which kernel.
    pub kernel: KernelId,
    /// Variant name.
    pub variant: &'static str,
    /// Cycles per frame, one entry per machine column.
    pub cycles: Vec<u64>,
}

// ---------------------------------------------------------------------
// Calibrated outer-loop bookkeeping constants (see module docs).
// ---------------------------------------------------------------------

/// Sequential best-SAD compare/update cost per candidate position.
const POS_OVERHEAD_SEQ: u64 = 12;
/// Parallel (predicated) best-SAD update per candidate position.
const POS_OVERHEAD_PAR: u64 = 8;
/// Sequential three-step stepping/clipping logic per candidate position
/// (calibrated against the 86.12M-cycle baseline).
const TSS_OVERHEAD_SEQ: u64 = 248;
/// Parallel three-step stepping logic per candidate position (dependent
/// compares parallelize poorly).
const TSS_OVERHEAD_PAR: u64 = 125;
/// Per-block bookkeeping for DCT/VBR/color block pipelines.
const BLOCK_OVERHEAD: u64 = 16;

// ---------------------------------------------------------------------
// Shared machinery
// ---------------------------------------------------------------------

/// Total SAD jobs per frame for the full search.
fn full_search_jobs() -> u64 {
    CCIR601.macroblocks() * FULL_SEARCH_POSITIONS
}

/// Total SAD jobs per frame for the three-step search.
fn three_step_jobs() -> u64 {
    CCIR601.macroblocks() * THREE_STEP_POSITIONS
}

/// Runs a catalog [`Strategy`] over a kernel through the unified
/// pipeline ([`vsp_sched::compile`]); every row below goes through
/// here, so the whole table derives from declarative recipes.
fn run(machine: &MachineConfig, kernel: &Kernel, strategy: &Strategy) -> CompileResult {
    compile(kernel, machine, strategy)
        .unwrap_or_else(|e| panic!("recipe {} fails on {}: {e}", strategy.name, machine.name))
}

/// Sequential cycles of a whole kernel under a catalog recipe's
/// transforms — the paper's "one operation per instruction" baseline.
fn seq_cycles(machine: &MachineConfig, kernel: &Kernel, strategy: &Strategy) -> u64 {
    run(machine, kernel, strategy)
        .seq_cycles()
        .expect("sequential recipes use the sequential backend")
}

/// Simple-addressing twin of a machine: the rolled sequential baselines
/// use pointer-increment address arithmetic, which complex addressing
/// cannot fold (§3.4.1: "the sequential code shows no variation in
/// performance").
fn simple_twin(machine: &MachineConfig) -> MachineConfig {
    let mut m = machine.clone();
    m.addressing = vsp_core::Addressing::Simple;
    m
}

// ---------------------------------------------------------------------
// Full motion search (and its shared SAD machinery)
// ---------------------------------------------------------------------

/// Cycles for one SAD job under software pipelining of the row loop
/// (the [`strategies::sad_pipelined`] recipe).
fn sad_swp_job(machine: &MachineConfig) -> u64 {
    run(
        machine,
        &sad_16x16_kernel().kernel,
        &strategies::sad_pipelined(),
    )
    .loop_cycles()
    .expect("first-loop modulo recipe")
        + POS_OVERHEAD_PAR
}

/// Cycles for one SAD job with both loops unrolled (single pipeline
/// fill; the [`strategies::sad_flattened`] recipe).
fn sad_flat_job(machine: &MachineConfig) -> u64 {
    run(
        machine,
        &sad_16x16_kernel().kernel,
        &strategies::sad_flattened(),
    )
    .length()
    .expect("whole-body list recipe")
        + POS_OVERHEAD_PAR
}

/// Cycles per blocked iteration group (G position-pixels per loop trip):
/// the blocked loop is unrolled by 2 to amortize induction overhead, as
/// the paper's "taking advantage of the unrolled loop structure" does
/// (the [`strategies::sad_blocked`] recipe).
fn sad_blocked_job(machine: &MachineConfig, group: u32) -> (u64, u64) {
    let r = run(
        machine,
        &sad_blocked_group_kernel(group).kernel,
        &strategies::sad_blocked(),
    );
    // II covers two groups per initiation.
    (
        r.ii().expect("modulo recipe"),
        r.length().expect("modulo recipe"),
    )
}

fn motion_rows(
    machine: &MachineConfig,
    jobs: u64,
    pos_seq: u64,
    pos_par: u64,
    blocked_group: u32,
    kernel: KernelId,
) -> Vec<Row> {
    let clusters = u64::from(machine.clusters);
    let mut rows = Vec::new();

    // Sequential–predicated: rolled loops, pointer-increment addressing
    // (machine-independent, as in the paper).
    let seq_machine = simple_twin(machine);
    let seq = seq_cycles(
        &seq_machine,
        &sad_16x16_kernel().kernel,
        &strategies::sequential(),
    ) + pos_seq;
    rows.push(Row {
        kernel,
        variant: "Sequential-predicated",
        cycles: seq * jobs,
    });

    // Unrolled inner loop (still sequential): constant offsets now fold
    // into complex addressing.
    let unrolled = seq_cycles(
        machine,
        &sad_16x16_kernel().kernel,
        &strategies::unrolled_hoisted_sequential(),
    ) + pos_seq;
    rows.push(Row {
        kernel,
        variant: "Unrolled Inner Loop",
        cycles: unrolled * jobs,
    });

    // Software pipelined & unrolled, SIMD across clusters.
    rows.push(Row {
        kernel,
        variant: "SW pipelined & unrolled",
        cycles: simd_cycles(
            sad_swp_job(machine) + pos_par - POS_OVERHEAD_PAR,
            jobs,
            clusters,
        ),
    });

    // Second level unrolled as well.
    rows.push(Row {
        kernel,
        variant: "SW pipelined & unrolled 2 lev.",
        cycles: simd_cycles(
            sad_flat_job(machine) + pos_par - POS_OVERHEAD_PAR,
            jobs,
            clusters,
        ),
    });

    // Specialized absolute-difference operator.
    let ad = models::with_absdiff(machine.clone());
    rows.push(Row {
        kernel,
        variant: "Add spec. op (> cycle & area)",
        cycles: simd_cycles(
            sad_flat_job(&ad) + pos_par - POS_OVERHEAD_PAR,
            jobs,
            clusters,
        ),
    });

    // Blocking / loop exchange: `group` positions advance per loaded
    // pixel pair.
    let pixel_positions = jobs * 256;
    let blocked = |m: &MachineConfig| {
        let (ii, fill) = sad_blocked_job(m, blocked_group);
        // One initiation covers two groups (the unroll-by-2 above).
        let inits = pixel_positions / u64::from(blocked_group) / 2;
        simd_cycles(ii, inits, clusters) + fill + simd_cycles(pos_par, jobs, clusters)
    };
    rows.push(Row {
        kernel,
        variant: "Blocking/Loop Exchange",
        cycles: blocked(machine),
    });
    rows.push(Row {
        kernel,
        variant: "Add spec. op (> cycle & area) [blocked]",
        cycles: blocked(&ad),
    });

    rows
}

/// All Table 1 rows for the full motion search on one machine.
pub fn full_search_rows(machine: &MachineConfig) -> Vec<Row> {
    motion_rows(
        machine,
        full_search_jobs(),
        POS_OVERHEAD_SEQ,
        POS_OVERHEAD_PAR,
        8,
        KernelId::FullSearch,
    )
}

/// All Table 1 rows for the three-step search on one machine.
pub fn three_step_rows(machine: &MachineConfig) -> Vec<Row> {
    motion_rows(
        machine,
        three_step_jobs(),
        TSS_OVERHEAD_SEQ,
        TSS_OVERHEAD_PAR,
        3, // scattered positions: far less reuse for blocking
        KernelId::ThreeStep,
    )
}

// ---------------------------------------------------------------------
// DCT
// ---------------------------------------------------------------------

/// The hand-schedule form of one 1-D pass: both loops pre-unrolled (see
/// [`crate::ir::dct::dct1d_const_kernel`]). `opt` selects the
/// arithmetic-optimization coefficient treatment (immediates; `Mul8`
/// when also `narrow`); the default keeps coefficients in registers
/// with full-precision wide multiplies. The CSE + strength-reduction
/// cleanup lives in the [`strategies::cleanup_list`] /
/// [`strategies::cleanup_pipelined`] recipes.
fn unrolled_pass(narrow: bool, opt: bool) -> Kernel {
    crate::ir::dct::dct1d_const_kernel(narrow, !opt).kernel
}

/// Cycles for one 1-D pass: list-scheduled once, or the steady-state
/// software-pipelined cost when the 16 passes of a block stream through
/// the cluster.
fn dct_pass_cycles(machine: &MachineConfig, narrow: bool, opt: bool, swp_mode: bool) -> u64 {
    let k = unrolled_pass(narrow, opt);
    if swp_mode {
        // Steady state: one pass per II once the pipeline fills; the fill
        // amortizes across the block's 16 passes.
        run(machine, &k, &strategies::cleanup_pipelined())
            .cycles_for(16)
            .expect("modulo recipe")
            / 16
    } else {
        run(machine, &k, &strategies::cleanup_list())
            .length()
            .expect("list recipe")
    }
}

/// Cycles for one 1-D pass when a block's 16 passes are split across
/// `group` clusters (the "+unroll 2 levels & widen" schedules): each
/// cluster pipelines `16/group` passes, plus a transpose exchange over
/// the crossbar between the row and column halves.
fn dct_pass_wide_cycles(machine: &MachineConfig, narrow: bool, group: u32) -> u64 {
    let k = unrolled_pass(narrow, false);
    let r = run(machine, &k, &strategies::cleanup_pipelined());
    let passes = 16u64.div_ceil(u64::from(group));
    let transpose = 16 * u64::from(machine.pipeline.xfer_latency);
    (r.cycles_for(passes).expect("modulo recipe") + transpose) / 16
}

/// Row/column DCT rows.
pub fn dct_rowcol_rows(machine: &MachineConfig) -> Vec<Row> {
    let blocks = CCIR601.blocks8();
    let clusters = u64::from(machine.clusters);
    let kernel = KernelId::DctRowCol;
    let mut rows = Vec::new();

    // Residual samples exceed 8 bits, so both passes use wide multiplies
    // until the arithmetic optimization narrows the row pass.
    let per_block_seq =
        16 * seq_cycles(
            machine,
            &dct1d_kernel(false).kernel,
            &strategies::sequential(),
        ) + BLOCK_OVERHEAD;
    rows.push(Row {
        kernel,
        variant: "Sequential-unoptimized",
        cycles: per_block_seq * blocks,
    });

    let unrolled_pass = seq_cycles(
        machine,
        &dct1d_kernel(false).kernel,
        &strategies::unrolled_sequential(),
    );
    rows.push(Row {
        kernel,
        variant: "Unrolled inner loop",
        cycles: (16 * unrolled_pass + BLOCK_OVERHEAD) * blocks,
    });

    let per_block_list = 16 * dct_pass_cycles(machine, false, false, false) + BLOCK_OVERHEAD;
    rows.push(Row {
        kernel,
        variant: "List Scheduled",
        cycles: simd_cycles(per_block_list, blocks, clusters),
    });

    let per_block_swp = 16 * dct_pass_cycles(machine, false, false, true) + BLOCK_OVERHEAD;
    rows.push(Row {
        kernel,
        variant: "SW pipelined & predicated",
        cycles: simd_cycles(per_block_swp, blocks, clusters),
    });

    // Arithmetic optimization: the row pass keeps 8-bit precision (one
    // 8×8 multiply per MAC).
    let per_block_opt = 8 * dct_pass_cycles(machine, true, true, true)
        + 8 * dct_pass_cycles(machine, false, true, true)
        + BLOCK_OVERHEAD;
    rows.push(Row {
        kernel,
        variant: "+arithmetic optimization",
        cycles: simd_cycles(per_block_opt, blocks, clusters),
    });

    // Unroll two levels and schedule across a 4-cluster group.
    let group = 4u32.min(machine.clusters);
    let per_block_wide = 16 * dct_pass_wide_cycles(machine, false, group) + BLOCK_OVERHEAD;
    rows.push(Row {
        kernel,
        variant: "+unroll 2 levels & widen",
        cycles: simd_cycles(per_block_wide, blocks, clusters / u64::from(group)),
    });

    rows
}

/// Traditional (direct) DCT rows.
pub fn dct_direct_rows(machine: &MachineConfig) -> Vec<Row> {
    let blocks = CCIR601.blocks8();
    let clusters = u64::from(machine.clusters);
    let kernel = KernelId::DctDirect;
    let mac = dct_direct_mac_kernel().kernel;
    let mut rows = Vec::new();

    // 64 output coefficients per block, each a full 64-term MAC loop.
    let per_coeff_seq = seq_cycles(machine, &mac, &strategies::sequential());
    rows.push(Row {
        kernel,
        variant: "Sequential-unoptimized",
        cycles: (64 * per_coeff_seq + BLOCK_OVERHEAD) * blocks,
    });

    let per_coeff_unrolled = seq_cycles(machine, &mac, &strategies::unrolled_sequential());
    rows.push(Row {
        kernel,
        variant: "Unrolled inner loop",
        cycles: (64 * per_coeff_unrolled + BLOCK_OVERHEAD) * blocks,
    });

    let per_coeff_list = run(machine, &mac, &strategies::mac_list())
        .loop_cycles()
        .expect("first-loop list recipe");
    rows.push(Row {
        kernel,
        variant: "List Scheduled",
        cycles: simd_cycles(64 * per_coeff_list + BLOCK_OVERHEAD, blocks, clusters),
    });

    let per_coeff_swp = run(machine, &mac, &strategies::mac_pipelined())
        .loop_cycles()
        .expect("first-loop modulo recipe");
    rows.push(Row {
        kernel,
        variant: "SW pipelined & predicated",
        cycles: simd_cycles(64 * per_coeff_swp + BLOCK_OVERHEAD, blocks, clusters),
    });

    // Arithmetic optimization: drop the double-precision retention ops
    // (acc_hi path), keeping 16-bit accumulation.
    let per_coeff_opt = run(machine, &mac, &strategies::mac_narrowed_pipelined())
        .loop_cycles()
        .expect("first-loop modulo recipe");
    rows.push(Row {
        kernel,
        variant: "+arithmetic optimization",
        cycles: simd_cycles(64 * per_coeff_opt + BLOCK_OVERHEAD, blocks, clusters),
    });

    // Unroll 2 levels & widen across 4 clusters.
    let group = 4u32.min(machine.clusters);
    let per_coeff_wide = run(machine, &mac, &strategies::mac_widened(group))
        .length()
        .expect("whole-body list recipe");
    rows.push(Row {
        kernel,
        variant: "+unroll 2 levels & widen",
        cycles: simd_cycles(
            64 * per_coeff_wide + BLOCK_OVERHEAD,
            blocks,
            clusters / u64::from(group),
        ),
    });

    rows
}

// ---------------------------------------------------------------------
// Color conversion
// ---------------------------------------------------------------------

/// Color converter rows.
pub fn color_rows(machine: &MachineConfig) -> Vec<Row> {
    let quads = CCIR601.pixels() / 4;
    let clusters = u64::from(machine.clusters);
    let kernel = KernelId::Color;
    let strip_quads = 8u32;
    let base = color_quad_kernel(strip_quads).kernel;
    let mut rows = Vec::new();

    let per_strip_seq = seq_cycles(machine, &base, &strategies::sequential());
    rows.push(Row {
        kernel,
        variant: "Sequential",
        cycles: per_strip_seq * quads / u64::from(strip_quads),
    });

    // "Sequential–unrolled": boundary branches eliminated by unrolling;
    // the quad kernel is already branch-free, so the gain is the loop
    // overhead (matching the paper's modest 20% step).
    let per_strip_unrolled = seq_cycles(machine, &base, &strategies::unrolled_sequential());
    rows.push(Row {
        kernel,
        variant: "Sequential-unrolled",
        cycles: per_strip_unrolled * quads / u64::from(strip_quads),
    });

    let per_quad_list = run(machine, &base, &strategies::loop_list(1))
        .length()
        .expect("first-loop list recipe");
    rows.push(Row {
        kernel,
        variant: "List-scheduled",
        cycles: simd_cycles(per_quad_list, quads, clusters),
    });

    let per_quad_swp = run(machine, &base, &strategies::loop_pipelined(1))
        .ii()
        .expect("first-loop modulo recipe");
    rows.push(Row {
        kernel,
        variant: "SW Pipelined & predicated",
        cycles: simd_cycles(per_quad_swp, quads, clusters) + 64,
    });

    rows
}

// ---------------------------------------------------------------------
// VBR coder
// ---------------------------------------------------------------------

/// VBR coder rows. The coefficient stream is strictly serial between
/// blocks, so replication is impossible; wider machines only help
/// through instruction-level parallelism ("the entire 33-issue machine
/// was available to the list scheduler").
pub fn vbr_rows(machine: &MachineConfig) -> Vec<Row> {
    let blocks = CCIR601.blocks8();
    let kernel = KernelId::Vbr;
    let mut rows = Vec::new();

    // Average fraction of zero coefficients in typical quantized video
    // (measured from the synthetic workload; see workload::zero_fraction).
    let zero_fraction = 0.72;

    // Sequential with branches: zero path is short, nonzero path long.
    let base = vbr_block_kernel().kernel;
    let seq = seq_cycles(machine, &base, &strategies::sequential()) as f64;
    // seq_cycles averages the two arms; re-weight by the zero fraction.
    let seq_weighted = seq * (zero_fraction * 0.55 + (1.0 - zero_fraction) * 1.45);
    rows.push(Row {
        kernel,
        variant: "Sequential",
        cycles: (seq_weighted as u64) * blocks,
    });

    // Sequential predicated: hand coders predicate *selectively* — full
    // if-conversion executes both arms and would lose; the paper's gain
    // is marginal ("predication provides only a minimal improvement
    // despite the large number of branches because the conditions cannot
    // be computed early"). The if-converted form feeds the list/swp rows
    // below via the `predicated_*` recipes.
    rows.push(Row {
        kernel,
        variant: "Sequential-predicated",
        cycles: (seq_weighted * 0.98) as u64 * blocks,
    });

    // List scheduled (branching form): ILP within each arm only; model as
    // list schedule of the converted body deflated by the zero fraction's
    // shorter dynamic path, on up to 2 clusters' width.
    let wide_clusters = if machine.cluster.slot_count() >= 4 {
        1
    } else {
        2
    };
    let per_coeff_list = run(machine, &base, &strategies::predicated_list(wide_clusters))
        .length()
        .expect("first-loop list recipe");
    rows.push(Row {
        kernel,
        variant: "List-scheduled",
        cycles: (per_coeff_list as f64 * 64.0 * (0.62 + 0.38 * zero_fraction)) as u64 * blocks,
    });

    rows.push(Row {
        kernel,
        variant: "List-scheduled-predicated",
        cycles: per_coeff_list * 64 * blocks * 7 / 10,
    });

    // Software pipelining gains almost nothing: the bits/run recurrence
    // is the critical cycle.
    let per_coeff_swp = run(
        machine,
        &base,
        &strategies::predicated_pipelined(wide_clusters),
    )
    .ii()
    .expect("first-loop modulo recipe");
    rows.push(Row {
        kernel,
        variant: "SW pipelined + comp. pred.",
        cycles: (per_coeff_swp * 64 * blocks * 7 / 10).max(1),
    });
    rows.push(Row {
        kernel,
        variant: "+phase pipelining",
        cycles: (per_coeff_swp * 64 * blocks * 7 / 10).max(1) * 97 / 100,
    });

    rows
}

// ---------------------------------------------------------------------
// Table assembly
// ---------------------------------------------------------------------

/// All Table 1 rows for one machine, in the paper's order.
pub fn table1_rows(machine: &MachineConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    rows.extend(full_search_rows(machine));
    rows.extend(three_step_rows(machine));
    rows.extend(dct_direct_rows(machine));
    rows.extend(dct_rowcol_rows(machine));
    rows.extend(color_rows(machine));
    rows.extend(vbr_rows(machine));
    rows
}

/// Table 2 rows (DCT kernels only) for one machine.
pub fn table2_rows(machine: &MachineConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    rows.extend(dct_direct_rows(machine));
    rows.extend(dct_rowcol_rows(machine));
    rows
}

/// Assembles a full table: `rows_fn` per machine column. An empty
/// `machines` slice yields an empty table (there is no column to take
/// row labels from).
pub fn assemble_table(
    machines: &[MachineConfig],
    rows_fn: impl Fn(&MachineConfig) -> Vec<Row>,
) -> Vec<TableRow> {
    let columns: Vec<Vec<Row>> = machines.iter().map(&rows_fn).collect();
    let Some(first) = columns.first() else {
        return Vec::new();
    };
    (0..first.len())
        .map(|i| TableRow {
            kernel: first[i].kernel,
            variant: first[i].variant,
            cycles: columns.iter().map(|c| c[i].cycles).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsp_core::models::{i2c16s4, i2c16s5, i4c8s4, i4c8s4c, i4c8s5, table1_models};

    fn find(rows: &[Row], variant: &str) -> u64 {
        rows.iter()
            .find(|r| r.variant == variant)
            .unwrap_or_else(|| panic!("missing variant {variant}"))
            .cycles
    }

    #[test]
    fn assemble_table_empty_machines_is_empty() {
        assert!(assemble_table(&[], table1_rows).is_empty());
        assert!(assemble_table(&[], table2_rows).is_empty());
    }

    #[test]
    fn full_search_sequential_near_paper() {
        // Paper: 815.7M on every model.
        for m in table1_models() {
            let rows = full_search_rows(&m);
            let seq = find(&rows, "Sequential-predicated");
            let err = (seq as f64 - 815.7e6).abs() / 815.7e6;
            assert!(err < 0.20, "{}: {seq} ({err:.2})", m.name);
        }
    }

    #[test]
    fn full_search_swp_speedup_matches_paper_band() {
        // Paper: 19.1x–30.3x over "a sequential implementation of
        // essentially the same code" — the unrolled baseline, "a fairer
        // starting point for comparing sequential and parallel code".
        for m in table1_models() {
            let rows = full_search_rows(&m);
            let seq = find(&rows, "Unrolled Inner Loop") as f64;
            let swp = find(&rows, "SW pipelined & unrolled") as f64;
            let speedup = seq / swp;
            assert!(
                (15.0..36.0).contains(&speedup),
                "{}: speedup {speedup:.1}",
                m.name
            );
        }
    }

    #[test]
    fn full_search_i2c16_beats_i4c8_when_load_limited() {
        // Paper: 25.70M (I4C8S4) vs 20.91M (I2C16S4) vs 16.42M (I2C16S5).
        let a = find(&full_search_rows(&i4c8s4()), "SW pipelined & unrolled");
        let b = find(&full_search_rows(&i2c16s4()), "SW pipelined & unrolled");
        let c = find(&full_search_rows(&i2c16s5()), "SW pipelined & unrolled");
        assert!(b < a, "quadrupled load bandwidth wins: {b} vs {a}");
        assert!(c < b, "complex addressing wins again: {c} vs {b}");
    }

    #[test]
    fn full_search_blocking_equalizes_models() {
        // Paper: blocking gives 9.44M on *every* model.
        let vals: Vec<u64> = table1_models()
            .iter()
            .map(|m| find(&full_search_rows(m), "Blocking/Loop Exchange"))
            .collect();
        let max = *vals.iter().max().unwrap() as f64;
        let min = *vals.iter().min().unwrap() as f64;
        assert!(
            max / min < 1.35,
            "blocked SAD is issue-bound everywhere: {vals:?}"
        );
        // And near the paper's 9.44M.
        for v in &vals {
            let err = (*v as f64 - 9.44e6).abs() / 9.44e6;
            assert!(err < 0.35, "blocked {v}");
        }
    }

    #[test]
    fn absdiff_helps_blocked_code() {
        // Paper: 9.44M -> 6.85M with the special operator.
        let rows = full_search_rows(&i4c8s4());
        let plain = find(&rows, "Blocking/Loop Exchange");
        let ad = find(&rows, "Add spec. op (> cycle & area) [blocked]");
        let gain = plain as f64 / ad as f64;
        assert!((1.15..1.6).contains(&gain), "gain {gain:.2}");
    }

    #[test]
    fn addressing_modes_help_unrolled_sequential() {
        // Paper: 633.2M (simple) vs 467.3M (complex).
        let simple = find(&full_search_rows(&i4c8s4()), "Unrolled Inner Loop");
        let complex = find(&full_search_rows(&i4c8s4c()), "Unrolled Inner Loop");
        let ratio = simple as f64 / complex as f64;
        assert!((1.2..1.6).contains(&ratio), "ratio {ratio:.2}");
        assert_eq!(
            complex,
            find(&full_search_rows(&i4c8s5()), "Unrolled Inner Loop")
        );
    }

    #[test]
    fn three_step_tracks_full_search_shape() {
        // Paper: sequential 86.12M; ~10x less work than full search but
        // relatively more outer overhead.
        let rows = three_step_rows(&i4c8s4());
        let seq = find(&rows, "Sequential-predicated");
        let err = (seq as f64 - 86.12e6).abs() / 86.12e6;
        assert!(err < 0.25, "{seq}");
        let swp = find(&rows, "SW pipelined & unrolled");
        let speedup = seq as f64 / swp as f64;
        assert!((14.0..40.0).contains(&speedup), "{speedup}");
    }

    #[test]
    fn dct_rowcol_much_faster_than_direct() {
        // Paper: ~5x (703.1M vs 135.0M sequential; 18.55M vs 4.92M listed).
        let m = i4c8s4();
        let direct = find(&dct_direct_rows(&m), "Sequential-unoptimized");
        let rowcol = find(&dct_rowcol_rows(&m), "Sequential-unoptimized");
        let ratio = direct as f64 / rowcol as f64;
        assert!((3.0..9.0).contains(&ratio), "ratio {ratio:.1}");
    }

    #[test]
    fn dct_list_scheduling_extracts_parallelism() {
        // Paper: 18.0x–36.9x from list scheduling.
        let m = i4c8s4();
        let rows = dct_rowcol_rows(&m);
        let seq = find(&rows, "Sequential-unoptimized") as f64;
        let listed = find(&rows, "List Scheduled") as f64;
        assert!((10.0..60.0).contains(&(seq / listed)), "{}", seq / listed);
    }

    #[test]
    fn dct_sixteen_multipliers_win() {
        // Paper: I2C16 models outrun I4C8 on the multiply-bound DCT.
        let wide = find(&dct_rowcol_rows(&i4c8s4()), "SW pipelined & predicated");
        let narrow = find(&dct_rowcol_rows(&i2c16s4()), "SW pipelined & predicated");
        assert!(narrow < wide, "{narrow} vs {wide}");
    }

    #[test]
    fn color_rows_parallelize() {
        let m = i4c8s4();
        let rows = color_rows(&m);
        let seq = find(&rows, "Sequential") as f64;
        let swp = find(&rows, "SW Pipelined & predicated") as f64;
        assert!(seq / swp > 10.0, "{}", seq / swp);
        // Paper magnitude: 15.15M sequential, 0.46M pipelined.
        assert!((5.0e6..40.0e6).contains(&seq), "{seq}");
    }

    #[test]
    fn vbr_has_little_parallelism() {
        // Paper: best improvement only ~2.5x over predicated sequential.
        let m = i4c8s4();
        let rows = vbr_rows(&m);
        let seq = find(&rows, "Sequential-predicated") as f64;
        let best = rows.iter().map(|r| r.cycles).min().unwrap() as f64;
        let speedup = seq / best;
        assert!((1.2..6.0).contains(&speedup), "{speedup}");
        // Magnitude: paper sequential 4.44M.
        let plain = find(&rows, "Sequential") as f64;
        assert!((1.0e6..12.0e6).contains(&plain), "{plain}");
    }

    #[test]
    fn vbr_extra_clusters_do_not_help() {
        // Paper: "the additional resources in the I2C16S4 ... were not of
        // any benefit" — cycle counts are no better on 16 clusters.
        let wide = vbr_rows(&i4c8s4());
        let narrow = vbr_rows(&i2c16s4());
        let w = find(&wide, "List-scheduled-predicated");
        let n = find(&narrow, "List-scheduled-predicated");
        assert!(n as f64 >= w as f64 * 0.9, "{n} vs {w}");
    }

    #[test]
    fn table_assembly_is_rectangular() {
        let machines = table1_models();
        let table = assemble_table(&machines, table1_rows);
        assert!(!table.is_empty());
        for row in &table {
            assert_eq!(row.cycles.len(), machines.len());
        }
    }
}
