//! IR forms of the six kernels — what the transform and scheduling
//! pipeline consumes.
//!
//! Each builder returns the kernel plus handles to its arrays and
//! key variables so tests can stage inputs and read outputs, and so the
//! variant recipes can name the loops they transform.

pub mod color;
pub mod dct;
pub mod sad;
pub mod vbr;

pub use color::{color_quad_kernel, ColorKernel};
pub use dct::{dct1d_kernel, dct_direct_mac_kernel, Dct1dKernel};
pub use sad::{sad_16x16_kernel, sad_blocked_group_kernel, SadKernel};
pub use vbr::{vbr_block_kernel, VbrKernel};
