//! IR form of the variable-bit-rate coder.
//!
//! Computes the exact bit length of the run-length + variable-length code
//! of one zigzag-ordered block (the code of
//! [`crate::golden::vbr::encode_block`]): per nonzero coefficient the
//! stream gains `unary(run) = run+1` bits, `gamma(|level|) = 2·⌊log2⌋+1`
//! bits and one sign bit, plus the 65-bit end-of-block symbol.
//!
//! The body is dominated by compares feeding a serial `bits`/`run` chain
//! — exactly the "numerous long dependency chains and ... very limited
//! parallelism" the paper observes. The γ-length computation is a chain
//! of threshold compares with predicate materialization, the natural
//! predicated form of a priority encoder.

use vsp_ir::{ArrayId, Kernel, KernelBuilder, VarId};
use vsp_isa::{AluBinOp, AluUnOp, CmpOp};

/// Handles into the VBR kernel.
#[derive(Debug, Clone)]
pub struct VbrKernel {
    /// The kernel.
    pub kernel: Kernel,
    /// Zigzag-ordered coefficient block (64 entries).
    pub block: ArrayId,
    /// Total bit length of the encoded block (output).
    pub bits: VarId,
}

/// Builds the per-block VBR bit-length kernel.
pub fn vbr_block_kernel() -> VbrKernel {
    let mut b = KernelBuilder::new("vbr");
    let block = b.array("block", 64);
    let bits = b.var("bits");
    let run = b.var("run");
    b.set(bits, 0);
    b.set(run, 0);
    b.count_loop("i", 0, 1, 64, |b, i| {
        let c = b.load("c", block, i);
        let is_zero = b.cmp_new("isz", CmpOp::Eq, c, 0i16);
        b.if_else(
            is_zero,
            |b| {
                b.bin(run, AluBinOp::Add, run, 1i16);
            },
            |b| {
                // unary(run): run+1 bits; sign: 1 bit; gamma: 2k+1 bits
                // where k = floor(log2(|level|)) = Σ_j [|level| >= 2^j]:
                // the threshold flags sum in a shallow tree (a predicated
                // priority encoder, the natural hand-coded form).
                let mag = b.un_new("mag", AluUnOp::Abs, c);
                let flags: Vec<_> = [2i16, 4, 8, 16, 32, 64]
                    .iter()
                    .map(|&t| b.cmp_new(&format!("ge{t}"), CmpOp::Ge, mag, t))
                    .collect();
                let s1 = b.bin_new("s1", AluBinOp::Add, flags[0], flags[1]);
                let s2 = b.bin_new("s2", AluBinOp::Add, flags[2], flags[3]);
                let s3 = b.bin_new("s3", AluBinOp::Add, flags[4], flags[5]);
                let s12 = b.bin_new("s12", AluBinOp::Add, s1, s2);
                let klen = b.bin_new("klen", AluBinOp::Add, s12, s3);
                // bits += (run + 1) + (2k + 1) + 1
                let two_k = b.bin_new("two_k", AluBinOp::Add, klen, klen);
                let sym = b.bin_new("sym", AluBinOp::Add, two_k, 3i16);
                let with_run = b.bin_new("with_run", AluBinOp::Add, sym, run);
                b.bin(bits, AluBinOp::Add, bits, with_run);
                b.set(run, 0);
            },
        );
    });
    // End-of-block symbol: 65 bits (64 ones + terminator).
    b.bin(bits, AluBinOp::Add, bits, 65i16);
    VbrKernel {
        kernel: b.finish(),
        block,
        bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::vbr::{encode_block, BitWriter};
    use crate::workload::quantized_blocks;
    use vsp_ir::Interpreter;

    fn ir_bits(block: &[i16; 64], kernel: &VbrKernel) -> i16 {
        let mut interp = Interpreter::new(&kernel.kernel);
        interp.set_array(kernel.block, block.to_vec());
        interp.run().unwrap();
        interp.var_value(kernel.bits)
    }

    #[test]
    fn ir_bit_length_matches_golden_encoder() {
        let k = vbr_block_kernel();
        for (i, block) in quantized_blocks(25, 77).iter().enumerate() {
            let mut w = BitWriter::new();
            encode_block(block, &mut w);
            assert_eq!(
                ir_bits(block, &k),
                w.bit_len() as i16,
                "block {i}: {block:?}"
            );
        }
    }

    #[test]
    fn all_zero_block() {
        let k = vbr_block_kernel();
        assert_eq!(ir_bits(&[0i16; 64], &k), 65);
    }

    #[test]
    fn single_dc_block() {
        let k = vbr_block_kernel();
        let mut block = [0i16; 64];
        block[0] = 5; // gamma(5)=5 bits, run 0 -> 1, sign 1: 7 + EOB 65
        assert_eq!(ir_bits(&block, &k), 72);
    }

    #[test]
    fn if_converted_form_matches() {
        let k = vbr_block_kernel();
        let mut converted = k.kernel.clone();
        let n = vsp_ir::transform::if_convert(&mut converted);
        assert!(n >= 1);
        for block in quantized_blocks(10, 3) {
            let mut w = BitWriter::new();
            encode_block(&block, &mut w);
            let mut interp = Interpreter::new(&converted);
            interp.set_array(k.block, block.to_vec());
            interp.run().unwrap();
            assert_eq!(interp.var_value(k.bits), w.bit_len() as i16);
        }
    }

    #[test]
    fn working_set_fits() {
        let k = vbr_block_kernel();
        assert!(k.kernel.working_set_words() * 2 <= 4096);
    }
}
