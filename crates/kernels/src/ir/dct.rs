//! IR forms of the DCT kernels.

use crate::golden::dct::COS_Q6;
use vsp_ir::{ArrayId, IndexExpr, Kernel, KernelBuilder};
use vsp_isa::{AluBinOp, MulKind, ShiftOp};

/// Handles into a 1-D DCT pass kernel.
#[derive(Debug, Clone)]
pub struct Dct1dKernel {
    /// The kernel.
    pub kernel: Kernel,
    /// 8-sample input vector.
    pub input: ArrayId,
    /// Q6 coefficient table (64 entries, `C[u][x]`).
    pub coef: ArrayId,
    /// 8-coefficient output vector.
    pub output: ArrayId,
}

/// One 1-D 8-point DCT pass: `out[u] = (Σ_x C[u][x]·in[x] + 32) >> 6`.
///
/// `narrow_inputs` selects the multiply form: the row pass works on
/// centered 8-bit pixels, so the Q6-byte × pixel product fits the 8×8
/// multiplier exactly; the column pass sees up-to-11-bit intermediate
/// values and must use full 16×16 multiplies — "the DCT requires
/// multiplying numbers greater than 8 bits in length" (§3.4.3), the
/// bottleneck Table 2's `M16` machines remove.
pub fn dct1d_kernel(narrow_inputs: bool) -> Dct1dKernel {
    let mut b = KernelBuilder::new(if narrow_inputs {
        "dct1d-row"
    } else {
        "dct1d-col"
    });
    let input = b.array("in", 8);
    let coef = b.array("coef", 64);
    let output = b.array("out", 8);
    let acc = b.var("acc");
    b.count_loop("u", 0, 1, 8, |b, u| {
        let ub = b.shift_new("ub", ShiftOp::Shl, u, 3i16);
        b.set(acc, 0);
        b.count_loop("x", 0, 1, 8, |b, x| {
            let c = b.load("c", coef, IndexExpr::Sum(ub, x));
            let v = b.load("v", input, x);
            let p = if narrow_inputs {
                let p = b.var("p");
                b.assign(p, vsp_ir::Expr::Mul8(MulKind::Mul8SS, c.into(), v.into()));
                p
            } else {
                b.mul_new("p", c, v)
            };
            b.bin(acc, AluBinOp::Add, acc, p);
        });
        let rounded = b.bin_new("rnd", AluBinOp::Add, acc, 32i16);
        let scaled = b.shift_new("scl", ShiftOp::ShrA, rounded, 6i16);
        b.store(output, IndexExpr::Var(u), scaled);
    });
    Dct1dKernel {
        kernel: b.finish(),
        input,
        coef,
        output,
    }
}

/// The flattened Q6 coefficient table, ready to stage into the kernel's
/// `coef` array.
pub fn cos_table_flat() -> Vec<i16> {
    COS_Q6.iter().flatten().copied().collect()
}

/// One 1-D DCT pass in the hand-schedule form: both loops unrolled by
/// construction, with the 8 input loads shared across all outputs.
///
/// The coefficient treatment selects the multiply cost, mirroring the
/// paper's precision discussion:
///
/// * `coeff_in_regs = true` — coefficients held in registers (loaded
///   once at kernel start): every product is a full 16×16 multiply,
///   decomposed into three 8×8 partial products on the base machines and
///   retained to full precision — the "dominant performance bottleneck"
///   Table 2 attacks;
/// * `coeff_in_regs = false` — the *arithmetic optimization*: Q6
///   coefficients as immediates, so the base machines use the short
///   small-constant partial-product sequence ("using less than complete
///   16x16 multiplies"), or a single `Mul8` when `narrow_inputs` treats
///   the samples as 8-bit.
pub fn dct1d_const_kernel(narrow_inputs: bool, coeff_in_regs: bool) -> Dct1dKernel {
    let mut b = KernelBuilder::new(if narrow_inputs {
        "dct1d-const-row"
    } else {
        "dct1d-const-col"
    });
    let input = b.array("in", 8);
    let coef = b.array("coef", 64); // backing store for register-held coefficients
    let output = b.array("out", 8);
    // Register-held coefficients are live-in values (loaded once at
    // kernel start, outside the per-pass stream — callers staging data
    // set them via the interpreter/simulator).
    let mut coef_reg = std::collections::HashMap::new();
    if coeff_in_regs {
        for u in 0..8usize {
            for x in 0..8usize {
                coef_reg.insert((u, x), b.var(format!("c{u}_{x}")));
            }
        }
    }
    // Load the 8 inputs once.
    let v: Vec<_> = (0..8u16)
        .map(|x| b.load(&format!("v{x}"), input, x))
        .collect();
    for (u, cos_row) in COS_Q6.iter().enumerate() {
        let mut acc = None;
        for (x, &vx) in v.iter().enumerate() {
            let c = cos_row[x];
            let p = if let Some(&cr) = coef_reg.get(&(u, x)) {
                b.mul_new(&format!("p{u}_{x}"), vx, cr)
            } else if narrow_inputs {
                let p = b.var(format!("p{u}_{x}"));
                b.assign(
                    p,
                    vsp_ir::Expr::Mul8(MulKind::Mul8SS, vx.into(), vsp_ir::Rvalue::Const(c)),
                );
                p
            } else {
                b.mul_new(&format!("p{u}_{x}"), vx, c)
            };
            acc = Some(match acc {
                None => p,
                Some(a) => b.bin_new(&format!("a{u}_{x}"), AluBinOp::Add, a, p),
            });
        }
        let acc = acc.expect("eight terms");
        let rounded = b.bin_new(&format!("rnd{u}"), AluBinOp::Add, acc, 32i16);
        let scaled = b.shift_new(&format!("scl{u}"), ShiftOp::ShrA, rounded, 6i16);
        b.store(output, u as u16, scaled);
    }
    Dct1dKernel {
        kernel: b.finish(),
        input,
        coef,
        output,
    }
}

/// The direct (traditional) 2-D DCT's innermost MAC body, as a kernel
/// over one output coefficient: 64 terms, each requiring two coefficient
/// loads, an 8×8 coefficient product, a wide multiply by the pixel and a
/// double-precision accumulate — the cost structure that makes the
/// traditional form ~5× slower than row/column.
///
/// (Used by the cycle model; the numeric output wraps at 16 bits where
/// the golden model carries 32, as the paper's machines would without
/// multi-precision code — the variant recipes charge the retention
/// operations explicitly.)
pub fn dct_direct_mac_kernel() -> Dct1dKernel {
    let mut b = KernelBuilder::new("dct-direct-mac");
    let input = b.array("in", 64);
    let coef = b.array("coef", 64);
    let output = b.array("out", 64);
    let acc_lo = b.var("acc_lo");
    let acc_hi = b.var("acc_hi");
    b.set(acc_lo, 0);
    b.set(acc_hi, 0);
    b.count_loop("x", 0, 1, 8, |b, x| {
        let xb = b.shift_new("xb", ShiftOp::Shl, x, 3i16);
        b.count_loop("y", 0, 1, 8, |b, y| {
            let cu = b.load("cu", coef, IndexExpr::Var(y));
            let cv = b.load("cv", coef, IndexExpr::Var(x));
            // Q12 combined coefficient (both factors are Q6 bytes).
            let cc = b.var("cc");
            b.assign(
                cc,
                vsp_ir::Expr::Mul8(MulKind::Mul8SS, cu.into(), cv.into()),
            );
            let v = b.load("v", input, IndexExpr::Sum(xb, y));
            let p = b.mul_new("p", cc, v);
            // Double-precision retention: low accumulate plus a high-part
            // correction term.
            let hi = b.shift_new("hi", ShiftOp::ShrA, p, 8i16);
            b.bin(acc_lo, AluBinOp::Add, acc_lo, p);
            b.bin(acc_hi, AluBinOp::Add, acc_hi, hi);
        });
    });
    let out = b.shift_new("res", ShiftOp::ShrA, acc_hi, 4i16);
    b.store(output, 0u16, out);
    Dct1dKernel {
        kernel: b.finish(),
        input,
        coef,
        output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::dct::dct8x8_rowcol;
    use crate::workload::synthetic_luma_frame;
    use vsp_ir::Interpreter;

    /// Golden 1-D pass (mirrors the private dct_1d in golden::dct).
    fn golden_1d(input: &[i16; 8]) -> [i16; 8] {
        let mut out = [0i16; 8];
        for (u, o) in out.iter_mut().enumerate() {
            let mut acc = 0i32;
            for (x, &v) in input.iter().enumerate() {
                acc += i32::from(COS_Q6[u][x]) * i32::from(v);
            }
            *o = ((acc + 32) >> 6) as i16;
        }
        out
    }

    #[test]
    fn row_pass_matches_golden_exactly() {
        // Centered 8-bit pixels: 16-bit accumulation is exact, so the IR
        // (Mul8-based) pass must equal the golden i32 math bit for bit.
        let f = synthetic_luma_frame(8, 8, 31);
        let row: [i16; 8] = core::array::from_fn(|i| f[i] - 128);
        let expect = golden_1d(&row);

        let k = dct1d_kernel(true);
        let mut interp = Interpreter::new(&k.kernel);
        interp.set_array(k.input, row.to_vec());
        interp.set_array(k.coef, cos_table_flat());
        interp.run().unwrap();
        assert_eq!(interp.array(k.output), &expect[..]);
    }

    #[test]
    fn wide_pass_matches_when_in_range() {
        // Small inputs: the wide-mul pass is also exact.
        let row: [i16; 8] = [5, -3, 7, 0, -2, 9, -8, 1];
        let expect = golden_1d(&row);
        let k = dct1d_kernel(false);
        let mut interp = Interpreter::new(&k.kernel);
        interp.set_array(k.input, row.to_vec());
        interp.set_array(k.coef, cos_table_flat());
        interp.run().unwrap();
        assert_eq!(interp.array(k.output), &expect[..]);
    }

    #[test]
    fn two_ir_passes_match_golden_rowcol() {
        // Run the row pass on each row, then the column pass, entirely in
        // the interpreter, and compare against the golden 2-D transform.
        // Moderate amplitude so the 16-bit column accumulation is exact
        // (the machine kernels handle full range with the explicit
        // double-precision retention the cycle model charges for).
        let f = synthetic_luma_frame(8, 8, 17);
        let block: [i16; 64] = core::array::from_fn(|i| (f[i] - 128) / 4);
        let expect = dct8x8_rowcol(&block);

        let row_k = dct1d_kernel(true);
        let col_k = dct1d_kernel(false);
        let mut tmp = [0i16; 64];
        for r in 0..8 {
            let mut interp = Interpreter::new(&row_k.kernel);
            interp.set_array(row_k.input, block[r * 8..r * 8 + 8].to_vec());
            interp.set_array(row_k.coef, cos_table_flat());
            interp.run().unwrap();
            tmp[r * 8..r * 8 + 8].copy_from_slice(interp.array(row_k.output));
        }
        let mut got = [0i16; 64];
        for c in 0..8 {
            let col: Vec<i16> = (0..8).map(|r| tmp[r * 8 + c]).collect();
            let mut interp = Interpreter::new(&col_k.kernel);
            interp.set_array(col_k.input, col);
            interp.set_array(col_k.coef, cos_table_flat());
            interp.run().unwrap();
            for r in 0..8 {
                got[r * 8 + c] = interp.array(col_k.output)[r];
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn working_set_fits() {
        for k in [dct1d_kernel(true).kernel, dct_direct_mac_kernel().kernel] {
            assert!(k.working_set_words() * 2 <= 4096, "{}", k.name);
        }
    }
}
