//! IR forms of the motion-search SAD computation.

use vsp_ir::{ArrayId, IndexExpr, Kernel, KernelBuilder, VarId};
use vsp_isa::{AluBinOp, ShiftOp};

/// Word offset of the candidate reference block within the kernel's
/// pixel buffer (current block at 0, reference block right after).
pub const REF_OFFSET: i16 = 256;

/// Handles into the SAD kernel.
#[derive(Debug, Clone)]
pub struct SadKernel {
    /// The kernel.
    pub kernel: Kernel,
    /// Pixel buffer: current block at words `0..256`, candidate reference
    /// block at words `256..512` (one buffer, pointer-addressed, as the
    /// paper's code keeps both operands in the cluster's single local
    /// memory).
    pub pixels: ArrayId,
    /// Accumulated SAD (output).
    pub acc: VarId,
}

/// The canonical SAD inner computation of §3.4.1: a row loop over a
/// column loop, each iteration doing "two loads, two address
/// calculations, and several arithmetic operations on the pixel data".
///
/// Row bases for both blocks are rebuilt per row (a shift and an add);
/// the per-column accesses are `base + column` sums that fold into
/// indexed addressing on complex-addressing machines and cost one
/// explicit addition each on the others.
pub fn sad_16x16_kernel() -> SadKernel {
    let mut b = KernelBuilder::new("sad16x16");
    let pixels = b.array("pixels", 512);
    let acc = b.var("acc");
    b.set(acc, 0);
    b.count_loop("r", 0, 1, 16, |b, r| {
        let rb = b.shift_new("rb", ShiftOp::Shl, r, 4i16);
        let rb_ref = b.bin_new("rb_ref", AluBinOp::Add, rb, REF_OFFSET);
        b.count_loop("c", 0, 1, 16, |b, c| {
            let x = b.load("x", pixels, IndexExpr::Sum(rb, c));
            let y = b.load("y", pixels, IndexExpr::Sum(rb_ref, c));
            let d = b.bin_new("d", AluBinOp::AbsDiff, x, y);
            b.bin(acc, AluBinOp::Add, acc, d);
        });
    });
    SadKernel {
        kernel: b.finish(),
        pixels,
        acc,
    }
}

/// The blocked/loop-exchanged SAD body of the "Blocking/Loop Exchange"
/// rows: `group` candidate positions advance together through the pixel
/// stream so each loaded (current, reference) pixel pair feeds `group`
/// accumulators, eliminating "more than 90% of the load operations".
///
/// The body is the real dataflow of the blocked loop (one load pair, a
/// register-resident window, `group` absolute-difference/accumulate
/// chains); the surrounding loop-exchange bookkeeping is charged by the
/// variant recipes.
pub fn sad_blocked_group_kernel(group: u32) -> SadKernel {
    assert!(group >= 1);
    let mut b = KernelBuilder::new("sad-blocked");
    let pixels = b.array("pixels", 768); // current block + widened window
    let accs: Vec<VarId> = (0..group).map(|p| b.var(format!("acc{p}"))).collect();
    for &a in &accs {
        b.set(a, 0);
    }
    let acc = accs[0];
    // Register-resident current-block window: position p compares its own
    // window register against the streamed reference pixel (the window
    // rotation itself is free under software-pipelined register
    // renaming). Distinct registers per position keep the dataflow — and
    // the operation count — honest under CSE.
    let window: Vec<VarId> = (1..group).map(|p| b.var(format!("w{p}"))).collect();
    for (p, &w) in window.iter().enumerate() {
        b.set(w, p as i16);
    }
    let ref_base = b.var("ref_base");
    b.set(ref_base, REF_OFFSET);
    b.count_loop("i", 0, 1, 256, |b, i| {
        let x = b.load("x", pixels, i);
        let y = b.load("y", pixels, IndexExpr::Sum(ref_base, i));
        let d0 = b.bin_new("d0", AluBinOp::AbsDiff, x, y);
        b.bin(accs[0], AluBinOp::Add, accs[0], d0);
        for (p, &w) in window.iter().enumerate() {
            let d = b.bin_new(&format!("d{}", p + 1), AluBinOp::AbsDiff, w, y);
            b.bin(accs[p + 1], AluBinOp::Add, accs[p + 1], d);
        }
    });
    SadKernel {
        kernel: b.finish(),
        pixels,
        acc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::motion::sad_16x16;
    use crate::workload::synthetic_luma_frame;
    use vsp_ir::Interpreter;

    /// Stages current and reference 16×16 blocks into the 512-word pixel
    /// buffer layout.
    fn staged(
        cur_frame: &[i16],
        ref_frame: &[i16],
        width: usize,
        cx: usize,
        cy: usize,
        dx: i32,
        dy: i32,
    ) -> Vec<i16> {
        let mut buf = vec![0i16; 512];
        let rx = (cx as i32 + dx) as usize;
        let ry = (cy as i32 + dy) as usize;
        for r in 0..16 {
            for c in 0..16 {
                buf[r * 16 + c] = cur_frame[(cy + r) * width + cx + c];
                buf[256 + r * 16 + c] = ref_frame[(ry + r) * width + rx + c];
            }
        }
        buf
    }

    #[test]
    fn ir_sad_matches_golden() {
        let cur_frame = synthetic_luma_frame(64, 48, 21);
        let ref_frame = synthetic_luma_frame(64, 48, 22);
        let sad = sad_16x16_kernel();
        for (cx, cy, dx, dy) in [
            (16usize, 16usize, 0i32, 0i32),
            (16, 16, 3, -4),
            (32, 16, -8, 8),
        ] {
            let golden = sad_16x16(&cur_frame, &ref_frame, 64, cx, cy, dx, dy);
            let mut interp = Interpreter::new(&sad.kernel);
            interp.set_array(
                sad.pixels,
                staged(&cur_frame, &ref_frame, 64, cx, cy, dx, dy),
            );
            interp.run().unwrap();
            assert_eq!(interp.var_value(sad.acc) as u32, golden);
        }
    }

    #[test]
    fn ir_sad_survives_transform_pipeline() {
        // Unroll + CSE + LICM must not change the result.
        let cur_frame = synthetic_luma_frame(32, 32, 5);
        let ref_frame = synthetic_luma_frame(32, 32, 6);
        let sad = sad_16x16_kernel();
        let buf = staged(&cur_frame, &ref_frame, 32, 8, 8, 2, 1);
        let golden = {
            let mut i = Interpreter::new(&sad.kernel);
            i.set_array(sad.pixels, buf.clone());
            i.run().unwrap();
            i.var_value(sad.acc)
        };
        let mut k = sad.kernel.clone();
        vsp_ir::transform::unroll_innermost(&mut k, 16);
        vsp_ir::transform::eliminate_common_subexpressions(&mut k);
        vsp_ir::transform::hoist_invariants(&mut k);
        let mut i = Interpreter::new(&k);
        i.set_array(sad.pixels, buf);
        i.run().unwrap();
        assert_eq!(i.var_value(sad.acc), golden);
    }

    #[test]
    fn blocked_kernel_has_group_accumulators() {
        let k = sad_blocked_group_kernel(8);
        assert!(k.kernel.stmt_count() > 8);
        let mut interp = Interpreter::new(&k.kernel);
        let mut buf = vec![7i16; 768];
        buf[..256].fill(10);
        interp.set_array(k.pixels, buf);
        interp.run().unwrap();
        assert_eq!(interp.var_value(k.acc), 256 * 3);
    }

    #[test]
    fn working_sets_fit_every_cluster_memory() {
        // §4: "the working set for these typical VSP algorithms never
        // exceeded 4K bytes/cluster".
        for k in [
            sad_16x16_kernel().kernel,
            sad_blocked_group_kernel(8).kernel,
        ] {
            assert!(k.working_set_words() * 2 <= 4096, "{}", k.name);
        }
    }
}
