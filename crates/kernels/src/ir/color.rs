//! IR form of the RGB→YCbCr 4:2:0 converter.
//!
//! Works on planar R/G/B arrays one 2×2 quad at a time, using Q7
//! coefficients so every intermediate sum fits the 16-bit datapath
//! exactly (`111 · 255 < 2¹⁵`). The golden Q8 converter agrees within
//! ±2 codes; the Q7 golden twin in the tests agrees bit for bit.

use vsp_ir::{ArrayId, IndexExpr, Kernel, KernelBuilder};
use vsp_isa::{AluBinOp, ShiftOp};

/// Handles into the color-conversion kernel.
#[derive(Debug, Clone)]
pub struct ColorKernel {
    /// The kernel.
    pub kernel: Kernel,
    /// Planar red samples (one 16×2 strip: 2 rows of quads).
    pub r: ArrayId,
    /// Planar green samples.
    pub g: ArrayId,
    /// Planar blue samples.
    pub b: ArrayId,
    /// Luma output (same layout as inputs).
    pub y: ArrayId,
    /// Cb output (one per quad).
    pub cb: ArrayId,
    /// Cr output (one per quad).
    pub cr: ArrayId,
    /// Quads processed per kernel invocation.
    pub quads: u32,
}

/// Q7 luma coefficients: `Y = ((33R + 65G + 13B + 64) >> 7) + 16`.
pub const Y_COEF: [i16; 3] = [33, 65, 13];
/// Q7 Cb coefficients: `Cb = ((-19R - 37G + 56B + 64) >> 7) + 128`.
pub const CB_COEF: [i16; 3] = [-19, -37, 56];
/// Q7 Cr coefficients: `Cr = ((56R - 47G - 9B + 64) >> 7) + 128`.
pub const CR_COEF: [i16; 3] = [56, -47, -9];

/// Reference Q7 conversion for one pixel (the golden twin of the IR).
pub fn q7_ycbcr(r: i16, g: i16, b: i16) -> (i16, i16, i16) {
    let dot = |c: [i16; 3]| -> i16 {
        ((i32::from(c[0]) * i32::from(r)
            + i32::from(c[1]) * i32::from(g)
            + i32::from(c[2]) * i32::from(b)
            + 64)
            >> 7) as i16
    };
    (dot(Y_COEF) + 16, dot(CB_COEF) + 128, dot(CR_COEF) + 128)
}

/// Builds the converter over a strip of `quads` 2×2 quads stored as two
/// interleaved rows: pixel `(q, dy, dx)` lives at `q*2 + dy*stride + dx`
/// with `stride = 2*quads`.
pub fn color_quad_kernel(quads: u32) -> ColorKernel {
    let stride = (2 * quads) as i16;
    let mut bd = KernelBuilder::new("rgb2ycbcr420");
    let r = bd.array("r", 4 * quads);
    let g = bd.array("g", 4 * quads);
    let b = bd.array("b", 4 * quads);
    let y = bd.array("y", 4 * quads);
    let cb = bd.array("cb", quads);
    let cr = bd.array("cr", quads);

    bd.count_loop("q", 0, 2, quads, |bd, q| {
        // q steps by 2: it is also the left pixel's column offset.
        let mut rsum = bd.var("rsum");
        let mut gsum = bd.var("gsum");
        let mut bsum = bd.var("bsum");
        bd.set(rsum, 0);
        bd.set(gsum, 0);
        bd.set(bsum, 0);
        for dy in 0..2i16 {
            for dx in 0..2i16 {
                let off = dy * stride + dx;
                let rv = bd.load(&format!("r{dy}{dx}"), r, IndexExpr::Offset(q, off));
                let gv = bd.load(&format!("g{dy}{dx}"), g, IndexExpr::Offset(q, off));
                let bv = bd.load(&format!("b{dy}{dx}"), b, IndexExpr::Offset(q, off));
                // Y = ((33R + 65G + 13B + 64) >> 7) + 16
                let t0 = bd.mul_new("t0", rv, Y_COEF[0]);
                let t1 = bd.mul_new("t1", gv, Y_COEF[1]);
                let t2 = bd.mul_new("t2", bv, Y_COEF[2]);
                let s0 = bd.bin_new("s0", AluBinOp::Add, t0, t1);
                let s1 = bd.bin_new("s1", AluBinOp::Add, s0, t2);
                let s2 = bd.bin_new("s2", AluBinOp::Add, s1, 64i16);
                let sh = bd.shift_new("sh", ShiftOp::ShrA, s2, 7i16);
                let yv = bd.bin_new("yv", AluBinOp::Add, sh, 16i16);
                bd.store(y, IndexExpr::Offset(q, off), yv);
                // Chroma pre-averaging sums.
                rsum = bd.bin(rsum, AluBinOp::Add, rsum, rv);
                gsum = bd.bin(gsum, AluBinOp::Add, gsum, gv);
                bsum = bd.bin(bsum, AluBinOp::Add, bsum, bv);
            }
        }
        // Averages with rounding.
        let ravg = {
            let t = bd.bin_new("ra0", AluBinOp::Add, rsum, 2i16);
            bd.shift_new("ravg", ShiftOp::ShrA, t, 2i16)
        };
        let gavg = {
            let t = bd.bin_new("ga0", AluBinOp::Add, gsum, 2i16);
            bd.shift_new("gavg", ShiftOp::ShrA, t, 2i16)
        };
        let bavg = {
            let t = bd.bin_new("ba0", AluBinOp::Add, bsum, 2i16);
            bd.shift_new("bavg", ShiftOp::ShrA, t, 2i16)
        };
        // Chroma conversions (chroma index = q/2).
        let ci = bd.shift_new("ci", ShiftOp::ShrA, q, 1i16);
        for (name, coef, bias, out) in [("cb", CB_COEF, 128i16, cb), ("cr", CR_COEF, 128i16, cr)] {
            let t0 = bd.mul_new(&format!("{name}0"), ravg, coef[0]);
            let t1 = bd.mul_new(&format!("{name}1"), gavg, coef[1]);
            let t2 = bd.mul_new(&format!("{name}2"), bavg, coef[2]);
            let s0 = bd.bin_new(&format!("{name}s0"), AluBinOp::Add, t0, t1);
            let s1 = bd.bin_new(&format!("{name}s1"), AluBinOp::Add, s0, t2);
            let s2 = bd.bin_new(&format!("{name}s2"), AluBinOp::Add, s1, 64i16);
            let sh = bd.shift_new(&format!("{name}sh"), ShiftOp::ShrA, s2, 7i16);
            let v = bd.bin_new(&format!("{name}v"), AluBinOp::Add, sh, bias);
            bd.store(out, IndexExpr::Var(ci), v);
        }
    });

    ColorKernel {
        kernel: bd.finish(),
        r,
        g,
        b,
        y,
        cb,
        cr,
        quads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::color::rgb_to_ycbcr_420;
    use crate::workload::synthetic_rgb_frame;
    use vsp_ir::Interpreter;

    fn planar(rgb: &[i16]) -> (Vec<i16>, Vec<i16>, Vec<i16>) {
        let n = rgb.len() / 3;
        let mut r = Vec::with_capacity(n);
        let mut g = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        for p in 0..n {
            r.push(rgb[3 * p]);
            g.push(rgb[3 * p + 1]);
            b.push(rgb[3 * p + 2]);
        }
        (r, g, b)
    }

    #[test]
    fn ir_matches_q7_twin_exactly() {
        let quads = 8u32;
        let width = 2 * quads as usize;
        let rgb = synthetic_rgb_frame(width, 2, 41);
        let (r, g, b) = planar(&rgb);
        let k = color_quad_kernel(quads);
        let mut interp = Interpreter::new(&k.kernel);
        interp.set_array(k.r, r.clone());
        interp.set_array(k.g, g.clone());
        interp.set_array(k.b, b.clone());
        interp.run().unwrap();

        for p in 0..width * 2 {
            let (ey, _, _) = q7_ycbcr(r[p], g[p], b[p]);
            assert_eq!(interp.array(k.y)[p], ey, "pixel {p}");
        }
        for q in 0..quads as usize {
            let mut rs = 0i32;
            let mut gs = 0i32;
            let mut bs = 0i32;
            for dy in 0..2 {
                for dx in 0..2 {
                    let p = q * 2 + dy * width + dx;
                    rs += i32::from(r[p]);
                    gs += i32::from(g[p]);
                    bs += i32::from(b[p]);
                }
            }
            let (ra, ga, ba) = (
                ((rs + 2) >> 2) as i16,
                ((gs + 2) >> 2) as i16,
                ((bs + 2) >> 2) as i16,
            );
            let (_, ecb, ecr) = q7_ycbcr(ra, ga, ba);
            assert_eq!(interp.array(k.cb)[q], ecb, "quad {q}");
            assert_eq!(interp.array(k.cr)[q], ecr, "quad {q}");
        }
    }

    #[test]
    fn q7_agrees_with_golden_q8_within_2() {
        let rgb = synthetic_rgb_frame(16, 4, 13);
        let golden = rgb_to_ycbcr_420(&rgb, 16, 4);
        for p in 0..16 * 4 {
            let (y, _, _) = q7_ycbcr(rgb[3 * p], rgb[3 * p + 1], rgb[3 * p + 2]);
            assert!(
                (y - golden.y[p]).abs() <= 2,
                "pixel {p}: q7 {y} vs q8 {}",
                golden.y[p]
            );
        }
    }

    #[test]
    fn working_set_fits() {
        let k = color_quad_kernel(8);
        assert!(k.kernel.working_set_words() * 2 <= 4096);
    }
}
