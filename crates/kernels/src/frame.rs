//! Frame geometry constants for the paper's workload.
//!
//! Table 1 reports cycles per **720×480** pixel frame (CCIR-601 active
//! resolution). The derived quantities below are used by every variant
//! recipe.

use serde::{Deserialize, Serialize};

/// Dimensions of a video frame and its decompositions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameDims {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl FrameDims {
    /// Creates frame dimensions.
    pub fn new(width: u32, height: u32) -> Self {
        FrameDims { width, height }
    }

    /// Total pixels.
    pub fn pixels(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }

    /// 16×16 macroblocks per frame.
    pub fn macroblocks(&self) -> u64 {
        u64::from(self.width / 16) * u64::from(self.height / 16)
    }

    /// 8×8 blocks per frame.
    pub fn blocks8(&self) -> u64 {
        u64::from(self.width / 8) * u64::from(self.height / 8)
    }
}

/// The paper's CCIR-601 frame: 720×480.
pub const CCIR601: FrameDims = FrameDims {
    width: 720,
    height: 480,
};

/// Full-search motion window of ±[`SEARCH_RANGE`] pixels.
pub const SEARCH_RANGE: u32 = 8;

/// Candidate positions per macroblock for the full search:
/// (2·range + 1)².
pub const FULL_SEARCH_POSITIONS: u64 = (2 * SEARCH_RANGE as u64 + 1).pow(2);

/// Candidate positions per macroblock for the three-step search:
/// 9 + 8 + 8 (the center is reused between steps).
pub const THREE_STEP_POSITIONS: u64 = 25;

/// Frame rate used for the real-time headroom conclusions (§4).
pub const FRAME_RATE_HZ: f64 = 30.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ccir601_decompositions() {
        assert_eq!(CCIR601.pixels(), 345_600);
        assert_eq!(CCIR601.macroblocks(), 45 * 30);
        assert_eq!(CCIR601.blocks8(), 90 * 60);
    }

    #[test]
    fn search_window_matches_calibration() {
        // 1350 MB x 289 positions x 256 pixels ~ 99.88M SAD iterations, the
        // scale behind the paper's 815.7M-cycle sequential baseline.
        assert_eq!(FULL_SEARCH_POSITIONS, 289);
        let iters = CCIR601.macroblocks() * FULL_SEARCH_POSITIONS * 256;
        assert_eq!(iters, 99_878_400);
    }
}
