//! The named [`Strategy`] catalog behind every Table 1/Table 2 row.
//!
//! Each of the paper's hand-schedule progressions — "unrolled inner
//! loop", "SW pipelined & unrolled", "+arithmetic optimization", … — is
//! one declarative recipe here: an ordered list of IR passes, a
//! schedule scope, and a scheduler choice, fed through
//! [`vsp_sched::compile`] by [`crate::variants`]. Because the recipes
//! are plain serializable data, the same catalog drives the
//! `explore-strategies` sweeps and the pipeline smoke tests: techniques
//! the paper combined by hand can now be recombined freely.
//!
//! Parameterized constructors (cluster groups, unroll factors) default
//! to the values the paper's rows use; [`catalog`] lists one instance
//! of every recipe, and [`by_name`] resolves the default instances.

use vsp_sched::pipeline::{PassConfig, ScheduleScope, SchedulerChoice, Strategy};

/// II search budget above MII used by every pipelined recipe (matches
/// the historical hand-wired `modulo_schedule(.., 64)` calls).
pub const II_SEARCH: u32 = 64;

/// The paper's sequential baseline: one operation per instruction, no
/// transforms.
pub fn sequential() -> Strategy {
    Strategy::new(
        "sequential",
        ScheduleScope::WholeBody,
        SchedulerChoice::Sequential,
    )
}

/// "Unrolled inner loop", still sequential: full unroll + CSE +
/// strength reduction (the DCT/color flavor, without invariant
/// hoisting).
pub fn unrolled_sequential() -> Strategy {
    Strategy::new(
        "unroll+cleanup/seq",
        ScheduleScope::WholeBody,
        SchedulerChoice::Sequential,
    )
    .then(PassConfig::Unroll { factor: None })
    .then(PassConfig::Cse)
    .then(PassConfig::StrengthReduce)
}

/// The SAD flavor of the unrolled sequential baseline: cleanup plus
/// loop-invariant hoisting (the reference-row base address).
pub fn unrolled_hoisted_sequential() -> Strategy {
    Strategy::new(
        "unroll+cleanup+licm/seq",
        ScheduleScope::WholeBody,
        SchedulerChoice::Sequential,
    )
    .then(PassConfig::Unroll { factor: None })
    .then(PassConfig::Cse)
    .then(PassConfig::StrengthReduce)
    .then(PassConfig::Licm)
}

/// "SW pipelined & unrolled": the unrolled-and-cleaned SAD row loop,
/// modulo scheduled on one cluster.
pub fn sad_pipelined() -> Strategy {
    Strategy::new(
        "sad-swp",
        ScheduleScope::FirstLoop,
        SchedulerChoice::Modulo {
            clusters_used: 1,
            ii_search: II_SEARCH,
        },
    )
    .then(PassConfig::Unroll { factor: None })
    .then(PassConfig::Cse)
    .then(PassConfig::StrengthReduce)
    .then(PassConfig::Licm)
}

/// "SW pipelined & unrolled 2 lev.": both SAD loops fully unrolled
/// (one pipeline fill), list scheduled as a single block.
pub fn sad_flattened() -> Strategy {
    Strategy::new(
        "sad-flat",
        ScheduleScope::WholeBody,
        SchedulerChoice::List { clusters_used: 1 },
    )
    .then(PassConfig::Unroll { factor: None })
    .then(PassConfig::Cse)
    .then(PassConfig::StrengthReduce)
    .then(PassConfig::Licm)
    .then(PassConfig::Unroll { factor: None })
    .then(PassConfig::Cse)
    .then(PassConfig::StrengthReduce)
}

/// "Blocking/Loop Exchange": the blocked-group SAD loop unrolled by 2
/// (amortizing induction overhead), modulo scheduled.
pub fn sad_blocked() -> Strategy {
    Strategy::new(
        "sad-blocked",
        ScheduleScope::FirstLoop,
        SchedulerChoice::Modulo {
            clusters_used: 1,
            ii_search: II_SEARCH,
        },
    )
    .then(PassConfig::Unroll { factor: Some(2) })
    .then(PassConfig::Cse)
}

/// A pre-unrolled 1-D DCT pass, cleaned up and list scheduled whole.
pub fn cleanup_list() -> Strategy {
    Strategy::new(
        "cleanup/list",
        ScheduleScope::WholeBody,
        SchedulerChoice::List { clusters_used: 1 },
    )
    .then(PassConfig::Cse)
    .then(PassConfig::StrengthReduce)
}

/// A pre-unrolled 1-D DCT pass, cleaned up and modulo scheduled whole
/// (passes stream through the cluster).
pub fn cleanup_pipelined() -> Strategy {
    Strategy::new(
        "cleanup/swp",
        ScheduleScope::WholeBody,
        SchedulerChoice::Modulo {
            clusters_used: 1,
            ii_search: II_SEARCH,
        },
    )
    .then(PassConfig::Cse)
    .then(PassConfig::StrengthReduce)
}

/// The direct-DCT MAC loop: inner loop fully unrolled, list scheduled
/// over its remaining (coefficient) loop.
pub fn mac_list() -> Strategy {
    Strategy::new(
        "mac/list",
        ScheduleScope::FirstLoop,
        SchedulerChoice::List { clusters_used: 1 },
    )
    .then(PassConfig::Unroll { factor: None })
    .then(PassConfig::Cse)
    .then(PassConfig::StrengthReduce)
}

/// The direct-DCT MAC loop, software pipelined.
pub fn mac_pipelined() -> Strategy {
    Strategy::new(
        "mac/swp",
        ScheduleScope::FirstLoop,
        SchedulerChoice::Modulo {
            clusters_used: 1,
            ii_search: II_SEARCH,
        },
    )
    .then(PassConfig::Unroll { factor: None })
    .then(PassConfig::Cse)
    .then(PassConfig::StrengthReduce)
}

/// "+arithmetic optimization" on the direct DCT: drop the
/// double-precision retention chain (`acc_hi`/`hi`) before unrolling
/// and pipelining.
pub fn mac_narrowed_pipelined() -> Strategy {
    Strategy::new(
        "mac-narrow/swp",
        ScheduleScope::FirstLoop,
        SchedulerChoice::Modulo {
            clusters_used: 1,
            ii_search: II_SEARCH,
        },
    )
    .then(PassConfig::StripVars {
        vars: vec!["acc_hi".into(), "hi".into()],
    })
    .then(PassConfig::Unroll { factor: None })
    .then(PassConfig::Cse)
    .then(PassConfig::StrengthReduce)
}

/// "+unroll 2 levels & widen" on the direct DCT: both loops unrolled,
/// list scheduled across a cluster group.
pub fn mac_widened(group: u32) -> Strategy {
    Strategy::new(
        "mac-wide/list",
        ScheduleScope::WholeBody,
        SchedulerChoice::List {
            clusters_used: group,
        },
    )
    .then(PassConfig::Unroll { factor: None })
    .then(PassConfig::Unroll { factor: None })
    .then(PassConfig::Cse)
    .then(PassConfig::StrengthReduce)
}

/// List-schedule the kernel's first loop as-is (the color converter's
/// quad loop).
pub fn loop_list(clusters_used: u32) -> Strategy {
    Strategy::new(
        "loop/list",
        ScheduleScope::FirstLoop,
        SchedulerChoice::List { clusters_used },
    )
}

/// Software-pipeline the kernel's first loop as-is.
pub fn loop_pipelined(clusters_used: u32) -> Strategy {
    Strategy::new(
        "loop/swp",
        ScheduleScope::FirstLoop,
        SchedulerChoice::Modulo {
            clusters_used,
            ii_search: II_SEARCH,
        },
    )
}

/// If-convert (predicate) the kernel, then list-schedule its first
/// loop — the VBR coder's branching coefficient loop.
pub fn predicated_list(clusters_used: u32) -> Strategy {
    Strategy::new(
        "predicate/list",
        ScheduleScope::FirstLoop,
        SchedulerChoice::List { clusters_used },
    )
    .then(PassConfig::IfConvert)
    .then(PassConfig::Cse)
}

/// If-convert the kernel, then software-pipeline its first loop.
pub fn predicated_pipelined(clusters_used: u32) -> Strategy {
    Strategy::new(
        "predicate/swp",
        ScheduleScope::FirstLoop,
        SchedulerChoice::Modulo {
            clusters_used,
            ii_search: II_SEARCH,
        },
    )
    .then(PassConfig::IfConvert)
    .then(PassConfig::Cse)
}

/// One instance of every named recipe (parameterized recipes at their
/// paper defaults): the sweep set for `explore-strategies` and the
/// pipeline smoke tests.
pub fn catalog() -> Vec<Strategy> {
    vec![
        sequential(),
        unrolled_sequential(),
        unrolled_hoisted_sequential(),
        sad_pipelined(),
        sad_flattened(),
        sad_blocked(),
        cleanup_list(),
        cleanup_pipelined(),
        mac_list(),
        mac_pipelined(),
        mac_narrowed_pipelined(),
        mac_widened(4),
        loop_list(1),
        loop_pipelined(1),
        predicated_list(1),
        predicated_pipelined(1),
    ]
}

/// Resolves a default-parameter catalog entry by its recipe name.
pub fn by_name(name: &str) -> Option<Strategy> {
    catalog().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique() {
        let names: Vec<String> = catalog().into_iter().map(|s| s.name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "{names:?}");
    }

    #[test]
    fn by_name_resolves_every_catalog_entry() {
        for s in catalog() {
            assert_eq!(by_name(&s.name), Some(s.clone()), "{}", s.name);
        }
        assert_eq!(by_name("no-such-recipe"), None);
    }

    #[test]
    fn catalog_round_trips_through_serde() {
        // Self-skips under the offline serde_json stub (every call
        // returns Err); real CI exercises the full round trip.
        for s in catalog() {
            let json = match serde_json::to_string(&s) {
                Ok(j) => j,
                Err(_) => return,
            };
            let back: Strategy = serde_json::from_str(&json).unwrap();
            assert_eq!(back, s);
        }
    }
}
