//! The six MPEG-encoder kernels of the HPCA'97 VLIW VSP study.
//!
//! §3.3 evaluates the candidate datapaths on six kernels "either extracted
//! from real video applications or constructed from algorithms in
//! textbooks":
//!
//! 1. **Full motion search** — exhaustive block matching over a ±8 search
//!    window ([`golden::motion`]);
//! 2. **Three-step search** — the logarithmic refinement search with
//!    identical inner loops;
//! 3. **Traditional 2-D DCT** — each coefficient computed directly from
//!    the 8×8 block ([`golden::dct`]);
//! 4. **Row/column DCT** — separable 1-D passes;
//! 5. **RGB→YCbCr conversion with 4:2:0 subsampling**
//!    ([`golden::color`]);
//! 6. **Variable-bit-rate coder** — combined run-length + Huffman
//!    lossless stage ([`golden::vbr`]).
//!
//! Each kernel exists in three forms that are checked against each other:
//!
//! * a **golden** scalar Rust implementation (the semantic reference);
//! * an **IR** form ([`ir`]) that the transform + scheduling pipeline
//!   consumes;
//! * **variant recipes** ([`variants`]) reproducing every schedule row of
//!   Tables 1 and 2 — the transform pipeline, the scheduling strategy and
//!   the frame-level cycle composition.
//!
//! Synthetic video workloads (the paper used frames the authors had; we
//! generate seeded synthetic content with matching statistics — see
//! DESIGN.md §5) live in [`workload`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod golden;
pub mod ir;
pub mod strategies;
pub mod variants;
pub mod workload;

pub use frame::{FrameDims, CCIR601};
pub use variants::{KernelId, Row, TableRow};
