//! Synthetic video workload generation.
//!
//! The paper ran on real video sequences and "typical data extracted from
//! video" for the data-dependent VBR coder. We substitute seeded
//! synthetic content with matching statistics (see DESIGN.md §5): smooth
//! luma gradients plus texture for motion search and DCT, correlated RGB
//! for the color converter, and sparse quantized coefficient blocks with
//! geometric run lengths for the VBR coder.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A synthetic luma frame: smooth 2-D gradient + sinusoid texture +
/// low-amplitude noise, values in 0..=255.
pub fn synthetic_luma_frame(width: usize, height: usize, seed: u64) -> Vec<i16> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut f = vec![0i16; width * height];
    for y in 0..height {
        for x in 0..width {
            let gradient = (x * 96 / width.max(1) + y * 96 / height.max(1)) as f64;
            let texture = 40.0 * ((x as f64 * 0.35).sin() * (y as f64 * 0.23).cos());
            let noise = rng.gen_range(-6..=6) as f64;
            let v = (64.0 + gradient + texture + noise).clamp(0.0, 255.0);
            f[y * width + x] = v as i16;
        }
    }
    f
}

/// A `(current, reference)` frame pair where the current frame content is
/// the reference shifted by `(dx, dy)` — full search must recover exactly
/// that motion vector for interior blocks.
pub fn shifted_frame_pair(
    width: usize,
    height: usize,
    dx: i32,
    dy: i32,
    seed: u64,
) -> (Vec<i16>, Vec<i16>) {
    let reference = synthetic_luma_frame(width, height, seed);
    let mut cur = reference.clone();
    for y in 0..height {
        for x in 0..width {
            let sx = (x as i32 + dx).clamp(0, width as i32 - 1) as usize;
            let sy = (y as i32 + dy).clamp(0, height as i32 - 1) as usize;
            cur[y * width + x] = reference[sy * width + sx];
        }
    }
    (cur, reference)
}

/// An interleaved RGB frame (3 values per pixel, each 0..=255).
pub fn synthetic_rgb_frame(width: usize, height: usize, seed: u64) -> Vec<i16> {
    let luma = synthetic_luma_frame(width, height, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5bd1_e995);
    let mut rgb = Vec::with_capacity(width * height * 3);
    for &y in &luma {
        let tint = rng.gen_range(-20i16..=20);
        rgb.push((y + tint).clamp(0, 255));
        rgb.push(y.clamp(0, 255));
        rgb.push((y - tint).clamp(0, 255));
    }
    rgb
}

/// An 8×8 block of quantized DCT coefficients in zigzag order, with the
/// sparse, run-length-heavy statistics typical of video: a large DC term,
/// geometrically thinning AC terms.
pub fn quantized_block(seed: u64) -> [i16; 64] {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut block = [0i16; 64];
    block[0] = rng.gen_range(-120..=120);
    let mut survive = 0.75f64;
    for (i, b) in block.iter_mut().enumerate().skip(1) {
        if rng.gen_bool(survive.max(0.02)) {
            let mag = (24.0 / (i as f64).sqrt()).max(1.0) as i16;
            let v = rng.gen_range(-mag..=mag);
            *b = v;
        }
        survive *= 0.93;
    }
    block
}

/// A stream of quantized blocks for a whole frame's worth of VBR input.
pub fn quantized_blocks(count: usize, seed: u64) -> Vec<[i16; 64]> {
    (0..count)
        .map(|i| quantized_block(seed.wrapping_add(i as u64 * 7919)))
        .collect()
}

/// Fraction of zero coefficients in a block stream — the statistic that
/// drives the VBR coder's data-dependent cycle counts.
pub fn zero_fraction(blocks: &[[i16; 64]]) -> f64 {
    let zeros: usize = blocks
        .iter()
        .map(|b| b.iter().filter(|&&v| v == 0).count())
        .sum();
    zeros as f64 / (blocks.len() * 64) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_deterministic_and_in_range() {
        let a = synthetic_luma_frame(32, 24, 5);
        let b = synthetic_luma_frame(32, 24, 5);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| (0..=255).contains(&v)));
        let c = synthetic_luma_frame(32, 24, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn shifted_pair_matches_in_interior() {
        let (cur, reference) = shifted_frame_pair(64, 48, 3, -2, 1);
        // cur[y][x] == ref[y-2][x+3] in the interior.
        for y in 8..40 {
            for x in 8..56 {
                assert_eq!(cur[y * 64 + x], reference[(y - 2) * 64 + (x + 3)]);
            }
        }
    }

    #[test]
    fn rgb_frame_has_three_channels() {
        let rgb = synthetic_rgb_frame(16, 16, 3);
        assert_eq!(rgb.len(), 16 * 16 * 3);
        assert!(rgb.iter().all(|&v| (0..=255).contains(&v)));
    }

    #[test]
    fn quantized_blocks_are_sparse() {
        let blocks = quantized_blocks(100, 42);
        let zf = zero_fraction(&blocks);
        assert!(
            (0.5..0.95).contains(&zf),
            "typical video blocks are mostly zeros: {zf}"
        );
        // High-frequency tail is nearly all zero.
        let tail_zeros: usize = blocks
            .iter()
            .map(|b| b[48..].iter().filter(|&&v| v == 0).count())
            .sum();
        assert!(tail_zeros as f64 / (100.0 * 16.0) > 0.8);
    }
}
