//! Point-in-time metric snapshots: diffing and export.

use crate::{bucket_upper_bound, HISTOGRAM_BUCKETS};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Schema tag stamped into every JSON export, bumped on layout change.
pub const SNAPSHOT_SCHEMA: u32 = 1;

/// One counter reading.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name (`vsp_sim_ops_total`, ...).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Monotonic value.
    pub value: u64,
}

/// One gauge reading.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Last value set.
    pub value: f64,
}

/// One histogram reading (fixed log2 buckets, see
/// [`bucket_index`](crate::bucket_index)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Per-bucket observation counts ([`HISTOGRAM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
}

/// A deterministic, export-ready copy of a registry's contents.
///
/// Samples are sorted by name then labels, so equal registries render
/// byte-identical Prometheus/JSON output — the golden-file tests rely
/// on this.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter samples, sorted.
    pub counters: Vec<CounterSample>,
    /// Gauge samples, sorted.
    pub gauges: Vec<GaugeSample>,
    /// Histogram samples, sorted.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Looks up a counter value.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && labels_eq(&c.labels, labels))
            .map(|c| c.value)
    }

    /// Looks up a gauge value.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && labels_eq(&g.labels, labels))
            .map(|g| g.value)
    }

    /// Looks up a histogram sample.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSample> {
        self.histograms
            .iter()
            .find(|h| h.name == name && labels_eq(&h.labels, labels))
    }

    /// True when the snapshot holds no samples at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The change from `earlier` to `self`: counters and histogram
    /// buckets subtract (saturating, so a restarted source clamps to
    /// zero rather than wrapping); gauges and histogram `min`/`max`
    /// keep the later reading. Samples absent from `earlier` pass
    /// through unchanged; samples absent from `self` are dropped.
    #[must_use]
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|c| {
                    let before = earlier
                        .counter(&c.name, &borrow_labels(&c.labels))
                        .unwrap_or(0);
                    CounterSample {
                        name: c.name.clone(),
                        labels: c.labels.clone(),
                        value: c.value.saturating_sub(before),
                    }
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|h| {
                    let before = earlier.histogram(&h.name, &borrow_labels(&h.labels));
                    let mut out = h.clone();
                    if let Some(b) = before {
                        for (slot, prev) in out.buckets.iter_mut().zip(&b.buckets) {
                            *slot = slot.saturating_sub(*prev);
                        }
                        out.count = out.count.saturating_sub(b.count);
                        out.sum = out.sum.saturating_sub(b.sum);
                    }
                    out
                })
                .collect(),
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# TYPE` headers, cumulative `_bucket{le=...}`
    /// series with inclusive log2 bounds, `_sum` and `_count`.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type_header = String::new();
        for c in &self.counters {
            type_header(&mut out, &mut last_type_header, &c.name, "counter");
            let _ = writeln!(
                out,
                "{}{} {}",
                c.name,
                label_block(&c.labels, None),
                c.value
            );
        }
        for g in &self.gauges {
            type_header(&mut out, &mut last_type_header, &g.name, "gauge");
            let _ = writeln!(
                out,
                "{}{} {}",
                g.name,
                label_block(&g.labels, None),
                fmt_f64(g.value)
            );
        }
        for h in &self.histograms {
            type_header(&mut out, &mut last_type_header, &h.name, "histogram");
            // Trailing empty buckets collapse into +Inf; the cumulative
            // series stays correct and the exposition stays compact.
            let top = h
                .buckets
                .iter()
                .rposition(|&n| n > 0)
                .map_or(0, |i| i + 1)
                .min(HISTOGRAM_BUCKETS - 1);
            let mut cumulative = 0u64;
            for (i, &n) in h.buckets.iter().enumerate().take(top) {
                cumulative += n;
                let le = bucket_upper_bound(i).expect("bounded bucket").to_string();
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    h.name,
                    label_block(&h.labels, Some(&le)),
                    cumulative
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                h.name,
                label_block(&h.labels, Some("+Inf")),
                h.count
            );
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                h.name,
                label_block(&h.labels, None),
                h.sum
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                h.name,
                label_block(&h.labels, None),
                h.count
            );
        }
        out
    }

    /// Renders the snapshot as schema-tagged JSON.
    ///
    /// Hand-rendered (like the bench-report records) because the
    /// offline `serde_json` stand-in has no runtime serializer; the
    /// serde derives cover the real-crates round-trip in CI.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": {SNAPSHOT_SCHEMA},");
        let _ = writeln!(out, "  \"kind\": \"vsp-metrics-snapshot\",");
        out.push_str("  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"name\": {}, \"labels\": {}, \"value\": {}}}",
                json_str(&c.name),
                json_labels(&c.labels),
                c.value
            );
        }
        out.push_str(if self.counters.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"gauges\": [");
        for (i, g) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"name\": {}, \"labels\": {}, \"value\": {}}}",
                json_str(&g.name),
                json_labels(&g.labels),
                fmt_f64(g.value)
            );
        }
        out.push_str(if self.gauges.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
            let _ = write!(
                out,
                "{sep}\n    {{\"name\": {}, \"labels\": {}, \"count\": {}, \"sum\": {}, \
                 \"min\": {}, \"max\": {}, \"buckets\": [{}]}}",
                json_str(&h.name),
                json_labels(&h.labels),
                h.count,
                h.sum,
                h.min,
                h.max,
                buckets.join(", ")
            );
        }
        out.push_str(if self.histograms.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }
}

fn labels_eq(owned: &[(String, String)], query: &[(&str, &str)]) -> bool {
    let mut sorted: Vec<(&str, &str)> = query.to_vec();
    sorted.sort_unstable();
    owned.len() == sorted.len()
        && owned
            .iter()
            .zip(&sorted)
            .all(|((k, v), (qk, qv))| k == qk && v == qv)
}

fn borrow_labels(labels: &[(String, String)]) -> Vec<(&str, &str)> {
    labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect()
}

fn type_header(out: &mut String, last: &mut String, name: &str, kind: &str) {
    if last != name {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        *last = name.to_string();
    }
}

/// `{k="v",...}` (empty string when no labels), with `le` appended for
/// histogram bucket series.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}: {}", json_str(k), json_str(v)))
        .collect();
    format!("{{{}}}", parts.join(", "))
}

/// JSON/Prometheus-safe float rendering: finite values print their
/// shortest round-trip form with a forced decimal point; non-finite
/// values clamp to 0 (they would not be valid JSON numbers).
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, Registry};

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        r.add("vsp_test_ops_total", &[("fu", "alu")], 7);
        r.add("vsp_test_ops_total", &[("fu", "mul")], 3);
        r.gauge("vsp_test_rate", &[], 2.5);
        for v in [0u64, 1, 2, 9] {
            r.observe("vsp_test_lat_micros", &[("phase", "run")], v);
        }
        r
    }

    #[test]
    fn prometheus_counters_and_gauges_render() {
        let text = sample_registry().snapshot().to_prometheus();
        assert!(text.contains("# TYPE vsp_test_ops_total counter"), "{text}");
        assert!(text.contains("vsp_test_ops_total{fu=\"alu\"} 7"), "{text}");
        assert!(text.contains("vsp_test_ops_total{fu=\"mul\"} 3"), "{text}");
        assert!(text.contains("# TYPE vsp_test_rate gauge"), "{text}");
        assert!(text.contains("vsp_test_rate 2.5"), "{text}");
        // One TYPE header per metric name, not per sample.
        assert_eq!(text.matches("# TYPE vsp_test_ops_total").count(), 1);
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative_and_inclusive() {
        let text = sample_registry().snapshot().to_prometheus();
        // Values 0,1,2,9 → buckets: le=0 holds {0}, le=1 adds {1},
        // le=3 adds {2}, le=15 adds {9}; +Inf equals the count.
        assert!(
            text.contains("vsp_test_lat_micros_bucket{phase=\"run\",le=\"0\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("vsp_test_lat_micros_bucket{phase=\"run\",le=\"1\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("vsp_test_lat_micros_bucket{phase=\"run\",le=\"3\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("vsp_test_lat_micros_bucket{phase=\"run\",le=\"15\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("vsp_test_lat_micros_bucket{phase=\"run\",le=\"+Inf\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("vsp_test_lat_micros_sum{phase=\"run\"} 12"),
            "{text}"
        );
        assert!(
            text.contains("vsp_test_lat_micros_count{phase=\"run\"} 4"),
            "{text}"
        );
    }

    #[test]
    fn json_export_is_schema_tagged_and_complete() {
        let json = sample_registry().snapshot().to_json();
        assert!(json.contains("\"schema\": 1"), "{json}");
        assert!(
            json.contains("\"kind\": \"vsp-metrics-snapshot\""),
            "{json}"
        );
        assert!(json.contains("\"name\": \"vsp_test_ops_total\""), "{json}");
        assert!(
            json.contains("\"labels\": {\"fu\": \"alu\"}, \"value\": 7"),
            "{json}"
        );
        assert!(json.contains("\"sum\": 12"), "{json}");
        // Balanced braces/brackets (cheap well-formedness check the
        // offline stub can't do by parsing).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_snapshot_renders_valid_shells() {
        let snap = MetricsSnapshot::default();
        assert!(snap.is_empty());
        assert_eq!(snap.to_prometheus(), "");
        let json = snap.to_json();
        assert!(json.contains("\"counters\": []"), "{json}");
        assert!(json.contains("\"histograms\": []"), "{json}");
    }

    #[test]
    fn diff_subtracts_counters_and_buckets() {
        let mut r = sample_registry();
        let before = r.snapshot();
        r.add("vsp_test_ops_total", &[("fu", "alu")], 5);
        r.observe("vsp_test_lat_micros", &[("phase", "run")], 100);
        let delta = r.snapshot().diff(&before);
        assert_eq!(
            delta.counter("vsp_test_ops_total", &[("fu", "alu")]),
            Some(5)
        );
        assert_eq!(
            delta.counter("vsp_test_ops_total", &[("fu", "mul")]),
            Some(0)
        );
        let h = delta
            .histogram("vsp_test_lat_micros", &[("phase", "run")])
            .unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 100);
        assert_eq!(h.buckets.iter().sum::<u64>(), 1);
    }

    #[test]
    fn diff_passes_through_new_series() {
        let mut r = Registry::new();
        r.add("fresh", &[], 9);
        let delta = r.snapshot().diff(&MetricsSnapshot::default());
        assert_eq!(delta.counter("fresh", &[]), Some(9));
    }

    #[test]
    fn float_rendering_stays_json_safe() {
        assert_eq!(fmt_f64(2.5), "2.5");
        assert_eq!(fmt_f64(3.0), "3.0");
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "0");
    }

    #[test]
    fn label_values_are_escaped() {
        let mut r = Registry::new();
        r.add("m", &[("k", "a\"b\\c")], 1);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("m{k=\"a\\\"b\\\\c\"} 1"), "{text}");
        let json = r.snapshot().to_json();
        assert!(json.contains("\"a\\\"b\\\\c\""), "{json}");
    }
}
