//! Phase timing helpers.

use crate::Recorder;
use std::time::Instant;

/// Wall-clock phase timer feeding duration histograms.
///
/// ```
/// use vsp_metrics::{Recorder, Registry, Stopwatch};
///
/// let mut reg = Registry::new();
/// let sw = Stopwatch::start();
/// // ... the phase being measured ...
/// sw.observe_into(&mut reg, "vsp_demo_phase_micros", &[("phase", "setup")]);
/// assert_eq!(
///     reg.snapshot()
///         .histogram("vsp_demo_phase_micros", &[("phase", "setup")])
///         .unwrap()
///         .count,
///     1
/// );
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Microseconds elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed_micros(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Records the elapsed time into `recorder` as one histogram
    /// observation (in microseconds) and returns the value recorded.
    pub fn observe_into<R: Recorder>(
        &self,
        recorder: &mut R,
        name: &str,
        labels: &[(&str, &str)],
    ) -> u64 {
        let micros = self.elapsed_micros();
        if recorder.enabled() {
            recorder.observe(name, labels, micros);
        }
        micros
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NullRecorder, Registry};

    #[test]
    fn stopwatch_observes_into_registry() {
        let mut reg = Registry::new();
        let sw = Stopwatch::start();
        std::hint::black_box((0..1000).sum::<u64>());
        sw.observe_into(&mut reg, "t", &[]);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("t", &[]).unwrap().count, 1);
    }

    #[test]
    fn stopwatch_skips_disabled_recorders() {
        let sw = Stopwatch::start();
        // Returns the measurement even when nothing records it.
        let _ = sw.observe_into(&mut NullRecorder, "t", &[]);
    }
}
