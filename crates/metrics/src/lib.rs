//! Unified metrics layer for the VSP reproduction.
//!
//! The paper's evaluation is built on aggregate counters — cycles per
//! frame, per-FU utilization, stall breakdowns, crossbar traffic — and
//! every harness in this workspace grows its own ad-hoc version of the
//! same accounting. This crate centralizes it:
//!
//! * [`Recorder`] — the producer-side abstraction (counters, gauges,
//!   log2-bucket histograms). Mirrors the `TraceSink`/`FaultModel`
//!   zero-cost generic pattern: the default [`NullRecorder`] reports
//!   itself disabled from an inlinable body, so un-instrumented
//!   monomorphizations contain no metrics code at all.
//! * [`Registry`] — the standard in-memory recorder, plus
//!   [`SharedRegistry`] for threaded producers.
//! * [`MetricsSnapshot`] — a point-in-time copy with a
//!   [`diff`](MetricsSnapshot::diff) API and two export formats:
//!   Prometheus text exposition
//!   ([`to_prometheus`](MetricsSnapshot::to_prometheus)) and
//!   schema-tagged JSON ([`to_json`](MetricsSnapshot::to_json)).
//! * [`Stopwatch`] — a phase timer feeding wall-time histograms.
//!
//! # Metric name schema
//!
//! Names are `vsp_<subsystem>_<quantity>[_<unit>]` in snake case:
//! `vsp_sim_ops_total`, `vsp_sched_pass_micros`,
//! `vsp_eval_cell_micros`. Dimensions (FU class, pass name, verdict)
//! ride in labels, not in the name. Totals use `_total`; durations use
//! `_micros`; everything else is a plain quantity.
//!
//! # Quickstart
//!
//! ```
//! use vsp_metrics::{Recorder, Registry};
//!
//! let mut reg = Registry::new();
//! reg.add("vsp_demo_ops_total", &[("fu", "alu")], 3);
//! reg.observe("vsp_demo_latency_micros", &[], 17);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("vsp_demo_ops_total", &[("fu", "alu")]), Some(3));
//! assert!(snap.to_prometheus().contains("vsp_demo_ops_total{fu=\"alu\"} 3"));
//! assert!(snap.to_json().starts_with("{\n  \"schema\": 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;
mod snapshot;
mod timer;

pub use registry::{Registry, SharedRegistry};
pub use snapshot::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};
pub use timer::Stopwatch;

/// Number of histogram buckets: one zero bucket plus one per value bit
/// length, capped so everything at or above 2^31 lands in the last.
pub const HISTOGRAM_BUCKETS: usize = 33;

/// Bucket index a value falls into: bucket 0 holds zeros, bucket `k`
/// (1..=32) holds values of bit length `k`, with everything of bit
/// length ≥ 32 folded into bucket 32.
#[inline]
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket (`None` for the open-ended last
/// bucket). Bucket 0 covers exactly `{0}`; bucket `k` covers
/// `[2^(k-1), 2^k - 1]`.
#[must_use]
pub fn bucket_upper_bound(index: usize) -> Option<u64> {
    if index + 1 >= HISTOGRAM_BUCKETS {
        None
    } else {
        Some((1u64 << index) - 1)
    }
}

/// Producer-side metrics interface.
///
/// The same zero-cost pattern as `TraceSink`: producers hoist one
/// [`Recorder::enabled`] check per hot-loop iteration and skip all
/// metric bookkeeping when it returns `false`. With [`NullRecorder`]
/// (the usual default type parameter) the check is a constant `false`
/// from an inlinable body, so the instrumentation compiles out.
pub trait Recorder {
    /// Whether this recorder wants data. Producers may skip arbitrary
    /// bookkeeping when this returns `false`.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Increments the counter `name` (with `labels`) by `delta`.
    fn add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64);

    /// Sets the gauge `name` (with `labels`) to `value`.
    fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64);

    /// Records one observation of `value` into the histogram `name`
    /// (with `labels`).
    fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: u64);
}

/// A recorder is usable through a mutable reference (pass `&mut reg`
/// into a simulator and keep the registry readable afterwards).
impl<R: Recorder + ?Sized> Recorder for &mut R {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        (**self).add(name, labels, delta);
    }

    fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        (**self).gauge(name, labels, value);
    }

    fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        (**self).observe(name, labels, value);
    }
}

/// The do-nothing recorder: reports itself disabled, drops everything.
///
/// Default type parameter for instrumented generics; the enabled check
/// inlines to `false` and dead-code elimination removes the metrics
/// path entirely (held to <0 measurable overhead by the
/// `metrics_overhead` bench and the bit-identity tests in
/// `tests/metrics_invariance.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn add(&mut self, _name: &str, _labels: &[(&str, &str)], _delta: u64) {}

    #[inline]
    fn gauge(&mut self, _name: &str, _labels: &[(&str, &str)], _value: f64) {}

    #[inline]
    fn observe(&mut self, _name: &str, _labels: &[(&str, &str)], _value: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(255), 8);
        assert_eq!(bucket_index(256), 9);
        assert_eq!(bucket_index(u64::MAX), 32);
    }

    #[test]
    fn bucket_bounds_are_inclusive_powers() {
        assert_eq!(bucket_upper_bound(0), Some(0));
        assert_eq!(bucket_upper_bound(1), Some(1));
        assert_eq!(bucket_upper_bound(2), Some(3));
        assert_eq!(bucket_upper_bound(31), Some((1u64 << 31) - 1));
        assert_eq!(bucket_upper_bound(32), None);
        // Every value's bucket bound actually covers it.
        for v in [0u64, 1, 2, 3, 4, 100, 65_535, 1 << 30] {
            let idx = bucket_index(v);
            let hi = bucket_upper_bound(idx).unwrap();
            assert!(v <= hi, "value {v} above bound {hi} of bucket {idx}");
            if idx > 0 {
                let below = bucket_upper_bound(idx - 1).unwrap();
                assert!(v > below, "value {v} not above bucket {} bound", idx - 1);
            }
        }
    }

    #[test]
    fn null_recorder_is_disabled() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        r.add("x", &[], 1);
        r.gauge("x", &[], 1.0);
        r.observe("x", &[], 1);
    }

    #[test]
    fn mut_ref_recorder_forwards() {
        let mut reg = Registry::new();
        {
            let mut handle = &mut reg;
            assert!(Recorder::enabled(&handle));
            Recorder::add(&mut handle, "a", &[], 2);
        }
        assert_eq!(reg.snapshot().counter("a", &[]), Some(2));
    }
}
