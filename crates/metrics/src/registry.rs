//! In-memory recorders: [`Registry`] and its thread-shared wrapper.

use crate::snapshot::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};
use crate::{bucket_index, Recorder, HISTOGRAM_BUCKETS};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Fully-qualified metric identity: name plus sorted label pairs.
///
/// `BTreeMap` keying makes every export deterministic — two runs that
/// record the same values render byte-identical snapshots.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// Histogram accumulator with fixed log2 buckets (see
/// [`bucket_index`]).
#[derive(Debug, Clone)]
struct HistogramCell {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl HistogramCell {
    fn new() -> Self {
        HistogramCell {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn observe(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }
}

/// The standard in-memory metrics recorder.
///
/// Stores counters, gauges and histograms keyed by name + labels, and
/// produces deterministic [`MetricsSnapshot`]s. For single-threaded
/// producers pass `&mut registry` (the [`Recorder`] impl for `&mut R`
/// keeps it readable afterwards); for parallel producers wrap it in a
/// [`SharedRegistry`].
#[derive(Debug, Default, Clone)]
pub struct Registry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, HistogramCell>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Point-in-time copy of every metric, ready for export or diffing.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| CounterSample {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    value: v,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, &v)| GaugeSample {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    value: v,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| HistogramSample {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    buckets: h.buckets.to_vec(),
                    count: h.count,
                    sum: h.sum,
                    min: if h.count == 0 { 0 } else { h.min },
                    max: h.max,
                })
                .collect(),
        }
    }

    /// Current value of a counter, if it has been touched.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters.get(&MetricKey::new(name, labels)).copied()
    }

    /// Current value of a gauge, if it has been set.
    #[must_use]
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&MetricKey::new(name, labels)).copied()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

impl Recorder for Registry {
    fn add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        *self
            .counters
            .entry(MetricKey::new(name, labels))
            .or_insert(0) += delta;
    }

    fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.gauges.insert(MetricKey::new(name, labels), value);
    }

    fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.histograms
            .entry(MetricKey::new(name, labels))
            .or_insert_with(HistogramCell::new)
            .observe(value);
    }
}

/// A cloneable, thread-safe handle to one [`Registry`].
///
/// Each worker clones the handle and records through it; lock scope is
/// one metric update, so contention stays negligible next to the work
/// being measured. Used by the parallel assembly path of the eval
/// engine and by campaign harness workers.
#[derive(Debug, Default, Clone)]
pub struct SharedRegistry {
    inner: Arc<Mutex<Registry>>,
}

impl SharedRegistry {
    /// Creates a handle to a fresh registry.
    #[must_use]
    pub fn new() -> Self {
        SharedRegistry::default()
    }

    /// Snapshots the shared registry.
    ///
    /// # Panics
    ///
    /// Panics if a writer panicked while holding the lock.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .snapshot()
    }

    /// Runs `f` with the underlying registry locked (e.g. to read a
    /// counter mid-campaign).
    ///
    /// # Panics
    ///
    /// Panics if a writer panicked while holding the lock.
    pub fn with<T>(&self, f: impl FnOnce(&mut Registry) -> T) -> T {
        f(&mut self.inner.lock().expect("metrics registry poisoned"))
    }
}

impl Recorder for SharedRegistry {
    fn add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        self.with(|r| r.add(name, labels, delta));
    }

    fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.with(|r| r.gauge(name, labels, value));
    }

    fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.with(|r| r.observe(name, labels, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_labels_distinguish() {
        let mut r = Registry::new();
        r.add("ops", &[("fu", "alu")], 2);
        r.add("ops", &[("fu", "alu")], 3);
        r.add("ops", &[("fu", "mul")], 1);
        assert_eq!(r.counter("ops", &[("fu", "alu")]), Some(5));
        assert_eq!(r.counter("ops", &[("fu", "mul")]), Some(1));
        assert_eq!(r.counter("ops", &[]), None);
    }

    #[test]
    fn label_order_is_canonicalized() {
        let mut r = Registry::new();
        r.add("m", &[("b", "2"), ("a", "1")], 1);
        r.add("m", &[("a", "1"), ("b", "2")], 1);
        assert_eq!(r.counter("m", &[("b", "2"), ("a", "1")]), Some(2));
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = Registry::new();
        r.gauge("rate", &[], 1.0);
        r.gauge("rate", &[], 2.5);
        assert_eq!(r.gauge_value("rate", &[]), Some(2.5));
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let mut r = Registry::new();
        for v in [0u64, 1, 5, 100] {
            r.observe("lat", &[], v);
        }
        let snap = r.snapshot();
        let h = snap.histogram("lat", &[]).unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 106);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 100);
        assert_eq!(h.buckets.iter().sum::<u64>(), 4);
        assert_eq!(h.buckets[0], 1); // the zero
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[3], 1); // 5
        assert_eq!(h.buckets[7], 1); // 100
    }

    #[test]
    fn shared_registry_merges_across_clones() {
        let shared = SharedRegistry::new();
        let mut handles: Vec<SharedRegistry> = (0..4).map(|_| shared.clone()).collect();
        std::thread::scope(|s| {
            for h in &mut handles {
                s.spawn(move || {
                    for _ in 0..100 {
                        h.add("n", &[], 1);
                    }
                });
            }
        });
        assert_eq!(shared.snapshot().counter("n", &[]), Some(400));
    }

    #[test]
    fn empty_registry_reports_empty() {
        let mut r = Registry::new();
        assert!(r.is_empty());
        r.observe("h", &[], 1);
        assert!(!r.is_empty());
    }
}
