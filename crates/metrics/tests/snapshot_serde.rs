//! Serde round-trips and export-format checks for [`MetricsSnapshot`].
//!
//! The round-trip exercises the derived `Serialize`/`Deserialize` impls
//! with `serde_json`. In registry-less environments where only the
//! offline serde stubs are available, serialization reports an error
//! and those assertions are skipped — the round-trip is meaningful
//! exactly when the real serde is linked. The Prometheus and JSON
//! renderings are hand-written and assert unconditionally.

use vsp_metrics::{bucket_index, MetricsSnapshot, Recorder, Registry, HISTOGRAM_BUCKETS};

/// A snapshot exercising all three metric families, multiple label
/// sets, and histogram values spanning several log₂ buckets.
fn sample() -> MetricsSnapshot {
    let mut reg = Registry::new();
    reg.add("vsp_test_ops_total", &[("fu", "alu")], 200);
    reg.add("vsp_test_ops_total", &[("fu", "mul")], 40);
    reg.add("vsp_test_cycles_total", &[], 642);
    reg.gauge("vsp_test_utilization", &[("model", "I4C8S4")], 0.685);
    for v in [0, 1, 2, 9, 1000] {
        reg.observe("vsp_test_latency", &[("phase", "run")], v);
    }
    reg.snapshot()
}

#[test]
fn snapshot_round_trips_through_serde_json() {
    let snap = sample();
    let json = match serde_json::to_string(&snap) {
        Ok(json) => json,
        Err(_) => return, // offline serde stub; nothing to verify
    };
    let back: MetricsSnapshot =
        serde_json::from_str(&json).unwrap_or_else(|e| panic!("failed to deserialize {json}: {e}"));
    assert_eq!(back, snap, "round-trip changed the snapshot");
}

#[test]
fn prometheus_rendering_is_parseable_line_format() {
    let text = sample().to_prometheus();
    // Every non-comment line is `name{labels} value` or `name value`.
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(!series.is_empty(), "{line}");
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "unparseable sample value in {line:?}"
        );
        if let Some(open) = series.find('{') {
            assert!(series.ends_with('}'), "{line}");
            assert!(open > 0, "{line}");
        }
    }
    // Type headers appear once per metric name.
    assert_eq!(text.matches("# TYPE vsp_test_ops_total counter").count(), 1);
    assert_eq!(text.matches("# TYPE vsp_test_latency histogram").count(), 1);
    assert!(text.contains("vsp_test_ops_total{fu=\"alu\"} 200"));
    assert!(text.contains("vsp_test_utilization{model=\"I4C8S4\"} 0.685"));
}

#[test]
fn prometheus_histogram_buckets_are_cumulative_log2() {
    let text = sample().to_prometheus();
    // Observations 0, 1, 2, 9, 1000: bucket upper bounds are 2^k - 1,
    // rendered cumulatively. 1000 has bit length 10 → le="1023".
    for expected in [
        "vsp_test_latency_bucket{phase=\"run\",le=\"0\"} 1",
        "vsp_test_latency_bucket{phase=\"run\",le=\"1\"} 2",
        "vsp_test_latency_bucket{phase=\"run\",le=\"3\"} 3",
        "vsp_test_latency_bucket{phase=\"run\",le=\"15\"} 4",
        "vsp_test_latency_bucket{phase=\"run\",le=\"1023\"} 5",
        "vsp_test_latency_bucket{phase=\"run\",le=\"+Inf\"} 5",
        "vsp_test_latency_sum{phase=\"run\"} 1012",
        "vsp_test_latency_count{phase=\"run\"} 5",
    ] {
        assert!(text.contains(expected), "missing {expected:?} in:\n{text}");
    }
    // Trailing empty buckets between 1023 and +Inf are collapsed.
    assert!(!text.contains("le=\"2047\""));
}

#[test]
fn json_rendering_is_schema_tagged_and_complete() {
    let snap = sample();
    let json = snap.to_json();
    assert!(json.contains("\"kind\": \"vsp-metrics-snapshot\""));
    assert!(json.contains("\"schema\": 1"));
    // All observed values land in the buckets the index function says.
    let hist = snap
        .histogram("vsp_test_latency", &[("phase", "run")])
        .expect("latency histogram");
    assert_eq!(hist.buckets.len(), HISTOGRAM_BUCKETS);
    for v in [0u64, 1, 2, 9, 1000] {
        assert!(hist.buckets[bucket_index(v)] > 0, "value {v} not bucketed");
    }
    assert_eq!(hist.count, 5);
    assert_eq!(hist.sum, 1012);
}

#[test]
fn diff_then_export_shows_only_new_work() {
    let mut reg = Registry::new();
    reg.add("vsp_test_ops_total", &[], 10);
    let earlier = reg.snapshot();
    reg.add("vsp_test_ops_total", &[], 5);
    let diff = reg.snapshot().diff(&earlier);
    assert_eq!(diff.counter("vsp_test_ops_total", &[]), Some(5));
    assert!(diff.to_prometheus().contains("vsp_test_ops_total 5"));
}
