//! Structured tracing for the VLIW video signal processor toolchain.
//!
//! Both halves of the toolchain produce events into a [`TraceSink`]:
//!
//! * the cycle-accurate simulator emits per-cycle **execution events**
//!   (issues, annuls, taken branches, icache misses, branch-redirect
//!   bubbles, halt), and
//! * the schedulers emit **decision events** (list-scheduling
//!   placements and resource conflicts, modulo-scheduling II attempts,
//!   escalations, evictions).
//!
//! Tracing is zero-cost when disabled: producers are generic over the
//! sink and gate all event construction on [`TraceSink::enabled`], and
//! the default [`NullSink`] answers `false` from an inlinable body, so
//! the untraced monomorphization contains no tracing code at all. A
//! criterion bench in `vsp-bench` (`trace_overhead`) guards this.
//!
//! Available sinks:
//!
//! * [`NullSink`] — the compiled-away default;
//! * [`MemorySink`] — bounded in-memory ring, oldest events overwritten
//!   but still counted (used by the reconciliation tests);
//! * [`JsonLinesSink`] — one flat JSON object per line, grep-friendly;
//! * [`ChromeTraceSink`] — Chrome `trace_event` JSON, loadable in
//!   Perfetto (<https://ui.perfetto.dev>): one process per cluster, one
//!   thread per issue slot, occupancy counter tracks per cluster.
//!
//! [`UtilizationTimeline`] folds a recorded event stream back into
//! per-cluster, per-FU-class occupancy and renders the human-readable
//! utilization report the `vsp-bench` `trace` binary prints.
//!
//! # Example
//!
//! ```
//! use vsp_trace::{MemorySink, TraceSink, TraceEvent, UtilizationTimeline};
//! use vsp_isa::FuClass;
//!
//! let mut sink = MemorySink::with_capacity(1024);
//! if sink.enabled() {
//!     sink.emit(TraceEvent::Issue {
//!         cycle: 0, word: 0, cluster: 0, slot: 0, class: FuClass::Alu,
//!     });
//! }
//! let timeline = UtilizationTimeline::build(sink.events(), 64);
//! assert_eq!(timeline.total_ops(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod sink;
pub mod timeline;

pub use event::{class_name, FaultSite, PipelinePass, SchedOrdering, TraceEvent};
pub use sink::{ChromeTraceSink, JsonLinesSink, MemorySink, NullSink, TraceSink};
pub use timeline::{class_index, ClusterSeries, MachineShape, UtilizationTimeline};
