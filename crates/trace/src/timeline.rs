//! Utilization timelines: aggregate a stream of simulator events into
//! per-cluster, per-FU-class occupancy and render a human-readable
//! report.
//!
//! This is the offline half of the observability story: the simulator
//! emits raw [`TraceEvent`]s, and this module folds them into the kind
//! of utilization numbers the paper's Table 1/Table 2 discussion is
//! built on (how busy each cluster is, which functional-unit class
//! saturates first, where the stall cycles went).

use crate::event::{class_name, TraceEvent};
use std::fmt::Write as _;
use vsp_isa::FuClass;

/// Dense index of a functional-unit class (stable, 0..6).
pub fn class_index(class: FuClass) -> usize {
    match class {
        FuClass::Alu => 0,
        FuClass::Mul => 1,
        FuClass::Shift => 2,
        FuClass::Mem => 3,
        FuClass::Branch => 4,
        FuClass::Xfer => 5,
    }
}

/// The machine dimensions a report needs, decoupled from the full
/// machine description so `vsp-trace` depends only on the ISA crate.
/// Build one from a `MachineConfig` with per-cluster slot count and
/// per-class issue capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineShape {
    /// Number of clusters.
    pub clusters: u32,
    /// Issue slots per cluster.
    pub slots_per_cluster: u32,
    /// Per-cluster issue capacity of each FU class, indexed by
    /// [`class_index`] (how many slots in one cluster can accept the
    /// class in the same cycle).
    pub class_capacity: [u32; 6],
}

/// Per-cluster occupancy totals accumulated from issue events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterSeries {
    /// Committed operations per FU class, indexed by [`class_index`].
    pub ops_by_class: [u64; 6],
    /// Annulled issue slots (guard false).
    pub annulled: u64,
    /// Committed operations per time bucket (for the ASCII timeline).
    pub buckets: Vec<u64>,
}

impl ClusterSeries {
    /// Total committed operations on this cluster.
    pub fn ops(&self) -> u64 {
        self.ops_by_class.iter().sum()
    }
}

/// Aggregated occupancy over a simulated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UtilizationTimeline {
    /// Cycles per bucket in each cluster's `buckets` series.
    pub bucket_cycles: u64,
    /// One series per cluster that issued at least one operation
    /// (indexed by cluster id; intermediate idle clusters get empty
    /// series).
    pub clusters: Vec<ClusterSeries>,
    /// Highest cycle observed plus one.
    pub cycles: u64,
    /// Taken branches observed.
    pub branches: u64,
    /// Icache misses observed.
    pub icache_misses: u64,
    /// Total icache stall cycles observed.
    pub icache_stall_cycles: u64,
    /// Branch-redirect bubble words observed.
    pub branch_bubbles: u64,
}

impl UtilizationTimeline {
    /// Folds a stream of events into a timeline. Scheduler events are
    /// ignored; only simulator events contribute. `bucket_cycles`
    /// controls the granularity of the ASCII occupancy strip (e.g. 64).
    pub fn build<'a>(
        events: impl IntoIterator<Item = &'a TraceEvent>,
        bucket_cycles: u64,
    ) -> UtilizationTimeline {
        assert!(bucket_cycles > 0, "bucket_cycles must be non-zero");
        let mut tl = UtilizationTimeline {
            bucket_cycles,
            clusters: Vec::new(),
            cycles: 0,
            branches: 0,
            icache_misses: 0,
            icache_stall_cycles: 0,
            branch_bubbles: 0,
        };
        for event in events {
            match *event {
                TraceEvent::Issue {
                    cycle,
                    cluster,
                    class,
                    ..
                } => {
                    let series = tl.cluster_mut(cluster);
                    series.ops_by_class[class_index(class)] += 1;
                    let bucket = (cycle / bucket_cycles) as usize;
                    if series.buckets.len() <= bucket {
                        series.buckets.resize(bucket + 1, 0);
                    }
                    series.buckets[bucket] += 1;
                    tl.cycles = tl.cycles.max(cycle + 1);
                }
                TraceEvent::Annul { cycle, cluster, .. } => {
                    tl.cluster_mut(cluster).annulled += 1;
                    tl.cycles = tl.cycles.max(cycle + 1);
                }
                TraceEvent::Branch { cycle, .. } => {
                    tl.branches += 1;
                    tl.cycles = tl.cycles.max(cycle + 1);
                }
                TraceEvent::IcacheMiss { cycle, stall, .. } => {
                    tl.icache_misses += 1;
                    tl.icache_stall_cycles += stall as u64;
                    tl.cycles = tl.cycles.max(cycle + stall as u64);
                }
                TraceEvent::BranchBubble { cycle, .. } => {
                    tl.branch_bubbles += 1;
                    tl.cycles = tl.cycles.max(cycle + 1);
                }
                TraceEvent::Halt { cycle } => {
                    tl.cycles = tl.cycles.max(cycle + 1);
                }
                _ => {}
            }
        }
        tl
    }

    fn cluster_mut(&mut self, cluster: u8) -> &mut ClusterSeries {
        let idx = cluster as usize;
        if self.clusters.len() <= idx {
            self.clusters.resize(idx + 1, ClusterSeries::default());
        }
        &mut self.clusters[idx]
    }

    /// Total committed operations across all clusters.
    pub fn total_ops(&self) -> u64 {
        self.clusters.iter().map(|c| c.ops()).sum()
    }

    /// Renders a human-readable utilization report.
    ///
    /// `shape` supplies issue capacities so occupancy can be expressed
    /// as a percentage of peak; pass the shape of the machine the trace
    /// was recorded on.
    pub fn report(&self, shape: &MachineShape) -> String {
        let mut out = String::new();
        let cycles = self.cycles.max(1);
        let _ = writeln!(
            out,
            "utilization over {} cycles ({} ops, {} taken branches, \
             {} icache misses / {} stall cycles, {} branch bubbles)",
            self.cycles,
            self.total_ops(),
            self.branches,
            self.icache_misses,
            self.icache_stall_cycles,
            self.branch_bubbles,
        );
        let peak = (shape.clusters as u64 * shape.slots_per_cluster as u64) * cycles;
        let _ = writeln!(
            out,
            "machine peak {} slot-cycles; overall occupancy {:.1}%",
            peak,
            pct(self.total_ops(), peak),
        );
        for cluster in 0..shape.clusters {
            let series = self
                .clusters
                .get(cluster as usize)
                .cloned()
                .unwrap_or_default();
            let cap = shape.slots_per_cluster as u64 * cycles;
            let _ = writeln!(
                out,
                "cluster {cluster}: {} ops ({:.1}% of {} slots), {} annulled",
                series.ops(),
                pct(series.ops(), cap),
                shape.slots_per_cluster,
                series.annulled,
            );
            for class in FuClass::ALL {
                let i = class_index(class);
                let ops = series.ops_by_class[i];
                let class_cap = shape.class_capacity[i] as u64 * cycles;
                if ops == 0 && shape.class_capacity[i] == 0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  {:<6} {:>10} ops  {:>5.1}% of class capacity  {}",
                    class_name(class),
                    ops,
                    pct(ops, class_cap),
                    bar(ops, class_cap, 30),
                );
            }
            if !series.buckets.is_empty() {
                let per_bucket_peak = shape.slots_per_cluster as u64 * self.bucket_cycles;
                let strip: String = series
                    .buckets
                    .iter()
                    .map(|&n| spark(n, per_bucket_peak))
                    .collect();
                let _ = writeln!(
                    out,
                    "  timeline ({} cycles/bucket): {}",
                    self.bucket_cycles, strip
                );
            }
        }
        out
    }
}

fn pct(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        100.0 * n as f64 / d as f64
    }
}

fn bar(n: u64, d: u64, width: usize) -> String {
    let filled = if d == 0 {
        0
    } else {
        ((n as f64 / d as f64) * width as f64).round() as usize
    }
    .min(width);
    let mut s = String::with_capacity(width + 2);
    s.push('|');
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s.push('|');
    s
}

/// One character of the occupancy strip: space through '@' in rough
/// eighths of the per-bucket peak.
fn spark(n: u64, peak: u64) -> char {
    const LEVELS: [char; 9] = [' ', '.', ':', '-', '=', '+', '*', '%', '@'];
    if peak == 0 {
        return ' ';
    }
    let level = ((n as f64 / peak as f64) * 8.0).round() as usize;
    LEVELS[level.min(8)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> MachineShape {
        MachineShape {
            clusters: 2,
            slots_per_cluster: 4,
            class_capacity: [2, 1, 1, 2, 1, 1],
        }
    }

    #[test]
    fn build_aggregates_by_cluster_and_class() {
        let events = [
            TraceEvent::Issue {
                cycle: 0,
                word: 0,
                cluster: 0,
                slot: 0,
                class: FuClass::Alu,
            },
            TraceEvent::Issue {
                cycle: 0,
                word: 0,
                cluster: 0,
                slot: 1,
                class: FuClass::Mem,
            },
            TraceEvent::Issue {
                cycle: 1,
                word: 1,
                cluster: 1,
                slot: 0,
                class: FuClass::Mul,
            },
            TraceEvent::Annul {
                cycle: 1,
                word: 1,
                cluster: 1,
                slot: 1,
            },
            TraceEvent::Branch {
                cycle: 2,
                word: 2,
                target: 0,
            },
            TraceEvent::IcacheMiss {
                cycle: 3,
                word: 3,
                stall: 10,
            },
            TraceEvent::Halt { cycle: 20 },
        ];
        let tl = UtilizationTimeline::build(events.iter(), 64);
        assert_eq!(tl.total_ops(), 3);
        assert_eq!(tl.clusters[0].ops_by_class[class_index(FuClass::Alu)], 1);
        assert_eq!(tl.clusters[0].ops_by_class[class_index(FuClass::Mem)], 1);
        assert_eq!(tl.clusters[1].ops_by_class[class_index(FuClass::Mul)], 1);
        assert_eq!(tl.clusters[1].annulled, 1);
        assert_eq!(tl.branches, 1);
        assert_eq!(tl.icache_misses, 1);
        assert_eq!(tl.icache_stall_cycles, 10);
        assert_eq!(tl.cycles, 21);
    }

    #[test]
    fn report_mentions_every_cluster_and_overall_occupancy() {
        let events = [
            TraceEvent::Issue {
                cycle: 0,
                word: 0,
                cluster: 0,
                slot: 0,
                class: FuClass::Alu,
            },
            TraceEvent::Halt { cycle: 1 },
        ];
        let tl = UtilizationTimeline::build(events.iter(), 8);
        let report = tl.report(&shape());
        assert!(report.contains("cluster 0:"), "{report}");
        assert!(report.contains("cluster 1:"), "{report}");
        assert!(report.contains("overall occupancy"), "{report}");
        assert!(report.contains("alu"), "{report}");
    }

    #[test]
    fn scheduler_events_do_not_affect_timelines() {
        let events = [TraceEvent::IiEscalate { from: 2, to: 3 }];
        let tl = UtilizationTimeline::build(events.iter(), 8);
        assert_eq!(tl.total_ops(), 0);
        assert_eq!(tl.cycles, 0);
    }
}
