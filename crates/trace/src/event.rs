//! Trace events: the shared vocabulary of the simulator's per-cycle
//! stream and the schedulers' decision logs.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use vsp_isa::{ClusterId, FuClass, SlotId};

/// Placement orderings the modulo scheduler tries per candidate II (see
/// `vsp-sched`'s `modulo` module). Mirrored here so II-attempt events can
/// say *which* tie-breaking strategy was being tried when an II failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedOrdering {
    /// Scarce resources (memory, multiplier, shifter) first, then height.
    ScarceFirst,
    /// Height-first, program order on ties.
    Height,
    /// Program order.
    Program,
}

impl SchedOrdering {
    fn name(self) -> &'static str {
        match self {
            SchedOrdering::ScarceFirst => "scarce-first",
            SchedOrdering::Height => "height",
            SchedOrdering::Program => "program",
        }
    }
}

/// Which compilation-pipeline pass a [`TraceEvent::PassComplete`] event
/// reports on (see `vsp-sched`'s `pipeline` module). Mirrored here so the
/// trace vocabulary stays self-contained: every pass the pipeline can run
/// has a stable name in the event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelinePass {
    /// Partial unrolling of innermost loops by a fixed factor.
    Unroll,
    /// Full unrolling of innermost loops.
    FullUnroll,
    /// If-conversion (predication).
    IfConvert,
    /// Common-subexpression elimination.
    Cse,
    /// Loop-invariant code motion.
    Licm,
    /// Strength reduction and algebraic simplification.
    StrengthReduce,
    /// Removal of named accumulator-retention variables.
    StripVars,
    /// Lowering to virtual operations plus dependence-graph build.
    Lower,
    /// The final scheduling pass (sequential walk, list or modulo).
    Schedule,
}

impl PipelinePass {
    /// Stable lowercase name of the pass (part of the trace format).
    pub fn name(self) -> &'static str {
        match self {
            PipelinePass::Unroll => "unroll",
            PipelinePass::FullUnroll => "full_unroll",
            PipelinePass::IfConvert => "if_convert",
            PipelinePass::Cse => "cse",
            PipelinePass::Licm => "licm",
            PipelinePass::StrengthReduce => "strength_reduce",
            PipelinePass::StripVars => "strip_vars",
            PipelinePass::Lower => "lower",
            PipelinePass::Schedule => "schedule",
        }
    }
}

/// Datapath structure a fault was injected into (see `vsp-fault`).
///
/// Mirrors the megacells of the paper's datapath: the multi-ported
/// register file, the local SRAM banks, the global crossbar, and the
/// instruction-fetch path (latency jitter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultSite {
    /// A register-file read port returned a corrupted value.
    RegRead,
    /// A local-SRAM word was corrupted on read.
    MemRead,
    /// A crossbar transfer delivered a corrupted value.
    Xfer,
    /// Instruction fetch suffered extra (jitter) stall cycles.
    Fetch,
}

impl FaultSite {
    /// Stable lowercase name of the fault site.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::RegRead => "reg_read",
            FaultSite::MemRead => "mem_read",
            FaultSite::Xfer => "xfer",
            FaultSite::Fetch => "fetch",
        }
    }
}

/// One structured trace event.
///
/// Simulator events carry the absolute cycle and fetched word index;
/// scheduler events carry operation indices into the lowered body and
/// schedule-relative cycles. All payloads are plain integers so a sink
/// can serialize an event without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// An operation issued and will commit (guard true or absent).
    Issue {
        /// Absolute simulation cycle.
        cycle: u64,
        /// Program word index.
        word: u32,
        /// Issuing cluster.
        cluster: ClusterId,
        /// Issue slot within the cluster.
        slot: SlotId,
        /// Functional-unit class the slot engaged.
        class: FuClass,
    },
    /// An operation issued but its guard annulled it.
    Annul {
        /// Absolute simulation cycle.
        cycle: u64,
        /// Program word index.
        word: u32,
        /// Issuing cluster.
        cluster: ClusterId,
        /// Issue slot within the cluster.
        slot: SlotId,
    },
    /// A branch or jump committed and will redirect fetch.
    Branch {
        /// Absolute simulation cycle.
        cycle: u64,
        /// Program word index of the branch.
        word: u32,
        /// Redirect target word.
        target: u32,
    },
    /// Instruction fetch missed the cache and stalled the machine.
    IcacheMiss {
        /// Absolute simulation cycle the miss was discovered.
        cycle: u64,
        /// Program word whose fetch missed.
        word: u32,
        /// Refill stall in cycles.
        stall: u32,
    },
    /// A word in a branch-delay shadow issued no operations — a
    /// branch-redirect bubble.
    BranchBubble {
        /// Absolute simulation cycle.
        cycle: u64,
        /// Program word index.
        word: u32,
    },
    /// The program halted.
    Halt {
        /// Absolute simulation cycle of the halt commit.
        cycle: u64,
    },
    /// A fault model perturbed the datapath (see `vsp-fault`).
    FaultInject {
        /// Absolute simulation cycle of the injection.
        cycle: u64,
        /// Which datapath structure was hit.
        site: FaultSite,
        /// Cluster the fault landed in (0 for fetch jitter).
        cluster: ClusterId,
        /// Site-specific index: register number, SRAM address, source
        /// register of a transfer, or fetched word for jitter.
        index: u32,
        /// Site-specific detail: flipped bit mask for value faults,
        /// extra stall cycles for fetch jitter.
        detail: u32,
    },

    /// List scheduler: an operation was placed.
    ListPlace {
        /// Operation index in the lowered body.
        op: u32,
        /// Ready-set size when this placement was made (operations whose
        /// same-iteration predecessors were all placed).
        ready: u32,
        /// Issue cycle within the block schedule.
        cycle: u32,
        /// Chosen cluster.
        cluster: ClusterId,
        /// Chosen slot.
        slot: SlotId,
    },
    /// List scheduler: a cycle was rejected for an operation because no
    /// capable slot was free (the op slides to a later cycle).
    ListConflict {
        /// Operation index in the lowered body.
        op: u32,
        /// Rejected cycle.
        cycle: u32,
        /// Cluster whose slots were exhausted.
        cluster: ClusterId,
    },
    /// Modulo scheduler: a candidate II is being attempted.
    IiAttempt {
        /// Candidate initiation interval.
        ii: u32,
        /// Placement ordering being tried.
        ordering: SchedOrdering,
    },
    /// Modulo scheduler: every ordering failed at `from`; II escalates.
    IiEscalate {
        /// II that failed.
        from: u32,
        /// Next II to try.
        to: u32,
    },
    /// Modulo scheduler: an operation was placed.
    ModuloPlace {
        /// Operation index in the lowered body.
        op: u32,
        /// Unplaced operations remaining before this placement.
        ready: u32,
        /// Issue time within the iteration schedule.
        time: u32,
        /// Modulo reservation row (`time % II`).
        row: u32,
        /// Chosen cluster.
        cluster: ClusterId,
        /// Chosen slot.
        slot: SlotId,
    },
    /// Modulo scheduler: no slot in the II-wide window accepted the
    /// operation on a cluster (a resource-conflict rejection).
    ModuloConflict {
        /// Operation index in the lowered body.
        op: u32,
        /// Earliest start the window search began at.
        time: u32,
        /// Cluster whose window was exhausted.
        cluster: ClusterId,
    },
    /// Modulo scheduler: an operation was forced into a full row,
    /// evicting whatever blocked it.
    ModuloForce {
        /// Operation index being forced in.
        op: u32,
        /// Issue time it was forced at.
        time: u32,
        /// Cluster it was forced onto.
        cluster: ClusterId,
    },
    /// Modulo scheduler: a previously placed operation was evicted.
    ModuloEvict {
        /// Operation index evicted back onto the worklist.
        evicted: u32,
        /// Operation index whose placement displaced it.
        by: u32,
    },
    /// A scheduler finished: `ii == 0` for list schedules.
    ScheduleDone {
        /// Achieved initiation interval (0 for list schedules).
        ii: u32,
        /// Schedule length in cycles.
        length: u32,
    },
    /// A compilation-pipeline pass completed (see `vsp-sched`'s
    /// `pipeline` module): one event per pass of a strategy, carrying
    /// the post-pass size of the unit so a trace shows how each
    /// transform grew or shrank the kernel.
    PassComplete {
        /// Zero-based position of the pass within its strategy.
        seq: u32,
        /// Which pass ran.
        pass: PipelinePass,
        /// IR statements in the kernel after the pass (recursive count).
        stmts: u32,
        /// Lowered virtual operations after the pass (0 until lowering).
        vops: u32,
    },
}

impl TraceEvent {
    /// Stable lowercase name of the event kind (used by the JSON-Lines
    /// and Chrome sinks).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Issue { .. } => "issue",
            TraceEvent::Annul { .. } => "annul",
            TraceEvent::Branch { .. } => "branch",
            TraceEvent::IcacheMiss { .. } => "icache_miss",
            TraceEvent::BranchBubble { .. } => "branch_bubble",
            TraceEvent::Halt { .. } => "halt",
            TraceEvent::FaultInject { .. } => "fault_inject",
            TraceEvent::ListPlace { .. } => "list_place",
            TraceEvent::ListConflict { .. } => "list_conflict",
            TraceEvent::IiAttempt { .. } => "ii_attempt",
            TraceEvent::IiEscalate { .. } => "ii_escalate",
            TraceEvent::ModuloPlace { .. } => "modulo_place",
            TraceEvent::ModuloConflict { .. } => "modulo_conflict",
            TraceEvent::ModuloForce { .. } => "modulo_force",
            TraceEvent::ModuloEvict { .. } => "modulo_evict",
            TraceEvent::ScheduleDone { .. } => "schedule_done",
            TraceEvent::PassComplete { .. } => "pass_complete",
        }
    }

    /// Whether this is a simulator (rather than scheduler) event.
    pub fn is_sim(&self) -> bool {
        matches!(
            self,
            TraceEvent::Issue { .. }
                | TraceEvent::Annul { .. }
                | TraceEvent::Branch { .. }
                | TraceEvent::IcacheMiss { .. }
                | TraceEvent::BranchBubble { .. }
                | TraceEvent::Halt { .. }
                | TraceEvent::FaultInject { .. }
        )
    }

    /// Appends this event as one flat JSON object (no trailing newline).
    ///
    /// The encoding is hand-rolled — every payload is integers and
    /// static strings, so the hot path never allocates through a
    /// serializer. Field names are part of the trace format and stable.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"ev\":\"");
        out.push_str(self.kind());
        out.push('"');
        match *self {
            TraceEvent::Issue {
                cycle,
                word,
                cluster,
                slot,
                class,
            } => {
                let _ = write!(
                    out,
                    ",\"cycle\":{cycle},\"word\":{word},\"cluster\":{cluster},\"slot\":{slot},\"class\":\"{}\"",
                    class_name(class)
                );
            }
            TraceEvent::Annul {
                cycle,
                word,
                cluster,
                slot,
            } => {
                let _ = write!(
                    out,
                    ",\"cycle\":{cycle},\"word\":{word},\"cluster\":{cluster},\"slot\":{slot}"
                );
            }
            TraceEvent::Branch {
                cycle,
                word,
                target,
            } => {
                let _ = write!(
                    out,
                    ",\"cycle\":{cycle},\"word\":{word},\"target\":{target}"
                );
            }
            TraceEvent::IcacheMiss { cycle, word, stall } => {
                let _ = write!(out, ",\"cycle\":{cycle},\"word\":{word},\"stall\":{stall}");
            }
            TraceEvent::BranchBubble { cycle, word } => {
                let _ = write!(out, ",\"cycle\":{cycle},\"word\":{word}");
            }
            TraceEvent::Halt { cycle } => {
                let _ = write!(out, ",\"cycle\":{cycle}");
            }
            TraceEvent::FaultInject {
                cycle,
                site,
                cluster,
                index,
                detail,
            } => {
                let _ = write!(
                    out,
                    ",\"cycle\":{cycle},\"site\":\"{}\",\"cluster\":{cluster},\"index\":{index},\"detail\":{detail}",
                    site.name()
                );
            }
            TraceEvent::ListPlace {
                op,
                ready,
                cycle,
                cluster,
                slot,
            } => {
                let _ = write!(
                    out,
                    ",\"op\":{op},\"ready\":{ready},\"cycle\":{cycle},\"cluster\":{cluster},\"slot\":{slot}"
                );
            }
            TraceEvent::ListConflict { op, cycle, cluster } => {
                let _ = write!(out, ",\"op\":{op},\"cycle\":{cycle},\"cluster\":{cluster}");
            }
            TraceEvent::IiAttempt { ii, ordering } => {
                let _ = write!(out, ",\"ii\":{ii},\"ordering\":\"{}\"", ordering.name());
            }
            TraceEvent::IiEscalate { from, to } => {
                let _ = write!(out, ",\"from\":{from},\"to\":{to}");
            }
            TraceEvent::ModuloPlace {
                op,
                ready,
                time,
                row,
                cluster,
                slot,
            } => {
                let _ = write!(
                    out,
                    ",\"op\":{op},\"ready\":{ready},\"time\":{time},\"row\":{row},\"cluster\":{cluster},\"slot\":{slot}"
                );
            }
            TraceEvent::ModuloConflict { op, time, cluster } => {
                let _ = write!(out, ",\"op\":{op},\"time\":{time},\"cluster\":{cluster}");
            }
            TraceEvent::ModuloForce { op, time, cluster } => {
                let _ = write!(out, ",\"op\":{op},\"time\":{time},\"cluster\":{cluster}");
            }
            TraceEvent::ModuloEvict { evicted, by } => {
                let _ = write!(out, ",\"evicted\":{evicted},\"by\":{by}");
            }
            TraceEvent::ScheduleDone { ii, length } => {
                let _ = write!(out, ",\"ii\":{ii},\"length\":{length}");
            }
            TraceEvent::PassComplete {
                seq,
                pass,
                stmts,
                vops,
            } => {
                let _ = write!(
                    out,
                    ",\"seq\":{seq},\"pass\":\"{}\",\"stmts\":{stmts},\"vops\":{vops}",
                    pass.name()
                );
            }
        }
        out.push('}');
    }
}

/// Stable lowercase name of a functional-unit class.
pub fn class_name(class: FuClass) -> &'static str {
    match class {
        FuClass::Alu => "alu",
        FuClass::Mul => "mul",
        FuClass::Shift => "shift",
        FuClass::Mem => "mem",
        FuClass::Branch => "branch",
        FuClass::Xfer => "xfer",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_are_flat_objects() {
        let mut s = String::new();
        TraceEvent::Issue {
            cycle: 7,
            word: 3,
            cluster: 1,
            slot: 2,
            class: FuClass::Mem,
        }
        .write_json(&mut s);
        assert_eq!(
            s,
            "{\"ev\":\"issue\",\"cycle\":7,\"word\":3,\"cluster\":1,\"slot\":2,\"class\":\"mem\"}"
        );
    }

    #[test]
    fn every_kind_serializes_without_panicking() {
        let events = [
            TraceEvent::Issue {
                cycle: 1,
                word: 0,
                cluster: 0,
                slot: 0,
                class: FuClass::Alu,
            },
            TraceEvent::Annul {
                cycle: 1,
                word: 0,
                cluster: 0,
                slot: 1,
            },
            TraceEvent::Branch {
                cycle: 2,
                word: 1,
                target: 0,
            },
            TraceEvent::IcacheMiss {
                cycle: 3,
                word: 2,
                stall: 128,
            },
            TraceEvent::BranchBubble { cycle: 4, word: 3 },
            TraceEvent::Halt { cycle: 5 },
            TraceEvent::FaultInject {
                cycle: 6,
                site: FaultSite::RegRead,
                cluster: 1,
                index: 12,
                detail: 0x40,
            },
            TraceEvent::ListPlace {
                op: 0,
                ready: 4,
                cycle: 0,
                cluster: 0,
                slot: 0,
            },
            TraceEvent::ListConflict {
                op: 1,
                cycle: 0,
                cluster: 0,
            },
            TraceEvent::IiAttempt {
                ii: 2,
                ordering: SchedOrdering::ScarceFirst,
            },
            TraceEvent::IiEscalate { from: 2, to: 3 },
            TraceEvent::ModuloPlace {
                op: 2,
                ready: 3,
                time: 1,
                row: 1,
                cluster: 0,
                slot: 2,
            },
            TraceEvent::ModuloConflict {
                op: 2,
                time: 1,
                cluster: 0,
            },
            TraceEvent::ModuloForce {
                op: 2,
                time: 1,
                cluster: 0,
            },
            TraceEvent::ModuloEvict { evicted: 1, by: 2 },
            TraceEvent::ScheduleDone { ii: 2, length: 7 },
            TraceEvent::PassComplete {
                seq: 0,
                pass: PipelinePass::Cse,
                stmts: 12,
                vops: 0,
            },
        ];
        for e in events {
            let mut s = String::new();
            e.write_json(&mut s);
            assert!(s.starts_with(&format!("{{\"ev\":\"{}\"", e.kind())), "{s}");
            assert!(s.ends_with('}'), "{s}");
        }
    }
}
