//! Event sinks: where trace events go.
//!
//! The contract that keeps tracing free when unused: producers must
//! check [`TraceSink::enabled`] before building an event, and
//! [`NullSink`] answers `false` from a trivially inlinable body. A
//! simulator monomorphized over `NullSink` therefore contains no trace
//! code at all — the branch folds to a constant and dead-code
//! elimination removes the payload construction.

use crate::event::{class_name, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A consumer of [`TraceEvent`]s.
pub trait TraceSink {
    /// Whether this sink wants events at all. Producers should gate
    /// event construction on this so a disabled sink costs nothing.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn emit(&mut self, event: TraceEvent);

    /// Flushes any buffered output to its destination.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn emit(&mut self, event: TraceEvent) {
        (**self).emit(event)
    }

    fn flush(&mut self) -> io::Result<()> {
        (**self).flush()
    }
}

/// The do-nothing sink. Reports itself disabled, so traced code paths
/// compile down to the untraced ones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn emit(&mut self, _event: TraceEvent) {}
}

/// A bounded in-memory ring buffer of events.
///
/// Keeps the most recent `capacity` events; older ones are overwritten
/// but still counted, so [`MemorySink::total`] always reflects every
/// event ever emitted (the reconciliation tests rely on this).
#[derive(Debug, Clone)]
pub struct MemorySink {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest retained event once the buffer has wrapped.
    head: usize,
    total: u64,
}

impl Default for MemorySink {
    fn default() -> Self {
        Self::new()
    }
}

impl MemorySink {
    /// Default retention: the most recent 1Mi events.
    pub fn new() -> Self {
        Self::with_capacity(1 << 20)
    }

    /// A ring retaining at most `capacity` events (`capacity > 0`).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "MemorySink capacity must be non-zero");
        MemorySink {
            buf: Vec::new(),
            capacity,
            head: 0,
            total: 0,
        }
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever emitted, including overwritten ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events lost to ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Counts retained events matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> u64 {
        self.events().filter(|e| pred(e)).count() as u64
    }

    /// Drops all retained events (the running total is kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

impl TraceSink for MemorySink {
    fn emit(&mut self, event: TraceEvent) {
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
    }
}

/// Streams events as JSON-Lines: one flat JSON object per line, in the
/// format of [`TraceEvent::write_json`].
pub struct JsonLinesSink<W: Write> {
    out: W,
    line: String,
}

impl JsonLinesSink<BufWriter<File>> {
    /// Opens (truncating) a `.jsonl` file.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonLinesSink<W> {
    /// Wraps any writer.
    pub fn new(out: W) -> Self {
        JsonLinesSink {
            out,
            line: String::with_capacity(128),
        }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> TraceSink for JsonLinesSink<W> {
    fn emit(&mut self, event: TraceEvent) {
        self.line.clear();
        event.write_json(&mut self.line);
        self.line.push('\n');
        // I/O errors are surfaced at flush; a sink must not panic
        // mid-simulation.
        let _ = self.out.write_all(self.line.as_bytes());
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Per-class occupancy counters for one cluster within one cycle.
type ClassCounts = [u32; 6];

/// Streams events in Chrome's `trace_event` JSON-array format, loadable
/// in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
///
/// Mapping: one trace *process* per cluster (pid = cluster id), one
/// *thread* per issue slot (tid = slot id). Committed issues become 1µs
/// complete events named after their FU class; annuls, branches, cache
/// misses and scheduler decisions become instants; per-cluster
/// occupancy (ops per class per cycle) is emitted as counter tracks.
/// One simulated cycle maps to 1µs of trace time.
pub struct ChromeTraceSink<W: Write> {
    out: W,
    scratch: String,
    first: bool,
    finished: bool,
    /// Cycle whose occupancy counters are still accumulating.
    open_cycle: Option<u64>,
    counts: BTreeMap<u8, ClassCounts>,
    last_emitted: BTreeMap<u8, ClassCounts>,
    named_pids: BTreeMap<u32, ()>,
}

/// Synthetic pid for the scheduler decision-log track.
const SCHED_PID: u32 = 1000;

impl ChromeTraceSink<BufWriter<File>> {
    /// Opens (truncating) a `.json` trace file.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> ChromeTraceSink<W> {
    /// Wraps any writer.
    pub fn new(out: W) -> Self {
        ChromeTraceSink {
            out,
            scratch: String::with_capacity(256),
            first: true,
            finished: false,
            open_cycle: None,
            counts: BTreeMap::new(),
            last_emitted: BTreeMap::new(),
            named_pids: BTreeMap::new(),
        }
    }

    /// Writes remaining counter samples and the closing `]`, flushes,
    /// and returns the writer. The trace file is well-formed only after
    /// this (though Perfetto tolerates a missing terminator).
    pub fn finish(mut self) -> io::Result<W> {
        self.close();
        self.out.flush()?;
        Ok(self.out)
    }

    fn close(&mut self) {
        if self.finished {
            return;
        }
        if let Some(cycle) = self.open_cycle.take() {
            self.flush_counters(cycle);
        }
        self.finished = true;
        let _ = self
            .out
            .write_all(if self.first { b"[\n]\n" } else { b"\n]\n" });
    }

    fn record_start(&mut self) {
        self.scratch.clear();
        self.scratch
            .push_str(if self.first { "[\n" } else { ",\n" });
        self.first = false;
    }

    fn record_end(&mut self) {
        let _ = self.out.write_all(self.scratch.as_bytes());
    }

    fn name_pid(&mut self, pid: u32, name: &str) {
        if self.named_pids.insert(pid, ()).is_none() {
            self.record_start();
            let _ = write!(
                self.scratch,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            );
            self.record_end();
        }
    }

    /// Emits counter samples for every cluster whose per-class counts
    /// changed since the last sample (including drops back to zero).
    fn flush_counters(&mut self, cycle: u64) {
        let clusters: Vec<u8> = self
            .counts
            .keys()
            .chain(self.last_emitted.keys())
            .copied()
            .collect();
        for cluster in clusters {
            let cur = self.counts.get(&cluster).copied().unwrap_or([0; 6]);
            if self.last_emitted.get(&cluster).copied().unwrap_or([0; 6]) == cur {
                continue;
            }
            self.record_start();
            let _ = write!(
                self.scratch,
                "{{\"name\":\"occupancy\",\"ph\":\"C\",\"ts\":{cycle},\
                 \"pid\":{cluster},\"tid\":0,\"args\":{{"
            );
            for (i, class) in vsp_isa::FuClass::ALL.iter().enumerate() {
                if i > 0 {
                    self.scratch.push(',');
                }
                let _ = write!(self.scratch, "\"{}\":{}", class_name(*class), cur[i]);
            }
            self.scratch.push_str("}}");
            self.record_end();
            self.last_emitted.insert(cluster, cur);
        }
        self.counts.clear();
    }

    fn advance_to(&mut self, cycle: u64) {
        match self.open_cycle {
            Some(open) if open == cycle => {}
            Some(open) => {
                self.flush_counters(open);
                self.open_cycle = Some(cycle);
            }
            None => self.open_cycle = Some(cycle),
        }
    }

    fn instant(&mut self, name: &str, ts: u64, pid: u32, tid: u32, args_json: &str) {
        self.record_start();
        let _ = write!(
            self.scratch,
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
             \"pid\":{pid},\"tid\":{tid},\"args\":{args_json}}}"
        );
        self.record_end();
    }
}

impl<W: Write> TraceSink for ChromeTraceSink<W> {
    fn emit(&mut self, event: TraceEvent) {
        if self.finished {
            return;
        }
        match event {
            TraceEvent::Issue {
                cycle,
                word,
                cluster,
                slot,
                class,
            } => {
                self.name_pid(cluster as u32, &format!("cluster {cluster}"));
                self.advance_to(cycle);
                let idx = crate::timeline::class_index(class);
                self.counts.entry(cluster).or_insert([0; 6])[idx] += 1;
                self.record_start();
                let _ = write!(
                    self.scratch,
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{cycle},\"dur\":1,\
                     \"pid\":{cluster},\"tid\":{slot},\"args\":{{\"word\":{word}}}}}",
                    class_name(class)
                );
                self.record_end();
            }
            TraceEvent::Annul {
                cycle,
                word,
                cluster,
                slot,
            } => {
                self.name_pid(cluster as u32, &format!("cluster {cluster}"));
                self.advance_to(cycle);
                self.instant(
                    "annul",
                    cycle,
                    cluster as u32,
                    slot as u32,
                    &format!("{{\"word\":{word}}}"),
                );
            }
            TraceEvent::Branch {
                cycle,
                word,
                target,
            } => {
                self.advance_to(cycle);
                self.instant(
                    "branch",
                    cycle,
                    0,
                    0,
                    &format!("{{\"word\":{word},\"target\":{target}}}"),
                );
            }
            TraceEvent::IcacheMiss { cycle, word, stall } => {
                self.advance_to(cycle);
                self.record_start();
                let _ = write!(
                    self.scratch,
                    "{{\"name\":\"icache miss\",\"ph\":\"X\",\"ts\":{cycle},\"dur\":{stall},\
                     \"pid\":0,\"tid\":0,\"args\":{{\"word\":{word}}}}}"
                );
                self.record_end();
            }
            TraceEvent::BranchBubble { cycle, word } => {
                self.advance_to(cycle);
                self.instant(
                    "branch bubble",
                    cycle,
                    0,
                    0,
                    &format!("{{\"word\":{word}}}"),
                );
            }
            TraceEvent::Halt { cycle } => {
                self.advance_to(cycle);
                self.instant("halt", cycle, 0, 0, "{}");
            }
            TraceEvent::FaultInject {
                cycle,
                site,
                cluster,
                index,
                detail,
            } => {
                self.name_pid(cluster as u32, &format!("cluster {cluster}"));
                self.advance_to(cycle);
                self.instant(
                    "fault",
                    cycle,
                    cluster as u32,
                    0,
                    &format!(
                        "{{\"site\":\"{}\",\"index\":{index},\"detail\":{detail}}}",
                        site.name()
                    ),
                );
            }
            other => {
                // Scheduler decision log: instants on a synthetic
                // process, timestamped by schedule-relative cycle.
                self.name_pid(SCHED_PID, "scheduler");
                let ts = match other {
                    TraceEvent::ListPlace { cycle, .. } => cycle as u64,
                    TraceEvent::ListConflict { cycle, .. } => cycle as u64,
                    TraceEvent::ModuloPlace { time, .. } => time as u64,
                    TraceEvent::ModuloConflict { time, .. } => time as u64,
                    TraceEvent::ModuloForce { time, .. } => time as u64,
                    _ => 0,
                };
                let mut args = String::new();
                other.write_json(&mut args);
                self.instant(other.kind(), ts, SCHED_PID, 0, &args);
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsp_isa::FuClass;

    fn issue(cycle: u64, cluster: u8, slot: u8) -> TraceEvent {
        TraceEvent::Issue {
            cycle,
            word: 0,
            cluster,
            slot,
            class: FuClass::Alu,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
    }

    #[test]
    fn memory_sink_retains_in_order() {
        let mut sink = MemorySink::with_capacity(8);
        for c in 0..5 {
            sink.emit(issue(c, 0, 0));
        }
        assert_eq!(sink.len(), 5);
        assert_eq!(sink.total(), 5);
        assert_eq!(sink.dropped(), 0);
        let cycles: Vec<u64> = sink
            .events()
            .map(|e| match e {
                TraceEvent::Issue { cycle, .. } => *cycle,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(cycles, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn memory_sink_wraps_and_counts_drops() {
        let mut sink = MemorySink::with_capacity(4);
        for c in 0..10 {
            sink.emit(issue(c, 0, 0));
        }
        assert_eq!(sink.len(), 4);
        assert_eq!(sink.total(), 10);
        assert_eq!(sink.dropped(), 6);
        let cycles: Vec<u64> = sink
            .events()
            .map(|e| match e {
                TraceEvent::Issue { cycle, .. } => *cycle,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(cycles, vec![6, 7, 8, 9], "oldest-first after wrap");
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_event() {
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.emit(issue(3, 1, 2));
        sink.emit(TraceEvent::Halt { cycle: 9 });
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ev\":\"issue\""));
        assert!(lines[1].contains("\"ev\":\"halt\""));
    }

    #[test]
    fn chrome_sink_produces_a_json_array() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        sink.emit(issue(0, 0, 0));
        sink.emit(issue(0, 0, 1));
        sink.emit(issue(1, 0, 0));
        sink.emit(TraceEvent::Branch {
            cycle: 1,
            word: 2,
            target: 0,
        });
        sink.emit(TraceEvent::Halt { cycle: 4 });
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let trimmed = text.trim();
        assert!(trimmed.starts_with('['), "{text}");
        assert!(trimmed.ends_with(']'), "{text}");
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"C\""), "occupancy counters present");
        assert!(text.contains("\"process_name\""));
        // Every record line between the brackets must parse as an object.
        for line in text.lines() {
            let line = line.trim().trim_end_matches(',');
            if line == "[" || line == "]" || line.is_empty() {
                continue;
            }
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn chrome_sink_empty_trace_is_well_formed() {
        let sink = ChromeTraceSink::new(Vec::new());
        let bytes = sink.finish().unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap().trim(), "[\n]");
    }
}
