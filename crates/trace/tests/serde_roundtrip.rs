//! Serde round-trips for the trace event vocabulary.
//!
//! These exercise the derived `Serialize`/`Deserialize` impls with
//! `serde_json`. In registry-less environments where only the offline
//! serde stubs are available, serialization reports an error and the
//! assertions are skipped — the round-trip is meaningful exactly when
//! the real serde is linked.

use vsp_isa::FuClass;
use vsp_trace::{SchedOrdering, TraceEvent};

fn roundtrip(event: TraceEvent) {
    let json = match serde_json::to_string(&event) {
        Ok(json) => json,
        Err(_) => return, // offline serde stub; nothing to verify
    };
    let back: TraceEvent =
        serde_json::from_str(&json).unwrap_or_else(|e| panic!("failed to deserialize {json}: {e}"));
    assert_eq!(back, event, "round-trip changed the event ({json})");
}

#[test]
fn every_event_kind_round_trips() {
    let events = [
        TraceEvent::Issue {
            cycle: 123_456_789_012,
            word: 42,
            cluster: 3,
            slot: 7,
            class: FuClass::Mul,
        },
        TraceEvent::Annul {
            cycle: 9,
            word: 4,
            cluster: 1,
            slot: 0,
        },
        TraceEvent::Branch {
            cycle: 17,
            word: 12,
            target: 3,
        },
        TraceEvent::IcacheMiss {
            cycle: 0,
            word: 0,
            stall: 128,
        },
        TraceEvent::BranchBubble {
            cycle: 21,
            word: 14,
        },
        TraceEvent::Halt { cycle: 1000 },
        TraceEvent::ListPlace {
            op: 5,
            ready: 3,
            cycle: 2,
            cluster: 0,
            slot: 1,
        },
        TraceEvent::ListConflict {
            op: 5,
            cycle: 1,
            cluster: 0,
        },
        TraceEvent::IiAttempt {
            ii: 4,
            ordering: SchedOrdering::Height,
        },
        TraceEvent::IiEscalate { from: 4, to: 5 },
        TraceEvent::ModuloPlace {
            op: 8,
            ready: 2,
            time: 6,
            row: 2,
            cluster: 0,
            slot: 3,
        },
        TraceEvent::ModuloConflict {
            op: 8,
            time: 6,
            cluster: 0,
        },
        TraceEvent::ModuloForce {
            op: 8,
            time: 7,
            cluster: 0,
        },
        TraceEvent::ModuloEvict { evicted: 2, by: 8 },
        TraceEvent::ScheduleDone { ii: 4, length: 19 },
    ];
    for event in events {
        roundtrip(event);
    }
}

#[test]
fn orderings_round_trip() {
    for ordering in [
        SchedOrdering::ScarceFirst,
        SchedOrdering::Height,
        SchedOrdering::Program,
    ] {
        let event = TraceEvent::IiAttempt { ii: 2, ordering };
        roundtrip(event);
    }
}
