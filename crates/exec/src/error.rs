//! Typed errors for the execution backends.
//!
//! The functional tier is *sound by refusal*: anything it cannot prove
//! it can reproduce bit-for-bit against the cycle-accurate simulator is
//! rejected at lowering time with an [`Unsupported`] reason, never
//! approximated. Callers such as `EvalEngine` treat a refusal as a
//! routing decision — fall back to the cycle-accurate backend — not as
//! a failure.

use std::fmt;
use vsp_sim::SimError;

/// Why the functional tier refused to lower or run a program.
///
/// Every variant marks a program (or request) whose architectural
/// outcome the tier cannot guarantee to match the simulator exactly,
/// so it declines instead of risking a wrong answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unsupported {
    /// A branch, jump or halt whose outcome depends on run-time data
    /// (a predicate the constant-propagation walk could not resolve).
    /// The functional tier pre-resolves all control flow; data-dependent
    /// control needs the cycle-accurate or batch tier.
    DataDependentControl {
        /// Instruction-word index of the unresolvable control op.
        word: usize,
    },
    /// A control operation (branch/jump/halt) under a guard predicate
    /// that is not statically known — whether the op executes at all is
    /// data-dependent.
    GuardedControl {
        /// Instruction-word index of the guarded control op.
        word: usize,
    },
    /// The program's own timing is hazardous: a register or predicate
    /// is read before its producer commits, two results land on one
    /// write port in the same cycle, or commits to one register would
    /// complete out of issue order. The simulator would fault (or give
    /// stale-read semantics the functional tier does not model).
    TimingHazard {
        /// Instruction-word index at which the hazard was detected.
        word: usize,
    },
    /// The program does not fit the instruction cache, so the real
    /// machine pays refill stalls the functional tier does not model —
    /// its cycle count would be wrong.
    IcacheOverflow {
        /// Program length in VLIW words.
        words: usize,
        /// Instruction-cache capacity in words.
        capacity: u32,
    },
    /// Control flow ran past the end of the program without a halt.
    RanOffEnd {
        /// Word index the walk fell off at.
        word: usize,
    },
    /// The lowering walk exceeded its step budget without reaching a
    /// halt (an unbounded or pathologically long loop).
    NonTerminating {
        /// The exhausted walk budget, in instruction words.
        limit: u64,
    },
    /// The flattened trace would exceed the lowering size budget.
    TraceTooLong {
        /// Number of flattened ops at the point of refusal.
        ops: usize,
    },
    /// A word exchanges registers through same-cycle read/write pairs
    /// (every op reads a register another op in the word writes, in a
    /// cycle), which the linearized trace cannot order.
    SameCycleExchange {
        /// Instruction-word index of the exchange.
        word: usize,
    },
    /// The request asked for fault injection, which the functional tier
    /// cannot model (faults perturb per-cycle datapath reads). Fault
    /// campaigns use `vsp-sim`/`vsp-fault` directly.
    FaultInjection,
}

impl Unsupported {
    /// Stable short label for this refusal reason (metrics/report
    /// friendly: no payload, fixed vocabulary).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Unsupported::DataDependentControl { .. } => "data_dependent_control",
            Unsupported::GuardedControl { .. } => "guarded_control",
            Unsupported::TimingHazard { .. } => "timing_hazard",
            Unsupported::IcacheOverflow { .. } => "icache_overflow",
            Unsupported::RanOffEnd { .. } => "ran_off_end",
            Unsupported::NonTerminating { .. } => "non_terminating",
            Unsupported::TraceTooLong { .. } => "trace_too_long",
            Unsupported::SameCycleExchange { .. } => "same_cycle_exchange",
            Unsupported::FaultInjection => "fault_injection",
        }
    }
}

impl fmt::Display for Unsupported {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unsupported::DataDependentControl { word } => {
                write!(f, "data-dependent control flow at word {word}")
            }
            Unsupported::GuardedControl { word } => {
                write!(f, "control op under a data-dependent guard at word {word}")
            }
            Unsupported::TimingHazard { word } => {
                write!(
                    f,
                    "timing hazard (premature read or write-port conflict) at word {word}"
                )
            }
            Unsupported::IcacheOverflow { words, capacity } => {
                write!(
                    f,
                    "program of {words} words exceeds the {capacity}-word icache (refill stalls unmodeled)"
                )
            }
            Unsupported::RanOffEnd { word } => {
                write!(f, "control flow ran off the program end at word {word}")
            }
            Unsupported::NonTerminating { limit } => {
                write!(f, "no halt within the {limit}-word lowering budget")
            }
            Unsupported::TraceTooLong { ops } => {
                write!(f, "flattened trace exceeds the lowering budget ({ops} ops)")
            }
            Unsupported::SameCycleExchange { word } => {
                write!(
                    f,
                    "unlinearizable same-cycle register exchange at word {word}"
                )
            }
            Unsupported::FaultInjection => {
                write!(f, "fault injection is not modeled by the functional tier")
            }
        }
    }
}

/// Errors from the execution backends.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The program failed structural validation for the machine.
    Invalid(SimError),
    /// The functional tier refused the program or request (see
    /// [`Unsupported`]); fall back to a cycle-accurate tier.
    Unsupported(Unsupported),
    /// The program's trace is longer than the request's cycle budget
    /// (the simulator would return `SimError::CycleLimit`).
    CycleLimit {
        /// The exhausted budget.
        limit: u64,
    },
    /// A load or store fell outside its memory bank at run time.
    MemOutOfRange {
        /// Cluster of the access.
        cluster: u8,
        /// Bank index within the cluster.
        bank: u8,
        /// Offending word address.
        addr: u32,
        /// Bank capacity in words.
        words: u32,
    },
    /// The wrapped cycle-accurate simulator failed.
    Sim(SimError),
}

impl ExecError {
    /// Whether this error is a *refusal* — the functional tier declining
    /// a program it cannot soundly lower — rather than a run failure.
    /// Refusals route the caller to a cycle-accurate tier.
    #[must_use]
    pub fn is_refusal(&self) -> bool {
        matches!(self, ExecError::Unsupported(_))
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Invalid(e) => write!(f, "program invalid for machine: {e}"),
            ExecError::Unsupported(u) => write!(f, "functional tier refused: {u}"),
            ExecError::CycleLimit { limit } => {
                write!(f, "trace exceeds the {limit}-cycle budget")
            }
            ExecError::MemOutOfRange {
                cluster,
                bank,
                addr,
                words,
            } => write!(
                f,
                "memory access out of range: cluster {cluster} bank {bank} addr {addr} (bank has {words} words)"
            ),
            ExecError::Sim(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<Unsupported> for ExecError {
    fn from(u: Unsupported) -> Self {
        ExecError::Unsupported(u)
    }
}
