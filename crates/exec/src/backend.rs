//! The [`Backend`] abstraction: one request/outcome surface over every
//! execution tier that can turn a program into final architectural
//! state.

use crate::error::{ExecError, Unsupported};
#[cfg(doc)]
use crate::functional::Functional;
use vsp_core::MachineConfig;
use vsp_isa::Program;
use vsp_sim::{ArchState, Simulator};

/// Input data staged into local memory before execution.
///
/// Mirrors the differential oracle's convention: kernel inputs are
/// written into the *active* (processing) buffer of the named bank,
/// either in one cluster or — for SIMD-replicated code, where every
/// cluster runs the same loop on its own copy — in all of them.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpec {
    /// Target cluster, or `None` to stage into every cluster.
    pub cluster: Option<u8>,
    /// Local-memory bank within each target cluster.
    pub bank: u8,
    /// First word address written.
    pub base: u16,
    /// Values written contiguously from `base`.
    pub data: Vec<i16>,
}

impl StageSpec {
    /// Stages `data` at `bank[base..]` in every cluster (the common
    /// SIMD-replication case).
    #[must_use]
    pub fn broadcast(bank: u8, base: u16, data: Vec<i16>) -> Self {
        StageSpec {
            cluster: None,
            bank,
            base,
            data,
        }
    }
}

/// One execution request: a cycle budget, staged input data, and
/// whether the caller's campaign wants fault injection.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecRequest {
    /// Maximum cycles before the run is abandoned.
    pub max_cycles: u64,
    /// Input data written to local memories before the first cycle.
    pub stage: Vec<StageSpec>,
    /// Whether the caller has an active fault plan. The [`Backend`]
    /// surface carries no plan — both backends refuse such requests
    /// ([`Unsupported::FaultInjection`]); fault campaigns drive
    /// `vsp-sim`/`vsp-fault` directly.
    pub fault_injection: bool,
}

impl ExecRequest {
    /// A plain request: `max_cycles` budget, nothing staged, no faults.
    #[must_use]
    pub fn new(max_cycles: u64) -> Self {
        ExecRequest {
            max_cycles,
            stage: Vec::new(),
            fault_injection: false,
        }
    }

    /// Adds a staged input region (builder style).
    #[must_use]
    pub fn with_stage(mut self, stage: StageSpec) -> Self {
        self.stage.push(stage);
        self
    }
}

/// What an execution produced: the complete architectural state and the
/// cycle count the tier reports for the run.
///
/// For [`CycleAccurate`] the cycle count is measured; for
/// [`Functional`] it is derived from the pre-resolved trace length
/// (exact for the stall-free programs that tier accepts). Stall
/// breakdowns, per-FU counts and other `RunStats` detail exist only on
/// the cycle-accurate tiers.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Final architectural state (registers, predicates, both halves of
    /// every local-memory bank, cycle count, halt flag).
    pub state: ArchState,
    /// Cycles the run took (equal to `state.cycle`).
    pub cycles: u64,
}

/// An execution tier: anything that runs a program on a machine model
/// to completion and reports final architectural state.
///
/// Two implementations ship today — [`CycleAccurate`] wrapping the
/// simulator and [`Functional`] for the lowered tier — and the trait is
/// deliberately dyn-safe so services can route requests across a
/// heterogeneous backend set.
///
/// ```
/// use vsp_core::models;
/// use vsp_exec::{Backend, CycleAccurate, ExecRequest, Functional};
/// use vsp_isa::{AluBinOp, OpKind, Operand, Operation, Program, Reg};
///
/// let machine = models::i4c8s4();
/// let mut p = Program::new("add");
/// p.push_word(vec![Operation::new(0, 0, OpKind::AluBin {
///     op: AluBinOp::Add, dst: Reg(2), a: Operand::Imm(40), b: Operand::Imm(2),
/// })]);
/// p.push_word(vec![Operation::new(0, 4, OpKind::Halt)]);
///
/// let req = ExecRequest::new(100);
/// let backends: [&dyn Backend; 2] = [&CycleAccurate, &Functional];
/// for b in backends {
///     let out = b.execute(&machine, &p, &req).unwrap();
///     assert_eq!(out.state.regs[0][2], 42);
///     assert!(out.state.halted);
/// }
/// ```
pub trait Backend {
    /// The tier's stable name (used in metrics labels and reports).
    fn name(&self) -> &'static str;

    /// Runs `program` on `machine` to completion.
    ///
    /// # Errors
    ///
    /// [`ExecError::Unsupported`] when the tier refuses the program or
    /// request (see [`Unsupported`]); other variants for validation,
    /// budget and run-time failures.
    fn execute(
        &self,
        machine: &MachineConfig,
        program: &Program,
        req: &ExecRequest,
    ) -> Result<ExecOutcome, ExecError>;
}

/// The cycle-accurate tier: a thin [`Backend`] adapter over
/// [`vsp_sim::Simulator`]'s pre-decoded fast path.
#[derive(Debug, Clone, Copy, Default)]
pub struct CycleAccurate;

impl Backend for CycleAccurate {
    fn name(&self) -> &'static str {
        "cycle-accurate"
    }

    fn execute(
        &self,
        machine: &MachineConfig,
        program: &Program,
        req: &ExecRequest,
    ) -> Result<ExecOutcome, ExecError> {
        if req.fault_injection {
            return Err(Unsupported::FaultInjection.into());
        }
        let mut sim = Simulator::new(machine, program).map_err(ExecError::Sim)?;
        for s in &req.stage {
            let clusters: Vec<u8> = match s.cluster {
                Some(c) => vec![c],
                None => (0..machine.clusters as u8).collect(),
            };
            for c in clusters {
                let buf = sim.mem_mut(c, s.bank).active_buffer_mut();
                let base = usize::from(s.base);
                buf[base..base + s.data.len()].copy_from_slice(&s.data);
            }
        }
        sim.run(req.max_cycles).map_err(ExecError::Sim)?;
        let state = sim.arch_state();
        let cycles = state.cycle;
        Ok(ExecOutcome { state, cycles })
    }
}
