//! The shared evaluation plane: one tier-selection ladder for every
//! driver.
//!
//! Before this module existed the degradation ladder lived twice — once
//! in `vsp-serve`'s job executor and once in `vsp-bench`'s `EvalEngine`
//! dispatch — and a third copy was about to appear in the design-space
//! search driver. [`EvalPlane`] is the single implementation all three
//! consume: given a program (or just an analytic estimate) and a
//! [`PlaneRequest`], it picks the cheapest tier that can answer
//! honestly and walks down on refusal:
//!
//! 1. **Estimate** — under load-shed, a job with an analytic
//!    [`CycleEstimate`] degrades to the schedule's closed form
//!    (`degraded: true`); an artifact with no runnable program answers
//!    here naturally.
//! 2. **Functional** — the flat-trace tier runs first (~365k runs/s
//!    when it accepts). A typed refusal
//!    ([`ExecError::is_refusal`](crate::ExecError::is_refusal)) is a
//!    routing decision, not a failure; non-refusal run errors also fall
//!    through so the cycle tiers report the authoritative
//!    [`SimError`].
//! 3. **Batch** — multi-run requests go to the SoA lockstep engine,
//!    one lane per run, with per-lane seeded fault plans.
//! 4. **Cycle-accurate** — single runs (and fault injection) end on
//!    the simulator, `RunStats` and all.
//!
//! The plane memoizes functional lowerings under a content key (the
//! same `(program, machine)` fingerprint scheme `EvalEngine` uses for
//! its decode cache), so repeated jobs over one artifact lower once.
//! Tier traffic is recorded as `vsp_exec_prepare_total{outcome}`,
//! `vsp_exec_refusals_total{reason}` and `vsp_exec_runs_total{backend}`
//! when a metrics registry is attached.

use crate::{CompiledProgram, CycleEstimate, ExecError, ExecRequest, Functional};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::hash::{DefaultHasher, Hasher};
use std::sync::{Arc, Mutex};
use vsp_core::MachineConfig;
use vsp_fault::FaultPlan;
use vsp_isa::Program;
use vsp_metrics::{Recorder, SharedRegistry};
use vsp_sim::{ArchState, BatchSimulator, DecodedProgram, RunSpec, RunStats, SimError, Simulator};
use vsp_trace::NullSink;

/// Which execution tier answered a [`PlaneRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Analytic closed-form estimate (no execution).
    Estimate,
    /// Flat-trace functional execution.
    Functional,
    /// SoA lockstep batch engine.
    Batch,
    /// Cycle-accurate simulator.
    CycleAccurate,
}

impl Tier {
    /// Stable lowercase label (metrics/report friendly).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Tier::Estimate => "estimate",
            Tier::Functional => "functional",
            Tier::Batch => "batch",
            Tier::CycleAccurate => "cycle-accurate",
        }
    }
}

/// A fault-injection request: the seed/rate pair the cycle tiers turn
/// into a deterministic [`FaultPlan`]. Lane `i` of a batch request uses
/// `seed + i`, so campaigns stay reproducible per lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRequest {
    /// Base RNG seed for the plan.
    pub seed: u64,
    /// Transient bit-flip rate in events per million cycle-reads.
    pub rate_ppm: u32,
}

/// One evaluation request against the plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlaneRequest {
    /// Cycle budget per run.
    pub max_cycles: u64,
    /// Number of runs; `> 1` routes to the batch tier.
    pub runs: u32,
    /// Fault injection, which the functional tier refuses per-request.
    pub fault: Option<FaultRequest>,
    /// Load-shed signal: degrade to the analytic estimate when one is
    /// available (jobs without a closed form still run — shedding must
    /// never turn a servable request into an error).
    pub shed: bool,
}

impl PlaneRequest {
    /// A single quiet run with the given cycle budget.
    #[must_use]
    pub fn new(max_cycles: u64) -> Self {
        PlaneRequest {
            max_cycles,
            runs: 1,
            fault: None,
            shed: false,
        }
    }
}

/// What the plane answered, and which tier produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaneOutcome {
    /// The tier that produced the answer.
    pub tier: Tier,
    /// Whether load-shedding degraded the request to the estimate tier.
    pub degraded: bool,
    /// Refusal label when the functional tier declined and a lower tier
    /// answered (`None` when the functional tier answered or was never
    /// consulted).
    pub refusal: Option<&'static str>,
    /// Cycle count of the answer (estimated or executed).
    pub cycles: u64,
    /// Whether the program halted (estimates are assumed to).
    pub halted: bool,
    /// Final architectural state (run tiers only).
    pub state: Option<ArchState>,
    /// Run statistics (cycle tiers only — the functional tier has no
    /// per-cycle story to tell).
    pub stats: Option<RunStats>,
    /// The analytic estimate (estimate tier only).
    pub estimate: Option<CycleEstimate>,
}

impl PlaneOutcome {
    fn from_estimate(est: CycleEstimate, degraded: bool) -> Self {
        PlaneOutcome {
            tier: Tier::Estimate,
            degraded,
            refusal: None,
            cycles: est.cycles,
            halted: true,
            state: None,
            stats: None,
            estimate: Some(est),
        }
    }
}

/// Why the plane could not answer.
#[derive(Debug, Clone, PartialEq)]
pub enum PlaneError {
    /// Neither a program nor an estimate was supplied.
    NothingToRun,
    /// The program failed structural validation for the machine.
    Invalid(SimError),
    /// The cycle-accurate run failed (budget exhaustion, memory fault).
    Sim(SimError),
    /// The batch engine produced no lanes.
    EmptyBatch,
    /// One or more batch lanes failed; carries the first failing lane.
    BatchLanes {
        /// Number of failed lanes.
        failed: usize,
        /// Total lanes in the batch.
        total: usize,
        /// Index of the first failing lane.
        lane: usize,
        /// That lane's error.
        error: SimError,
    },
}

impl PlaneError {
    /// The underlying simulator error, when this failure carries one —
    /// single-run callers use it to report the authoritative
    /// [`SimError`] unchanged.
    #[must_use]
    pub fn sim_error(self) -> Option<SimError> {
        match self {
            PlaneError::Invalid(e) | PlaneError::Sim(e) => Some(e),
            PlaneError::BatchLanes { error, .. } => Some(error),
            PlaneError::NothingToRun | PlaneError::EmptyBatch => None,
        }
    }
}

impl std::fmt::Display for PlaneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaneError::NothingToRun => write!(f, "artifact has neither program nor estimate"),
            PlaneError::Invalid(e) => write!(f, "invalid program: {e}"),
            PlaneError::Sim(e) => write!(f, "simulator failed: {e}"),
            PlaneError::EmptyBatch => write!(f, "batch produced no lanes"),
            PlaneError::BatchLanes {
                failed,
                total,
                lane,
                error,
            } => write!(
                f,
                "batch: {failed} of {total} lanes failed; lane {lane}: {error}"
            ),
        }
    }
}

impl std::error::Error for PlaneError {}

/// A cached functional lowering: the trace, or why there is none. The
/// refusal label is kept so callers can surface it on every request,
/// not just the one that paid for the analysis.
#[derive(Debug, Clone)]
enum Prepared {
    Lowered(Arc<CompiledProgram>),
    Refused(&'static str),
    Invalid,
}

/// Streams `fmt` output straight into a hasher, so `Debug`-based
/// fingerprints allocate nothing.
struct HashWriter<'h>(&'h mut DefaultHasher);

impl std::fmt::Write for HashWriter<'_> {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.0.write(s.as_bytes());
        Ok(())
    }
}

/// Content hash of any `Debug`-rendered value, allocation-free.
///
/// `MachineConfig` and `Program` deliberately implement neither `Hash`
/// nor `Eq`-by-content (floats; slot-order-insensitive word equality),
/// but everything reaching the plane is machine-generated with
/// deterministic rendering, so the `Debug` form is a stable content
/// key. Shared with `EvalEngine`'s decode cache.
#[must_use]
pub fn fingerprint_debug(value: &dyn std::fmt::Debug) -> u64 {
    let mut h = DefaultHasher::new();
    let _ = write!(HashWriter(&mut h), "{value:?}");
    h.finish()
}

/// Content key for one (program, machine) pair.
#[must_use]
pub fn content_key(machine: &MachineConfig, program: &Program) -> (u64, u64) {
    (fingerprint_debug(program), fingerprint_debug(machine))
}

/// The lowering cache is content-keyed and shared across requests; past
/// this many entries it resets wholesale, so a stream of distinct
/// generated programs (the serve workload) cannot grow it without
/// bound.
const MAX_CACHED_TRACES: usize = 1024;

/// The shared tier-selection ladder. Construct once per driver (or per
/// service) and reuse: the functional-lowering cache is the point.
#[derive(Debug, Default)]
pub struct EvalPlane {
    compiled: Mutex<HashMap<(u64, u64), Prepared>>,
    recorder: Option<SharedRegistry>,
}

impl EvalPlane {
    /// A plane with an empty lowering cache and no metrics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a metrics registry recording `vsp_exec_prepare_total`,
    /// `vsp_exec_refusals_total` and `vsp_exec_runs_total`.
    #[must_use]
    pub fn with_recorder(mut self, recorder: SharedRegistry) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Number of functional lowerings (including cached refusals)
    /// currently memoized.
    pub fn cached_traces(&self) -> usize {
        self.compiled.lock().expect("trace cache poisoned").len()
    }

    fn count_run(&self, backend: &'static str) {
        if let Some(rec) = &self.recorder {
            rec.with(|r| r.add("vsp_exec_runs_total", &[("backend", backend)], 1));
        }
    }

    /// The functional-tier lowering of `program` for `machine`, from
    /// the content-keyed cache (analyzing on first sight only).
    fn prepared(&self, machine: &MachineConfig, program: &Program) -> Prepared {
        let key = content_key(machine, program);
        if let Some(hit) = self
            .compiled
            .lock()
            .expect("trace cache poisoned")
            .get(&key)
            .cloned()
        {
            return hit;
        }
        let entry = match Functional::prepare(machine, program) {
            Ok(c) => {
                if let Some(rec) = &self.recorder {
                    rec.with(|r| {
                        r.add("vsp_exec_prepare_total", &[("outcome", "lowered")], 1);
                    });
                }
                Prepared::Lowered(Arc::new(c))
            }
            Err(e) => {
                let reason = match &e {
                    ExecError::Unsupported(u) => u.label(),
                    _ => "invalid",
                };
                if let Some(rec) = &self.recorder {
                    rec.with(|r| {
                        r.add("vsp_exec_prepare_total", &[("outcome", "refused")], 1);
                        r.add("vsp_exec_refusals_total", &[("reason", reason)], 1);
                    });
                }
                match &e {
                    ExecError::Unsupported(u) => Prepared::Refused(u.label()),
                    _ => Prepared::Invalid,
                }
            }
        };
        let mut cache = self.compiled.lock().expect("trace cache poisoned");
        if cache.len() >= MAX_CACHED_TRACES {
            cache.clear();
        }
        cache.insert(key, entry.clone());
        entry
    }

    /// Walks the ladder for one request.
    ///
    /// `program` is the runnable artifact (when the strategy lowered to
    /// one); `estimate` the analytic closed form (when one exists).
    /// Estimate-only artifacts answer on the estimate tier; load-shed
    /// requests degrade to it when possible.
    ///
    /// # Errors
    ///
    /// [`PlaneError`] for genuine failures — invalid programs, budget
    /// exhaustion, failed batch lanes, or an artifact with nothing to
    /// run. Refusals are never errors; they route.
    pub fn evaluate(
        &self,
        machine: &MachineConfig,
        program: Option<&Program>,
        estimate: Option<CycleEstimate>,
        req: &PlaneRequest,
    ) -> Result<PlaneOutcome, PlaneError> {
        // Load-shed degradation: answer from the closed form when one
        // exists; otherwise fall through and run.
        if req.shed {
            if let Some(est) = estimate {
                return Ok(PlaneOutcome::from_estimate(est, true));
            }
        }
        let Some(program) = program else {
            // Analysis-only artifact: the estimate *is* the answer.
            let est = estimate.ok_or(PlaneError::NothingToRun)?;
            return Ok(PlaneOutcome::from_estimate(est, false));
        };

        let mut exec_req = ExecRequest::new(req.max_cycles);
        exec_req.fault_injection = req.fault.is_some();

        // Tier 1: functional. A refusal routes down with its label; a
        // non-refusal run failure falls through too, so the cycle tiers
        // report the authoritative error.
        let mut refusal = None;
        match self.prepared(machine, program) {
            Prepared::Lowered(compiled) => match compiled.run(&exec_req) {
                Ok(out) => {
                    self.count_run("functional");
                    return Ok(PlaneOutcome {
                        tier: Tier::Functional,
                        degraded: false,
                        refusal: None,
                        cycles: out.cycles,
                        halted: out.state.halted,
                        state: Some(out.state),
                        stats: None,
                        estimate: None,
                    });
                }
                Err(e) => {
                    refusal = match &e {
                        ExecError::Unsupported(u) => Some(u.label()),
                        _ => None,
                    };
                }
            },
            Prepared::Refused(label) => refusal = Some(label),
            Prepared::Invalid => {}
        }

        // Tier 2: batch, when the request wants many lanes.
        if req.runs > 1 {
            self.count_run("batch");
            let decoded = DecodedProgram::prepare(machine, program).map_err(PlaneError::Invalid)?;
            let specs: Vec<RunSpec<_>> = (0..req.runs)
                .map(|lane| {
                    let plan = match req.fault {
                        Some(f) => {
                            FaultPlan::transient(f.seed.wrapping_add(u64::from(lane)), f.rate_ppm)
                        }
                        None => FaultPlan::quiet(),
                    };
                    RunSpec::with_faults(req.max_cycles, plan.build())
                })
                .collect();
            let outcomes = BatchSimulator::new(machine).run_batch(&decoded, specs);
            if outcomes.is_empty() {
                return Err(PlaneError::EmptyBatch);
            }
            // Every lane must retire cleanly — an error in lane 7 of a
            // fault sweep is a failure, not something to mask behind
            // lane 0's stats.
            let failed: Vec<usize> = outcomes
                .iter()
                .enumerate()
                .filter_map(|(lane, o)| o.error.is_some().then_some(lane))
                .collect();
            if let Some(&lane) = failed.first() {
                let error = outcomes[lane].error.clone().expect("lane has an error");
                return Err(PlaneError::BatchLanes {
                    failed: failed.len(),
                    total: outcomes.len(),
                    lane,
                    error,
                });
            }
            let first = outcomes.into_iter().next().expect("non-empty batch");
            return Ok(PlaneOutcome {
                tier: Tier::Batch,
                degraded: false,
                refusal,
                cycles: first.stats.cycles,
                halted: first.state.halted,
                state: Some(first.state),
                stats: Some(first.stats),
                estimate: None,
            });
        }

        // Tier 3: cycle-accurate, with or without fault injection.
        self.count_run("cycle-accurate");
        let (stats, state) = match req.fault {
            Some(f) => {
                let mut model = FaultPlan::transient(f.seed, f.rate_ppm).build();
                let mut sim =
                    Simulator::with_sink_and_faults(machine, program, NullSink, &mut model)
                        .map_err(PlaneError::Invalid)?;
                let stats = sim.run(req.max_cycles).map_err(PlaneError::Sim)?;
                let state = sim.arch_state();
                (stats, state)
            }
            None => {
                let mut sim = Simulator::new(machine, program).map_err(PlaneError::Invalid)?;
                let stats = sim.run(req.max_cycles).map_err(PlaneError::Sim)?;
                let state = sim.arch_state();
                (stats, state)
            }
        };
        Ok(PlaneOutcome {
            tier: Tier::CycleAccurate,
            degraded: false,
            refusal,
            cycles: stats.cycles,
            halted: state.halted,
            state: Some(state),
            stats: Some(stats),
            estimate: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsp_core::models;
    use vsp_isa::{AluBinOp, OpKind, Operand, Operation, Reg};

    fn tiny_program() -> Program {
        let mut p = Program::new("tiny");
        p.push_word(vec![Operation::new(
            0,
            0,
            OpKind::AluBin {
                op: AluBinOp::Add,
                dst: Reg(1),
                a: Operand::Imm(20),
                b: Operand::Imm(22),
            },
        )]);
        p.push_word(vec![Operation::new(0, 4, OpKind::Halt)]);
        p
    }

    #[test]
    fn functional_tier_answers_clean_programs() {
        let machine = models::i4c8s4();
        let p = tiny_program();
        let plane = EvalPlane::new();
        let out = plane
            .evaluate(&machine, Some(&p), None, &PlaneRequest::new(100))
            .unwrap();
        assert_eq!(out.tier, Tier::Functional);
        assert!(out.halted);
        assert_eq!(out.state.unwrap().regs[0][1], 42);
        assert_eq!(plane.cached_traces(), 1);
        // Second call hits the lowering cache.
        let again = plane
            .evaluate(&machine, Some(&p), None, &PlaneRequest::new(100))
            .unwrap();
        assert_eq!(again.tier, Tier::Functional);
        assert_eq!(plane.cached_traces(), 1);
    }

    #[test]
    fn fault_requests_refuse_and_fall_to_the_simulator() {
        let machine = models::i4c8s4();
        let p = tiny_program();
        let plane = EvalPlane::new();
        let mut req = PlaneRequest::new(100);
        req.fault = Some(FaultRequest {
            seed: 1,
            rate_ppm: 0,
        });
        let out = plane.evaluate(&machine, Some(&p), None, &req).unwrap();
        assert_eq!(out.tier, Tier::CycleAccurate);
        assert_eq!(out.refusal, Some("fault_injection"));
        assert!(out.stats.is_some());
    }

    #[test]
    fn multi_run_requests_use_the_batch_tier() {
        let machine = models::i4c8s4();
        let p = tiny_program();
        let plane = EvalPlane::new();
        let mut req = PlaneRequest::new(100);
        req.runs = 4;
        req.fault = Some(FaultRequest {
            seed: 1,
            rate_ppm: 0,
        });
        let out = plane.evaluate(&machine, Some(&p), None, &req).unwrap();
        assert_eq!(out.tier, Tier::Batch);
        assert_eq!(out.refusal, Some("fault_injection"));
        // The quiet batch lane matches a scalar cycle-accurate run.
        let mut scalar = req;
        scalar.runs = 1;
        let s = plane.evaluate(&machine, Some(&p), None, &scalar).unwrap();
        assert_eq!(out.state, s.state);
    }

    #[test]
    fn shed_degrades_when_an_estimate_exists() {
        let machine = models::i4c8s4();
        let p = tiny_program();
        let plane = EvalPlane::new();
        let est = CycleEstimate {
            cycles: 123,
            ii: None,
            length: None,
            trips: None,
        };
        let mut req = PlaneRequest::new(100);
        req.shed = true;
        let out = plane.evaluate(&machine, Some(&p), Some(est), &req).unwrap();
        assert_eq!(out.tier, Tier::Estimate);
        assert!(out.degraded);
        assert_eq!(out.cycles, 123);
        // Without an estimate the job still runs.
        let out = plane.evaluate(&machine, Some(&p), None, &req).unwrap();
        assert_eq!(out.tier, Tier::Functional);
    }

    #[test]
    fn estimate_only_artifacts_answer_naturally() {
        let machine = models::i4c8s4();
        let plane = EvalPlane::new();
        let est = CycleEstimate {
            cycles: 77,
            ii: Some(7),
            length: Some(11),
            trips: Some(10),
        };
        let out = plane
            .evaluate(&machine, None, Some(est), &PlaneRequest::new(100))
            .unwrap();
        assert_eq!(out.tier, Tier::Estimate);
        assert!(!out.degraded, "natural estimate answers are not degraded");
        assert_eq!(
            plane.evaluate(&machine, None, None, &PlaneRequest::new(100)),
            Err(PlaneError::NothingToRun)
        );
    }

    #[test]
    fn budget_exhaustion_reports_the_authoritative_sim_error() {
        let machine = models::i4c8s4();
        let p = tiny_program();
        let plane = EvalPlane::new();
        // Budget of 1 cycle: the functional run fails (not a refusal)
        // and the simulator reports its own CycleLimit-style error.
        let err = plane
            .evaluate(&machine, Some(&p), None, &PlaneRequest::new(1))
            .unwrap_err();
        let mut sim = Simulator::new(&machine, &p).unwrap();
        let direct = sim.run(1).unwrap_err();
        assert_eq!(err, PlaneError::Sim(direct));
    }

    #[test]
    fn refusal_labels_survive_the_lowering_cache() {
        let machine = models::i4c8s4();
        // A program with no halt: `ran_off_end` refusal at prepare time.
        let mut p = Program::new("no-halt");
        p.push_word(vec![Operation::new(
            0,
            0,
            OpKind::AluBin {
                op: AluBinOp::Add,
                dst: Reg(1),
                a: Operand::Imm(1),
                b: Operand::Imm(0),
            },
        )]);
        let plane = EvalPlane::new();
        for _ in 0..2 {
            // Both the cold and the cached path surface the label.
            let out = plane
                .evaluate(&machine, Some(&p), None, &PlaneRequest::new(10_000))
                .unwrap_err();
            // Direct sim also fails (runs off the end), so the plane
            // reports that authoritative error; the cached refusal is
            // still recorded.
            assert!(matches!(out, PlaneError::Sim(_)));
        }
        assert_eq!(plane.cached_traces(), 1);
    }
}
