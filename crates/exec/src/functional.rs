//! The functional tier: programs lowered to flat, pre-resolved native
//! op traces.
//!
//! [`Functional::prepare`] runs a constant-propagation walk over the
//! pre-decoded program (see `lower.rs`) that resolves *all* control
//! flow, annulment it can prove, commit timing and hazard checks at
//! lowering time. What remains is a straight-line trace of [`RtOp`]
//! records — plain ALU/shift/multiply/compare/load/store steps over
//! flat register and memory arrays — executed by one tight native
//! loop with no per-cycle bookkeeping: no scoreboard, no commit ring,
//! no icache model, no statistics. Architectural results are
//! bit-identical to the cycle-accurate simulator for every accepted
//! program; anything the walk cannot prove is refused with a typed
//! [`Unsupported`] reason instead.

use crate::backend::{Backend, ExecOutcome, ExecRequest};
use crate::error::{ExecError, Unsupported};
use crate::lower;
use vsp_core::MachineConfig;
use vsp_isa::{semantics, AluBinOp, AluUnOp, CmpOp, MulKind, Program, ShiftOp};
use vsp_sim::ArchState;

/// A run-time operand: a flat register index or an immediate.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RtOperand {
    /// Flat register index (`cluster * regs_per_cluster + reg`).
    Reg(u32),
    /// Immediate value.
    Imm(i16),
}

/// A run-time effective address over flat register indices.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RtAddr {
    Abs(u32),
    Reg(u32),
    BaseDisp(u32, i16),
    Indexed(u32, u32),
}

/// One step of the flattened trace. Register/predicate writes apply
/// immediately — the lowering walk proved no same-cycle consumer can
/// observe them early — and control ops do not exist: branches, jumps,
/// halts and statically-annulled operations were resolved away.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RtOp {
    /// Skip the next op unless the predicate matches `sense`
    /// (a guard the walk could not resolve statically).
    Guard {
        pred: u32,
        sense: bool,
    },
    AluBin {
        op: AluBinOp,
        dst: u32,
        a: RtOperand,
        b: RtOperand,
    },
    AluUn {
        op: AluUnOp,
        dst: u32,
        a: RtOperand,
    },
    Shift {
        op: ShiftOp,
        dst: u32,
        a: RtOperand,
        b: RtOperand,
    },
    Mul {
        kind: MulKind,
        dst: u32,
        a: RtOperand,
        b: RtOperand,
    },
    Cmp {
        op: CmpOp,
        dst: u32,
        a: RtOperand,
        b: RtOperand,
    },
    Load {
        dst: u32,
        mem: u32,
        addr: RtAddr,
    },
    Store {
        mem: u32,
        addr: RtAddr,
        src: RtOperand,
    },
    Swap {
        mem: u32,
    },
}

/// Frame geometry: how flat indices map back onto the machine.
#[derive(Debug, Clone)]
pub(crate) struct FrameShape {
    pub clusters: usize,
    /// General registers per cluster.
    pub nregs: usize,
    /// Predicate registers per cluster.
    pub npreds: usize,
    /// Words per local-memory bank (same banks in every cluster).
    pub bank_words: Vec<u32>,
}

impl FrameShape {
    pub(crate) fn of(machine: &MachineConfig) -> Self {
        FrameShape {
            clusters: machine.clusters as usize,
            nregs: machine.cluster.registers as usize,
            npreds: machine.cluster.pred_regs as usize,
            bank_words: machine.cluster.banks.iter().map(|b| b.words).collect(),
        }
    }

    /// Flat index of the write-discard scratch register (writes whose
    /// commit the halt cut off land here).
    pub(crate) fn reg_bucket(&self) -> u32 {
        (self.clusters * self.nregs) as u32
    }

    /// Predicate twin of [`FrameShape::reg_bucket`].
    pub(crate) fn pred_bucket(&self) -> u32 {
        (self.clusters * self.npreds) as u32
    }
}

/// One local-memory bank: the double buffer, flattened.
#[derive(Debug, Clone)]
struct RtMem {
    words: u32,
    bufs: [Vec<i16>; 2],
    active: usize,
}

/// Mutable execution state for one run: flat register/predicate files
/// (with one extra discard slot each) and the local memories. Memory
/// writes (stores and staged input) are logged in `dirty`, so reset
/// undoes exactly the words a run touched instead of memsetting every
/// bank — the difference between O(footprint) and O(machine) per
/// campaign run.
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    regs: Vec<i16>,
    preds: Vec<bool>,
    mems: Vec<RtMem>,
    /// `(mem, addr)` of every memory word written since the last reset.
    dirty: Vec<(u32, u32)>,
}

impl Frame {
    fn new(shape: &FrameShape) -> Self {
        Frame {
            regs: vec![0; shape.clusters * shape.nregs + 1],
            preds: vec![false; shape.clusters * shape.npreds + 1],
            mems: (0..shape.clusters)
                .flat_map(|_| shape.bank_words.iter())
                .map(|&w| RtMem {
                    words: w,
                    bufs: [vec![0; w as usize], vec![0; w as usize]],
                    active: 0,
                })
                .collect(),
            dirty: Vec::new(),
        }
    }

    /// Resets to the machine's power-on state (all zeros, buffer 0
    /// active) without reallocating: registers and predicates are
    /// refilled wholesale (they are small), memories by undoing the
    /// dirty log (a word may have migrated to either buffer through
    /// swaps, so both sides are cleared).
    fn reset(&mut self) {
        self.regs.fill(0);
        self.preds.fill(false);
        for (mem, addr) in self.dirty.drain(..) {
            let m = &mut self.mems[mem as usize];
            m.bufs[0][addr as usize] = 0;
            m.bufs[1][addr as usize] = 0;
        }
        for m in &mut self.mems {
            m.active = 0;
        }
    }

    /// Makes this frame identical to `src` (a memoized post-run frame
    /// over the same shape), assuming `self` is freshly reset: small
    /// files are copied wholesale, memories by replaying `src`'s dirty
    /// log, which also keeps `self`'s own log correct for later resets.
    fn copy_from(&mut self, src: &Frame) {
        self.regs.copy_from_slice(&src.regs);
        self.preds.copy_from_slice(&src.preds);
        for &(mem, addr) in &src.dirty {
            let s = &src.mems[mem as usize];
            let d = &mut self.mems[mem as usize];
            d.bufs[0][addr as usize] = s.bufs[0][addr as usize];
            d.bufs[1][addr as usize] = s.bufs[1][addr as usize];
            self.dirty.push((mem, addr));
        }
        for (d, s) in self.mems.iter_mut().zip(&src.mems) {
            d.active = s.active;
        }
    }

    #[inline]
    fn rd(&self, o: RtOperand) -> i16 {
        match o {
            RtOperand::Reg(r) => self.regs[r as usize],
            RtOperand::Imm(v) => v,
        }
    }

    #[inline]
    fn addr(&self, a: RtAddr) -> u32 {
        let w = match a {
            RtAddr::Abs(a) => return a,
            RtAddr::Reg(r) => self.regs[r as usize] as u16,
            RtAddr::BaseDisp(r, d) => self.regs[r as usize].wrapping_add(d) as u16,
            RtAddr::Indexed(r, s) => {
                self.regs[r as usize].wrapping_add(self.regs[s as usize]) as u16
            }
        };
        u32::from(w)
    }
}

/// A program lowered by [`Functional::prepare`]: the flattened trace,
/// its exact cycle count, and the frame geometry to run it in.
///
/// Prepare once, run many times — the lowering cost (the walk) is paid
/// once per (machine, program) pair, and [`CompiledProgram::runner`]
/// reuses one frame across runs so steady-state campaign execution
/// performs no allocation beyond the final state snapshots.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    pub(crate) ops: Vec<RtOp>,
    /// Exact cycles of the resolved trace (`== words`: accepted
    /// programs fit the icache and can never stall).
    pub(crate) cycles: u64,
    pub(crate) shape: FrameShape,
    /// The memoized *unstaged* run: with no staged inputs the program
    /// is fully deterministic from power-on state, so
    /// [`Functional::prepare`] executes the trace once and keeps the
    /// final frame. Requests without staged data restore it in
    /// O(footprint) instead of re-interpreting the trace — the
    /// campaign fast path. `None` when the zero-input run itself
    /// errors (e.g. out-of-range access), so the trace replay can
    /// reproduce the error.
    pub(crate) folded: Option<Frame>,
}

impl CompiledProgram {
    /// The exact cycle count of every run of this program (the trace is
    /// fully pre-resolved, so all runs take the same cycles).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of flattened trace ops (a size/perf diagnostic).
    #[must_use]
    pub fn trace_ops(&self) -> usize {
        self.ops.len()
    }

    /// Runs once in a fresh frame. For repeated runs use
    /// [`CompiledProgram::runner`], which reuses the frame.
    ///
    /// # Errors
    ///
    /// See [`Runner::run`].
    pub fn run(&self, req: &ExecRequest) -> Result<ExecOutcome, ExecError> {
        self.runner().run(req)
    }

    /// A reusable executor holding one pre-allocated frame.
    #[must_use]
    pub fn runner(&self) -> Runner<'_> {
        Runner {
            program: self,
            frame: Frame::new(&self.shape),
        }
    }

    fn oob(&self, mem: u32, addr: u32) -> ExecError {
        let nbanks = self.shape.bank_words.len().max(1);
        ExecError::MemOutOfRange {
            cluster: (mem as usize / nbanks) as u8,
            bank: (mem as usize % nbanks) as u8,
            addr,
            words: self
                .shape
                .bank_words
                .get(mem as usize % nbanks)
                .copied()
                .unwrap_or(0),
        }
    }

    /// The hot loop: one pass over the flattened trace.
    fn exec(&self, f: &mut Frame) -> Result<(), ExecError> {
        let ops = &self.ops;
        let mut i = 0usize;
        while i < ops.len() {
            match ops[i] {
                RtOp::Guard { pred, sense } => {
                    if f.preds[pred as usize] != sense {
                        i += 2;
                        continue;
                    }
                }
                RtOp::AluBin { op, dst, a, b } => {
                    let v = semantics::alu_bin(op, f.rd(a), f.rd(b));
                    f.regs[dst as usize] = v;
                }
                RtOp::AluUn { op, dst, a } => {
                    let v = semantics::alu_un(op, f.rd(a));
                    f.regs[dst as usize] = v;
                }
                RtOp::Shift { op, dst, a, b } => {
                    let v = semantics::shift(op, f.rd(a), f.rd(b));
                    f.regs[dst as usize] = v;
                }
                RtOp::Mul { kind, dst, a, b } => {
                    let v = semantics::mul(kind, f.rd(a), f.rd(b));
                    f.regs[dst as usize] = v;
                }
                RtOp::Cmp { op, dst, a, b } => {
                    let v = semantics::cmp(op, f.rd(a), f.rd(b));
                    f.preds[dst as usize] = v;
                }
                RtOp::Load { dst, mem, addr } => {
                    let a = f.addr(addr);
                    let m = &f.mems[mem as usize];
                    match m.bufs[m.active].get(a as usize) {
                        Some(&v) => f.regs[dst as usize] = v,
                        None => return Err(self.oob(mem, a)),
                    }
                }
                RtOp::Store { mem, addr, src } => {
                    let a = f.addr(addr);
                    let v = f.rd(src);
                    let m = &mut f.mems[mem as usize];
                    match m.bufs[m.active].get_mut(a as usize) {
                        Some(slot) => *slot = v,
                        None => return Err(self.oob(mem, a)),
                    }
                    f.dirty.push((mem, a));
                }
                RtOp::Swap { mem } => f.mems[mem as usize].active ^= 1,
            }
            i += 1;
        }
        Ok(())
    }
}

/// A reusable executor over one [`CompiledProgram`]: owns a frame that
/// is reset (not reallocated) between runs.
#[derive(Debug)]
pub struct Runner<'a> {
    program: &'a CompiledProgram,
    frame: Frame,
}

impl Runner<'_> {
    /// Runs the program once: resets the frame, applies the request's
    /// staged inputs, executes the trace and snapshots the final
    /// architectural state.
    ///
    /// # Errors
    ///
    /// [`ExecError::Unsupported`] if the request asks for fault
    /// injection; [`ExecError::CycleLimit`] if the trace exceeds
    /// `req.max_cycles` (matching the simulator's budget semantics);
    /// [`ExecError::MemOutOfRange`] for staged data or accesses outside
    /// a bank.
    pub fn run(&mut self, req: &ExecRequest) -> Result<ExecOutcome, ExecError> {
        self.run_quiet(req)?;
        let state = self.snapshot();
        let cycles = state.cycle;
        Ok(ExecOutcome { state, cycles })
    }

    /// [`Runner::run`] without the final [`ArchState`] allocation; pair
    /// with [`Runner::state_matches`] for allocation-free verdict loops
    /// (golden-output comparison in campaign harnesses).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Runner::run`].
    pub fn run_quiet(&mut self, req: &ExecRequest) -> Result<(), ExecError> {
        if req.fault_injection {
            return Err(Unsupported::FaultInjection.into());
        }
        if self.program.cycles > req.max_cycles {
            return Err(ExecError::CycleLimit {
                limit: req.max_cycles,
            });
        }
        self.frame.reset();
        // An unstaged request is fully deterministic from power-on
        // state: restore the memoized frame instead of re-interpreting
        // the trace.
        if req.stage.is_empty() {
            if let Some(folded) = &self.program.folded {
                self.frame.copy_from(folded);
                return Ok(());
            }
        }
        let shape = &self.program.shape;
        let nbanks = shape.bank_words.len();
        for s in &req.stage {
            let clusters: Vec<usize> = match s.cluster {
                Some(c) => vec![usize::from(c)],
                None => (0..shape.clusters).collect(),
            };
            for c in clusters {
                let idx = c * nbanks + usize::from(s.bank);
                let m = self
                    .frame
                    .mems
                    .get_mut(idx)
                    .filter(|m| usize::from(s.base) + s.data.len() <= m.words as usize)
                    .ok_or(ExecError::MemOutOfRange {
                        cluster: c as u8,
                        bank: s.bank,
                        addr: u32::from(s.base) + s.data.len() as u32,
                        words: shape
                            .bank_words
                            .get(usize::from(s.bank))
                            .copied()
                            .unwrap_or(0),
                    })?;
                let base = usize::from(s.base);
                m.bufs[m.active][base..base + s.data.len()].copy_from_slice(&s.data);
                for w in 0..s.data.len() as u32 {
                    self.frame.dirty.push((idx as u32, base as u32 + w));
                }
            }
        }
        self.program.exec(&mut self.frame)
    }

    /// Snapshots the frame as an [`ArchState`] (halted, with the
    /// trace's exact cycle count).
    #[must_use]
    pub fn snapshot(&self) -> ArchState {
        let shape = &self.program.shape;
        let nbanks = shape.bank_words.len();
        ArchState {
            cycle: self.program.cycles,
            halted: true,
            regs: (0..shape.clusters)
                .map(|c| self.frame.regs[c * shape.nregs..(c + 1) * shape.nregs].to_vec())
                .collect(),
            preds: (0..shape.clusters)
                .map(|c| self.frame.preds[c * shape.npreds..(c + 1) * shape.npreds].to_vec())
                .collect(),
            mems: (0..shape.clusters)
                .map(|c| {
                    (0..nbanks)
                        .map(|b| {
                            let m = &self.frame.mems[c * nbanks + b];
                            (m.bufs[m.active].clone(), m.bufs[1 - m.active].clone())
                        })
                        .collect()
                })
                .collect(),
        }
    }

    /// Compares the frame's post-run state against a reference
    /// [`ArchState`] without allocating — the campaign-harness verdict
    /// primitive (SDC checks, golden-output comparison).
    #[must_use]
    pub fn state_matches(&self, reference: &ArchState) -> bool {
        let shape = &self.program.shape;
        let nbanks = shape.bank_words.len();
        if reference.cycle != self.program.cycles
            || !reference.halted
            || reference.regs.len() != shape.clusters
            || reference.preds.len() != shape.clusters
            || reference.mems.len() != shape.clusters
        {
            return false;
        }
        for c in 0..shape.clusters {
            if reference.regs[c] != self.frame.regs[c * shape.nregs..(c + 1) * shape.nregs]
                || reference.preds[c] != self.frame.preds[c * shape.npreds..(c + 1) * shape.npreds]
            {
                return false;
            }
            if reference.mems[c].len() != nbanks {
                return false;
            }
            for b in 0..nbanks {
                let m = &self.frame.mems[c * nbanks + b];
                let (active, io) = &reference.mems[c][b];
                if active != &m.bufs[m.active] || io != &m.bufs[1 - m.active] {
                    return false;
                }
            }
        }
        true
    }
}

/// The functional tier: a [`Backend`] that lowers programs to flat
/// native traces ([`Functional::prepare`]) and refuses anything it
/// cannot reproduce bit-for-bit.
///
/// ```
/// use vsp_core::models;
/// use vsp_exec::{ExecRequest, Functional, StageSpec};
/// use vsp_isa::{AddrMode, AluBinOp, MemBank, OpKind, Operand, Operation, Program, Reg};
///
/// let machine = models::i4c8s4();
/// let mut p = Program::new("load-add");
/// p.push_word(vec![Operation::new(0, 2, OpKind::Load {
///     dst: Reg(1), addr: AddrMode::Absolute(0), bank: MemBank(0),
/// })]);
/// p.push_word(vec![]);
/// p.push_word(vec![Operation::new(0, 0, OpKind::AluBin {
///     op: AluBinOp::Add, dst: Reg(2), a: Operand::Reg(Reg(1)), b: Operand::Imm(1),
/// })]);
/// p.push_word(vec![Operation::new(0, 4, OpKind::Halt)]);
///
/// let compiled = Functional::prepare(&machine, &p).unwrap();
/// assert_eq!(compiled.cycles(), 4); // exact: the trace is fully resolved
///
/// let req = ExecRequest::new(100).with_stage(StageSpec::broadcast(0, 0, vec![41]));
/// let out = compiled.run(&req).unwrap();
/// assert_eq!(out.state.regs[0][2], 42);
/// assert_eq!(out.cycles, 4);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Functional;

impl Functional {
    /// Lowers `program` for `machine` into a [`CompiledProgram`].
    ///
    /// This is where all the work happens: validation, the
    /// constant-propagation walk that resolves control flow and commit
    /// timing, hazard/annulment analysis and trace flattening. The
    /// trace is then executed once against power-on state and the
    /// resulting frame memoized: requests with no staged inputs are
    /// answered from it in O(footprint) (the campaign fast path),
    /// while staged requests replay the full trace. The result can be
    /// reused across any number of requests.
    ///
    /// # Errors
    ///
    /// [`ExecError::Invalid`] if the program fails structural
    /// validation; [`ExecError::Unsupported`] when the program needs a
    /// cycle-accurate tier (see [`Unsupported`] for the reasons).
    pub fn prepare(
        machine: &MachineConfig,
        program: &Program,
    ) -> Result<CompiledProgram, ExecError> {
        let mut compiled = lower::lower(machine, program)?;
        let mut frame = Frame::new(&compiled.shape);
        // A zero-input run that errors (out-of-range access) is not
        // memoized, so unstaged requests replay the trace and surface
        // the same error.
        if compiled.exec(&mut frame).is_ok() {
            compiled.folded = Some(frame);
        }
        Ok(compiled)
    }
}

impl Backend for Functional {
    fn name(&self) -> &'static str {
        "functional"
    }

    fn execute(
        &self,
        machine: &MachineConfig,
        program: &Program,
        req: &ExecRequest,
    ) -> Result<ExecOutcome, ExecError> {
        if req.fault_injection {
            return Err(Unsupported::FaultInjection.into());
        }
        Functional::prepare(machine, program)?.run(req)
    }
}
