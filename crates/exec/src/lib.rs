//! Functional-execution tier for the VSP datapath study.
//!
//! The third execution tier, after the cycle-accurate interpreter and
//! the batched lockstep engine: [`Functional`] lowers a scheduled VLIW
//! program into a flat trace of native ops — control flow pre-resolved,
//! hazards pre-checked, commit timing pre-verified — and then produces
//! final architectural state by running that trace straight through,
//! with no fetch, decode, scoreboard or commit machinery per cycle.
//!
//! The tier is **sound by refusal**: lowering proves, op by op, that
//! immediate execution matches the simulator's delayed-commit semantics
//! bit-for-bit, and returns a typed [`Unsupported`] reason for any
//! program where it cannot (data-dependent control flow, guarded
//! control, timing hazards, icache overflow, fault-injection requests).
//! Callers fall back to a cycle-accurate tier on refusal; they never
//! get an approximate answer. Cycle counts are analytic — the trace
//! length, exact for the stall-free programs the tier accepts — and
//! there are no stall breakdowns or per-FU statistics; use `vsp-sim`
//! when you need to see *why* a program takes the cycles it takes.
//!
//! Both tiers sit behind the dyn-safe [`Backend`] trait
//! ([`CycleAccurate`] wraps the simulator), so campaign drivers route
//! per-request. For repeated runs of one program, [`Functional::prepare`]
//! returns the reusable [`CompiledProgram`], and [`CompiledProgram::runner`]
//! a [`Runner`] that re-executes without allocating.
//!
//! ```
//! use vsp_core::models;
//! use vsp_exec::{Backend, ExecRequest, Functional};
//! use vsp_isa::{AluBinOp, OpKind, Operand, Operation, Program, Reg};
//!
//! let machine = models::i4c8s4();
//! let mut p = Program::new("demo");
//! p.push_word(vec![Operation::new(0, 0, OpKind::AluBin {
//!     op: AluBinOp::Add, dst: Reg(1), a: Operand::Imm(20), b: Operand::Imm(22),
//! })]);
//! p.push_word(vec![Operation::new(0, 4, OpKind::Halt)]);
//!
//! let out = Functional.execute(&machine, &p, &ExecRequest::new(100)).unwrap();
//! assert_eq!(out.state.regs[0][1], 42);
//! assert_eq!(out.cycles, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod error;
mod estimate;
mod functional;
mod lower;
mod plane;

pub use backend::{Backend, CycleAccurate, ExecOutcome, ExecRequest, StageSpec};
pub use error::{ExecError, Unsupported};
pub use estimate::CycleEstimate;
pub use functional::{CompiledProgram, Functional, Runner};
pub use plane::{
    content_key, fingerprint_debug, EvalPlane, FaultRequest, PlaneError, PlaneOutcome,
    PlaneRequest, Tier,
};
