//! Analytic cycle estimates from schedule artifacts.
//!
//! The functional tier does not simulate cycles, so its timing numbers
//! come from the schedule itself: the list/modulo closed forms the
//! scheduler already proves (`(trips - 1) * II + length` for a software
//! pipeline, `trips * length` for a list schedule). For the stall-free
//! programs the tier accepts these are exact, not approximations — the
//! same closed forms the differential tests pin against the simulator.

use vsp_sched::{CompileResult, ScheduleArtifact};

/// An analytic cycle estimate derived from a [`CompileResult`]'s
/// schedule artifact, with the parameters it was computed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleEstimate {
    /// Estimated cycles for the scheduled scope at its compiled trip
    /// count (or the whole kernel for the sequential backend).
    pub cycles: u64,
    /// Initiation interval, when the schedule is a software pipeline.
    pub ii: Option<u64>,
    /// Schedule length in cycles (list or modulo backends).
    pub length: Option<u64>,
    /// Trip count the estimate assumed, when the scope is a loop.
    pub trips: Option<u64>,
}

impl CycleEstimate {
    /// Derives an estimate from a compilation result.
    ///
    /// Returns `None` when the artifact has no closed form at a known
    /// trip count (a list/modulo schedule whose loop trip count the
    /// pipeline could not determine).
    #[must_use]
    pub fn from_result(result: &CompileResult) -> Option<Self> {
        match &result.schedule {
            ScheduleArtifact::Sequential { cycles } => Some(CycleEstimate {
                cycles: *cycles,
                ii: None,
                length: None,
                trips: None,
            }),
            _ => {
                let trips = result.scheduled_trip?;
                Some(CycleEstimate {
                    cycles: result.cycles_for(trips)?,
                    ii: result.ii(),
                    length: result.length(),
                    trips: Some(trips),
                })
            }
        }
    }

    /// Re-evaluates the closed form at a different trip count, when the
    /// schedule has one (`(trips - 1) * II + length` for a pipeline,
    /// `trips * length` for a list schedule).
    #[must_use]
    pub fn at_trips(&self, trips: u64) -> Option<u64> {
        match (self.ii, self.length) {
            (Some(ii), Some(length)) => {
                if trips == 0 {
                    Some(0)
                } else {
                    Some((trips - 1) * ii + length)
                }
            }
            (None, Some(length)) => Some(trips * length),
            _ => None,
        }
    }
}
