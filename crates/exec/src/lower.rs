//! The lowering walk: pre-decoded program → flattened native trace.
//!
//! A constant-propagation interpreter over a known/unknown value
//! lattice with *exact* commit timing. The walk executes the program
//! symbolically, one instruction word per cycle, tracking for every
//! register and predicate both its ready cycle (the simulator's bypass
//! scoreboard) and, where derivable from constants, its exact value.
//! Branch and guard predicates that resolve to known values let the
//! walk unroll all control flow into a linear trace; anything it cannot
//! prove — a data-dependent branch, a timing hazard the simulator would
//! fault on, a program that spills out of the icache — is refused with
//! a typed [`Unsupported`] reason rather than approximated.
//!
//! Soundness of immediate write application: the walk refuses any read
//! of a register with an in-flight commit (the simulator faults there
//! too, under its default hazard policy) and any pair of commits to one
//! register that would land out of issue order (unless their guards are
//! provably mutually exclusive). For every surviving program, applying
//! each write at issue time is therefore observationally identical to
//! the simulator's delayed commit — which is what lets the run-time
//! loop skip the scoreboard and commit ring entirely. Within one word,
//! ops are topologically reordered so same-cycle readers precede
//! writers and loads precede stores and buffer swaps, reproducing the
//! simulator's two-phase (read-then-commit) cycle semantics in a
//! straight line.

use crate::error::{ExecError, Unsupported};
use crate::functional::{CompiledProgram, FrameShape, RtAddr, RtOp, RtOperand};
use vsp_core::MachineConfig;
use vsp_isa::{semantics, AluUnOp, Program};
use vsp_sim::decoded::{DAddr, DKind, DOperand, DecodedOp, DecodedProgram, NO_GUARD};

/// Walk budget in executed instruction words: beyond this the program
/// is refused as non-terminating.
const WALK_LIMIT: u64 = 1 << 20;

/// Flattened-trace budget in ops (bounds lowering memory).
const OPS_LIMIT: usize = 1 << 20;

/// A register-file or predicate-file slot, flattened: `(is_pred, idx)`.
type Key = (bool, u32);

/// An emitted op of the word being lowered, with the ordering metadata
/// the intra-word topological sort needs.
struct Node {
    guard: Option<(u32, bool)>,
    op: RtOp,
    reads: Vec<Key>,
    write: Option<Key>,
    is_load: bool,
    is_store: bool,
    is_swap: bool,
}

/// The statically-known result of a pending write.
enum Known {
    Reg(Option<i16>),
    Pred(Option<bool>),
}

/// A register/predicate result scheduled by the word being lowered,
/// recorded during the read phase and committed to the scoreboard in
/// the write phase (mirroring the simulator's two-phase step).
struct PendingWrite {
    key: Key,
    at: u64,
    guard: Option<(u32, bool)>,
    known: Known,
    node: usize,
}

/// Whether two guarded writes can never both execute: same predicate,
/// opposite senses (the if-conversion diamond pattern).
fn mutually_exclusive(a: Option<(u32, bool)>, b: Option<(u32, bool)>) -> bool {
    matches!((a, b), (Some((pa, sa)), Some((pb, sb))) if pa == pb && sa != sb)
}

/// Commits not yet landed for one flat register/predicate:
/// `(commit cycle, guard)`.
type Inflight = Vec<(u64, Option<(u32, bool)>)>;

struct Walk {
    shape: FrameShape,
    nbanks: usize,
    cycle: u64,
    reg_ready: Vec<u64>,
    pred_ready: Vec<u64>,
    known_reg: Vec<Option<i16>>,
    known_pred: Vec<Option<bool>>,
    inflight_reg: Vec<Inflight>,
    inflight_pred: Vec<Inflight>,
    ops: Vec<RtOp>,
    /// Every emitted op that writes a register/predicate: `(op index,
    /// commit cycle)` — consulted once at the end to discard writes the
    /// halt cut off.
    write_log: Vec<(usize, u64)>,
}

impl Walk {
    fn rflat(&self, c: u8, r: u16) -> usize {
        usize::from(c) * self.shape.nregs + usize::from(r)
    }

    fn pflat(&self, c: u8, p: u8) -> usize {
        usize::from(c) * self.shape.npreds + usize::from(p)
    }

    /// Checked register read against pre-word state: refuses if the
    /// simulator would fault a premature read here.
    fn read_reg(&self, c: u8, r: u16, word: usize) -> Result<Option<i16>, ExecError> {
        let i = self.rflat(c, r);
        if self.reg_ready[i] > self.cycle {
            return Err(Unsupported::TimingHazard { word }.into());
        }
        Ok(self.known_reg[i])
    }

    fn read_pred(&self, c: u8, p: u8, word: usize) -> Result<Option<bool>, ExecError> {
        let i = self.pflat(c, p);
        if self.pred_ready[i] > self.cycle {
            return Err(Unsupported::TimingHazard { word }.into());
        }
        Ok(self.known_pred[i])
    }

    /// Resolves an operand: run-time form, statically-known value, and
    /// the read-set entry for intra-word ordering.
    fn operand(
        &self,
        c: u8,
        o: DOperand,
        word: usize,
        reads: &mut Vec<Key>,
    ) -> Result<(RtOperand, Option<i16>), ExecError> {
        match o {
            DOperand::Reg(r) => {
                let known = self.read_reg(c, r, word)?;
                let i = self.rflat(c, r) as u32;
                reads.push((false, i));
                Ok((RtOperand::Reg(i), known))
            }
            DOperand::Imm(v) => Ok((RtOperand::Imm(v), Some(v))),
        }
    }

    /// Resolves an effective address to its run-time form, checking the
    /// registers it reads.
    fn addr(
        &self,
        c: u8,
        a: DAddr,
        word: usize,
        reads: &mut Vec<Key>,
    ) -> Result<RtAddr, ExecError> {
        let mut reg = |r: u16| -> Result<u32, ExecError> {
            self.read_reg(c, r, word)?;
            let i = self.rflat(c, r) as u32;
            reads.push((false, i));
            Ok(i)
        };
        Ok(match a {
            DAddr::Abs(a) => RtAddr::Abs(u32::from(a)),
            DAddr::Reg(r) => RtAddr::Reg(reg(r)?),
            DAddr::BaseDisp(r, d) => RtAddr::BaseDisp(reg(r)?, d),
            DAddr::Indexed(r, s) => RtAddr::Indexed(reg(r)?, reg(s)?),
        })
    }

    /// Schedules one word's register/predicate results against the
    /// scoreboard, in issue order, exactly as the simulator's phase 2
    /// does — except that where the simulator faults (write-port
    /// conflict) or silently commits out of order, the walk refuses.
    /// Guarded writes that can never coexist (opposite senses of one
    /// predicate) are exempt: at most one executes per run.
    fn schedule(&mut self, pending: &[PendingWrite], word: usize) -> Result<(), ExecError> {
        for w in pending {
            let idx = w.key.1 as usize;
            let (ready, inflight) = if w.key.0 {
                (&mut self.pred_ready[idx], &mut self.inflight_pred[idx])
            } else {
                (&mut self.reg_ready[idx], &mut self.inflight_reg[idx])
            };
            inflight.retain(|&(at, _)| at > self.cycle);
            for &(at, guard) in inflight.iter() {
                if at >= w.at && !mutually_exclusive(w.guard, guard) {
                    return Err(Unsupported::TimingHazard { word }.into());
                }
            }
            *ready = (*ready).max(w.at);
            inflight.push((w.at, w.guard));
        }
        for w in pending {
            let idx = w.key.1 as usize;
            match &w.known {
                Known::Reg(v) => {
                    self.known_reg[idx] = if w.guard.is_some() { None } else { *v };
                }
                Known::Pred(v) => {
                    self.known_pred[idx] = if w.guard.is_some() { None } else { *v };
                }
            }
        }
        Ok(())
    }

    /// Emits the word's nodes in an order that preserves the
    /// simulator's two-phase cycle semantics under immediate write
    /// application: every same-cycle reader of a slot before its
    /// writer, every load before every store, and stores before swaps.
    /// Issue order is kept wherever the constraints allow (a stable
    /// topological sort). Records trace indices for pending writes.
    fn emit_word(
        &mut self,
        nodes: Vec<Node>,
        pending: &[PendingWrite],
        word: usize,
    ) -> Result<(), ExecError> {
        let n = nodes.len();
        let mut emitted = vec![false; n];
        let mut op_index = vec![0usize; n];
        let mut remaining = n;
        while remaining > 0 {
            let mut progress = false;
            for i in 0..n {
                if emitted[i] {
                    continue;
                }
                let node = &nodes[i];
                let blocked = nodes.iter().enumerate().any(|(j, other)| {
                    if j == i || emitted[j] {
                        return false;
                    }
                    let anti = match node.write {
                        Some(w) => other.reads.contains(&w),
                        None => false,
                    };
                    anti || (node.is_store && other.is_load)
                        || (node.is_swap && (other.is_load || other.is_store))
                });
                if blocked {
                    continue;
                }
                if let Some((pred, sense)) = node.guard {
                    self.ops.push(RtOp::Guard { pred, sense });
                }
                op_index[i] = self.ops.len();
                self.ops.push(node.op);
                emitted[i] = true;
                remaining -= 1;
                progress = true;
            }
            if !progress {
                return Err(Unsupported::SameCycleExchange { word }.into());
            }
        }
        for w in pending {
            self.write_log.push((op_index[w.node], w.at));
        }
        if self.ops.len() > OPS_LIMIT {
            return Err(Unsupported::TraceTooLong {
                ops: self.ops.len(),
            }
            .into());
        }
        Ok(())
    }
}

/// Lowers `program` for `machine` into a [`CompiledProgram`], or
/// refuses (see the module docs for the refusal taxonomy).
pub(crate) fn lower(
    machine: &MachineConfig,
    program: &Program,
) -> Result<CompiledProgram, ExecError> {
    let decoded = DecodedProgram::prepare(machine, program).map_err(ExecError::Invalid)?;
    let len = decoded.len();
    if len > machine.icache_words as usize {
        return Err(Unsupported::IcacheOverflow {
            words: len,
            capacity: machine.icache_words,
        }
        .into());
    }

    let shape = FrameShape::of(machine);
    let nregs = shape.clusters * shape.nregs;
    let npreds = shape.clusters * shape.npreds;
    let nbanks = shape.bank_words.len();
    let mut walk = Walk {
        shape,
        nbanks,
        cycle: 0,
        reg_ready: vec![0; nregs],
        pred_ready: vec![0; npreds],
        known_reg: vec![Some(0); nregs],
        known_pred: vec![Some(false); npreds],
        inflight_reg: vec![Vec::new(); nregs],
        inflight_pred: vec![Vec::new(); npreds],
        ops: Vec::new(),
        write_log: Vec::new(),
    };

    let delay_slots = machine.pipeline.branch_delay_slots;
    let mut pc = 0usize;
    let mut redirect: Option<(usize, u32)> = None;
    let halt_cycle;
    loop {
        if walk.cycle >= WALK_LIMIT {
            return Err(Unsupported::NonTerminating { limit: WALK_LIMIT }.into());
        }
        if pc >= len {
            return Err(Unsupported::RanOffEnd { word: pc }.into());
        }

        let mut nodes: Vec<Node> = Vec::new();
        let mut pending: Vec<PendingWrite> = Vec::new();
        let mut last_branch: Option<usize> = None;
        let mut halt = false;

        for i in decoded.word_range(pc) {
            let op: DecodedOp = decoded.op(i);
            let c = op.cluster;
            let mut reads: Vec<Key> = Vec::new();
            let mut guard: Option<(u32, bool)> = None;
            if op.guard_pred != NO_GUARD {
                let known = walk.read_pred(c, op.guard_pred, pc)?;
                match known {
                    Some(v) if v != op.guard_sense => continue, // annulled
                    Some(_) => {}
                    None => {
                        let gi = walk.pflat(c, op.guard_pred) as u32;
                        reads.push((true, gi));
                        guard = Some((gi, op.guard_sense));
                    }
                }
            }
            // Control ops must be statically decidable: an unknown
            // guard on one makes the instruction stream itself
            // data-dependent.
            let is_control = matches!(
                op.kind,
                DKind::Branch { .. } | DKind::Jump { .. } | DKind::Halt
            );
            if is_control && guard.is_some() {
                return Err(Unsupported::GuardedControl { word: pc }.into());
            }

            // A scheduled result must commit strictly after issue for
            // the read-refusal argument to hold; every real latency
            // model guarantees this.
            let writes_result = !matches!(
                op.kind,
                DKind::Store { .. }
                    | DKind::Branch { .. }
                    | DKind::Jump { .. }
                    | DKind::Halt
                    | DKind::Swap { .. }
                    | DKind::Nop
            );
            if writes_result && op.latency == 0 {
                return Err(Unsupported::TimingHazard { word: pc }.into());
            }
            let at = walk.cycle + u64::from(op.latency);

            match op.kind {
                DKind::AluBin { op: f, dst, a, b } => {
                    let (ra, ka) = walk.operand(c, a, pc, &mut reads)?;
                    let (rb, kb) = walk.operand(c, b, pc, &mut reads)?;
                    let di = walk.rflat(c, dst);
                    let known = known2(guard, ka, kb, |x, y| semantics::alu_bin(f, x, y));
                    pending.push(PendingWrite {
                        key: (false, di as u32),
                        at,
                        guard,
                        known: Known::Reg(known),
                        node: nodes.len(),
                    });
                    nodes.push(Node {
                        guard,
                        op: RtOp::AluBin {
                            op: f,
                            dst: di as u32,
                            a: ra,
                            b: rb,
                        },
                        reads,
                        write: Some((false, di as u32)),
                        is_load: false,
                        is_store: false,
                        is_swap: false,
                    });
                }
                DKind::AluUn { op: f, dst, a } => {
                    let (ra, ka) = walk.operand(c, a, pc, &mut reads)?;
                    let di = walk.rflat(c, dst);
                    let known = known1(guard, ka, |x| semantics::alu_un(f, x));
                    pending.push(PendingWrite {
                        key: (false, di as u32),
                        at,
                        guard,
                        known: Known::Reg(known),
                        node: nodes.len(),
                    });
                    nodes.push(Node {
                        guard,
                        op: RtOp::AluUn {
                            op: f,
                            dst: di as u32,
                            a: ra,
                        },
                        reads,
                        write: Some((false, di as u32)),
                        is_load: false,
                        is_store: false,
                        is_swap: false,
                    });
                }
                DKind::Shift { op: f, dst, a, b } => {
                    let (ra, ka) = walk.operand(c, a, pc, &mut reads)?;
                    let (rb, kb) = walk.operand(c, b, pc, &mut reads)?;
                    let di = walk.rflat(c, dst);
                    let known = known2(guard, ka, kb, |x, y| semantics::shift(f, x, y));
                    pending.push(PendingWrite {
                        key: (false, di as u32),
                        at,
                        guard,
                        known: Known::Reg(known),
                        node: nodes.len(),
                    });
                    nodes.push(Node {
                        guard,
                        op: RtOp::Shift {
                            op: f,
                            dst: di as u32,
                            a: ra,
                            b: rb,
                        },
                        reads,
                        write: Some((false, di as u32)),
                        is_load: false,
                        is_store: false,
                        is_swap: false,
                    });
                }
                DKind::Mul { kind, dst, a, b } => {
                    let (ra, ka) = walk.operand(c, a, pc, &mut reads)?;
                    let (rb, kb) = walk.operand(c, b, pc, &mut reads)?;
                    let di = walk.rflat(c, dst);
                    let known = known2(guard, ka, kb, |x, y| semantics::mul(kind, x, y));
                    pending.push(PendingWrite {
                        key: (false, di as u32),
                        at,
                        guard,
                        known: Known::Reg(known),
                        node: nodes.len(),
                    });
                    nodes.push(Node {
                        guard,
                        op: RtOp::Mul {
                            kind,
                            dst: di as u32,
                            a: ra,
                            b: rb,
                        },
                        reads,
                        write: Some((false, di as u32)),
                        is_load: false,
                        is_store: false,
                        is_swap: false,
                    });
                }
                DKind::Cmp { op: f, dst, a, b } => {
                    let (ra, ka) = walk.operand(c, a, pc, &mut reads)?;
                    let (rb, kb) = walk.operand(c, b, pc, &mut reads)?;
                    let di = walk.pflat(c, dst);
                    let known = match (guard, ka, kb) {
                        (None, Some(x), Some(y)) => Some(semantics::cmp(f, x, y)),
                        _ => None,
                    };
                    pending.push(PendingWrite {
                        key: (true, di as u32),
                        at,
                        guard,
                        known: Known::Pred(known),
                        node: nodes.len(),
                    });
                    nodes.push(Node {
                        guard,
                        op: RtOp::Cmp {
                            op: f,
                            dst: di as u32,
                            a: ra,
                            b: rb,
                        },
                        reads,
                        write: Some((true, di as u32)),
                        is_load: false,
                        is_store: false,
                        is_swap: false,
                    });
                }
                DKind::Load { dst, addr, bank } => {
                    let ra = walk.addr(c, addr, pc, &mut reads)?;
                    let di = walk.rflat(c, dst);
                    let mi = usize::from(c) * walk.nbanks + usize::from(bank);
                    pending.push(PendingWrite {
                        key: (false, di as u32),
                        at,
                        guard,
                        known: Known::Reg(None),
                        node: nodes.len(),
                    });
                    nodes.push(Node {
                        guard,
                        op: RtOp::Load {
                            dst: di as u32,
                            mem: mi as u32,
                            addr: ra,
                        },
                        reads,
                        write: Some((false, di as u32)),
                        is_load: true,
                        is_store: false,
                        is_swap: false,
                    });
                }
                DKind::Store { src, addr, bank } => {
                    let ra = walk.addr(c, addr, pc, &mut reads)?;
                    let (rs, _) = walk.operand(c, src, pc, &mut reads)?;
                    let mi = usize::from(c) * walk.nbanks + usize::from(bank);
                    nodes.push(Node {
                        guard,
                        op: RtOp::Store {
                            mem: mi as u32,
                            addr: ra,
                            src: rs,
                        },
                        reads,
                        write: None,
                        is_load: false,
                        is_store: true,
                        is_swap: false,
                    });
                }
                DKind::Xfer { dst, from, src } => {
                    let known = walk.read_reg(from, src, pc)?;
                    let si = walk.rflat(from, src);
                    reads.push((false, si as u32));
                    let di = walk.rflat(c, dst);
                    let known = if guard.is_some() { None } else { known };
                    pending.push(PendingWrite {
                        key: (false, di as u32),
                        at,
                        guard,
                        known: Known::Reg(known),
                        node: nodes.len(),
                    });
                    nodes.push(Node {
                        guard,
                        op: RtOp::AluUn {
                            op: AluUnOp::Mov,
                            dst: di as u32,
                            a: RtOperand::Reg(si as u32),
                        },
                        reads,
                        write: Some((false, di as u32)),
                        is_load: false,
                        is_store: false,
                        is_swap: false,
                    });
                }
                DKind::Branch {
                    pred,
                    sense,
                    target,
                } => match walk.read_pred(c, pred, pc)? {
                    Some(v) => {
                        if v == sense {
                            last_branch = Some(target as usize);
                        }
                    }
                    None => {
                        return Err(Unsupported::DataDependentControl { word: pc }.into());
                    }
                },
                DKind::Jump { target } => last_branch = Some(target as usize),
                DKind::Halt => halt = true,
                DKind::Swap { bank } => {
                    let mi = usize::from(c) * walk.nbanks + usize::from(bank);
                    nodes.push(Node {
                        guard,
                        op: RtOp::Swap { mem: mi as u32 },
                        reads,
                        write: None,
                        is_load: false,
                        is_store: false,
                        is_swap: true,
                    });
                }
                DKind::Nop => {}
            }
        }

        walk.schedule(&pending, pc)?;
        walk.emit_word(nodes, &pending, pc)?;

        if halt {
            halt_cycle = walk.cycle;
            break;
        }
        if let Some(target) = last_branch {
            redirect = Some((target, delay_slots));
        }
        match redirect {
            Some((target, 0)) => {
                pc = target;
                redirect = None;
            }
            Some((target, n)) => {
                redirect = Some((target, n - 1));
                pc += 1;
            }
            None => pc += 1,
        }
        walk.cycle += 1;
    }

    // Discard results the halt cut off: the simulator stops draining
    // commits once a halt lands, so anything scheduled past the halt
    // word's cycle never reaches the register files. Rewriting those
    // destinations to the frame's scratch slot reproduces that without
    // a run-time branch.
    let reg_bucket = walk.shape.reg_bucket();
    let pred_bucket = walk.shape.pred_bucket();
    for &(idx, at) in &walk.write_log {
        if at <= halt_cycle {
            continue;
        }
        match &mut walk.ops[idx] {
            RtOp::AluBin { dst, .. }
            | RtOp::AluUn { dst, .. }
            | RtOp::Shift { dst, .. }
            | RtOp::Mul { dst, .. }
            | RtOp::Load { dst, .. } => *dst = reg_bucket,
            RtOp::Cmp { dst, .. } => *dst = pred_bucket,
            _ => {}
        }
    }

    Ok(CompiledProgram {
        ops: walk.ops,
        cycles: halt_cycle + 1,
        shape: walk.shape,
        folded: None,
    })
}

/// Known-value propagation for a one-operand result: known only when
/// the op unconditionally executes and its operand is known.
fn known1(guard: Option<(u32, bool)>, a: Option<i16>, f: impl Fn(i16) -> i16) -> Option<i16> {
    match (guard, a) {
        (None, Some(x)) => Some(f(x)),
        _ => None,
    }
}

/// Two-operand twin of [`known1`].
fn known2(
    guard: Option<(u32, bool)>,
    a: Option<i16>,
    b: Option<i16>,
    f: impl Fn(i16, i16) -> i16,
) -> Option<i16> {
    match (guard, a, b) {
        (None, Some(x), Some(y)) => Some(f(x, y)),
        _ => None,
    }
}
