//! Differential and negative tests for the functional tier.
//!
//! Positive cases pin the functional tier's `ArchState` bit-identical
//! to the cycle-accurate simulator (via the `CycleAccurate` backend);
//! negative cases prove it *refuses* — with the right typed reason —
//! every program class it cannot soundly lower, rather than guessing.

use vsp_core::models;
use vsp_exec::{
    Backend, CycleAccurate, ExecError, ExecRequest, Functional, StageSpec, Unsupported,
};
use vsp_isa::{
    AddrMode, AluBinOp, CmpOp, MemBank, MemCtlOp, OpKind, Operand, Operation, Pred, PredGuard,
    Program, Reg,
};

fn add_imm(cluster: u8, slot: u8, dst: u16, value: i16) -> Operation {
    Operation::new(
        cluster,
        slot,
        OpKind::AluBin {
            op: AluBinOp::Add,
            dst: Reg(dst),
            a: Operand::Imm(value),
            b: Operand::Imm(0),
        },
    )
}

fn halt_word() -> Vec<Operation> {
    vec![Operation::new(0, 4, OpKind::Halt)]
}

/// Asserts both backends produce bit-identical `ArchState` and returns
/// the shared state.
fn assert_backends_agree(
    machine: &vsp_core::MachineConfig,
    program: &Program,
    req: &ExecRequest,
) -> vsp_sim::ArchState {
    let reference = CycleAccurate.execute(machine, program, req).unwrap();
    let functional = Functional.execute(machine, program, req).unwrap();
    assert_eq!(functional.state, reference.state);
    assert_eq!(functional.cycles, reference.cycles);
    reference.state
}

/// A statically-resolvable countdown loop with a taken backward branch,
/// a delay slot, and a store in the halt word: every control construct
/// the walk must unroll, pinned against the simulator.
#[test]
fn countdown_loop_matches_simulator() {
    let machine = models::i4c8s4();
    let mut p = Program::new("countdown");
    // w0: r1 = 3
    p.push_word(vec![add_imm(0, 0, 1, 3)]);
    // w1 (loop head): r1 = r1 - 1
    p.push_word(vec![Operation::new(
        0,
        0,
        OpKind::AluBin {
            op: AluBinOp::Sub,
            dst: Reg(1),
            a: Operand::Reg(Reg(1)),
            b: Operand::Imm(1),
        },
    )]);
    // w2: p1 = r1 > 0
    p.push_word(vec![Operation::new(
        0,
        0,
        OpKind::Cmp {
            op: CmpOp::Gt,
            dst: Pred(1),
            a: Operand::Reg(Reg(1)),
            b: Operand::Imm(0),
        },
    )]);
    // w3: if p1 goto w1 (one delay slot)
    p.push_word(vec![Operation::new(
        0,
        4,
        OpKind::Branch {
            pred: Pred(1),
            sense: true,
            target: 1,
        },
    )]);
    // w4: delay slot
    p.push_word(vec![]);
    // w5: mem[5] = r1; halt
    p.push_word(vec![
        Operation::new(
            0,
            2,
            OpKind::Store {
                src: Operand::Reg(Reg(1)),
                addr: AddrMode::Absolute(5),
                bank: MemBank(0),
            },
        ),
        Operation::new(0, 4, OpKind::Halt),
    ]);

    let state = assert_backends_agree(&machine, &p, &ExecRequest::new(1000));
    assert_eq!(state.regs[0][1], 0);
    assert!(state.halted);
}

/// If-converted diamond: complementary guarded writes to one register
/// in one word (legal: at most one commits per run), with the guard
/// data-dependent. The same `Runner` is reused across both staged
/// inputs to cover the frame-reset path.
#[test]
fn guarded_diamond_matches_simulator_both_ways() {
    let machine = models::i4c8s4();
    let mut p = Program::new("diamond");
    // w0: r1 = mem[0] (staged, statically unknown)
    p.push_word(vec![Operation::new(
        0,
        2,
        OpKind::Load {
            dst: Reg(1),
            addr: AddrMode::Absolute(0),
            bank: MemBank(0),
        },
    )]);
    // w1: p1 = r1 > 10
    p.push_word(vec![Operation::new(
        0,
        0,
        OpKind::Cmp {
            op: CmpOp::Gt,
            dst: Pred(1),
            a: Operand::Reg(Reg(1)),
            b: Operand::Imm(10),
        },
    )]);
    // w2: [p1] r2 = 1 ; [!p1] r2 = 2
    p.push_word(vec![
        Operation::guarded(
            0,
            0,
            PredGuard::if_true(Pred(1)),
            OpKind::AluBin {
                op: AluBinOp::Add,
                dst: Reg(2),
                a: Operand::Imm(1),
                b: Operand::Imm(0),
            },
        ),
        Operation::guarded(
            0,
            1,
            PredGuard::if_false(Pred(1)),
            OpKind::AluBin {
                op: AluBinOp::Add,
                dst: Reg(2),
                a: Operand::Imm(2),
                b: Operand::Imm(0),
            },
        ),
    ]);
    // w3: mem[1] = r2; halt
    p.push_word(vec![
        Operation::new(
            0,
            2,
            OpKind::Store {
                src: Operand::Reg(Reg(2)),
                addr: AddrMode::Absolute(1),
                bank: MemBank(0),
            },
        ),
        Operation::new(0, 4, OpKind::Halt),
    ]);

    let compiled = Functional::prepare(&machine, &p).unwrap();
    let mut runner = compiled.runner();
    for (input, expect) in [(15, 1), (5, 2)] {
        let req = ExecRequest::new(1000).with_stage(StageSpec::broadcast(0, 0, vec![input]));
        let reference = CycleAccurate.execute(&machine, &p, &req).unwrap();
        let out = runner.run(&req).unwrap();
        assert_eq!(out.state, reference.state);
        assert_eq!(out.state.regs[0][2], expect);
        // The allocation-free verdict primitive agrees with full equality.
        runner.run_quiet(&req).unwrap();
        assert!(runner.state_matches(&reference.state));
    }
}

/// Buffer swaps move the stored data to the I/O half of the snapshot's
/// (active, io) pair, bit-identically to the simulator.
#[test]
fn buffer_swap_matches_simulator() {
    let machine = models::i4c8s4();
    let mut p = Program::new("swap");
    // w0: mem[0] = 7
    p.push_word(vec![Operation::new(
        0,
        2,
        OpKind::Store {
            src: Operand::Imm(7),
            addr: AddrMode::Absolute(0),
            bank: MemBank(0),
        },
    )]);
    // w1: swapbuf
    p.push_word(vec![Operation::new(
        0,
        2,
        OpKind::MemCtl {
            op: MemCtlOp::SwapBuffers,
            bank: MemBank(0),
        },
    )]);
    p.push_word(halt_word());

    let state = assert_backends_agree(&machine, &p, &ExecRequest::new(100));
    // After the swap the stored value sits in the I/O buffer.
    assert_eq!(state.mems[0][0].1[0], 7);
    assert_eq!(state.mems[0][0].0[0], 0);
}

#[test]
fn refuses_data_dependent_branch() {
    let machine = models::i4c8s4();
    let mut p = Program::new("data-branch");
    p.push_word(vec![Operation::new(
        0,
        2,
        OpKind::Load {
            dst: Reg(1),
            addr: AddrMode::Absolute(0),
            bank: MemBank(0),
        },
    )]);
    p.push_word(vec![Operation::new(
        0,
        0,
        OpKind::Cmp {
            op: CmpOp::Gt,
            dst: Pred(1),
            a: Operand::Reg(Reg(1)),
            b: Operand::Imm(0),
        },
    )]);
    p.push_word(vec![Operation::new(
        0,
        4,
        OpKind::Branch {
            pred: Pred(1),
            sense: true,
            target: 0,
        },
    )]);
    p.push_word(vec![]);
    p.push_word(halt_word());

    let err = Functional::prepare(&machine, &p).unwrap_err();
    assert!(err.is_refusal());
    assert!(matches!(
        err,
        ExecError::Unsupported(Unsupported::DataDependentControl { word: 2 })
    ));
    // The cycle-accurate tier takes the same program without complaint —
    // this is exactly the EvalEngine fallback route.
    let req = ExecRequest::new(1000).with_stage(StageSpec::broadcast(0, 0, vec![0]));
    CycleAccurate.execute(&machine, &p, &req).unwrap();
}

#[test]
fn refuses_control_under_unknown_guard() {
    let machine = models::i4c8s4();
    let mut p = Program::new("guarded-halt");
    p.push_word(vec![Operation::new(
        0,
        2,
        OpKind::Load {
            dst: Reg(1),
            addr: AddrMode::Absolute(0),
            bank: MemBank(0),
        },
    )]);
    p.push_word(vec![Operation::new(
        0,
        0,
        OpKind::Cmp {
            op: CmpOp::Gt,
            dst: Pred(1),
            a: Operand::Reg(Reg(1)),
            b: Operand::Imm(0),
        },
    )]);
    p.push_word(vec![Operation::guarded(
        0,
        4,
        PredGuard::if_true(Pred(1)),
        OpKind::Halt,
    )]);
    p.push_word(halt_word());

    let err = Functional::prepare(&machine, &p).unwrap_err();
    assert!(matches!(
        err,
        ExecError::Unsupported(Unsupported::GuardedControl { word: 2 })
    ));
}

#[test]
fn refuses_fault_injection_requests() {
    let machine = models::i4c8s4();
    let mut p = Program::new("plain");
    p.push_word(vec![add_imm(0, 0, 1, 1)]);
    p.push_word(halt_word());

    let mut req = ExecRequest::new(100);
    req.fault_injection = true;
    for backend in [&Functional as &dyn Backend, &CycleAccurate] {
        let err = backend.execute(&machine, &p, &req).unwrap_err();
        assert!(err.is_refusal());
        assert!(matches!(
            err,
            ExecError::Unsupported(Unsupported::FaultInjection)
        ));
    }
    // A prepared program also refuses at run time.
    let compiled = Functional::prepare(&machine, &p).unwrap();
    assert!(compiled.run(&req).unwrap_err().is_refusal());
}

#[test]
fn refuses_program_without_halt() {
    let machine = models::i4c8s4();
    let mut p = Program::new("no-halt");
    p.push_word(vec![add_imm(0, 0, 1, 1)]);

    let err = Functional::prepare(&machine, &p).unwrap_err();
    assert!(matches!(
        err,
        ExecError::Unsupported(Unsupported::RanOffEnd { word: 1 })
    ));
}

#[test]
fn refuses_unbounded_loop() {
    let machine = models::i4c8s4();
    let mut p = Program::new("spin");
    p.push_word(vec![Operation::new(0, 4, OpKind::Jump { target: 0 })]);
    p.push_word(vec![]); // delay slot

    let err = Functional::prepare(&machine, &p).unwrap_err();
    assert!(matches!(
        err,
        ExecError::Unsupported(Unsupported::NonTerminating { .. })
    ));
}

#[test]
fn refuses_icache_overflow() {
    let machine = models::i4c8s4();
    let mut p = Program::new("huge");
    for _ in 0..machine.icache_words + 1 {
        p.push_word(vec![]);
    }
    p.push_word(halt_word());

    let err = Functional::prepare(&machine, &p).unwrap_err();
    assert!(matches!(
        err,
        ExecError::Unsupported(Unsupported::IcacheOverflow { .. })
    ));
}

#[test]
fn cycle_budget_matches_simulator_semantics() {
    let machine = models::i4c8s4();
    let mut p = Program::new("short");
    p.push_word(vec![add_imm(0, 0, 1, 1)]);
    p.push_word(halt_word());

    let compiled = Functional::prepare(&machine, &p).unwrap();
    assert_eq!(compiled.cycles(), 2);
    let err = compiled.run(&ExecRequest::new(1)).unwrap_err();
    assert_eq!(err, ExecError::CycleLimit { limit: 1 });
    // The same budget fails the simulator too.
    assert!(CycleAccurate
        .execute(&machine, &p, &ExecRequest::new(1))
        .is_err());
    // An exact budget passes both.
    assert_backends_agree(&machine, &p, &ExecRequest::new(2));
}

#[test]
fn out_of_range_access_fails_at_run_time() {
    let machine = models::i4c8s4();
    let bank_words = machine.cluster.banks[0].words;
    let mut p = Program::new("oob");
    // w0: r1 = bank_words (first out-of-range address)
    p.push_word(vec![add_imm(0, 0, 1, bank_words as i16)]);
    p.push_word(vec![Operation::new(
        0,
        2,
        OpKind::Store {
            src: Operand::Imm(1),
            addr: AddrMode::Register(Reg(1)),
            bank: MemBank(0),
        },
    )]);
    p.push_word(halt_word());

    let err = Functional
        .execute(&machine, &p, &ExecRequest::new(100))
        .unwrap_err();
    assert!(matches!(err, ExecError::MemOutOfRange { addr, .. } if addr == bank_words));
    assert!(!err.is_refusal());
}

/// Results whose commit latency carries them past the halt are dropped
/// by the simulator (the machine stops draining its commit ring); the
/// lowered trace reproduces that.
#[test]
fn in_flight_writes_dropped_at_halt() {
    let machine = models::i4c8s4();
    assert_eq!(machine.pipeline.mul_latency, 1);
    let mut machine = machine;
    machine.pipeline.mul_latency = 3; // force a commit beyond the halt
    let mut p = Program::new("halt-drop");
    p.push_word(vec![add_imm(0, 0, 1, 5)]);
    // w1: r2 = r1 * r1, commits at cycle 4 — but the halt lands at 2.
    p.push_word(vec![
        Operation::new(
            0,
            0,
            OpKind::Mul {
                kind: vsp_isa::MulKind::Mul8SS,
                dst: Reg(2),
                a: Operand::Reg(Reg(1)),
                b: Operand::Reg(Reg(1)),
            },
        ),
        Operation::new(0, 4, OpKind::Halt),
    ]);

    let state = assert_backends_agree(&machine, &p, &ExecRequest::new(100));
    assert_eq!(state.regs[0][2], 0, "in-flight multiply must not land");
    assert_eq!(state.regs[0][1], 5);
}
