//! Re-execute-from-checkpoint recovery.
//!
//! Execution is cut into *regions* of a configurable number of
//! instruction words. Before each region the full microarchitectural
//! state is checkpointed; the region then runs under a watchdog cycle
//! budget. A detection — any `SimError` out of the step loop, or the
//! watchdog expiring (latency jitter storms, runaway stalls) — rolls
//! the simulator back to the checkpoint and re-executes. Transient
//! faults re-draw their randomness on replay and usually vanish;
//! stuck-at (hard) faults recur deterministically and exhaust the retry
//! budget, at which point the region's error is declared uncorrectable.
//! Each detection also halves the region size (exponential region
//! shrinking), so a recurring fault is isolated into ever-smaller
//! replay units before the loop gives up.

use vsp_sim::fault::FaultModel;
use vsp_sim::{RunStats, SimError, Simulator};
use vsp_trace::TraceSink;

/// Tuning for [`run_with_recovery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Instruction words per region (checkpoint every this many words).
    pub checkpoint_interval: u64,
    /// Watchdog: cycle budget one region may consume before it is
    /// declared faulty and rolled back. Must be generous enough for the
    /// worst fault-free region (icache refills included), or a clean
    /// region will trip it deterministically and become uncorrectable.
    pub region_budget: u64,
    /// Re-executions allowed per region before its failure is declared
    /// uncorrectable.
    pub max_retries: u32,
    /// Global cycle budget for the surviving timeline (discarded replay
    /// cycles do not count against it).
    pub max_cycles: u64,
}

impl RecoveryConfig {
    /// Defaults tuned for kernel-sized programs: 256-word regions, a
    /// watchdog of 4× the region plus refill slack, 8 retries.
    pub fn new(max_cycles: u64) -> Self {
        RecoveryConfig {
            checkpoint_interval: 256,
            region_budget: 4 * 256 + 2048,
            max_retries: 8,
            max_cycles,
        }
    }

    /// Overrides the region size, scaling the watchdog with it.
    pub fn with_interval(mut self, words: u64) -> Self {
        self.checkpoint_interval = words.max(1);
        self.region_budget = 4 * self.checkpoint_interval + 2048;
        self
    }
}

/// What [`run_with_recovery`] observed.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOutcome {
    /// Final statistics of the surviving timeline, with the fault
    /// counters (`faults_detected` / `corrected` / `uncorrectable` /
    /// `recovery_cycles`) filled in.
    pub stats: RunStats,
    /// Whether the program ran to a committed halt.
    pub halted: bool,
    /// The terminal error, if the run did not complete: the last
    /// uncorrectable region error, or `CycleLimit` when the global
    /// budget ran out.
    pub error: Option<SimError>,
    /// Total region re-executions performed.
    pub retries: u64,
}

impl RecoveryOutcome {
    /// Completed with every detected fault corrected.
    pub fn is_clean(&self) -> bool {
        self.halted && self.error.is_none() && self.stats.faults_uncorrectable == 0
    }
}

/// What ended one region attempt.
enum RegionEnd {
    /// Region ran its full word quota (or the program halted).
    Done,
    /// The simulator faulted.
    Error(SimError),
    /// The watchdog cycle budget expired.
    Watchdog,
}

/// Runs `sim` to completion under checkpoint/recovery.
///
/// The simulator should carry a fault model (via
/// `Simulator::with_sink_and_faults`); with `NoFaults` this is just a
/// checkpointed run that still catches scheduler bugs. Detection is
/// error-based — silent data corruptions that never trip a simulator
/// error or the watchdog are *not* detected here; campaigns measure
/// those by comparing final state against a golden run (see the
/// `vsp-bench` `faults` bin).
pub fn run_with_recovery<S: TraceSink, F: FaultModel>(
    sim: &mut Simulator<'_, S, F>,
    cfg: &RecoveryConfig,
) -> RecoveryOutcome {
    let mut interval = cfg.checkpoint_interval.max(1);
    let mut detected: u64 = 0;
    let mut corrected: u64 = 0;
    let mut uncorrectable: u64 = 0;
    let mut recovery_cycles: u64 = 0;
    let mut retries: u64 = 0;
    let mut error: Option<SimError> = None;

    'regions: while !sim.is_halted() {
        if sim.cycle() >= cfg.max_cycles {
            error = Some(SimError::CycleLimit {
                limit: cfg.max_cycles,
            });
            break;
        }
        let cp = sim.checkpoint();
        let mut region_detections: u64 = 0;
        loop {
            let end = run_region(sim, interval, cfg.region_budget);
            match end {
                RegionEnd::Done => {
                    // Every failed attempt of this region is now known
                    // to have been erased by re-execution.
                    corrected += region_detections;
                    continue 'regions;
                }
                RegionEnd::Error(e) => {
                    detected += 1;
                    region_detections += 1;
                    if region_detections > u64::from(cfg.max_retries) {
                        uncorrectable += 1;
                        error = Some(e);
                        break 'regions;
                    }
                    recovery_cycles += sim.cycle() - cp.cycle();
                    sim.restore(&cp);
                    retries += 1;
                    interval = (interval / 2).max(1);
                }
                RegionEnd::Watchdog => {
                    detected += 1;
                    region_detections += 1;
                    if region_detections > u64::from(cfg.max_retries) {
                        uncorrectable += 1;
                        error = Some(SimError::CycleLimit {
                            limit: cfg.region_budget,
                        });
                        break 'regions;
                    }
                    recovery_cycles += sim.cycle() - cp.cycle();
                    sim.restore(&cp);
                    retries += 1;
                    interval = (interval / 2).max(1);
                }
            }
        }
    }

    let mut stats = sim.stats();
    stats.faults_detected = detected;
    stats.faults_corrected = corrected;
    stats.faults_uncorrectable = uncorrectable;
    stats.recovery_cycles = recovery_cycles;
    RecoveryOutcome {
        halted: sim.is_halted(),
        error,
        retries,
        stats,
    }
}

/// Executes up to `words` instruction words or until the watchdog
/// `budget` (in cycles) expires.
fn run_region<S: TraceSink, F: FaultModel>(
    sim: &mut Simulator<'_, S, F>,
    words: u64,
    budget: u64,
) -> RegionEnd {
    let start = sim.cycle();
    for _ in 0..words {
        if sim.is_halted() {
            break;
        }
        if let Err(e) = sim.step() {
            return RegionEnd::Error(e);
        }
        if sim.cycle() - start > budget {
            return RegionEnd::Watchdog;
        }
    }
    RegionEnd::Done
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsp_core::models;
    use vsp_isa::{AluBinOp, AluUnOp, OpKind, Operand, Operation, Program, Reg};
    use vsp_sim::fault::NoFaults;
    use vsp_sim::Simulator;
    use vsp_trace::NullSink;

    fn straight_line_program(n: usize) -> Program {
        let mut p = Program::new("t");
        p.push_word(vec![Operation::new(
            0,
            0,
            OpKind::AluUn {
                op: AluUnOp::Mov,
                dst: Reg(1),
                a: Operand::Imm(0),
            },
        )]);
        for _ in 0..n {
            p.push_word(vec![Operation::new(
                0,
                0,
                OpKind::AluBin {
                    op: AluBinOp::Add,
                    dst: Reg(1),
                    a: Operand::Reg(Reg(1)),
                    b: Operand::Imm(1),
                },
            )]);
        }
        p.push_word(vec![Operation::new(0, 4, OpKind::Halt)]);
        p
    }

    #[test]
    fn fault_free_run_matches_plain_execution() {
        let m = models::i4c8s4();
        let p = straight_line_program(100);
        let mut plain = Simulator::new(&m, &p).unwrap();
        let plain_stats = plain.run(10_000).unwrap();

        let mut sim = Simulator::with_sink_and_faults(&m, &p, NullSink, NoFaults).unwrap();
        let outcome = run_with_recovery(&mut sim, &RecoveryConfig::new(10_000).with_interval(16));
        assert!(outcome.is_clean());
        assert_eq!(outcome.stats.faults_detected, 0);
        assert_eq!(outcome.stats.recovery_cycles, 0);
        // Checkpointing is observation-only: identical stats.
        assert_eq!(outcome.stats, plain_stats);
        assert_eq!(sim.reg(0, Reg(1)), 100);
    }

    #[test]
    fn tiny_regions_still_complete() {
        let m = models::i4c8s4();
        let p = straight_line_program(30);
        let mut sim = Simulator::with_sink_and_faults(&m, &p, NullSink, NoFaults).unwrap();
        let outcome = run_with_recovery(&mut sim, &RecoveryConfig::new(10_000).with_interval(1));
        assert!(outcome.is_clean());
        assert_eq!(sim.reg(0, Reg(1)), 30);
    }

    #[test]
    fn global_cycle_budget_is_enforced() {
        let m = models::i4c8s4();
        let (bc, bs) = m.branch_slot();
        let mut p = Program::new("spin");
        p.push_word(vec![Operation::new(bc, bs, OpKind::Jump { target: 0 })]);
        p.push_word(vec![]);
        let mut sim = Simulator::with_sink_and_faults(&m, &p, NullSink, NoFaults).unwrap();
        let outcome = run_with_recovery(&mut sim, &RecoveryConfig::new(500).with_interval(64));
        assert!(!outcome.halted);
        assert!(matches!(outcome.error, Some(SimError::CycleLimit { .. })));
    }
}
